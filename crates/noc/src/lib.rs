//! Interconnection network of the simulated DSM machine.
//!
//! The paper connects nodes through SGI-Spider-like 6-port routers arranged
//! as a **2-way bristled hypercube** (two nodes per router, routers forming a
//! hypercube), with 25 ns hop time, 1 GB/s links and four virtual networks of
//! which the coherence protocol uses three (requests, interventions,
//! replies) — paper Table 3.
//!
//! # Timing model
//!
//! Instead of ticking every router every cycle, the network uses *eager link
//! reservation*: when a message is injected, its route is computed
//! (dimension-order through the hypercube) and each unidirectional link on
//! the path is reserved in order — a message begins serializing on a link no
//! earlier than the link's previous reservation ends, pays the
//! bandwidth-determined serialization time, then the per-hop latency. This
//! preserves the latency and bandwidth envelope (and point-to-point FIFO
//! order per route) at a fraction of the simulation cost of a flit-level
//! model; see DESIGN.md §2.

pub mod llp;
pub mod msg;
pub mod network;
pub mod topology;

pub use msg::{Msg, MsgKind, VNet};
pub use network::{NetStats, Network};
pub use topology::Topology;
