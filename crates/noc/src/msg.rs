//! Coherence protocol messages and virtual networks.

use smtp_types::{LineAddr, NodeId, SpanId, L2_LINE};
use std::fmt;

/// Virtual networks (paper Table 3: four, the protocol uses three).
///
/// Splitting requests, interventions and replies onto separate virtual
/// networks is what makes the three-hop directory protocol deadlock-free at
/// the transport level.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
#[repr(u8)]
pub enum VNet {
    /// Requester → home requests.
    Request = 0,
    /// Home → third-party interventions and invalidations.
    Intervention = 1,
    /// Data and acknowledgement replies.
    Reply = 2,
    /// I/O and miscellaneous traffic (unused by the coherence protocol).
    Io = 3,
}

impl VNet {
    /// All virtual networks.
    pub const ALL: [VNet; 4] = [VNet::Request, VNet::Intervention, VNet::Reply, VNet::Io];

    /// Index for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self as usize
    }
}

/// The message vocabulary of the bitvector directory protocol
/// (Origin-2000-derived with eager-exclusive replies, paper §3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MsgKind {
    // ---------------- requests: requester → home ----------------
    /// Read miss: requester wants a shared copy.
    GetS,
    /// Write miss: requester wants an exclusive copy with data.
    GetX,
    /// Write upgrade: requester holds the line Shared and wants ownership
    /// without data.
    Upgrade,
    /// Eviction notice for an Exclusive line; `dirty` lines carry data.
    /// The evictor holds the line in its writeback buffer until [`MsgKind::WbAck`].
    Put {
        /// Whether the line was modified (carries the data payload).
        dirty: bool,
    },

    // ------------- interventions: home → owner / sharers -------------
    /// Downgrade the owner to Shared; owner sends [`MsgKind::DataShared`]
    /// to `requester` and [`MsgKind::SharingWb`] back to home.
    IntervShared {
        /// Node whose GetS triggered the intervention.
        requester: NodeId,
    },
    /// Invalidate the owner; owner forwards [`MsgKind::DataExcl`] to
    /// `requester` and sends [`MsgKind::TransferAck`] back to home.
    IntervExcl {
        /// Node whose GetX triggered the intervention.
        requester: NodeId,
    },
    /// Invalidate a shared copy; the sharer acks `requester` directly.
    Inval {
        /// Node collecting the invalidation acks.
        requester: NodeId,
    },

    // ------------------------- replies -------------------------
    /// Shared data reply (home or previous owner → requester).
    DataShared,
    /// Exclusive data reply; `acks` invalidation acknowledgements are still
    /// outstanding and will arrive at the requester directly
    /// (eager-exclusive: the requester may use the line immediately).
    DataExcl {
        /// Number of [`MsgKind::AckInv`] messages to collect.
        acks: u16,
    },
    /// Ownership granted on an [`MsgKind::Upgrade`] without data.
    UpgradeAck {
        /// Number of [`MsgKind::AckInv`] messages to collect.
        acks: u16,
    },
    /// Invalidation acknowledgement (sharer → requester).
    AckInv,
    /// Home acknowledges a [`MsgKind::Put`]; the evictor may free its
    /// writeback-buffer entry.
    WbAck,
    /// Previous owner → home after an [`MsgKind::IntervShared`]: carries
    /// the (possibly dirty) data and tells home the line is now shared by
    /// the old owner and the requester.
    SharingWb {
        /// The GetS requester that also received [`MsgKind::DataShared`].
        requester: NodeId,
    },
    /// Previous owner → home after an [`MsgKind::IntervExcl`]: ownership
    /// has moved to `new_owner`.
    TransferAck {
        /// The GetX requester that received the forwarded data.
        new_owner: NodeId,
    },
}

impl MsgKind {
    /// Virtual network this message class travels on.
    pub fn vnet(self) -> VNet {
        use MsgKind::*;
        match self {
            GetS | GetX | Upgrade | Put { .. } => VNet::Request,
            IntervShared { .. } | IntervExcl { .. } | Inval { .. } => VNet::Intervention,
            DataShared
            | DataExcl { .. }
            | UpgradeAck { .. }
            | AckInv
            | WbAck
            | SharingWb { .. }
            | TransferAck { .. } => VNet::Reply,
        }
    }

    /// Payload-free label for trace output.
    pub fn trace_label(self) -> smtp_trace::MsgLabel {
        use smtp_trace::MsgLabel;
        use MsgKind::*;
        match self {
            GetS => MsgLabel::GetS,
            GetX => MsgLabel::GetX,
            Upgrade => MsgLabel::Upgrade,
            Put { .. } => MsgLabel::Put,
            IntervShared { .. } => MsgLabel::IntervShared,
            IntervExcl { .. } => MsgLabel::IntervExcl,
            Inval { .. } => MsgLabel::Inval,
            DataShared => MsgLabel::DataShared,
            DataExcl { .. } => MsgLabel::DataExcl,
            UpgradeAck { .. } => MsgLabel::UpgradeAck,
            AckInv => MsgLabel::AckInv,
            WbAck => MsgLabel::WbAck,
            SharingWb { .. } => MsgLabel::SharingWb,
            TransferAck { .. } => MsgLabel::TransferAck,
        }
    }

    /// Payload size in bytes (a full cache line for data-carrying messages).
    pub fn data_bytes(self) -> u64 {
        use MsgKind::*;
        match self {
            DataShared | DataExcl { .. } | SharingWb { .. } => L2_LINE,
            Put { dirty: true } => L2_LINE,
            _ => 0,
        }
    }

    /// Whether this is a request that the home may defer (queue) while the
    /// line is busy. Interventions and replies must always be consumable.
    pub fn is_home_request(self) -> bool {
        matches!(
            self,
            MsgKind::GetS | MsgKind::GetX | MsgKind::Upgrade | MsgKind::Put { .. }
        )
    }
}

/// One coherence message in flight.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Msg {
    /// Message class.
    pub kind: MsgKind,
    /// Cache line the transaction concerns.
    pub addr: LineAddr,
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Causal span of the transaction this message belongs to. Derived
    /// messages (interventions, invalidations, replies, acks, LLP
    /// retransmits) inherit the span of the request that caused them.
    pub span: SpanId,
}

impl Msg {
    /// Construct a message carrying no span ([`SpanId::NONE`]); use
    /// [`Msg::with_span`] to attach the causal span.
    pub fn new(kind: MsgKind, addr: LineAddr, src: NodeId, dst: NodeId) -> Msg {
        Msg {
            kind,
            addr,
            src,
            dst,
            span: SpanId::NONE,
        }
    }

    /// The same message tagged with a causal span.
    #[inline]
    pub fn with_span(mut self, span: SpanId) -> Msg {
        self.span = span;
        self
    }

    /// Virtual network the message travels on.
    #[inline]
    pub fn vnet(&self) -> VNet {
        self.kind.vnet()
    }

    /// Total wire size: header plus payload.
    #[inline]
    pub fn wire_bytes(&self, header_bytes: u64) -> u64 {
        header_bytes + self.kind.data_bytes()
    }
}

impl fmt::Display for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} {} {:?}->{:?}",
            self.kind, self.addr, self.src, self.dst
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtp_types::{Addr, Region};

    fn line() -> LineAddr {
        Addr::new(NodeId(1), Region::AppData, 0x400).line()
    }

    #[test]
    fn vnet_assignment_is_deadlock_safe() {
        assert_eq!(MsgKind::GetS.vnet(), VNet::Request);
        assert_eq!(MsgKind::Put { dirty: true }.vnet(), VNet::Request);
        assert_eq!(
            MsgKind::IntervExcl {
                requester: NodeId(0)
            }
            .vnet(),
            VNet::Intervention
        );
        assert_eq!(MsgKind::DataExcl { acks: 3 }.vnet(), VNet::Reply);
        assert_eq!(MsgKind::AckInv.vnet(), VNet::Reply);
        assert_eq!(
            MsgKind::TransferAck {
                new_owner: NodeId(2)
            }
            .vnet(),
            VNet::Reply
        );
    }

    #[test]
    fn payload_sizes() {
        assert_eq!(MsgKind::GetS.data_bytes(), 0);
        assert_eq!(MsgKind::DataShared.data_bytes(), L2_LINE);
        assert_eq!(MsgKind::Put { dirty: true }.data_bytes(), L2_LINE);
        assert_eq!(MsgKind::Put { dirty: false }.data_bytes(), 0);
        assert_eq!(MsgKind::WbAck.data_bytes(), 0);
    }

    #[test]
    fn wire_size_includes_header() {
        let m = Msg::new(MsgKind::DataShared, line(), NodeId(1), NodeId(0));
        assert_eq!(m.wire_bytes(16), 16 + L2_LINE);
        let g = Msg::new(MsgKind::GetS, line(), NodeId(0), NodeId(1));
        assert_eq!(g.wire_bytes(16), 16);
    }

    #[test]
    fn home_request_classification() {
        assert!(MsgKind::GetS.is_home_request());
        assert!(MsgKind::Put { dirty: false }.is_home_request());
        assert!(!MsgKind::AckInv.is_home_request());
        assert!(!MsgKind::Inval {
            requester: NodeId(0)
        }
        .is_home_request());
    }
}
