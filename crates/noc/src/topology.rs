//! 2-way bristled hypercube topology with dimension-order routing.

use smtp_types::NodeId;

/// A unidirectional link identifier in the bristled hypercube.
///
/// Three link classes exist: node→router injection, router→node ejection,
/// and router→router hypercube-dimension links.
pub type LinkId = usize;

/// The machine topology: two nodes per SGI-Spider-like router, routers
/// forming a hypercube of `log2(nodes / 2)` dimensions.
///
/// With 6-port routers (2 node ports + 4 dimension ports) this scales to 32
/// nodes, exactly the largest machine the paper evaluates; larger powers of
/// two are accepted for experimentation.
#[derive(Clone, Debug)]
pub struct Topology {
    nodes: usize,
    routers: usize,
    dims: u32,
}

impl Topology {
    /// Build the topology for `nodes` nodes (power of two, at least 2).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is not a power of two ≥ 2.
    pub fn new(nodes: usize) -> Topology {
        assert!(
            nodes >= 2 && nodes.is_power_of_two(),
            "bristled hypercube needs a power-of-two node count >= 2"
        );
        let routers = (nodes / 2).max(1);
        let dims = routers.trailing_zeros();
        Topology {
            nodes,
            routers,
            dims,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of routers.
    pub fn routers(&self) -> usize {
        self.routers
    }

    /// Hypercube dimensions.
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// Total number of unidirectional links.
    pub fn link_count(&self) -> usize {
        // injection + ejection per node, plus one link per router per
        // dimension per direction.
        2 * self.nodes + self.routers * self.dims as usize
    }

    /// Router hosting a node.
    #[inline]
    pub fn router_of(&self, n: NodeId) -> usize {
        n.idx() / 2
    }

    #[inline]
    fn inject_link(&self, n: NodeId) -> LinkId {
        n.idx()
    }

    #[inline]
    fn eject_link(&self, n: NodeId) -> LinkId {
        self.nodes + n.idx()
    }

    #[inline]
    fn dim_link(&self, from_router: usize, dim: u32) -> LinkId {
        2 * self.nodes + from_router * self.dims as usize + dim as usize
    }

    /// Human-readable label for a link id: `n3->r1` (injection),
    /// `r1->n3` (ejection) or `r2->r6.d2` (hypercube dimension link).
    ///
    /// # Panics
    ///
    /// Panics if `l >= link_count()`.
    pub fn link_label(&self, l: LinkId) -> String {
        if l < self.nodes {
            return format!("n{}->r{}", l, l / 2);
        }
        if l < 2 * self.nodes {
            let n = l - self.nodes;
            return format!("r{}->n{}", n / 2, n);
        }
        let idx = l - 2 * self.nodes;
        assert!(
            idx < self.routers * self.dims as usize,
            "link id {l} out of range"
        );
        let (router, dim) = (idx / self.dims as usize, idx % self.dims as usize);
        format!("r{}->r{}.d{}", router, router ^ (1 << dim), dim)
    }

    /// Number of router traversals on the path from `src` to `dst`
    /// (minimum 1: even two nodes on the same router cross it once).
    pub fn hops(&self, src: NodeId, dst: NodeId) -> u32 {
        let (rs, rd) = (self.router_of(src), self.router_of(dst));
        1 + ((rs ^ rd).count_ones())
    }

    /// Dimension-order route from `src` to `dst` as a sequence of
    /// unidirectional links (injection, dimension links low-to-high,
    /// ejection).
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` — intra-node traffic never enters the network.
    pub fn route(&self, src: NodeId, dst: NodeId, out: &mut Vec<LinkId>) {
        assert!(src != dst, "intra-node message must not enter the network");
        out.clear();
        out.push(self.inject_link(src));
        let mut r = self.router_of(src);
        let rd = self.router_of(dst);
        let mut diff = r ^ rd;
        while diff != 0 {
            let d = diff.trailing_zeros();
            out.push(self.dim_link(r, d));
            r ^= 1 << d;
            diff = r ^ rd;
        }
        out.push(self.eject_link(dst));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_nodes_one_router() {
        let t = Topology::new(2);
        assert_eq!(t.routers(), 1);
        assert_eq!(t.dims(), 0);
        assert_eq!(t.hops(NodeId(0), NodeId(1)), 1);
        let mut r = Vec::new();
        t.route(NodeId(0), NodeId(1), &mut r);
        assert_eq!(r.len(), 2); // inject + eject, same router
    }

    #[test]
    fn sixteen_nodes_eight_routers() {
        let t = Topology::new(16);
        assert_eq!(t.routers(), 8);
        assert_eq!(t.dims(), 3);
        // Nodes 0 and 15: routers 0 and 7 differ in 3 dimensions.
        assert_eq!(t.hops(NodeId(0), NodeId(15)), 4);
        let mut r = Vec::new();
        t.route(NodeId(0), NodeId(15), &mut r);
        assert_eq!(r.len(), 2 + 3);
    }

    #[test]
    fn thirty_two_nodes_fit_six_port_routers() {
        let t = Topology::new(32);
        assert_eq!(t.routers(), 16);
        assert_eq!(t.dims(), 4); // 4 dimension ports + 2 node ports = 6
        assert_eq!(t.hops(NodeId(0), NodeId(31)), 5);
    }

    #[test]
    fn routes_are_dimension_ordered_and_consistent() {
        let t = Topology::new(8);
        let mut r = Vec::new();
        for s in 0..8u16 {
            for d in 0..8u16 {
                if s == d {
                    continue;
                }
                t.route(NodeId(s), NodeId(d), &mut r);
                assert_eq!(r.len() as u32, t.hops(NodeId(s), NodeId(d)) + 1);
                for &l in &r {
                    assert!(l < t.link_count(), "link id {l} out of range");
                }
            }
        }
    }

    #[test]
    fn link_ids_are_unique_per_direction() {
        let t = Topology::new(8);
        // Opposite directions of the same dimension use different ids.
        let mut ab = Vec::new();
        let mut ba = Vec::new();
        t.route(NodeId(0), NodeId(2), &mut ab); // router 0 -> 1
        t.route(NodeId(2), NodeId(0), &mut ba); // router 1 -> 0
        assert_ne!(ab[1], ba[1]);
    }

    #[test]
    fn link_labels_cover_all_classes() {
        let t = Topology::new(8);
        assert_eq!(t.link_label(3), "n3->r1");
        assert_eq!(t.link_label(8 + 3), "r1->n3");
        // First dimension link of router 2: partner differs in bit 0.
        assert_eq!(t.link_label(16 + 2 * 2), "r2->r3.d0");
        assert_eq!(t.link_label(16 + 2 * 2 + 1), "r2->r0.d1");
        // Every link id renders, and labels are unique.
        let labels: std::collections::HashSet<_> =
            (0..t.link_count()).map(|l| t.link_label(l)).collect();
        assert_eq!(labels.len(), t.link_count());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn link_label_rejects_bogus_id() {
        Topology::new(4).link_label(Topology::new(4).link_count());
    }

    #[test]
    #[should_panic(expected = "intra-node")]
    fn self_route_panics() {
        let t = Topology::new(4);
        let mut r = Vec::new();
        t.route(NodeId(1), NodeId(1), &mut r);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_pow2_panics() {
        Topology::new(6);
    }
}
