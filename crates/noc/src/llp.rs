//! Spider-style link-level retry: CRC-checked, sequence-numbered channels
//! with cumulative acks, timeout retransmission and exactly-once in-order
//! delivery per `(src, dst, virtual network)` channel.
//!
//! The real SGI Spider router protects every link with a CRC and a
//! sliding-window retransmission protocol; the simulator's equivalent sits
//! between [`Network::inject`](crate::Network::inject) and the virtual
//! networks. It is only constructed when link fault injection is armed —
//! with faults disabled the network's original zero-copy path runs and the
//! simulation is cycle-for-cycle identical to a build without this module.
//!
//! Mechanics:
//! * every logical message gets the next **sequence number** of its channel
//!   and is kept in the sender's retransmit buffer until cumulatively acked;
//! * each **physical transmission** (first send and every retransmit)
//!   reserves route links for bandwidth like a normal message and then rolls
//!   the seeded fault dice: delay, drop, CRC corruption, duplication;
//! * the receiver discards corrupt and duplicate copies, holds early
//!   arrivals in a reorder buffer, delivers strictly in sequence order, and
//!   returns a cumulative ack (a small control packet, modeled as reliable
//!   like Spider's sideband control symbols);
//! * unacked packets retransmit on timeout with doubling, capped backoff.

use crate::msg::Msg;
use smtp_types::{Cycle, FaultStream, FaultSummary, LinkFaults};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// A retry channel key: `(src, dst, virtual network)`.
pub(crate) type ChanKey = (u16, u16, u8);

/// A sender-side retransmit-buffer entry.
#[derive(Clone, Debug)]
pub(crate) struct Unacked {
    pub seq: u64,
    pub msg: Msg,
    /// Logical injection cycle (for end-to-end latency accounting).
    pub sent_at: Cycle,
    /// Cycle at which the retransmit timer fires next.
    pub next_retry: Cycle,
    /// Current backoff timeout.
    pub timeout: Cycle,
    /// Retransmissions so far.
    pub attempts: u32,
}

/// Payload of a physical packet.
#[derive(Clone, Debug)]
pub(crate) enum PhysBody {
    /// A (possibly corrupted) copy of a sequenced data packet.
    Data {
        seq: u64,
        msg: Msg,
        sent_at: Cycle,
        corrupt: bool,
    },
    /// A cumulative acknowledgement: every `seq < cum` is received.
    Ack { cum: u64 },
}

/// One physical packet in flight (heap-ordered by arrival cycle).
#[derive(Clone, Debug)]
pub(crate) struct PhysPacket {
    pub at: Cycle,
    pub pseq: u64,
    pub key: ChanKey,
    pub body: PhysBody,
}

impl PartialEq for PhysPacket {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.pseq) == (other.at, other.pseq)
    }
}

impl Eq for PhysPacket {}

impl Ord for PhysPacket {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.pseq).cmp(&(other.at, other.pseq))
    }
}

impl PartialOrd for PhysPacket {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-channel sender and receiver state.
#[derive(Clone, Debug, Default)]
pub(crate) struct Channel {
    /// Next sequence number the sender will assign.
    pub next_send_seq: u64,
    /// Sent but not yet cumulatively acked, in sequence order.
    pub unacked: VecDeque<Unacked>,
    /// Next sequence number the receiver will deliver.
    pub next_deliver: u64,
    /// Early arrivals waiting for the sequence gap to fill.
    pub reorder: BTreeMap<u64, (Msg, Cycle)>,
    /// Fixed ack return latency for this channel.
    pub ack_lat: Cycle,
}

/// A message delivered by the retry layer, waiting to be popped.
#[derive(Clone, Debug)]
pub(crate) struct Ready {
    pub msg: Msg,
    pub sent_at: Cycle,
    pub delivered_at: Cycle,
}

/// The link-level retry layer state.
#[derive(Clone, Debug)]
pub(crate) struct Llp {
    /// Seeded fault stream for first-transmission link-fault rolls.
    pub stream: FaultStream,
    /// Independent fault stream for retransmission rolls. Keeping the two
    /// paths on separate streams means the dice consumed by an injection
    /// never depend on how many retransmit timers fired before it in the
    /// same cycle window — a precondition for replaying injections and
    /// deliveries in separate batches (parallel epoch engine) while staying
    /// bit-identical to the serial interleaving.
    pub retry_stream: FaultStream,
    /// Armed fault rates.
    pub faults: LinkFaults,
    /// Channel table (BTreeMap for deterministic iteration order).
    pub channels: BTreeMap<ChanKey, Channel>,
    /// Physical packets in flight.
    pub phys: BinaryHeap<Reverse<PhysPacket>>,
    /// Physical packet tie-break counter.
    pub pseq: u64,
    /// In-order deliveries waiting for `pop_arrived`.
    pub ready: VecDeque<Ready>,
    /// Initial retransmit timeout.
    pub timeout0: Cycle,
    /// Backoff cap.
    pub timeout_cap: Cycle,
    /// Earliest pending retransmit timer (conservative; `u64::MAX` = none).
    pub next_timer_at: Cycle,
    /// Logical messages injected but not yet popped.
    pub logical_in_flight: usize,
    /// Injection and recovery counters (link_* fields only).
    pub counters: FaultSummary,
}

impl Llp {
    /// A fresh retry layer with the given fault streams and base timeout.
    pub fn new(
        stream: FaultStream,
        retry_stream: FaultStream,
        faults: LinkFaults,
        timeout0: Cycle,
    ) -> Llp {
        Llp {
            stream,
            retry_stream,
            faults,
            channels: BTreeMap::new(),
            phys: BinaryHeap::new(),
            pseq: 0,
            ready: VecDeque::new(),
            timeout0,
            timeout_cap: timeout0.saturating_mul(16),
            next_timer_at: Cycle::MAX,
            logical_in_flight: 0,
            counters: FaultSummary::default(),
        }
    }

    /// Roll a fault from the path-appropriate stream.
    pub fn roll(&mut self, retransmit: bool, per_million: u32) -> bool {
        if retransmit {
            self.retry_stream.fires(per_million)
        } else {
            self.stream.fires(per_million)
        }
    }

    /// Draw a fault magnitude from the path-appropriate stream.
    pub fn roll_magnitude(&mut self, retransmit: bool, max: Cycle) -> Cycle {
        if retransmit {
            self.retry_stream.magnitude(max)
        } else {
            self.stream.magnitude(max)
        }
    }

    /// Queue a physical packet arriving at `at`.
    pub fn push_phys(&mut self, at: Cycle, key: ChanKey, body: PhysBody) {
        self.phys.push(Reverse(PhysPacket {
            at,
            pseq: self.pseq,
            key,
            body,
        }));
        self.pseq += 1;
    }

    /// Process an arriving data copy: discard duplicates, buffer early
    /// arrivals, drain in-sequence messages into `ready`. Returns the
    /// cumulative ack to send back and the channel's ack latency.
    pub fn receive_data(
        &mut self,
        at: Cycle,
        key: ChanKey,
        seq: u64,
        msg: Msg,
        sent_at: Cycle,
    ) -> (u64, Cycle) {
        let chan = self.channels.entry(key).or_default();
        if seq >= chan.next_deliver {
            chan.reorder.entry(seq).or_insert((msg, sent_at));
            while let Some((m, s)) = chan.reorder.remove(&chan.next_deliver) {
                self.ready.push_back(Ready {
                    msg: m,
                    sent_at: s,
                    delivered_at: at,
                });
                chan.next_deliver += 1;
            }
        }
        (chan.next_deliver, chan.ack_lat)
    }

    /// Process a cumulative ack: drop every retransmit-buffer entry below
    /// `cum`.
    pub fn receive_ack(&mut self, key: ChanKey, cum: u64) {
        if let Some(chan) = self.channels.get_mut(&key) {
            while chan.unacked.front().is_some_and(|u| u.seq < cum) {
                chan.unacked.pop_front();
            }
        }
    }

    /// Collect every retransmit-buffer entry whose timer expired, advancing
    /// its backoff, and refresh the earliest-timer cache. Returns an empty
    /// vector (no allocation) when no timer was due.
    pub fn take_expired(&mut self, now: Cycle) -> Vec<(ChanKey, u64, Msg, Cycle, u32)> {
        let mut expired = Vec::new();
        if now < self.next_timer_at {
            return expired;
        }
        let mut min_next = Cycle::MAX;
        for (key, chan) in self.channels.iter_mut() {
            for u in chan.unacked.iter_mut() {
                if u.next_retry <= now {
                    u.attempts += 1;
                    u.timeout = (u.timeout * 2).min(self.timeout_cap);
                    u.next_retry = now + u.timeout;
                    expired.push((*key, u.seq, u.msg, u.sent_at, u.attempts));
                }
                min_next = min_next.min(u.next_retry);
            }
        }
        self.next_timer_at = min_next;
        expired
    }

    /// Register a fresh retransmit-buffer entry.
    pub fn track_unacked(
        &mut self,
        key: ChanKey,
        seq: u64,
        msg: Msg,
        sent_at: Cycle,
        after: Cycle,
    ) {
        let timeout = self.timeout0;
        let next_retry = after + timeout;
        self.next_timer_at = self.next_timer_at.min(next_retry);
        self.channels
            .entry(key)
            .or_default()
            .unacked
            .push_back(Unacked {
                seq,
                msg,
                sent_at,
                next_retry,
                timeout,
                attempts: 0,
            });
    }

    /// Earliest cycle at which anything can happen: a queued delivery (0 =
    /// already due), a physical arrival, or a retransmit timer.
    pub fn next_event(&self) -> Option<Cycle> {
        if !self.ready.is_empty() {
            return Some(0);
        }
        let phys = self.phys.peek().map(|Reverse(p)| p.at);
        let timer = (self.next_timer_at != Cycle::MAX).then_some(self.next_timer_at);
        match (phys, timer) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MsgKind;
    use smtp_types::{Addr, FaultConfig, NodeId, Region};

    fn llp() -> Llp {
        let cfg = FaultConfig::chaos(1);
        Llp::new(
            cfg.stream(smtp_types::faults::SITE_LINK),
            cfg.stream(smtp_types::faults::SITE_LINK_RETRY),
            LinkFaults::default(),
            100,
        )
    }

    fn msg() -> Msg {
        Msg::new(
            MsgKind::GetS,
            Addr::new(NodeId(1), Region::AppData, 0x100).line(),
            NodeId(0),
            NodeId(1),
        )
    }

    const KEY: ChanKey = (0, 1, 0);

    #[test]
    fn in_order_arrivals_deliver_immediately() {
        let mut l = llp();
        let (cum, _) = l.receive_data(10, KEY, 0, msg(), 0);
        assert_eq!(cum, 1);
        assert_eq!(l.ready.len(), 1);
        let (cum, _) = l.receive_data(20, KEY, 1, msg(), 5);
        assert_eq!(cum, 2);
        assert_eq!(l.ready.len(), 2);
        assert_eq!(l.ready[1].delivered_at, 20);
        assert_eq!(l.ready[1].sent_at, 5);
    }

    #[test]
    fn out_of_order_arrivals_are_reordered() {
        let mut l = llp();
        let (cum, _) = l.receive_data(10, KEY, 1, msg(), 0);
        assert_eq!(cum, 0); // gap at seq 0
        assert!(l.ready.is_empty());
        let (cum, _) = l.receive_data(30, KEY, 0, msg(), 0);
        assert_eq!(cum, 2); // gap filled; both drain
        assert_eq!(l.ready.len(), 2);
        // Both delivered at the gap-filling arrival.
        assert_eq!(l.ready[0].delivered_at, 30);
        assert_eq!(l.ready[1].delivered_at, 30);
    }

    #[test]
    fn duplicates_are_discarded_but_reacked() {
        let mut l = llp();
        l.receive_data(10, KEY, 0, msg(), 0);
        let (cum, _) = l.receive_data(15, KEY, 0, msg(), 0);
        assert_eq!(cum, 1); // re-ack, no second delivery
        assert_eq!(l.ready.len(), 1);
        // Duplicate of a still-buffered early arrival is also dropped.
        l.receive_data(20, KEY, 2, msg(), 0);
        l.receive_data(21, KEY, 2, msg(), 0);
        assert_eq!(l.channels[&KEY].reorder.len(), 1);
    }

    #[test]
    fn cumulative_ack_clears_retransmit_buffer() {
        let mut l = llp();
        for seq in 0..4 {
            l.track_unacked(KEY, seq, msg(), 0, 0);
        }
        l.receive_ack(KEY, 3);
        assert_eq!(l.channels[&KEY].unacked.len(), 1);
        assert_eq!(l.channels[&KEY].unacked[0].seq, 3);
        l.receive_ack(KEY, 4);
        assert!(l.channels[&KEY].unacked.is_empty());
    }

    #[test]
    fn timers_expire_with_doubling_backoff() {
        let mut l = llp();
        l.track_unacked(KEY, 0, msg(), 0, 0); // timer at 100
        assert!(l.take_expired(50).is_empty());
        let e = l.take_expired(100);
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].4, 1); // first retransmit attempt
        let chan = &l.channels[&KEY];
        assert_eq!(chan.unacked[0].timeout, 200); // doubled
        assert_eq!(chan.unacked[0].next_retry, 300);
        assert_eq!(l.next_timer_at, 300);
        // Backoff caps at 16x.
        let mut t = 300;
        for _ in 0..10 {
            let e = l.take_expired(t);
            assert_eq!(e.len(), 1);
            t = l.channels[&KEY].unacked[0].next_retry;
        }
        assert_eq!(l.channels[&KEY].unacked[0].timeout, 1600);
    }

    #[test]
    fn next_event_tracks_phys_and_timers() {
        let mut l = llp();
        assert_eq!(l.next_event(), None);
        l.track_unacked(KEY, 0, msg(), 0, 0);
        assert_eq!(l.next_event(), Some(100));
        l.push_phys(
            40,
            KEY,
            PhysBody::Data {
                seq: 0,
                msg: msg(),
                sent_at: 0,
                corrupt: false,
            },
        );
        assert_eq!(l.next_event(), Some(40));
        l.ready.push_back(Ready {
            msg: msg(),
            sent_at: 0,
            delivered_at: 0,
        });
        assert_eq!(l.next_event(), Some(0));
    }
}
