//! The network timing model: eager link reservation over the topology.

use crate::llp::{ChanKey, Llp, PhysBody};
use crate::msg::{Msg, MsgKind};
use crate::topology::Topology;
use smtp_trace::{Category, Event, LinkFaultClass, LinkHeat, Tracer};
use smtp_types::{
    Cycle, Distribution, FaultConfig, FaultSummary, NetParams, PhaseBoundary, PhaseProfiler,
    L2_LINE,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Aggregate network statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NetStats {
    /// Messages delivered.
    pub messages: u64,
    /// Wire bytes transferred (headers + payloads).
    pub bytes: u64,
    /// Sum of end-to-end message latencies in cycles.
    pub total_latency: u64,
    /// Messages per virtual network.
    pub per_vnet: [u64; 4],
}

impl NetStats {
    /// Mean end-to-end latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.messages as f64
        }
    }
}

#[derive(Clone, PartialEq, Eq, Debug)]
struct InFlight {
    at: Cycle,
    seq: u64,
    msg: Msg,
}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The interconnect: computes each injected message's arrival time by
/// reserving every link on its dimension-order route in sequence.
///
/// Delivery preserves point-to-point FIFO order (messages sharing a route
/// reserve its links in injection order) and global bandwidth limits (a
/// link serializes one message at a time at the configured GB/s).
#[derive(Clone, Debug)]
pub struct Network {
    topo: Topology,
    link_free: Vec<Cycle>,
    in_flight: BinaryHeap<Reverse<InFlight>>,
    seq: u64,
    hop_cycles: u64,
    header_bytes: u64,
    cycles_per_byte: f64,
    route_buf: Vec<usize>,
    stats: NetStats,
    /// Per-directed-link accounting, indexed by `LinkId`: cycles the link
    /// spent serializing, physical traversals, wire bytes, and LLP
    /// retransmissions routed over it. Mutated only on injection (which is
    /// coordinator-owned serial-order in both engines), so the matrices are
    /// bit-identical across serial and parallel runs.
    link_busy: Vec<u64>,
    link_msgs: Vec<u64>,
    link_bytes: Vec<u64>,
    link_retx: Vec<u64>,
    tracer: Tracer,
    profiler: PhaseProfiler,
    vnet_latency: [Distribution; 4],
    /// Link-level retry layer; present only when link fault injection is
    /// armed, so the fault-free path costs exactly one branch per call.
    llp: Option<Box<Llp>>,
}

impl Network {
    /// Build the network for `nodes` nodes at `cpu_ghz` with the given
    /// interconnect parameters.
    pub fn new(nodes: usize, cpu_ghz: f64, p: &NetParams) -> Network {
        let topo = Topology::new(nodes);
        let links = topo.link_count();
        Network {
            topo,
            link_free: vec![0; links],
            in_flight: BinaryHeap::new(),
            seq: 0,
            hop_cycles: (p.hop_ns * cpu_ghz).ceil() as u64,
            header_bytes: p.header_bytes,
            cycles_per_byte: cpu_ghz / p.link_gbps,
            route_buf: Vec::with_capacity(8),
            stats: NetStats::default(),
            link_busy: vec![0; links],
            link_msgs: vec![0; links],
            link_bytes: vec![0; links],
            link_retx: vec![0; links],
            tracer: Tracer::disabled(),
            profiler: PhaseProfiler::disabled(),
            vnet_latency: std::array::from_fn(|_| Distribution::new()),
            llp: None,
        }
    }

    /// Arm link fault injection and the Spider-style link-level retry layer
    /// that recovers from it. A no-op (and zero overhead) unless `faults`
    /// is enabled with at least one non-zero link rate.
    pub fn set_faults(&mut self, faults: &FaultConfig) {
        if !faults.enabled || !faults.link.any() {
            return;
        }
        // Base retransmit timeout: several worst-case data-packet flight
        // times through the hypercube, so healthy traffic never times out.
        let data_ser = ((self.header_bytes + L2_LINE) as f64 * self.cycles_per_byte).ceil() as u64;
        let max_links = self.topo.dims() as u64 + 2;
        let timeout0 = (4 * max_links * (self.hop_cycles + data_ser)).max(64);
        let stream = faults.stream(smtp_types::faults::SITE_LINK);
        let retry_stream = faults.stream(smtp_types::faults::SITE_LINK_RETRY);
        self.llp = Some(Box::new(Llp::new(
            stream,
            retry_stream,
            faults.link,
            timeout0,
        )));
    }

    /// Injected-fault and recovery counters (all zero when the retry layer
    /// is not armed).
    pub fn fault_counters(&self) -> FaultSummary {
        self.llp.as_ref().map(|l| l.counters).unwrap_or_default()
    }

    /// Attach the system tracer (events: `net_inject`, `net_deliver`).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attach the latency-phase profiler: home requests stamp
    /// `ReqDelivered` and data replies `ReplyDelivered` at their computed
    /// arrival cycle.
    pub fn set_profiler(&mut self, profiler: PhaseProfiler) {
        self.profiler = profiler;
    }

    /// Per-virtual-network end-to-end message latency distributions
    /// (indexed by `VNet::idx()`: request, intervention, reply, I/O).
    pub fn vnet_latency(&self) -> &[Distribution; 4] {
        &self.vnet_latency
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The minimum cross-node message latency: the zero-load flight time of
    /// a header-only packet between adjacent nodes (two links — inject and
    /// eject — each paying serialization plus a hop). Every path through
    /// the network is at least this long, and faults (delay, drop, corrupt,
    /// duplicate) only ever delay delivery, so a message injected at cycle
    /// `T` is never observable by another node before `T + min_latency()`.
    /// This is the conservative lookahead of the parallel epoch engine.
    pub fn min_latency(&self) -> Cycle {
        let header_ser = (self.header_bytes as f64 * self.cycles_per_byte).ceil() as u64;
        2 * (header_ser + self.hop_cycles)
    }

    /// Inject a message at cycle `now`; it will be delivered to `msg.dst`
    /// when [`Network::pop_arrived`] is polled at or after its computed
    /// arrival cycle.
    ///
    /// # Panics
    ///
    /// Panics if `msg.src == msg.dst` (local traffic never enters the
    /// network) — see [`Topology::route`].
    pub fn inject(&mut self, now: Cycle, msg: Msg) {
        if self.llp.is_some() {
            self.inject_llp(now, msg);
            return;
        }
        let bytes = msg.wire_bytes(self.header_bytes);
        let ser = (bytes as f64 * self.cycles_per_byte).ceil() as u64;
        let mut route = std::mem::take(&mut self.route_buf);
        self.topo.route(msg.src, msg.dst, &mut route);
        let mut cur = now;
        for &l in &route {
            let start = cur.max(self.link_free[l]);
            self.link_free[l] = start + ser;
            cur = start + ser + self.hop_cycles;
            self.link_busy[l] += ser;
            self.link_msgs[l] += 1;
            self.link_bytes[l] += bytes;
        }
        self.route_buf = route;
        self.stats.messages += 1;
        self.stats.bytes += bytes;
        self.stats.total_latency += cur - now;
        self.stats.per_vnet[msg.vnet().idx()] += 1;
        self.vnet_latency[msg.vnet().idx()].record(cur - now);
        if self.profiler.is_enabled() {
            // Phase stamps: home requests end the request-network phase at
            // the requester's transaction (keyed by src); data replies end
            // the reply-network phase at the destination's transaction.
            match msg.kind {
                MsgKind::GetS | MsgKind::GetX | MsgKind::Upgrade => {
                    self.profiler
                        .stamp(msg.src, msg.addr, PhaseBoundary::ReqDelivered, cur);
                }
                MsgKind::DataShared | MsgKind::DataExcl { .. } | MsgKind::UpgradeAck { .. } => {
                    self.profiler
                        .stamp(msg.dst, msg.addr, PhaseBoundary::ReplyDelivered, cur);
                }
                _ => {}
            }
        }
        self.tracer
            .emit(Category::Network, now, || Event::NetInject {
                src: msg.src,
                dst: msg.dst,
                line: msg.addr,
                msg: msg.kind.trace_label(),
                vnet: msg.vnet().idx() as u8,
                deliver_at: cur,
                span: msg.span,
            });
        self.in_flight.push(Reverse(InFlight {
            at: cur,
            seq: self.seq,
            msg,
        }));
        self.seq += 1;
    }

    /// Pop the next message whose arrival time is ≤ `now`, if any.
    ///
    /// With the retry layer armed this also services physical arrivals,
    /// acks and retransmit timers, so it must be polled as the clock
    /// advances even when no delivery is expected.
    pub fn pop_arrived(&mut self, now: Cycle) -> Option<Msg> {
        if self.llp.is_some() {
            return self.pop_arrived_llp(now);
        }
        if self.in_flight.peek().is_some_and(|Reverse(f)| f.at <= now) {
            let Reverse(f) = self.in_flight.pop()?;
            self.tracer
                .emit(Category::Network, f.at, || Event::NetDeliver {
                    src: f.msg.src,
                    dst: f.msg.dst,
                    line: f.msg.addr,
                    msg: f.msg.kind.trace_label(),
                    vnet: f.msg.vnet().idx() as u8,
                    span: f.msg.span,
                });
            Some(f.msg)
        } else {
            None
        }
    }

    /// Cycle at which the next in-flight message arrives (for idle skip).
    /// With the retry layer armed this also covers physical packets and
    /// retransmit timers (0 = a delivery is already queued).
    pub fn next_arrival(&self) -> Option<Cycle> {
        if let Some(llp) = &self.llp {
            return llp.next_event();
        }
        self.in_flight.peek().map(|Reverse(f)| f.at)
    }

    /// Number of logical messages injected but not yet delivered.
    pub fn in_flight_count(&self) -> usize {
        if let Some(llp) = &self.llp {
            return llp.logical_in_flight;
        }
        self.in_flight.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Cumulative serialization-busy cycles per directed link, indexed by
    /// `LinkId` (the interval sampler reads this for its hot-link column).
    pub fn link_busy(&self) -> &[u64] {
        &self.link_busy
    }

    /// The per-directed-link utilization matrix: one row per link in
    /// link-id order with topology-derived labels, links that saw no
    /// traffic omitted.
    pub fn link_heat(&self) -> Vec<LinkHeat> {
        (0..self.link_busy.len())
            .filter(|&l| self.link_msgs[l] != 0 || self.link_retx[l] != 0)
            .map(|l| LinkHeat {
                link: l,
                label: self.topo.link_label(l),
                busy: self.link_busy[l],
                msgs: self.link_msgs[l],
                bytes: self.link_bytes[l],
                retx: self.link_retx[l],
            })
            .collect()
    }

    // --- link-level retry path (armed by `set_faults`) ------------------

    /// Inject through the retry layer: assign the channel sequence number,
    /// buffer for retransmission, and launch the first physical copy.
    fn inject_llp(&mut self, now: Cycle, msg: Msg) {
        let mut llp = self.llp.take().expect("llp armed");
        let vnet = msg.vnet().idx();
        let key: ChanKey = (msg.src.0, msg.dst.0, vnet as u8);
        let chan = llp.channels.entry(key).or_default();
        if chan.next_send_seq == 0 && chan.next_deliver == 0 {
            // Fresh channel: fix its ack return latency (acks are small
            // control packets riding Spider's reliable sideband, so they
            // pay hop and header-serialization time but never fault and
            // never contend for data bandwidth).
            let links = u64::from(self.topo.hops(msg.src, msg.dst)) + 1;
            let header_ser = (self.header_bytes as f64 * self.cycles_per_byte).ceil() as u64;
            chan.ack_lat = links * self.hop_cycles + header_ser;
        }
        let seq = chan.next_send_seq;
        chan.next_send_seq += 1;
        let arrival = self.phys_transmit(&mut llp, now, key, seq, msg, now, false);
        llp.track_unacked(key, seq, msg, now, arrival.max(now));
        llp.logical_in_flight += 1;
        self.llp = Some(llp);
        self.stats.messages += 1;
        self.stats.per_vnet[vnet] += 1;
        self.tracer
            .emit(Category::Network, now, || Event::NetInject {
                src: msg.src,
                dst: msg.dst,
                line: msg.addr,
                msg: msg.kind.trace_label(),
                vnet: vnet as u8,
                deliver_at: arrival,
                span: msg.span,
            });
    }

    /// One physical transmission of `(key, seq)`: reserve route links for
    /// bandwidth, then roll the fault dice in a fixed order (delay, drop,
    /// corrupt, duplicate). Returns the (post-delay) nominal arrival cycle.
    ///
    /// Retransmissions (`retransmit == true`) use zero-load timing (no
    /// link reservation) and roll an independent fault stream: a retry is
    /// already a rare, timeout-delayed recovery, and keeping it off the
    /// shared link calendar and the first-transmission dice means the
    /// delivery-servicing path and the injection path never race for
    /// shared network state within a lookahead window.
    #[allow(clippy::too_many_arguments)]
    fn phys_transmit(
        &mut self,
        llp: &mut Llp,
        now: Cycle,
        key: ChanKey,
        seq: u64,
        msg: Msg,
        sent_at: Cycle,
        retransmit: bool,
    ) -> Cycle {
        let bytes = msg.wire_bytes(self.header_bytes);
        let ser = (bytes as f64 * self.cycles_per_byte).ceil() as u64;
        let mut cur = now;
        if retransmit {
            let links = u64::from(self.topo.hops(msg.src, msg.dst)) + 1;
            cur += links * (ser + self.hop_cycles);
            // Zero-load timing skips the link calendar, but the packet still
            // crosses every link on the dimension-order route: attribute the
            // traversal so the utilization matrix shows where retries burn
            // bandwidth.
            let mut route = std::mem::take(&mut self.route_buf);
            self.topo.route(msg.src, msg.dst, &mut route);
            for &l in &route {
                self.link_busy[l] += ser;
                self.link_msgs[l] += 1;
                self.link_bytes[l] += bytes;
                self.link_retx[l] += 1;
            }
            self.route_buf = route;
        } else {
            let mut route = std::mem::take(&mut self.route_buf);
            self.topo.route(msg.src, msg.dst, &mut route);
            for &l in &route {
                let start = cur.max(self.link_free[l]);
                self.link_free[l] = start + ser;
                cur = start + ser + self.hop_cycles;
                self.link_busy[l] += ser;
                self.link_msgs[l] += 1;
                self.link_bytes[l] += bytes;
            }
            self.route_buf = route;
        }
        self.stats.bytes += bytes;
        let f = llp.faults;
        let vnet = key.2;
        let fault_ev = |fault: LinkFaultClass| Event::LinkFault {
            src: msg.src,
            dst: msg.dst,
            line: msg.addr,
            msg: msg.kind.trace_label(),
            vnet,
            fault,
        };
        if llp.roll(retransmit, f.delay_per_million) {
            cur += llp.roll_magnitude(retransmit, f.max_delay_cycles);
            llp.counters.link_delays += 1;
            self.tracer
                .emit(Category::Fault, now, || fault_ev(LinkFaultClass::Delay));
        }
        if llp.roll(retransmit, f.drop_per_million) {
            llp.counters.link_drops += 1;
            self.tracer
                .emit(Category::Fault, now, || fault_ev(LinkFaultClass::Drop));
        } else {
            let corrupt = llp.roll(retransmit, f.corrupt_per_million);
            if corrupt {
                llp.counters.link_crc_errors += 1;
                self.tracer
                    .emit(Category::Fault, now, || fault_ev(LinkFaultClass::Corrupt));
            }
            llp.push_phys(
                cur,
                key,
                PhysBody::Data {
                    seq,
                    msg,
                    sent_at,
                    corrupt,
                },
            );
        }
        if llp.roll(retransmit, f.duplicate_per_million) {
            llp.counters.link_duplicates += 1;
            self.tracer
                .emit(Category::Fault, now, || fault_ev(LinkFaultClass::Duplicate));
            llp.push_phys(
                cur + self.hop_cycles,
                key,
                PhysBody::Data {
                    seq,
                    msg,
                    sent_at,
                    corrupt: false,
                },
            );
        }
        cur
    }

    /// Service physical arrivals, acks and retransmit timers up to `now`,
    /// then pop the next in-order delivery if one is queued.
    fn pop_arrived_llp(&mut self, now: Cycle) -> Option<Msg> {
        let mut llp = self.llp.take().expect("llp armed");
        while llp.phys.peek().is_some_and(|Reverse(p)| p.at <= now) {
            let Reverse(p) = llp.phys.pop().expect("peeked");
            match p.body {
                PhysBody::Ack { cum } => llp.receive_ack(p.key, cum),
                PhysBody::Data {
                    seq,
                    msg,
                    sent_at,
                    corrupt,
                } => {
                    if corrupt {
                        // CRC check fails at the receiving port; the
                        // sender's retransmit timer recovers the packet.
                        continue;
                    }
                    let (cum, ack_lat) = llp.receive_data(p.at, p.key, seq, msg, sent_at);
                    llp.push_phys(p.at + ack_lat, p.key, PhysBody::Ack { cum });
                }
            }
        }
        for (key, seq, msg, sent_at, attempts) in llp.take_expired(now) {
            llp.counters.link_retransmits += 1;
            self.tracer
                .emit(Category::Fault, now, || Event::LinkRetransmit {
                    src: msg.src,
                    dst: msg.dst,
                    vnet: key.2,
                    seq,
                    attempt: attempts,
                    span: msg.span,
                });
            self.phys_transmit(&mut llp, now, key, seq, msg, sent_at, true);
        }
        let out = llp.ready.pop_front();
        if out.is_some() {
            llp.logical_in_flight -= 1;
        }
        self.llp = Some(llp);
        let r = out?;
        let lat = r.delivered_at.saturating_sub(r.sent_at);
        self.stats.total_latency += lat;
        self.vnet_latency[r.msg.vnet().idx()].record(lat);
        if self.profiler.is_enabled() {
            match r.msg.kind {
                MsgKind::GetS | MsgKind::GetX | MsgKind::Upgrade => {
                    self.profiler.stamp(
                        r.msg.src,
                        r.msg.addr,
                        PhaseBoundary::ReqDelivered,
                        r.delivered_at,
                    );
                }
                MsgKind::DataShared | MsgKind::DataExcl { .. } | MsgKind::UpgradeAck { .. } => {
                    self.profiler.stamp(
                        r.msg.dst,
                        r.msg.addr,
                        PhaseBoundary::ReplyDelivered,
                        r.delivered_at,
                    );
                }
                _ => {}
            }
        }
        self.tracer
            .emit(Category::Network, r.delivered_at, || Event::NetDeliver {
                src: r.msg.src,
                dst: r.msg.dst,
                line: r.msg.addr,
                msg: r.msg.kind.trace_label(),
                vnet: r.msg.vnet().idx() as u8,
                span: r.msg.span,
            });
        Some(r.msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MsgKind;
    use smtp_types::{Addr, NodeId, Region};

    fn net(nodes: usize) -> Network {
        Network::new(nodes, 2.0, &NetParams::default())
    }

    fn m(kind: MsgKind, src: u16, dst: u16) -> Msg {
        Msg::new(
            kind,
            Addr::new(NodeId(dst), Region::AppData, 0x100).line(),
            NodeId(src),
            NodeId(dst),
        )
    }

    #[test]
    fn zero_load_latency_matches_envelope() {
        let mut n = net(2);
        // 16B header over 1 GB/s at 2 GHz = 32 cycles serialization per
        // link; 25 ns hop = 50 cycles. Two links (inject+eject, 1 router).
        n.inject(0, m(MsgKind::GetS, 0, 1));
        assert_eq!(n.next_arrival(), Some(2 * (32 + 50)));
        assert!(n.pop_arrived(100).is_none());
        assert!(n.pop_arrived(164).is_some());
        assert!(n.pop_arrived(10_000).is_none());
    }

    #[test]
    fn data_messages_pay_serialization() {
        let mut a = net(2);
        let mut b = net(2);
        a.inject(0, m(MsgKind::GetS, 0, 1));
        b.inject(0, m(MsgKind::DataShared, 0, 1));
        // 128-byte payload must arrive strictly later than a header-only
        // message injected at the same time.
        assert!(b.next_arrival().unwrap() > a.next_arrival().unwrap());
    }

    #[test]
    fn contention_serializes_shared_links() {
        let mut n = net(2);
        n.inject(0, m(MsgKind::DataShared, 0, 1));
        n.inject(0, m(MsgKind::DataShared, 0, 1));
        let t1 = {
            let msg1 = loop {
                if let Some(x) = n.pop_arrived(u64::MAX) {
                    break x;
                }
            };
            let _ = msg1;
            n.next_arrival().unwrap()
        };
        // Second message starts serializing only after the first clears the
        // injection link: strictly more than one serialization apart is not
        // required, but it must be later than the zero-load arrival.
        let zero_load = 2 * ((16 + 128) * 2 / 2 + 50); // loose lower bound
        assert!(t1 > zero_load as u64 / 2);
    }

    #[test]
    fn fifo_per_route() {
        let mut n = net(8);
        for _ in 0..10 {
            n.inject(0, m(MsgKind::GetS, 0, 7));
        }
        let mut last = 0;
        let mut count = 0;
        while let Some(_msg) = n.pop_arrived(u64::MAX) {
            count += 1;
            let _ = last;
            last += 1;
        }
        assert_eq!(count, 10);
        assert_eq!(n.in_flight_count(), 0);
    }

    #[test]
    fn farther_nodes_take_longer() {
        let mut n = net(16);
        n.inject(0, m(MsgKind::GetS, 0, 2)); // 1 dim away
        let near = n.next_arrival().unwrap();
        let mut n2 = net(16);
        n2.inject(0, m(MsgKind::GetS, 0, 15)); // 3 dims away
        let far = n2.next_arrival().unwrap();
        assert!(far > near);
    }

    #[test]
    fn llp_recovers_from_heavy_faults() {
        let mut n = net(4);
        let mut cfg = FaultConfig::chaos(0xBEEF);
        cfg.link.drop_per_million = 300_000;
        n.set_faults(&cfg);
        for i in 0..20u64 {
            n.inject(i * 10, m(MsgKind::GetS, 0, 1));
        }
        assert_eq!(n.in_flight_count(), 20);
        let (mut got, mut now) = (0, 0);
        while got < 20 && now < 1_000_000 {
            while n.pop_arrived(now).is_some() {
                got += 1;
            }
            now += 32;
        }
        assert_eq!(got, 20, "retry layer must deliver every message");
        assert_eq!(n.in_flight_count(), 0);
        assert_eq!(n.stats().messages, 20);
        let c = n.fault_counters();
        assert!(c.link_drops > 0, "30% drop rate must have fired");
        assert!(c.link_retransmits > 0, "drops must have forced retransmits");
    }

    #[test]
    fn faults_disabled_is_a_noop() {
        let mut a = net(2);
        let mut b = net(2);
        b.set_faults(&FaultConfig::default()); // disabled: must not arm LLP
        a.inject(0, m(MsgKind::GetS, 0, 1));
        b.inject(0, m(MsgKind::GetS, 0, 1));
        assert_eq!(a.next_arrival(), b.next_arrival());
        assert!(!b.fault_counters().any());
    }

    #[test]
    fn link_matrix_attributes_traffic() {
        let mut n = net(4);
        n.inject(0, m(MsgKind::GetS, 0, 1));
        let heat = n.link_heat();
        // Nodes 0 and 1 share router 0: inject link 0 and eject link 4+1,
        // nothing else.
        assert_eq!(heat.len(), 2);
        assert_eq!((heat[0].link, heat[0].label.as_str()), (0, "n0->r0"));
        assert_eq!((heat[1].link, heat[1].label.as_str()), (5, "r0->n1"));
        for h in &heat {
            assert_eq!(h.msgs, 1);
            assert_eq!(h.bytes, 16);
            assert_eq!(h.busy, 32); // 16B header at 1 GB/s, 2 GHz
            assert_eq!(h.retx, 0);
        }
        assert_eq!(n.link_busy().len(), n.topology().link_count());
    }

    #[test]
    fn link_matrix_attributes_retransmits() {
        let mut n = net(4);
        let mut cfg = FaultConfig::chaos(0xBEEF);
        cfg.link.drop_per_million = 300_000;
        n.set_faults(&cfg);
        for i in 0..20u64 {
            n.inject(i * 10, m(MsgKind::GetS, 0, 1));
        }
        let (mut got, mut now) = (0, 0);
        while got < 20 && now < 1_000_000 {
            while n.pop_arrived(now).is_some() {
                got += 1;
            }
            now += 32;
        }
        assert_eq!(got, 20);
        let retx_total: u64 = n.link_heat().iter().map(|h| h.retx).sum();
        // Every retransmission crosses the 2-link route exactly once.
        assert_eq!(retx_total, 2 * n.fault_counters().link_retransmits);
        assert!(retx_total > 0);
    }

    #[test]
    fn stats_accumulate() {
        let mut n = net(4);
        n.inject(0, m(MsgKind::GetS, 0, 1));
        n.inject(0, m(MsgKind::DataExcl { acks: 0 }, 1, 0));
        assert_eq!(n.stats().messages, 2);
        assert_eq!(n.stats().per_vnet[0], 1);
        assert_eq!(n.stats().per_vnet[2], 1);
        assert_eq!(n.stats().bytes, 16 + 16 + 128);
        assert!(n.stats().mean_latency() > 0.0);
    }
}
