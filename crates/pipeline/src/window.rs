//! Per-thread dynamic instruction state: the active list (reorder window),
//! the refetch buffer that recycles squashed instructions, and fetch-side
//! bookkeeping.

use crate::branch::ReturnAddressStack;
use smtp_isa::{Inst, RegClass};
use smtp_types::{Ctx, Cycle};
use std::collections::VecDeque;

/// One in-flight dynamic instruction.
#[derive(Clone, Debug)]
pub struct DynInst {
    /// The static instruction.
    pub inst: Inst,
    /// Per-thread program-order sequence number.
    pub seq: u64,
    /// Direction predicted at fetch (branches only).
    pub predicted_taken: bool,
    /// Renamed sources: `(class, physical register)`.
    pub src_phys: [Option<(RegClass, u16)>; 2],
    /// Renamed destination: `(class, physical, previous physical)`.
    pub dst_phys: Option<(RegClass, u16, u16)>,
    /// Logical destination index (for rollback).
    pub dst_logical: u8,
    /// Holds a branch-stack checkpoint until resolution.
    pub holds_ckpt: bool,
    /// Occupies a load/store queue slot.
    pub in_lsq: bool,
    /// Occupies a store-buffer slot (executed store awaiting drain).
    pub in_sb: bool,
    /// Occupies an issue-queue slot of the given class until issue.
    pub in_iq: Option<RegClass>,
    /// Has been issued to a functional unit / the cache.
    pub issued: bool,
    /// Memory access has been started (may still be waiting on a fill).
    pub mem_started: bool,
    /// Result availability time (`Cycle::MAX` until known).
    pub ready_at: Cycle,
    /// Branch has been resolved (trained, possibly squashed younger).
    pub resolved: bool,
}

impl DynInst {
    /// Wrap a fetched instruction.
    pub fn new(inst: Inst, seq: u64, predicted_taken: bool) -> DynInst {
        DynInst {
            inst,
            seq,
            predicted_taken,
            src_phys: [None, None],
            dst_phys: None,
            dst_logical: 0,
            holds_ckpt: false,
            in_lsq: false,
            in_sb: false,
            in_iq: None,
            issued: false,
            mem_started: false,
            ready_at: Cycle::MAX,
            resolved: false,
        }
    }

    /// Whether the result is available (retireable) at `now`.
    #[inline]
    pub fn completed(&self, now: Cycle) -> bool {
        self.issued && self.ready_at <= now
    }
}

/// Fetch/commit-side state of one hardware thread context.
#[derive(Clone, Debug)]
pub struct ThreadState {
    /// This context's identity.
    pub ctx: Ctx,
    /// The active list: renamed, uncommitted instructions in program order.
    pub window: VecDeque<DynInst>,
    /// Squashed instructions awaiting refetch, in program order. Drained
    /// before the instruction source is consulted, which also implements
    /// the paper's look-ahead-handler squash recovery for the protocol
    /// thread.
    pub refetch: VecDeque<(u64, Inst)>,
    /// One-instruction peek slot (an instruction pulled from the source but
    /// not yet accepted into the decode queue).
    pub peeked: Option<(u64, Inst)>,
    /// Next sequence number to assign.
    pub next_seq: u64,
    /// The thread's program has ended.
    pub halted: bool,
    /// Sequence of an in-flight serializing instruction blocking fetch.
    pub block_seq: Option<u64>,
    /// Fetch suppressed until this cycle (redirect/BTB penalties).
    pub fetch_stall_until: Cycle,
    /// An instruction-cache miss is outstanding.
    pub awaiting_ifetch: bool,
    /// Sequence numbers of not-yet-started memory operations, in order.
    pub mem_order: VecDeque<u64>,
    /// Return address stack.
    pub ras: ReturnAddressStack,
    /// Instructions currently in the decode/rename queues (ICOUNT input).
    pub frontend_count: usize,
    /// A `SyncStore` at the window head is mid-retirement.
    pub sync_store_started: bool,
}

impl ThreadState {
    /// Fresh state for a context.
    pub fn new(ctx: Ctx, ras_entries: usize) -> ThreadState {
        ThreadState {
            ctx,
            window: VecDeque::with_capacity(128),
            refetch: VecDeque::new(),
            peeked: None,
            next_seq: 0,
            halted: false,
            block_seq: None,
            fetch_stall_until: 0,
            awaiting_ifetch: false,
            mem_order: VecDeque::new(),
            ras: ReturnAddressStack::new(ras_entries),
            frontend_count: 0,
            sync_store_started: false,
        }
    }

    /// ICOUNT metric: instructions in flight from fetch to commit.
    #[inline]
    pub fn inflight(&self) -> usize {
        self.frontend_count + self.window.len()
    }

    /// Find a window instruction by sequence number (the window holds a
    /// contiguous sequence range).
    pub fn find(&self, seq: u64) -> Option<&DynInst> {
        let head = self.window.front()?.seq;
        let idx = seq.checked_sub(head)? as usize;
        self.window.get(idx)
    }

    /// Mutable [`ThreadState::find`].
    pub fn find_mut(&mut self, seq: u64) -> Option<&mut DynInst> {
        let head = self.window.front()?.seq;
        let idx = seq.checked_sub(head)? as usize;
        self.window.get_mut(idx)
    }

    /// Whether this thread has completely finished (program ended and every
    /// instruction committed).
    pub fn finished(&self) -> bool {
        self.halted
            && self.window.is_empty()
            && self.refetch.is_empty()
            && self.peeked.is_none()
            && self.frontend_count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtp_isa::Op;

    #[test]
    fn window_find_by_seq() {
        let mut t = ThreadState::new(Ctx(0), 32);
        for s in 10..15 {
            t.window
                .push_back(DynInst::new(Inst::new(Op::IntAlu, 0), s, false));
        }
        assert_eq!(t.find(12).unwrap().seq, 12);
        assert!(t.find(9).is_none());
        assert!(t.find(15).is_none());
        t.find_mut(14).unwrap().issued = true;
        assert!(t.window.back().unwrap().issued);
    }

    #[test]
    fn completion_requires_issue_and_time() {
        let mut d = DynInst::new(Inst::new(Op::IntAlu, 0), 0, false);
        assert!(!d.completed(100));
        d.issued = true;
        assert!(!d.completed(100));
        d.ready_at = 50;
        assert!(d.completed(100));
        assert!(!d.completed(49));
    }

    #[test]
    fn finished_requires_everything_drained() {
        let mut t = ThreadState::new(Ctx(1), 32);
        assert!(!t.finished());
        t.halted = true;
        assert!(t.finished());
        t.refetch.push_back((0, Inst::new(Op::IntAlu, 0)));
        assert!(!t.finished());
    }
}
