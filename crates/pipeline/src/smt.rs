//! The nine-stage out-of-order SMT pipeline with SMTp extensions.
//!
//! Per-cycle stage order (commit first so freed resources recycle within
//! the cycle, then back-to-front): resolve branches → commit → store-buffer
//! drain / issue → rename → decode → fetch. See the crate docs for the
//! SMTp-specific behaviour.

use crate::branch::{BranchPredictor, Btb};
use crate::env::PipeEnv;
use crate::regs::{RegFiles, RenameOutcome};
use crate::stats::PipeStats;
use crate::window::{DynInst, ThreadState};
use smtp_cache::{AccessOutcome, MemHierarchy};
use smtp_isa::{FuClass, Inst, Op, Reg, RegClass, SyncOp, SyncOutcome};
use smtp_trace::{Category, Event, Tracer};
use smtp_types::{app_code_addr, Addr, Ctx, Cycle, NodeId, PipelineParams, Region, MAX_CTX};
use std::collections::VecDeque;

const SEQ_MASK: u64 = 0x0FFF_FFFF;

/// Tag used by the head of the application store-buffer drain queue.
const APP_DRAIN_TAG: u32 = 0xD000_0000;
/// Tag used by the head of the protocol store drain queue.
const PROT_DRAIN_TAG: u32 = 0xE000_0000;

/// Encode a pipeline wake-up tag for the memory hierarchy.
fn make_tag(ctx: Ctx, seq: u64) -> u32 {
    ((ctx.0 as u32) << 28) | (seq & SEQ_MASK) as u32
}

fn split_tag(tag: u32) -> (Ctx, u64) {
    (Ctx((tag >> 28) as u8), (tag & SEQ_MASK as u32) as u64)
}

#[derive(Clone, Copy, Debug)]
struct Resolve {
    ctx: Ctx,
    seq: u64,
    at: Cycle,
}

#[derive(Clone, Debug)]
struct FrontEntry {
    ctx: Ctx,
    seq: u64,
    inst: Inst,
    predicted_taken: bool,
}

/// A two-section front-end queue: application instructions may use at most
/// `cap - reserve` slots; the protocol section may use all of them
/// (paper §2.2 — the queues keep separate logical head/tail pointers).
#[derive(Clone, Debug)]
struct FrontQueue {
    app: VecDeque<FrontEntry>,
    prot: VecDeque<FrontEntry>,
    cap: usize,
    reserve: usize,
}

impl FrontQueue {
    fn new(cap: usize, reserve: usize) -> FrontQueue {
        FrontQueue {
            app: VecDeque::with_capacity(cap),
            prot: VecDeque::with_capacity(cap),
            cap,
            reserve,
        }
    }

    fn total(&self) -> usize {
        self.app.len() + self.prot.len()
    }

    fn can_push(&self, ctx: Ctx) -> bool {
        if self.total() >= self.cap {
            return false;
        }
        ctx.is_protocol() || self.app.len() < self.cap - self.reserve
    }

    fn push(&mut self, e: FrontEntry) {
        debug_assert!(self.can_push(e.ctx));
        if e.ctx.is_protocol() {
            self.prot.push_back(e);
        } else {
            self.app.push_back(e);
        }
    }

    /// Remove (in order) all entries of one context — squash support.
    fn remove_ctx(&mut self, ctx: Ctx) -> Vec<(u64, Inst)> {
        let q = if ctx.is_protocol() {
            &mut self.prot
        } else {
            &mut self.app
        };
        let mut out = Vec::new();
        let mut kept = VecDeque::with_capacity(q.len());
        while let Some(e) = q.pop_front() {
            if e.ctx == ctx {
                out.push((e.seq, e.inst));
            } else {
                kept.push_back(e);
            }
        }
        *q = kept;
        out
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CommitOne {
    Committed,
    Blocked,
    Empty,
}

/// The SMT pipeline of one node.
#[derive(Debug)]
pub struct SmtPipeline {
    node: NodeId,
    p: PipelineParams,
    app_threads: usize,
    smtp: bool,
    reserve: usize,
    threads: Vec<ThreadState>,
    regs: RegFiles,
    pred: BranchPredictor,
    btb: Btb,
    decode_q: FrontQueue,
    rename_q: FrontQueue,
    iq_int: VecDeque<(Ctx, u64)>,
    iq_fp: VecDeque<(Ctx, u64)>,
    iq_int_used: usize,
    iq_fp_used: usize,
    lsq_used: usize,
    ckpt_used: usize,
    sb_used: usize,
    sb_drain_app: VecDeque<(Ctx, Addr)>,
    sb_drain_prot: VecDeque<Addr>,
    sb_drain_app_waiting: bool,
    sb_drain_prot_waiting: bool,
    resolving: Vec<Resolve>,
    rr_commit: usize,
    rr_mem: usize,
    drain_first: bool,
    stats: PipeStats,
    tracer: Tracer,
}

impl SmtPipeline {
    /// Build a pipeline for `node` with `app_threads` application contexts;
    /// `smtp` enables the protocol context and the resource reservations.
    pub fn new(node: NodeId, p: &PipelineParams, app_threads: usize, smtp: bool) -> SmtPipeline {
        let reserve = usize::from(smtp);
        let threads = (0..MAX_CTX)
            .map(|i| ThreadState::new(Ctx(i as u8), p.ras_entries))
            .collect();
        SmtPipeline {
            node,
            p: p.clone(),
            app_threads,
            smtp,
            reserve,
            threads,
            regs: RegFiles::new(
                p.int_regs(app_threads),
                p.fp_regs(app_threads),
                app_threads,
                reserve,
            ),
            pred: BranchPredictor::new(),
            btb: Btb::new(p.btb_sets, p.btb_ways),
            decode_q: FrontQueue::new(p.decode_queue, reserve),
            rename_q: FrontQueue::new(p.rename_queue, reserve),
            iq_int: VecDeque::new(),
            iq_fp: VecDeque::new(),
            iq_int_used: 0,
            iq_fp_used: 0,
            lsq_used: 0,
            ckpt_used: 0,
            sb_used: 0,
            sb_drain_app: VecDeque::new(),
            sb_drain_prot: VecDeque::new(),
            sb_drain_app_waiting: false,
            sb_drain_prot_waiting: false,
            resolving: Vec::new(),
            rr_commit: 0,
            rr_mem: 0,
            drain_first: false,
            stats: PipeStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attach the system tracer (events: `pipe_send`, `pipe_ldctxt`, and
    /// the sync events fired at `SyncStore` graduation).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Active contexts in commit priority order.
    fn active_ctxs(&self) -> Vec<Ctx> {
        let mut v: Vec<Ctx> = (0..self.app_threads).map(|i| Ctx(i as u8)).collect();
        if self.smtp {
            v.push(Ctx::protocol());
        }
        v
    }

    /// Whether every application thread has finished its program.
    pub fn finished(&self) -> bool {
        self.threads[..self.app_threads]
            .iter()
            .all(|t| t.finished())
    }

    /// Whether the protocol thread has no instructions in flight.
    pub fn protocol_quiesced(&self) -> bool {
        let t = &self.threads[Ctx::protocol().idx()];
        t.window.is_empty()
            && t.refetch.is_empty()
            && t.peeked.is_none()
            && t.frontend_count == 0
            && self.sb_drain_prot.is_empty()
    }

    /// Whether both store-buffer drain queues have fully written back. A
    /// thread can be [`SmtPipeline::finished`] (program ended, window
    /// committed) while its last stores still sit in the drain queue; each
    /// remaining entry is a real cache access on a future tick, so the
    /// node must not claim quiescence until the queues are empty.
    pub fn drains_quiesced(&self) -> bool {
        self.sb_drain_app.is_empty() && self.sb_drain_prot.is_empty()
    }

    /// Statistics so far.
    pub fn stats(&self) -> &PipeStats {
        &self.stats
    }

    /// Predictor statistics for a context: `(predictions, mispredictions)`.
    pub fn branch_stats(&self, ctx: Ctx) -> (u64, u64) {
        self.pred.stats(ctx)
    }

    /// A load miss completed: wake the waiting instruction.
    pub fn load_done(&mut self, tag: u32, at: Cycle) {
        let (ctx, mseq) = split_tag(tag);
        let th = &mut self.threads[ctx.idx()];
        // Find the (unique) window instruction with this masked sequence
        // still waiting on memory.
        let Some(head) = th.window.front().map(|d| d.seq) else {
            return;
        };
        let mut target = None;
        for d in th.window.iter_mut() {
            if d.seq & SEQ_MASK == mseq && d.mem_started && !d.issued && d.inst.is_load() {
                target = Some(d);
                break;
            }
        }
        let _ = head;
        if let Some(d) = target {
            d.issued = true;
            d.ready_at = at;
            if let Some((class, phys, _)) = d.dst_phys {
                self.regs.set_ready(class, phys, at);
            }
        }
        // Stale wake-ups for squashed instructions are ignored.
    }

    /// An instruction-cache miss completed for `ctx`.
    pub fn ifetch_done(&mut self, ctx: Ctx, _at: Cycle) {
        self.threads[ctx.idx()].awaiting_ifetch = false;
    }

    fn fetch_addr(&self, ctx: Ctx, pc: u32) -> Addr {
        if ctx.is_protocol() {
            Addr::new(self.node, Region::ProtocolCode, pc as u64 * 4)
        } else {
            app_code_addr(self.node, ctx.idx(), pc)
        }
    }

    /// Advance one cycle.
    pub fn tick(&mut self, now: Cycle, env: &mut dyn PipeEnv, mem: &mut MemHierarchy) {
        self.resolve_branches(now, env);
        self.commit(now, env, mem);
        self.issue(now, mem);
        self.rename(now);
        self.decode();
        self.fetch(now, env, mem);
        self.end_of_cycle_stats(now);
    }

    // ------------------------------ resolve ------------------------------

    fn resolve_branches(&mut self, now: Cycle, env: &mut dyn PipeEnv) {
        if self.resolving.is_empty() {
            return;
        }
        self.resolving
            .sort_unstable_by_key(|r| (r.at, r.ctx.0, r.seq));
        let (due, rest): (Vec<Resolve>, Vec<Resolve>) = std::mem::take(&mut self.resolving)
            .into_iter()
            .partition(|r| r.at <= now);
        self.resolving = rest;
        for r in due {
            self.resolve_one(r, now, env);
        }
    }

    fn resolve_one(&mut self, r: Resolve, now: Cycle, _env: &mut dyn PipeEnv) {
        let th = &mut self.threads[r.ctx.idx()];
        let Some(d) = th.find_mut(r.seq) else {
            return; // squashed
        };
        if d.resolved
            || !d.issued
            || d.ready_at != r.at
            || !d.inst.is_predicted_branch() && !matches!(d.inst.op, Op::Call { .. } | Op::Ret)
        {
            return; // stale entry (instruction was squashed and refetched)
        }
        d.resolved = true;
        if d.holds_ckpt {
            d.holds_ckpt = false;
            self.ckpt_used -= 1;
            if r.ctx.is_protocol() {
                self.stats.prot_branch_stack.sub(1);
            }
        }
        let (op, pc, predicted) = (d.inst.op, d.inst.pc, d.predicted_taken);
        match op {
            Op::Branch { taken, target } | Op::PBranch { taken, target } => {
                self.stats.branches[r.ctx.idx()] += 1;
                self.pred.train(r.ctx, pc, taken);
                if taken {
                    self.btb.insert(pc, target);
                }
                if predicted != taken {
                    self.stats.mispredicts[r.ctx.idx()] += 1;
                    self.pred.record_mispredict(r.ctx);
                    self.squash_after(r.ctx, r.seq, now);
                }
            }
            Op::Call { .. } | Op::Ret => {
                // RAS predictions are always correct in this model (squash
                // recovery restores the stack perfectly; see DESIGN.md).
            }
            _ => {}
        }
    }

    // ------------------------------ squash ------------------------------

    fn squash_after(&mut self, ctx: Ctx, bseq: u64, now: Cycle) {
        let is_prot = ctx.is_protocol();
        let mut squashed: Vec<(u64, Inst)> = Vec::new();
        {
            let th = &mut self.threads[ctx.idx()];
            while th.window.back().is_some_and(|d| d.seq > bseq) {
                let d = th.window.pop_back().expect("checked");
                squashed.push((d.seq, d.inst));
                if let Some((class, phys, prev)) = d.dst_phys {
                    self.regs.rollback(
                        ctx,
                        Reg {
                            class,
                            idx: d.dst_logical,
                        },
                        phys,
                        prev,
                    );
                }
                if d.holds_ckpt {
                    self.ckpt_used -= 1;
                    if is_prot {
                        self.stats.prot_branch_stack.sub(1);
                    }
                }
                if d.in_lsq {
                    self.lsq_used -= 1;
                    if is_prot {
                        self.stats.prot_lsq.sub(1);
                    }
                }
                if d.in_sb {
                    self.sb_used -= 1;
                }
                match d.in_iq {
                    Some(RegClass::Int) => {
                        self.iq_int_used -= 1;
                        if is_prot {
                            self.stats.prot_int_queue.sub(1);
                        }
                    }
                    Some(RegClass::Fp) => self.iq_fp_used -= 1,
                    None => {}
                }
                self.stats.squashed[ctx.idx()] += 1;
            }
            while th.mem_order.back().is_some_and(|&s| s > bseq) {
                th.mem_order.pop_back();
            }
        }
        if is_prot && !squashed.is_empty() {
            self.stats.protocol_squash_cycles += 1;
        }
        squashed.reverse();
        // Remove younger front-end entries; they are all younger than
        // anything in the window.
        let rq = self.rename_q.remove_ctx(ctx);
        let dq = self.decode_q.remove_ctx(ctx);
        let th = &mut self.threads[ctx.idx()];
        th.frontend_count -= rq.len() + dq.len();
        let peek = th.peeked.take();
        let old: Vec<(u64, Inst)> = th.refetch.drain(..).collect();
        th.refetch.extend(squashed);
        th.refetch.extend(rq);
        th.refetch.extend(dq);
        th.refetch.extend(peek);
        th.refetch.extend(old);
        if th.block_seq.is_some_and(|s| s > bseq) {
            th.block_seq = None;
        }
        if th.halted {
            // The squashed path re-fetches; the program end marker will be
            // produced again by the source replay if it was speculative.
            th.halted = th.refetch.is_empty() && th.peeked.is_none();
        }
        th.fetch_stall_until = now + self.p.redirect_penalty + 3; // front-end refill
    }

    // ------------------------------ commit ------------------------------

    fn commit(&mut self, now: Cycle, env: &mut dyn PipeEnv, mem: &mut MemHierarchy) {
        let active = self.active_ctxs();
        let n = active.len();
        let mut budget = self.p.commit_width;
        let mut committed_any = [false; MAX_CTX];
        'outer: while budget > 0 {
            let mut any = false;
            for k in 0..n {
                if budget == 0 {
                    break 'outer;
                }
                let ctx = active[(self.rr_commit + k) % n];
                match self.try_commit_one(ctx, now, env, mem) {
                    CommitOne::Committed => {
                        budget -= 1;
                        any = true;
                        committed_any[ctx.idx()] = true;
                    }
                    CommitOne::Blocked | CommitOne::Empty => {}
                }
            }
            if !any {
                break;
            }
        }
        self.rr_commit = (self.rr_commit + 1) % n;
        // Paper §4 time attribution (Figs. 5/7): every pre-finish cycle of
        // an application thread lands in exactly one bucket — busy, memory,
        // synchronization, squash recovery, fetch-starved or other.
        for (t, &committed) in committed_any.iter().enumerate().take(self.app_threads) {
            let th = &self.threads[t];
            if th.finished() {
                continue;
            }
            if committed {
                self.stats.busy_cycles[t] += 1;
                continue;
            }
            if let Some(h) = th.window.front() {
                if h.inst.is_mem() && !h.completed(now) {
                    self.stats.memory_stall[t] += 1;
                    continue;
                }
            }
            if th.block_seq.is_some() {
                self.stats.sync_stall[t] += 1;
            } else if th.fetch_stall_until > now {
                self.stats.squash_stall[t] += 1;
            } else if th.window.is_empty() && th.frontend_count == 0 && th.peeked.is_none() {
                self.stats.fetch_starved[t] += 1;
            } else {
                self.stats.other_stall[t] += 1;
            }
        }
    }

    fn try_commit_one(
        &mut self,
        ctx: Ctx,
        now: Cycle,
        env: &mut dyn PipeEnv,
        mem: &mut MemHierarchy,
    ) -> CommitOne {
        let is_prot = ctx.is_protocol();
        {
            let th = &self.threads[ctx.idx()];
            let Some(head) = th.window.front() else {
                return CommitOne::Empty;
            };
            if head.inst.is_nonspeculative() && !head.issued && !self.prepare_nonspec(ctx, now, mem)
            {
                return CommitOne::Blocked;
            }
        }
        // SyncBranch: resolve non-speculatively at graduation.
        {
            let th = &self.threads[ctx.idx()];
            let head = th.window.front().expect("checked above");
            if let Op::SyncBranch { cond } = head.inst.op {
                if head.completed(now) && !head.resolved {
                    let seq = head.seq;
                    let holds = head.holds_ckpt;
                    let satisfied = env.poll(self.node, ctx, cond);
                    env.sync_result(ctx, smtp_isa::SyncOutcome::Cond(satisfied));
                    if holds {
                        self.ckpt_used -= 1;
                        if ctx.is_protocol() {
                            self.stats.prot_branch_stack.sub(1);
                        }
                    }
                    let th = &mut self.threads[ctx.idx()];
                    if th.block_seq == Some(seq) {
                        th.block_seq = None;
                    }
                    let d = th.window.front_mut().expect("checked");
                    d.resolved = true;
                    d.holds_ckpt = false;
                }
            }
        }
        let th = &self.threads[ctx.idx()];
        let head = th.window.front().expect("checked above");
        if !head.completed(now) || (head.inst.is_branch() && !head.resolved) {
            return CommitOne::Blocked;
        }
        let d = self.threads[ctx.idx()].window.pop_front().expect("checked");
        // Graduation-time effects.
        match d.inst.op {
            Op::Send { msg_idx } => {
                let node = self.node;
                self.tracer
                    .emit(Category::Pipeline, now, || Event::PipeSend { node, ctx });
                env.send_graduated(msg_idx, now)
            }
            Op::Ldctxt => {
                let node = self.node;
                self.tracer
                    .emit(Category::Pipeline, now, || Event::PipeLdctxt { node, ctx });
                env.ldctxt_graduated(now)
            }
            Op::SyncStore { op, .. } => {
                let out = env.sync_store(self.node, ctx, op);
                self.trace_sync(ctx, op, out, now);
                env.sync_result(ctx, out);
                let th = &mut self.threads[ctx.idx()];
                if th.block_seq == Some(d.seq) {
                    th.block_seq = None;
                }
                th.sync_store_started = false;
            }
            _ => {}
        }
        if let Some((class, _phys, prev)) = d.dst_phys {
            self.regs.free_prev(ctx, class, prev);
        }
        if d.in_lsq {
            self.lsq_used -= 1;
            if is_prot {
                self.stats.prot_lsq.sub(1);
            }
        }
        if d.in_sb {
            // The store's slot stays allocated until it drains to the cache.
            if let Some(addr) = d.inst.mem_addr() {
                if matches!(d.inst.op, Op::PStore { .. }) {
                    self.sb_drain_prot.push_back(addr);
                } else {
                    self.sb_drain_app.push_back((ctx, addr));
                }
            }
        }
        self.stats.committed[ctx.idx()] += 1;
        CommitOne::Committed
    }

    /// Translate a graduated sync store's `(op, outcome)` pair into the
    /// observable sync event, if any. Lock attempts record win/lose;
    /// barrier arrivals record spin vs group completion (the last arrival).
    fn trace_sync(&self, ctx: Ctx, op: SyncOp, out: SyncOutcome, now: Cycle) {
        let node = self.node;
        let ev = match (op, out) {
            (SyncOp::LockAttempt(lock), SyncOutcome::Acquired) => {
                Some(Event::LockAcquire { node, ctx, lock })
            }
            (SyncOp::LockAttempt(lock), SyncOutcome::Failed) => {
                Some(Event::LockFail { node, ctx, lock })
            }
            (SyncOp::LockRelease(lock), _) => Some(Event::LockRelease { node, ctx, lock }),
            (SyncOp::BarrierArrive { bar, .. }, SyncOutcome::MustSpin { .. }) => {
                Some(Event::BarrierArrive { node, ctx, bar })
            }
            (SyncOp::BarrierArrive { bar, .. }, SyncOutcome::PropagateUp) => {
                Some(Event::BarrierComplete { node, ctx, bar })
            }
            _ => None,
        };
        if let Some(ev) = ev {
            self.tracer.emit(Category::Sync, now, || ev);
        }
    }

    /// Make a non-speculative head instruction executable. Returns `false`
    /// while it must keep waiting.
    fn prepare_nonspec(&mut self, ctx: Ctx, now: Cycle, mem: &mut MemHierarchy) -> bool {
        let sb_cap = self.p.store_buffer;
        let reserve = self.reserve;
        let sb_used = self.sb_used;
        let th = &mut self.threads[ctx.idx()];
        let d = th.window.front_mut().expect("caller checked");
        match d.inst.op {
            Op::Send { .. } | Op::Switch | Op::Ldctxt => {
                d.issued = true;
                d.ready_at = now;
                if let Some((class, phys, _)) = d.dst_phys {
                    self.regs.set_ready(class, phys, now);
                }
                true
            }
            Op::PStore { .. } => {
                // Protocol may use every store-buffer slot, including the
                // reserved one.
                if sb_used >= sb_cap {
                    return false;
                }
                self.sb_used += 1;
                d.in_sb = true;
                d.issued = true;
                d.ready_at = now + 1;
                true
            }
            Op::SyncStore { addr, .. } => {
                // Performed directly against the cache at graduation; the
                // semantic effect fires at commit. On a miss the store
                // joins the MSHR and a StoreDone wake-up finishes it.
                let _ = (th.sync_store_started, reserve);
                if d.mem_started {
                    return false; // joined an in-flight miss; wait
                }
                let seq = d.seq;
                match mem.store_retire(make_tag(ctx, seq), addr, now, false) {
                    AccessOutcome::Ready(at) => {
                        d.issued = true;
                        d.ready_at = at;
                        true
                    }
                    AccessOutcome::Pending => {
                        d.mem_started = true;
                        false
                    }
                    AccessOutcome::Blocked => false,
                }
            }
            _ => unreachable!("non-speculative op list out of sync"),
        }
    }

    // ------------------------------- issue -------------------------------

    fn srcs_ready(&self, d: &DynInst, now: Cycle) -> bool {
        d.src_phys.iter().all(|s| match s {
            Some((class, phys)) => self.regs.ready_at(*class, *phys) <= now,
            None => true,
        })
    }

    fn issue(&mut self, now: Cycle, mem: &mut MemHierarchy) {
        // Integer queue: ALUs minus the dedicated address-calculation unit.
        let alu_budget = self.p.alus - 1;
        self.issue_queue(RegClass::Int, alu_budget, now);
        self.issue_queue(RegClass::Fp, self.p.fpus, now);
        // One memory operation per cycle through the AGU + D-cache port,
        // shared with store-buffer drains (alternating priority).
        let mut port = 1usize;
        if self.drain_first {
            self.drain_app_stores(now, mem, &mut port);
            self.issue_mem(now, mem, &mut port);
        } else {
            self.issue_mem(now, mem, &mut port);
            self.drain_app_stores(now, mem, &mut port);
        }
        self.drain_first = !self.drain_first;
        // Protocol stores drain on their own path (deadlock avoidance: they
        // must never queue behind blocked application stores).
        self.drain_protocol_stores(now, mem);
    }

    fn issue_queue(&mut self, class: RegClass, budget: usize, now: Cycle) {
        let mut budget = budget;
        let len = match class {
            RegClass::Int => self.iq_int.len(),
            RegClass::Fp => self.iq_fp.len(),
        };
        let mut kept = VecDeque::with_capacity(len);
        for _ in 0..len {
            let (ctx, seq) = match class {
                RegClass::Int => self.iq_int.pop_front(),
                RegClass::Fp => self.iq_fp.pop_front(),
            }
            .expect("len checked");
            let lat = {
                let th = &self.threads[ctx.idx()];
                match th.find(seq) {
                    Some(d) if d.in_iq == Some(class) && !d.issued => {
                        if budget > 0 && self.srcs_ready(d, now) {
                            Some(d.inst.exec_latency(
                                self.p.int_mul_latency,
                                self.p.int_div_latency,
                                self.p.fp_mul_latency,
                                self.p.fp_div_latency,
                            ))
                        } else {
                            None
                        }
                    }
                    _ => {
                        continue; // squashed or stale: drop the entry
                    }
                }
            };
            match lat {
                Some(lat) => {
                    budget -= 1;
                    let is_prot = ctx.is_protocol();
                    let d = self.threads[ctx.idx()].find_mut(seq).expect("present");
                    d.issued = true;
                    d.in_iq = None;
                    // 2 operand-read stages + execution.
                    d.ready_at = now + 2 + lat;
                    let ready_at = d.ready_at;
                    let dst = d.dst_phys;
                    // SyncBranches resolve at commit instead (their outcome
                    // delivery must be non-speculative).
                    let is_branch =
                        d.inst.is_branch() && !matches!(d.inst.op, Op::SyncBranch { .. });
                    match class {
                        RegClass::Int => {
                            self.iq_int_used -= 1;
                            if is_prot {
                                self.stats.prot_int_queue.sub(1);
                            }
                        }
                        RegClass::Fp => self.iq_fp_used -= 1,
                    }
                    if let Some((c, phys, _)) = dst {
                        self.regs.set_ready(c, phys, ready_at);
                    }
                    if is_branch {
                        self.resolving.push(Resolve {
                            ctx,
                            seq,
                            at: ready_at,
                        });
                    }
                }
                None => kept.push_back((ctx, seq)),
            }
        }
        match class {
            RegClass::Int => {
                // preserve age order: kept entries go back in front order
                for e in kept.into_iter().rev() {
                    self.iq_int.push_front(e);
                }
            }
            RegClass::Fp => {
                for e in kept.into_iter().rev() {
                    self.iq_fp.push_front(e);
                }
            }
        }
    }

    fn issue_mem(&mut self, now: Cycle, mem: &mut MemHierarchy, port: &mut usize) {
        if *port == 0 {
            return;
        }
        let active = self.active_ctxs();
        let n = active.len();
        for k in 0..n {
            if *port == 0 {
                return;
            }
            let ctx = active[(self.rr_mem + k) % n];
            let Some(&mseq) = self.threads[ctx.idx()].mem_order.front() else {
                continue;
            };
            let (op, ready) = {
                let th = &self.threads[ctx.idx()];
                let d = th.find(mseq).expect("mem_order out of sync");
                (d.inst.op, self.srcs_ready(d, now))
            };
            if !ready {
                continue;
            }
            let is_prot_access = matches!(op, Op::PLoad { .. });
            match op {
                Op::Load { addr } | Op::SyncLoad { addr } | Op::PLoad { addr } => {
                    *port -= 1;
                    match mem.load(make_tag(ctx, mseq), addr, now, is_prot_access) {
                        AccessOutcome::Ready(at) => {
                            let d = self.threads[ctx.idx()].find_mut(mseq).expect("present");
                            d.issued = true;
                            d.mem_started = true;
                            d.ready_at = at;
                            if let Some((class, phys, _)) = d.dst_phys {
                                self.regs.set_ready(class, phys, at);
                            }
                            self.threads[ctx.idx()].mem_order.pop_front();
                        }
                        AccessOutcome::Pending => {
                            let d = self.threads[ctx.idx()].find_mut(mseq).expect("present");
                            d.mem_started = true;
                            self.threads[ctx.idx()].mem_order.pop_front();
                        }
                        AccessOutcome::Blocked => {
                            // Retry next cycle; the port attempt is spent.
                        }
                    }
                    self.rr_mem = (self.rr_mem + k + 1) % n;
                    return;
                }
                Op::Store { .. } => {
                    let cap = self.p.store_buffer - self.reserve;
                    if self.sb_used >= cap {
                        continue; // wait for a store-buffer slot
                    }
                    *port -= 1;
                    self.sb_used += 1;
                    let d = self.threads[ctx.idx()].find_mut(mseq).expect("present");
                    d.in_sb = true;
                    d.issued = true;
                    d.ready_at = now + 1;
                    self.threads[ctx.idx()].mem_order.pop_front();
                    self.rr_mem = (self.rr_mem + k + 1) % n;
                    return;
                }
                Op::Prefetch { addr, exclusive } => {
                    *port -= 1;
                    mem.prefetch(addr, exclusive, now);
                    let d = self.threads[ctx.idx()].find_mut(mseq).expect("present");
                    d.issued = true;
                    d.ready_at = now + 1;
                    self.threads[ctx.idx()].mem_order.pop_front();
                    self.rr_mem = (self.rr_mem + k + 1) % n;
                    return;
                }
                _ => unreachable!("non-speculative ops never enter mem_order"),
            }
        }
    }

    fn drain_app_stores(&mut self, now: Cycle, mem: &mut MemHierarchy, port: &mut usize) {
        if *port == 0 || self.sb_drain_app_waiting {
            return;
        }
        let Some(&(_, addr)) = self.sb_drain_app.front() else {
            return;
        };
        *port -= 1;
        match mem.store_retire(APP_DRAIN_TAG, addr, now, false) {
            AccessOutcome::Ready(_) => {
                self.sb_drain_app.pop_front();
                self.sb_used -= 1;
            }
            AccessOutcome::Pending => self.sb_drain_app_waiting = true,
            AccessOutcome::Blocked => {}
        }
    }

    fn drain_protocol_stores(&mut self, now: Cycle, mem: &mut MemHierarchy) {
        if self.sb_drain_prot_waiting {
            return;
        }
        let Some(&addr) = self.sb_drain_prot.front() else {
            return;
        };
        match mem.store_retire(PROT_DRAIN_TAG, addr, now, true) {
            AccessOutcome::Ready(_) => {
                self.sb_drain_prot.pop_front();
                self.sb_used -= 1;
            }
            AccessOutcome::Pending => self.sb_drain_prot_waiting = true,
            AccessOutcome::Blocked => {}
        }
    }

    /// A store that joined a miss resolved (see
    /// [`smtp_cache::MemEvent::StoreDone`]). `performed` means its data is
    /// in the line; otherwise it must retry (upgrade path).
    pub fn store_done(&mut self, tag: u32, at: Cycle, performed: bool) {
        if tag == APP_DRAIN_TAG {
            if performed {
                self.sb_drain_app.pop_front();
                self.sb_used -= 1;
            }
            self.sb_drain_app_waiting = false;
            return;
        }
        if tag == PROT_DRAIN_TAG {
            if performed {
                self.sb_drain_prot.pop_front();
                self.sb_used -= 1;
            }
            self.sb_drain_prot_waiting = false;
            return;
        }
        let (ctx, mseq) = split_tag(tag);
        let th = &mut self.threads[ctx.idx()];
        for d in th.window.iter_mut() {
            if d.seq & SEQ_MASK == mseq && d.mem_started && !d.issued && d.inst.is_store() {
                if performed {
                    d.issued = true;
                    d.ready_at = at;
                } else {
                    d.mem_started = false; // retry: upgrade will be issued
                }
                return;
            }
        }
        // Stale wake-up for a squashed instruction: ignored.
    }

    // ------------------------------- rename -------------------------------

    fn rename(&mut self, now: Cycle) {
        let mut budget = self.p.fetch_width; // 8-wide rename
                                             // Protocol section first (it is rarely occupied and must never be
                                             // blocked behind a stalled application instruction).
        while budget > 0 {
            let Some(e) = self.rename_q.prot.front().cloned() else {
                break;
            };
            if self.try_rename(&e, now) {
                self.rename_q.prot.pop_front();
                budget -= 1;
            } else {
                break;
            }
        }
        while budget > 0 {
            let Some(e) = self.rename_q.app.front().cloned() else {
                break;
            };
            if self.try_rename(&e, now) {
                self.rename_q.app.pop_front();
                budget -= 1;
            } else {
                break;
            }
        }
    }

    fn try_rename(&mut self, e: &FrontEntry, _now: Cycle) -> bool {
        let ctx = e.ctx;
        let is_prot = ctx.is_protocol();
        let inst = e.inst;
        let app_reserve = if is_prot { 0 } else { self.reserve };
        if self.threads[ctx.idx()].window.len() >= self.p.active_list {
            return false;
        }
        if inst.is_branch() && self.ckpt_used >= self.p.branch_stack - app_reserve {
            return false;
        }
        if inst.is_mem() {
            if self.lsq_used >= self.p.lsq - app_reserve {
                self.stats.lsq_full_stalls[ctx.idx()] += 1;
                return false;
            }
        } else {
            match inst.fu_class() {
                FuClass::IntAlu | FuClass::IntMulDiv => {
                    if self.iq_int_used >= self.p.int_queue - app_reserve {
                        self.stats.iq_full_stalls[ctx.idx()] += 1;
                        return false;
                    }
                }
                FuClass::Fpu => {
                    if self.iq_fp_used >= self.p.fp_queue {
                        self.stats.iq_full_stalls[ctx.idx()] += 1;
                        return false;
                    }
                }
                FuClass::Mem => unreachable!(),
            }
        }
        // Branches also occupy an integer-queue slot for resolution.
        if inst.is_branch() && self.iq_int_used >= self.p.int_queue - app_reserve {
            self.stats.iq_full_stalls[ctx.idx()] += 1;
            return false;
        }
        if let Some(dst) = inst.dst {
            if !self.regs.can_alloc(ctx, dst.class) {
                return false;
            }
        }
        // All checks passed: allocate.
        let mut d = DynInst::new(inst, e.seq, e.predicted_taken);
        for (i, s) in inst.srcs.iter().enumerate() {
            if let Some(r) = s {
                d.src_phys[i] = Some((r.class, self.regs.lookup(ctx, *r)));
            }
        }
        if let Some(dst) = inst.dst {
            match self.regs.rename(ctx, dst) {
                RenameOutcome::Ok { phys, prev } => {
                    d.dst_phys = Some((dst.class, phys, prev));
                    d.dst_logical = dst.idx;
                }
                RenameOutcome::Stall => unreachable!("can_alloc checked"),
            }
        }
        if inst.is_branch() {
            d.holds_ckpt = true;
            self.ckpt_used += 1;
            if is_prot {
                self.stats.prot_branch_stack.add(1);
            }
        }
        if inst.is_mem() {
            d.in_lsq = true;
            self.lsq_used += 1;
            if is_prot {
                self.stats.prot_lsq.add(1);
            }
            if !inst.is_nonspeculative() {
                self.threads[ctx.idx()].mem_order.push_back(e.seq);
            }
        }
        if !inst.is_mem() || inst.is_branch() {
            // Issue-queue entry (branches use the integer queue).
            let class = match inst.fu_class() {
                FuClass::Fpu => RegClass::Fp,
                _ => RegClass::Int,
            };
            if !inst.is_mem() || inst.is_branch() {
                match class {
                    RegClass::Int => {
                        self.iq_int_used += 1;
                        self.iq_int.push_back((ctx, e.seq));
                        if is_prot {
                            self.stats.prot_int_queue.add(1);
                        }
                    }
                    RegClass::Fp => {
                        self.iq_fp_used += 1;
                        self.iq_fp.push_back((ctx, e.seq));
                    }
                }
                d.in_iq = Some(class);
            }
        }
        // Instructions with no issue path (Nop/Halt-like, none in practice)
        // complete instantly.
        if d.in_iq.is_none() && !d.inst.is_mem() {
            d.issued = true;
            d.ready_at = _now;
        }
        let th = &mut self.threads[ctx.idx()];
        th.window.push_back(d);
        th.frontend_count -= 1;
        true
    }

    // ------------------------------- decode -------------------------------

    fn decode(&mut self) {
        let mut budget = self.p.fetch_width;
        while budget > 0 {
            let Some(e) = self.decode_q.prot.front() else {
                break;
            };
            if self.rename_q.can_push(e.ctx) {
                let e = self.decode_q.prot.pop_front().expect("checked");
                self.rename_q.push(e);
                budget -= 1;
            } else {
                break;
            }
        }
        while budget > 0 {
            let Some(e) = self.decode_q.app.front() else {
                break;
            };
            if self.rename_q.can_push(e.ctx) {
                let e = self.decode_q.app.pop_front().expect("checked");
                self.rename_q.push(e);
                budget -= 1;
            } else {
                break;
            }
        }
    }

    // ------------------------------- fetch -------------------------------

    fn peek_next(&mut self, ctx: Ctx, env: &mut dyn PipeEnv) -> Option<(u64, Inst)> {
        let th = &mut self.threads[ctx.idx()];
        if let Some(p) = th.peeked {
            return Some(p);
        }
        if let Some(e) = th.refetch.pop_front() {
            th.peeked = Some(e);
            return Some(e);
        }
        if th.halted {
            return None;
        }
        let inst = if ctx.is_protocol() {
            env.next_protocol_inst()?
        } else {
            env.next_app_inst(ctx)
        };
        let th = &mut self.threads[ctx.idx()];
        let seq = th.next_seq;
        th.next_seq += 1;
        th.peeked = Some((seq, inst));
        Some((seq, inst))
    }

    fn fetch(&mut self, now: Cycle, env: &mut dyn PipeEnv, mem: &mut MemHierarchy) {
        // ICOUNT: pick the fetchable threads with the fewest in-flight
        // instructions.
        let mut order: Vec<Ctx> = self
            .active_ctxs()
            .into_iter()
            .filter(|&c| {
                let th = &self.threads[c.idx()];
                th.block_seq.is_none() && th.fetch_stall_until <= now && !th.awaiting_ifetch
            })
            .collect();
        order.sort_by_key(|&c| self.threads[c.idx()].inflight());
        let mut budget = self.p.fetch_width;
        let mut taken_threads = 0;
        for ctx in order {
            if budget == 0 || taken_threads == self.p.fetch_threads {
                break;
            }
            let f = self.fetch_thread(ctx, budget, now, env, mem);
            if f > 0 {
                taken_threads += 1;
                budget -= f;
            }
        }
    }

    fn fetch_thread(
        &mut self,
        ctx: Ctx,
        budget: usize,
        now: Cycle,
        env: &mut dyn PipeEnv,
        mem: &mut MemHierarchy,
    ) -> usize {
        let Some((_, first)) = self.peek_next(ctx, env) else {
            return 0;
        };
        // Instruction-cache access for this bundle. Skipped while the
        // decode queue has no room: nothing could be delivered anyway, and
        // probing the I-cache every stalled cycle both inflates hit
        // statistics and keeps an otherwise-idle thread mutating state.
        if !matches!(first.op, Op::Halt) {
            if !self.decode_q.can_push(ctx) {
                return 0;
            }
            let addr = self.fetch_addr(ctx, first.pc);
            let is_prot = ctx.is_protocol();
            match mem.ifetch(ctx, addr, now, is_prot) {
                AccessOutcome::Ready(_) => {}
                AccessOutcome::Pending => {
                    self.threads[ctx.idx()].awaiting_ifetch = true;
                    return 0;
                }
                AccessOutcome::Blocked => return 0,
            }
        }
        let mut fetched = 0;
        while fetched < budget {
            let Some((seq, inst)) = self.peek_next(ctx, env) else {
                break;
            };
            if matches!(inst.op, Op::Halt) {
                let th = &mut self.threads[ctx.idx()];
                th.peeked = None;
                th.halted = true;
                break;
            }
            if !self.decode_q.can_push(ctx) {
                break; // stays in the peek slot
            }
            self.threads[ctx.idx()].peeked = None;
            let mut predicted_taken = false;
            let mut stop = false;
            match inst.op {
                Op::Branch { target, .. } | Op::PBranch { target, .. } => {
                    predicted_taken = self.pred.predict(ctx, inst.pc);
                    if predicted_taken {
                        if self.btb.lookup(inst.pc).is_none() {
                            self.btb.insert(inst.pc, target);
                            self.threads[ctx.idx()].fetch_stall_until = now + 2;
                        }
                        stop = true;
                    }
                }
                Op::Call { .. } => {
                    self.threads[ctx.idx()].ras.push(inst.pc + 1);
                    predicted_taken = true;
                    stop = true;
                }
                Op::Ret => {
                    self.threads[ctx.idx()].ras.pop();
                    predicted_taken = true;
                    stop = true;
                }
                Op::SyncBranch { .. } | Op::SyncStore { .. } => {
                    self.threads[ctx.idx()].block_seq = Some(seq);
                    stop = true;
                }
                _ => {}
            }
            self.decode_q.push(FrontEntry {
                ctx,
                seq,
                inst,
                predicted_taken,
            });
            let th = &mut self.threads[ctx.idx()];
            th.frontend_count += 1;
            self.stats.fetched[ctx.idx()] += 1;
            fetched += 1;
            if stop {
                break;
            }
        }
        fetched
    }

    // ------------------------------- stats -------------------------------

    fn end_of_cycle_stats(&mut self, now: Cycle) {
        self.stats.cycles = now + 1;
        let pt = &self.threads[Ctx::protocol().idx()];
        if !pt.window.is_empty()
            || !pt.refetch.is_empty()
            || pt.peeked.is_some()
            || pt.frontend_count > 0
        {
            self.stats.protocol_active_cycles += 1;
        }
        self.stats.prot_int_regs_peak = self.regs.protocol_int_regs_peak();
    }

    /// Register-file diagnostics.
    pub fn regs(&self) -> &RegFiles {
        &self.regs
    }

    // --------------------------- idle skipping ---------------------------

    /// Conservative stall certificate, evaluated right after `tick(now)`.
    ///
    /// Returns `Some(bound)` when every tick at cycles `now+1 .. bound-1`
    /// is provably a *pure stall tick*: no stage moves an instruction, no
    /// external call (`PipeEnv`, `MemHierarchy`) is made, and the only state
    /// changes are the per-cycle bookkeeping that [`SmtPipeline::skip_stalled`]
    /// applies in bulk (cycle counter, commit round-robin rotation, memory-port
    /// priority flip, per-thread stall buckets). `bound` may be `Cycle::MAX`
    /// when the pipeline is waiting purely on external wake-ups (cache fills,
    /// network deliveries); the caller clamps it with its own event horizon.
    ///
    /// Returns `None` when any context could do real work next cycle. The
    /// certificate must be *exact* about purity — the parallel engine's
    /// bit-equality with the serial oracle depends on it — so every blocked
    /// path that still mutates state (I-cache probes, stall-counter bumps,
    /// `store_retire` retries) rejects the skip.
    ///
    /// `prot_source_idle` tells the certificate whether the protocol
    /// instruction source (`PipeEnv::next_protocol_inst`) is guaranteed to
    /// return `None` without side effects (i.e. the dispatch unit is empty).
    pub fn frozen_until(&self, now: Cycle, prot_source_idle: bool) -> Option<Cycle> {
        let mut bound = Cycle::MAX;
        // Decode: a non-empty decode queue only stays put while the rename
        // queue has no room for its front entry.
        if let Some(e) = self.decode_q.prot.front() {
            if self.rename_q.can_push(e.ctx) {
                return None;
            }
        }
        if let Some(e) = self.decode_q.app.front() {
            if self.rename_q.can_push(e.ctx) {
                return None;
            }
        }
        // Rename: only a window-full front entry fails before any stall
        // counter is bumped; every other rejection path mutates statistics.
        if let Some(e) = self.rename_q.prot.front() {
            if self.threads[e.ctx.idx()].window.len() < self.p.active_list {
                return None;
            }
        }
        if let Some(e) = self.rename_q.app.front() {
            if self.threads[e.ctx.idx()].window.len() < self.p.active_list {
                return None;
            }
        }
        // Store-buffer drains retry the cache every cycle unless a drain
        // miss is outstanding.
        if !self.sb_drain_app.is_empty() && !self.sb_drain_app_waiting {
            return None;
        }
        if !self.sb_drain_prot.is_empty() && !self.sb_drain_prot_waiting {
            return None;
        }
        // Pending branch resolutions fire at their scheduled cycle.
        for r in &self.resolving {
            bound = bound.min(r.at);
        }
        // Issue queues: an entry issues as soon as its sources are ready.
        for &(ctx, seq) in self.iq_int.iter().chain(self.iq_fp.iter()) {
            let th = &self.threads[ctx.idx()];
            let Some(d) = th.find(seq) else { continue };
            if d.issued || d.in_iq.is_none() {
                continue; // stale entry: dropped for free on the next pass
            }
            bound = bound.min(self.srcs_ready_at(d));
        }
        for &ctx in &self.active_ctxs() {
            let th = &self.threads[ctx.idx()];
            // Memory issue: the head of the memory order issues when its
            // sources are ready — except a Store facing a full store
            // buffer, which waits (purely) for a drain.
            if let Some(&mseq) = th.mem_order.front() {
                let d = th.find(mseq).expect("mem_order out of sync");
                let ready_at = self.srcs_ready_at(d);
                if matches!(d.inst.op, Op::Store { .. })
                    && self.sb_used >= self.p.store_buffer - self.reserve
                {
                    // Blocked on a store-buffer slot; drains are inert.
                } else {
                    bound = bound.min(ready_at);
                }
            }
            // Fetch: the context must be either filtered out of the fetch
            // order or provably unable to deliver anything.
            if th.block_seq.is_some() || th.awaiting_ifetch {
                // Cleared by a commit or an I-fetch wake-up; both are
                // covered by other bounds.
            } else if th.fetch_stall_until > now {
                bound = bound.min(th.fetch_stall_until);
            } else if let Some((_, inst)) = th.peeked {
                if matches!(inst.op, Op::Halt) || self.decode_q.can_push(ctx) {
                    return None; // would halt the thread / deliver the bundle
                }
            } else if !th.refetch.is_empty() {
                return None; // would refill the peek slot
            } else if !(th.halted || ctx.is_protocol() && prot_source_idle) {
                return None; // would draw from the instruction source
            }
            // Commit: the head either commits, polls, or waits purely.
            if let Some(head) = th.window.front() {
                if head.inst.is_nonspeculative() && !head.issued {
                    match head.inst.op {
                        Op::PStore { .. } => {
                            if self.sb_used < self.p.store_buffer {
                                return None; // would allocate and issue
                            }
                        }
                        Op::SyncStore { .. } => {
                            if !head.mem_started {
                                return None; // would retry store_retire
                            }
                        }
                        _ => return None, // Send/Switch/Ldctxt prepare instantly
                    }
                } else if head.issued {
                    if head.ready_at <= now + 1 {
                        return None; // completes (commits or polls) next tick
                    }
                    bound = bound.min(head.ready_at);
                }
            }
        }
        if bound <= now + 1 {
            return None;
        }
        Some(bound)
    }

    /// Earliest cycle at which every source of `d` is ready.
    fn srcs_ready_at(&self, d: &DynInst) -> Cycle {
        d.src_phys.iter().fold(0, |acc, s| match s {
            Some((class, phys)) => acc.max(self.regs.ready_at(*class, *phys)),
            None => acc,
        })
    }

    /// Bulk-apply the per-cycle bookkeeping of the pure stall ticks at
    /// cycles `from .. to` (exclusive), exactly as if [`SmtPipeline::tick`]
    /// had run for each of them under a valid [`SmtPipeline::frozen_until`]
    /// certificate. The caller resumes real ticking at `to`.
    pub fn skip_stalled(&mut self, from: Cycle, to: Cycle) {
        debug_assert!(to > from);
        let skipped = to - from;
        let n = self.active_ctxs().len();
        self.rr_commit = (self.rr_commit + (skipped % n as u64) as usize) % n;
        if skipped % 2 == 1 {
            self.drain_first = !self.drain_first;
        }
        // Stall attribution: the per-cycle classification in `commit` is
        // constant across the frozen span (the certificate bounds every
        // condition it reads), so classify once and multiply.
        for t in 0..self.app_threads {
            let th = &self.threads[t];
            if th.finished() {
                continue;
            }
            let bucket = if th
                .window
                .front()
                .is_some_and(|h| h.inst.is_mem() && !h.completed(from))
            {
                &mut self.stats.memory_stall
            } else if th.block_seq.is_some() {
                &mut self.stats.sync_stall
            } else if th.fetch_stall_until > from {
                &mut self.stats.squash_stall
            } else if th.window.is_empty() && th.frontend_count == 0 && th.peeked.is_none() {
                &mut self.stats.fetch_starved
            } else {
                &mut self.stats.other_stall
            };
            bucket[t] += skipped;
        }
        let pt = &self.threads[Ctx::protocol().idx()];
        if !pt.window.is_empty()
            || !pt.refetch.is_empty()
            || pt.peeked.is_some()
            || pt.frontend_count > 0
        {
            self.stats.protocol_active_cycles += skipped;
        }
        self.stats.cycles = to;
    }

    /// Undo the per-cycle bookkeeping of ticks at cycles `from .. to`
    /// (exclusive) on a *fully quiescent* pipeline — the parallel engine's
    /// end-of-run fixup for epoch overshoot past the serial exit cycle.
    /// Quiescent ticks touch nothing but the cycle counter, the commit
    /// round-robin and the drain-priority flip, so those are rolled back.
    pub fn retract_idle(&mut self, from: Cycle, to: Cycle) {
        debug_assert!(to >= from);
        debug_assert!(self.finished() && self.protocol_quiesced());
        let over = to - from;
        let n = self.active_ctxs().len();
        let back = (over % n as u64) as usize;
        self.rr_commit = (self.rr_commit + n - back) % n;
        if over % 2 == 1 {
            self.drain_first = !self.drain_first;
        }
        self.stats.cycles = from;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtp_cache::MemHierarchy;
    use smtp_isa::source::FixedProgram;
    use smtp_isa::{InstSource, SyncCond, SyncOp, SyncOutcome};
    use smtp_types::{NodeId, PipelineParams};

    /// Minimal env: fixed programs per app thread, no protocol thread.
    struct TestEnv {
        progs: Vec<FixedProgram>,
        sends: Vec<u8>,
        ldctxts: u64,
    }

    impl TestEnv {
        fn new(progs: Vec<Vec<Inst>>) -> TestEnv {
            TestEnv {
                progs: progs.into_iter().map(FixedProgram::new).collect(),
                sends: Vec::new(),
                ldctxts: 0,
            }
        }
    }

    impl PipeEnv for TestEnv {
        fn next_app_inst(&mut self, ctx: Ctx) -> Inst {
            self.progs[ctx.idx()].next_inst()
        }
        fn next_protocol_inst(&mut self) -> Option<Inst> {
            None
        }
        fn poll(&mut self, _n: NodeId, _c: Ctx, cond: SyncCond) -> bool {
            matches!(cond, SyncCond::LockFree(_))
        }
        fn sync_store(&mut self, _n: NodeId, _c: Ctx, _op: SyncOp) -> SyncOutcome {
            SyncOutcome::Done
        }
        fn sync_result(&mut self, ctx: Ctx, outcome: SyncOutcome) {
            if let Some(p) = self.progs.get_mut(ctx.idx()) {
                p.sync_result(outcome)
            }
        }
        fn send_graduated(&mut self, msg_idx: u8, _now: Cycle) {
            self.sends.push(msg_idx);
        }
        fn ldctxt_graduated(&mut self, _now: Cycle) {
            self.ldctxts += 1;
        }
    }

    fn addr(off: u64) -> Addr {
        Addr::new(NodeId(0), Region::AppData, off)
    }

    fn run(
        pipe: &mut SmtPipeline,
        env: &mut TestEnv,
        mem: &mut MemHierarchy,
        max_cycles: u64,
    ) -> u64 {
        for now in 0..max_cycles {
            // Deliver hierarchy wake-ups the way the node would.
            while let Some(ev) = mem.pop_event() {
                use smtp_cache::MemEvent::*;
                match ev {
                    LoadDone { tag, at } => pipe.load_done(tag, at),
                    StoreDone { tag, at, performed } => pipe.store_done(tag, at, performed),
                    IFetchDone { ctx, at } => pipe.ifetch_done(ctx, at),
                    AppMiss { line, .. } | CodeFetch { line, .. } | ProtocolFetch { line, .. } => {
                        // Instant local memory in these unit tests.
                        mem.fill(line, smtp_cache::Grant::Excl { acks: 0 }, now + 20);
                    }
                    _ => {}
                }
            }
            pipe.tick(now, env, mem);
            if pipe.finished() {
                return now;
            }
        }
        panic!("pipeline did not finish in {max_cycles} cycles");
    }

    fn straight_line(n: usize) -> Vec<Inst> {
        (0..n)
            .map(|i| {
                Inst::new(Op::IntAlu, i as u32)
                    .with_srcs(Some(Reg::int(((i) % 8) as u8)), None)
                    .with_dst(Reg::int(((i + 1) % 8) as u8))
            })
            .collect()
    }

    fn pipeline(app_threads: usize, smtp: bool) -> (SmtPipeline, MemHierarchy) {
        let p = PipelineParams::default();
        (
            SmtPipeline::new(NodeId(0), &p, app_threads, smtp),
            MemHierarchy::new(NodeId(0), &p, smtp),
        )
    }

    #[test]
    fn straight_line_code_commits_all() {
        let (mut pipe, mut mem) = pipeline(1, false);
        let mut env = TestEnv::new(vec![straight_line(200)]);
        run(&mut pipe, &mut env, &mut mem, 5000);
        assert_eq!(pipe.stats().committed[0], 200);
        assert_eq!(pipe.stats().squashed[0], 0);
    }

    #[test]
    fn two_threads_share_the_pipeline() {
        let (mut pipe, mut mem) = pipeline(2, false);
        let mut env = TestEnv::new(vec![straight_line(150), straight_line(150)]);
        run(&mut pipe, &mut env, &mut mem, 5000);
        assert_eq!(pipe.stats().committed[0], 150);
        assert_eq!(pipe.stats().committed[1], 150);
    }

    #[test]
    fn loads_and_stores_flow_through_the_cache() {
        let prog: Vec<Inst> = (0..50)
            .flat_map(|i| {
                [
                    Inst::new(
                        Op::Load {
                            addr: addr(0x1000 + i * 8),
                        },
                        (i * 2) as u32,
                    )
                    .with_dst(Reg::int(1)),
                    Inst::new(
                        Op::Store {
                            addr: addr(0x8000 + i * 8),
                        },
                        (i * 2 + 1) as u32,
                    )
                    .with_srcs(Some(Reg::int(1)), None),
                ]
            })
            .collect();
        let (mut pipe, mut mem) = pipeline(1, false);
        let mut env = TestEnv::new(vec![prog]);
        run(&mut pipe, &mut env, &mut mem, 20_000);
        assert_eq!(pipe.stats().committed[0], 100);
    }

    #[test]
    fn taken_loop_branch_trains_and_commits() {
        // A 10-iteration loop: body of 3 ALU ops + backward branch.
        let mut prog = Vec::new();
        for i in 0..10 {
            for b in 0..3 {
                prog.push(
                    Inst::new(Op::IntAlu, b)
                        .with_srcs(Some(Reg::int(b as u8)), None)
                        .with_dst(Reg::int(b as u8 + 1)),
                );
            }
            prog.push(Inst::new(
                Op::Branch {
                    taken: i != 9,
                    target: 0,
                },
                3,
            ));
        }
        let (mut pipe, mut mem) = pipeline(1, false);
        let mut env = TestEnv::new(vec![prog]);
        run(&mut pipe, &mut env, &mut mem, 5000);
        assert_eq!(pipe.stats().committed[0], 40);
        assert_eq!(pipe.stats().branches[0], 10);
        // At least the final not-taken iteration usually mispredicts, but
        // every squashed instruction must have been refetched and committed.
    }

    #[test]
    fn misprediction_squashes_and_refetches() {
        // Alternating branch directions at one PC defeat the predictor
        // often enough to exercise squash/refetch.
        let mut prog = Vec::new();
        for i in 0..40 {
            prog.push(
                Inst::new(Op::IntAlu, 0)
                    .with_srcs(Some(Reg::int(0)), None)
                    .with_dst(Reg::int(1)),
            );
            prog.push(Inst::new(
                Op::Branch {
                    taken: i % 2 == 0,
                    target: 0,
                },
                1,
            ));
            prog.push(
                Inst::new(Op::IntAlu, 2)
                    .with_srcs(Some(Reg::int(1)), None)
                    .with_dst(Reg::int(2)),
            );
        }
        let (mut pipe, mut mem) = pipeline(1, false);
        let mut env = TestEnv::new(vec![prog]);
        run(&mut pipe, &mut env, &mut mem, 20_000);
        assert_eq!(pipe.stats().committed[0], 120);
        assert!(pipe.stats().mispredicts[0] > 0, "no mispredictions seen");
        assert!(pipe.stats().squashed[0] > 0, "no squashes seen");
    }

    #[test]
    fn sync_branch_serializes_and_resolves() {
        let prog = vec![
            Inst::new(Op::SyncLoad { addr: addr(0x40) }, 0).with_dst(Reg::int(1)),
            Inst::new(
                Op::SyncBranch {
                    cond: SyncCond::LockFree(0),
                },
                1,
            )
            .with_srcs(Some(Reg::int(1)), None),
            Inst::new(Op::IntAlu, 2).with_dst(Reg::int(2)),
        ];
        let (mut pipe, mut mem) = pipeline(1, false);
        let mut env = TestEnv::new(vec![prog]);
        run(&mut pipe, &mut env, &mut mem, 5000);
        assert_eq!(pipe.stats().committed[0], 3);
        assert_eq!(env.progs[0].outcomes, vec![SyncOutcome::Cond(true)]);
    }

    #[test]
    fn sync_store_fires_semantics_at_graduation() {
        let prog = vec![
            Inst::new(
                Op::SyncStore {
                    addr: addr(0x80),
                    op: SyncOp::LockRelease(3),
                },
                0,
            ),
            Inst::new(Op::IntAlu, 1).with_dst(Reg::int(1)),
        ];
        let (mut pipe, mut mem) = pipeline(1, false);
        let mut env = TestEnv::new(vec![prog]);
        run(&mut pipe, &mut env, &mut mem, 10_000);
        assert_eq!(pipe.stats().committed[0], 2);
        assert_eq!(env.progs[0].outcomes, vec![SyncOutcome::Done]);
    }

    #[test]
    fn fp_ops_use_fp_queue() {
        let prog: Vec<Inst> = (0..60)
            .map(|i| {
                Inst::new(Op::FpMul, i as u32)
                    .with_srcs(Some(Reg::fp(3)), Some(Reg::fp(2)))
                    .with_dst(Reg::fp(3))
            })
            .collect();
        let (mut pipe, mut mem) = pipeline(1, false);
        let mut env = TestEnv::new(vec![prog]);
        let cycles = run(&mut pipe, &mut env, &mut mem, 5000);
        assert_eq!(pipe.stats().committed[0], 60);
        // Dependent chain: roughly one per 3 cycles minimum.
        assert!(cycles > 60, "dependent FP chain finished implausibly fast");
    }

    #[test]
    fn prefetches_commit_without_registers() {
        let prog: Vec<Inst> = (0..20)
            .map(|i| {
                Inst::new(
                    Op::Prefetch {
                        addr: addr(0x10000 + i * 128),
                        exclusive: i % 2 == 0,
                    },
                    i as u32,
                )
            })
            .collect();
        let (mut pipe, mut mem) = pipeline(1, false);
        let mut env = TestEnv::new(vec![prog]);
        run(&mut pipe, &mut env, &mut mem, 5000);
        assert_eq!(pipe.stats().committed[0], 20);
    }

    #[test]
    fn memory_stall_accounting_counts_miss_cycles() {
        // One load to a cold line: the fill takes ~20 cycles in the test
        // harness, during which the head is a memory op.
        let prog = vec![
            Inst::new(Op::Load { addr: addr(0x5000) }, 0).with_dst(Reg::int(1)),
            Inst::new(Op::IntAlu, 1)
                .with_srcs(Some(Reg::int(1)), None)
                .with_dst(Reg::int(2)),
        ];
        let (mut pipe, mut mem) = pipeline(1, false);
        let mut env = TestEnv::new(vec![prog]);
        run(&mut pipe, &mut env, &mut mem, 5000);
        assert!(pipe.stats().memory_stall[0] > 0);
    }

    #[test]
    fn icount_shares_fetch_roughly_fairly() {
        let (mut pipe, mut mem) = pipeline(2, false);
        let mut env = TestEnv::new(vec![straight_line(400), straight_line(400)]);
        run(&mut pipe, &mut env, &mut mem, 20_000);
        let f0 = pipe.stats().fetched[0] as f64;
        let f1 = pipe.stats().fetched[1] as f64;
        assert!(
            (f0 / f1 - 1.0).abs() < 0.3,
            "ICOUNT unfair: {f0} vs {f1} fetches"
        );
    }

    #[test]
    fn protocol_context_inactive_without_smtp() {
        let (mut pipe, mut mem) = pipeline(1, false);
        let mut env = TestEnv::new(vec![straight_line(50)]);
        run(&mut pipe, &mut env, &mut mem, 5000);
        assert_eq!(pipe.stats().committed[Ctx::protocol().idx()], 0);
        assert_eq!(pipe.stats().protocol_active_cycles, 0);
    }

    /// Env that runs one protocol handler program alongside an app thread.
    struct ProtEnv {
        app: FixedProgram,
        handler: Vec<Inst>,
        pos: usize,
        dispatched: bool,
        sends: Vec<u8>,
        ldctxts: u64,
    }

    impl PipeEnv for ProtEnv {
        fn next_app_inst(&mut self, _ctx: Ctx) -> Inst {
            use smtp_isa::InstSource;
            self.app.next_inst()
        }
        fn next_protocol_inst(&mut self) -> Option<Inst> {
            if !self.dispatched || self.pos >= self.handler.len() {
                return None;
            }
            let i = self.handler[self.pos];
            self.pos += 1;
            Some(i)
        }
        fn poll(&mut self, _n: NodeId, _c: Ctx, _cond: smtp_isa::SyncCond) -> bool {
            true
        }
        fn sync_store(
            &mut self,
            _n: NodeId,
            _c: Ctx,
            _op: smtp_isa::SyncOp,
        ) -> smtp_isa::SyncOutcome {
            smtp_isa::SyncOutcome::Done
        }
        fn sync_result(&mut self, _ctx: Ctx, _o: smtp_isa::SyncOutcome) {}
        fn send_graduated(&mut self, msg_idx: u8, _now: Cycle) {
            self.sends.push(msg_idx);
        }
        fn ldctxt_graduated(&mut self, _now: Cycle) {
            self.ldctxts += 1;
        }
    }

    #[test]
    fn protocol_thread_executes_a_handler_to_graduation() {
        let p = PipelineParams::default();
        let mut pipe = SmtPipeline::new(NodeId(0), &p, 1, true);
        let mut mem = MemHierarchy::new(NodeId(0), &p, true);
        let dir = Addr::new(NodeId(0), Region::Directory, 0x40);
        let handler = vec![
            Inst::new(Op::PLoad { addr: dir }, 0).with_dst(Reg::int(1)),
            Inst::new(Op::PAlu, 8)
                .with_srcs(Some(Reg::int(1)), None)
                .with_dst(Reg::int(3)),
            Inst::new(Op::Send { msg_idx: 0 }, 9).with_srcs(Some(Reg::int(3)), None),
            Inst::new(Op::PStore { addr: dir }, 10).with_srcs(Some(Reg::int(3)), None),
            Inst::new(Op::Switch, 11).with_dst(Reg::int(6)),
            Inst::new(Op::Ldctxt, 12).with_dst(Reg::int(2)),
        ];
        let mut env = ProtEnv {
            app: FixedProgram::new(straight_line(40)),
            handler,
            pos: 0,
            dispatched: true,
            sends: Vec::new(),
            ldctxts: 0,
        };
        for now in 0..20_000 {
            while let Some(ev) = mem.pop_event() {
                use smtp_cache::MemEvent::*;
                match ev {
                    LoadDone { tag, at } => pipe.load_done(tag, at),
                    IFetchDone { ctx, at } => pipe.ifetch_done(ctx, at),
                    AppMiss { line, .. } | CodeFetch { line, .. } | ProtocolFetch { line, .. } => {
                        mem.fill(line, smtp_cache::Grant::Excl { acks: 0 }, now + 20);
                    }
                    _ => {}
                }
            }
            pipe.tick(now, &mut env, &mut mem);
            if env.ldctxts == 1 && pipe.finished() {
                break;
            }
        }
        assert_eq!(env.ldctxts, 1, "handler did not graduate");
        assert_eq!(env.sends, vec![0], "send did not fire at graduation");
        assert_eq!(pipe.stats().committed[Ctx::protocol().idx()], 6);
        assert!(pipe.stats().protocol_active_cycles > 0);
        assert!(
            pipe.stats().prot_lsq.peak() >= 3,
            "PLoad/PStore/switch/ldctxt occupy LSQ"
        );
    }

    #[test]
    fn finished_requires_all_threads() {
        let (mut pipe, mut mem) = pipeline(2, false);
        let mut env = TestEnv::new(vec![straight_line(5), straight_line(500)]);
        // Run a few cycles: thread 0 finishes early, pipeline not finished.
        for now in 0..40 {
            while let Some(ev) = mem.pop_event() {
                if let smtp_cache::MemEvent::IFetchDone { ctx, at } = ev {
                    pipe.ifetch_done(ctx, at);
                } else if let smtp_cache::MemEvent::CodeFetch { line, .. } = ev {
                    mem.fill(line, smtp_cache::Grant::Excl { acks: 0 }, now + 5);
                }
            }
            pipe.tick(now, &mut env, &mut mem);
        }
        assert!(!pipe.finished());
    }

    /// A thread can be `finished()` while its last committed stores are
    /// still queued for drain to the cache — those drains are real cache
    /// accesses on future ticks, so quiescence must wait for them. (The
    /// 64-node engine divergence came from exactly this gap.)
    #[test]
    fn drains_block_quiescence() {
        let (mut pipe, _mem) = pipeline(1, false);
        assert!(pipe.drains_quiesced());
        pipe.sb_drain_app
            .push_back((Ctx(0), smtp_types::Addr(0x40)));
        assert!(!pipe.drains_quiesced());
        pipe.sb_drain_app.clear();
        pipe.sb_drain_prot.push_back(smtp_types::Addr(0x80));
        assert!(!pipe.drains_quiesced());
        pipe.sb_drain_prot.clear();
        assert!(pipe.drains_quiesced());
    }
}
