//! Physical register files, rename map tables and free lists, with the
//! SMTp integer-register reservation.
//!
//! Sizing follows paper §3: `32 × (app_threads + 1) + 96` physical
//! registers per class. The protocol boot sequence initializes all 32
//! protocol logical registers so they stay mapped forever; together with a
//! single reserved free register this guarantees handler forward progress
//! (§2.2): the protocol instruction taking the reserved register always
//! frees its previous mapping at graduation.

use smtp_isa::{Reg, RegClass};
use smtp_types::{Ctx, Cycle, MAX_CTX};

/// Outcome of a rename attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RenameOutcome {
    /// Renamed; destination physical register and the previous mapping.
    Ok {
        /// Newly allocated physical register.
        phys: u16,
        /// Previous mapping of the logical destination (freed at commit).
        prev: u16,
    },
    /// No physical register available to this requester class.
    Stall,
}

/// One register class's physical file: map tables, free list, ready times.
#[derive(Clone, Debug)]
struct ClassFile {
    map: Vec<[u16; 32]>,
    free: Vec<u16>,
    ready_at: Vec<Cycle>,
    reserve: usize,
    in_use_by_protocol: u64,
    peak_protocol: u64,
}

impl ClassFile {
    fn new(total: usize, app_threads: usize, reserve: usize) -> ClassFile {
        assert!(
            total >= 32 * (app_threads + 1),
            "not enough registers for map tables"
        );
        let mut free: Vec<u16> = (0..total as u16).collect();
        // Map 32 logical registers per active context: application threads
        // at indices 0..app_threads, plus the protocol context (whose boot
        // sequence initializes all its logical registers, §2.2) at the last
        // index. Inactive contexts keep poisoned maps.
        let mut map = vec![[u16::MAX; 32]; MAX_CTX];
        for idx in (0..app_threads).chain([Ctx::PROTOCOL.idx()]) {
            for slot in map[idx].iter_mut() {
                *slot = free.pop().expect("sizing checked");
            }
        }
        ClassFile {
            map,
            free,
            ready_at: vec![0; total],
            reserve,
            in_use_by_protocol: 0,
            peak_protocol: 0,
        }
    }

    fn can_alloc(&self, is_protocol: bool) -> bool {
        if is_protocol {
            !self.free.is_empty()
        } else {
            self.free.len() > self.reserve
        }
    }

    fn alloc(&mut self, ctx: Ctx, logical: u8) -> RenameOutcome {
        let is_protocol = ctx.is_protocol();
        if !self.can_alloc(is_protocol) {
            return RenameOutcome::Stall;
        }
        let phys = self.free.pop().expect("can_alloc checked");
        let prev = self.map[ctx.idx()][logical as usize];
        self.map[ctx.idx()][logical as usize] = phys;
        self.ready_at[phys as usize] = Cycle::MAX;
        if is_protocol {
            self.in_use_by_protocol += 1;
            self.peak_protocol = self.peak_protocol.max(self.protocol_regs());
        }
        RenameOutcome::Ok { phys, prev }
    }

    fn protocol_regs(&self) -> u64 {
        32 + self.in_use_by_protocol
    }
}

/// Both register classes for one pipeline.
#[derive(Clone, Debug)]
pub struct RegFiles {
    int: ClassFile,
    fp: ClassFile,
}

impl RegFiles {
    /// Build files for `app_threads` application contexts plus the protocol
    /// context; `reserve_int` is 1 under SMTp (0 otherwise).
    pub fn new(total_int: usize, total_fp: usize, app_threads: usize, reserve_int: usize) -> Self {
        RegFiles {
            int: ClassFile::new(total_int, app_threads, reserve_int),
            fp: ClassFile::new(total_fp, app_threads, 0),
        }
    }

    fn class(&self, c: RegClass) -> &ClassFile {
        match c {
            RegClass::Int => &self.int,
            RegClass::Fp => &self.fp,
        }
    }

    fn class_mut(&mut self, c: RegClass) -> &mut ClassFile {
        match c {
            RegClass::Int => &mut self.int,
            RegClass::Fp => &mut self.fp,
        }
    }

    /// Current physical mapping of a logical source register.
    pub fn lookup(&self, ctx: Ctx, r: Reg) -> u16 {
        self.class(r.class).map[ctx.idx()][r.idx as usize]
    }

    /// Whether a destination of class `c` could be renamed right now.
    pub fn can_alloc(&self, ctx: Ctx, c: RegClass) -> bool {
        self.class(c).can_alloc(ctx.is_protocol())
    }

    /// Rename a destination register.
    pub fn rename(&mut self, ctx: Ctx, r: Reg) -> RenameOutcome {
        self.class_mut(r.class).alloc(ctx, r.idx)
    }

    /// Mark a physical register's value available at `at`.
    pub fn set_ready(&mut self, c: RegClass, phys: u16, at: Cycle) {
        self.class_mut(c).ready_at[phys as usize] = at;
    }

    /// When a physical register's value becomes available.
    pub fn ready_at(&self, c: RegClass, phys: u16) -> Cycle {
        self.class(c).ready_at[phys as usize]
    }

    /// Commit-time free of the previous mapping.
    pub fn free_prev(&mut self, ctx: Ctx, c: RegClass, prev: u16) {
        let f = self.class_mut(c);
        f.free.push(prev);
        if ctx.is_protocol() {
            debug_assert!(f.in_use_by_protocol > 0);
            f.in_use_by_protocol -= 1;
        }
    }

    /// Squash-time rollback: restore `prev` as the mapping of `r` and
    /// return the speculative physical register to the free list.
    pub fn rollback(&mut self, ctx: Ctx, r: Reg, phys: u16, prev: u16) {
        let f = self.class_mut(r.class);
        debug_assert_eq!(
            f.map[ctx.idx()][r.idx as usize],
            phys,
            "rollback order violated"
        );
        f.map[ctx.idx()][r.idx as usize] = prev;
        f.free.push(phys);
        if ctx.is_protocol() {
            debug_assert!(f.in_use_by_protocol > 0);
            f.in_use_by_protocol -= 1;
        }
    }

    /// Free integer registers right now (diagnostics).
    pub fn free_int(&self) -> usize {
        self.int.free.len()
    }

    /// Integer registers currently held by the protocol thread, counting
    /// its 32 permanently mapped logical registers (paper Table 9).
    pub fn protocol_int_regs(&self) -> u64 {
        self.int.protocol_regs()
    }

    /// Peak integer registers held by the protocol thread.
    pub fn protocol_int_regs_peak(&self) -> u64 {
        self.int.peak_protocol.max(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files() -> RegFiles {
        // 1 app thread + protocol: 32*2 mapped, 96 free.
        RegFiles::new(160, 160, 1, 1)
    }

    #[test]
    fn initial_mappings_and_free_pool() {
        let f = files();
        assert_eq!(f.free_int(), 96);
        assert_eq!(f.protocol_int_regs(), 32);
        // All logical regs of ctx0 and protocol are mapped and distinct.
        let a = f.lookup(Ctx(0), Reg::int(0));
        let b = f.lookup(Ctx::protocol(), Reg::int(0));
        assert_ne!(a, b);
    }

    #[test]
    fn rename_free_cycle() {
        let mut f = files();
        let before = f.lookup(Ctx(0), Reg::int(5));
        let RenameOutcome::Ok { phys, prev } = f.rename(Ctx(0), Reg::int(5)) else {
            panic!("rename stalled");
        };
        assert_eq!(prev, before);
        assert_eq!(f.lookup(Ctx(0), Reg::int(5)), phys);
        assert_eq!(f.free_int(), 95);
        f.free_prev(Ctx(0), RegClass::Int, prev);
        assert_eq!(f.free_int(), 96);
    }

    #[test]
    fn rollback_restores_mapping() {
        let mut f = files();
        let before = f.lookup(Ctx(0), Reg::int(9));
        let RenameOutcome::Ok { phys, prev } = f.rename(Ctx(0), Reg::int(9)) else {
            panic!();
        };
        f.rollback(Ctx(0), Reg::int(9), phys, prev);
        assert_eq!(f.lookup(Ctx(0), Reg::int(9)), before);
        assert_eq!(f.free_int(), 96);
    }

    #[test]
    fn reserved_register_only_for_protocol() {
        let mut f = files();
        // Drain the free list down to the reserved register.
        let mut n = 0;
        while f.can_alloc(Ctx(0), RegClass::Int) {
            assert!(matches!(
                f.rename(Ctx(0), Reg::int(1)),
                RenameOutcome::Ok { .. }
            ));
            n += 1;
        }
        assert_eq!(n, 95, "application stops one short of empty");
        assert_eq!(f.free_int(), 1);
        assert_eq!(f.rename(Ctx(0), Reg::int(2)), RenameOutcome::Stall);
        // The protocol thread can take the last one.
        assert!(matches!(
            f.rename(Ctx::protocol(), Reg::int(3)),
            RenameOutcome::Ok { .. }
        ));
        assert_eq!(f.free_int(), 0);
        assert_eq!(f.rename(Ctx::protocol(), Reg::int(4)), RenameOutcome::Stall);
    }

    #[test]
    fn ready_times_round_trip() {
        let mut f = files();
        let RenameOutcome::Ok { phys, .. } = f.rename(Ctx(0), Reg::fp(3)) else {
            panic!();
        };
        assert_eq!(f.ready_at(RegClass::Fp, phys), Cycle::MAX);
        f.set_ready(RegClass::Fp, phys, 42);
        assert_eq!(f.ready_at(RegClass::Fp, phys), 42);
    }

    #[test]
    fn protocol_peak_occupancy_tracked() {
        let mut f = files();
        for i in 0..5 {
            f.rename(Ctx::protocol(), Reg::int(i));
        }
        assert_eq!(f.protocol_int_regs(), 37);
        assert_eq!(f.protocol_int_regs_peak(), 37);
    }
}
