//! Branch prediction: 21264-style tournament predictor, BTB, and return
//! address stack.
//!
//! Per paper §3: each thread has its own local branch history table, global
//! path history and choice predictor *history*, while the local and global
//! pattern history tables (saturating counters) are shared across threads.
//! The global path history is not updated speculatively — training happens
//! at branch resolution.

use smtp_types::{Ctx, MAX_CTX};

const LOCAL_HIST_ENTRIES: usize = 1024;
const LOCAL_HIST_BITS: u32 = 10;
const LOCAL_PHT_ENTRIES: usize = 1024;
const GLOBAL_PHT_ENTRIES: usize = 4096;
const GLOBAL_HIST_BITS: u32 = 12;

#[inline]
fn sat_inc(c: &mut u8, max: u8) {
    if *c < max {
        *c += 1;
    }
}

#[inline]
fn sat_dec(c: &mut u8) {
    if *c > 0 {
        *c -= 1;
    }
}

/// The tournament direction predictor.
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    /// Per-thread local history tables.
    local_hist: Vec<[u16; LOCAL_HIST_ENTRIES]>,
    /// Shared local pattern history table (3-bit counters).
    local_pht: Vec<u8>,
    /// Per-thread global path history.
    global_hist: [u32; MAX_CTX],
    /// Shared global pattern history table (2-bit counters).
    global_pht: Vec<u8>,
    /// Shared choice table (2-bit: high = trust global).
    choice: Vec<u8>,
    predictions: [u64; MAX_CTX],
    mispredictions: [u64; MAX_CTX],
}

impl Default for BranchPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl BranchPredictor {
    /// A predictor with cleared histories and weakly-taken counters.
    pub fn new() -> BranchPredictor {
        BranchPredictor {
            local_hist: vec![[0u16; LOCAL_HIST_ENTRIES]; MAX_CTX],
            local_pht: vec![4u8; LOCAL_PHT_ENTRIES], // weakly taken of 0..=7
            global_hist: [0; MAX_CTX],
            global_pht: vec![2u8; GLOBAL_PHT_ENTRIES], // weakly taken of 0..=3
            choice: vec![2u8; GLOBAL_PHT_ENTRIES],
            predictions: [0; MAX_CTX],
            mispredictions: [0; MAX_CTX],
        }
    }

    #[inline]
    fn indices(&self, ctx: Ctx, pc: u32) -> (usize, usize, usize) {
        let local_i = pc as usize % LOCAL_HIST_ENTRIES;
        let lhist = self.local_hist[ctx.idx()][local_i] as usize % LOCAL_PHT_ENTRIES;
        let ghist = self.global_hist[ctx.idx()] as usize;
        let global_i = (ghist ^ pc as usize) % GLOBAL_PHT_ENTRIES;
        (local_i, lhist, global_i)
    }

    /// Predict the direction of the branch at `pc` for thread `ctx`.
    pub fn predict(&mut self, ctx: Ctx, pc: u32) -> bool {
        self.predictions[ctx.idx()] += 1;
        let (_, lhist, global_i) = self.indices(ctx, pc);
        let local_pred = self.local_pht[lhist] >= 4;
        let global_pred = self.global_pht[global_i] >= 2;
        if self.choice[global_i] >= 2 {
            global_pred
        } else {
            local_pred
        }
    }

    /// Train at branch resolution with the actual direction; returns
    /// nothing — call [`BranchPredictor::record_mispredict`] separately so
    /// squashed branches can skip training.
    pub fn train(&mut self, ctx: Ctx, pc: u32, taken: bool) {
        let (local_i, lhist, global_i) = self.indices(ctx, pc);
        let local_pred = self.local_pht[lhist] >= 4;
        let global_pred = self.global_pht[global_i] >= 2;
        // Choice update: move toward whichever component was right.
        if local_pred != global_pred {
            if global_pred == taken {
                sat_inc(&mut self.choice[global_i], 3);
            } else {
                sat_dec(&mut self.choice[global_i]);
            }
        }
        if taken {
            sat_inc(&mut self.local_pht[lhist], 7);
            sat_inc(&mut self.global_pht[global_i], 3);
        } else {
            sat_dec(&mut self.local_pht[lhist]);
            sat_dec(&mut self.global_pht[global_i]);
        }
        // Histories update non-speculatively (at resolution).
        let lh = &mut self.local_hist[ctx.idx()][local_i];
        *lh = ((*lh << 1) | u16::from(taken)) & ((1 << LOCAL_HIST_BITS) - 1);
        let gh = &mut self.global_hist[ctx.idx()];
        *gh = ((*gh << 1) | u32::from(taken)) & ((1 << GLOBAL_HIST_BITS) - 1);
    }

    /// Record a misprediction for statistics.
    pub fn record_mispredict(&mut self, ctx: Ctx) {
        self.mispredictions[ctx.idx()] += 1;
    }

    /// (predictions, mispredictions) for a thread.
    pub fn stats(&self, ctx: Ctx) -> (u64, u64) {
        (self.predictions[ctx.idx()], self.mispredictions[ctx.idx()])
    }
}

/// Branch target buffer: 256 sets, 4-way, true-LRU (paper Table 2).
#[derive(Clone, Debug)]
pub struct Btb {
    sets: usize,
    ways: usize,
    entries: Vec<(u32, u32, u64)>, // (pc_tag, target, lru)
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Btb {
    /// A BTB of `sets`×`ways` entries.
    pub fn new(sets: usize, ways: usize) -> Btb {
        Btb {
            sets,
            ways,
            entries: vec![(u32::MAX, 0, 0); sets * ways],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_range(&self, pc: u32) -> std::ops::Range<usize> {
        let s = (pc as usize % self.sets) * self.ways;
        s..s + self.ways
    }

    /// Look up the target for a taken branch at `pc`.
    pub fn lookup(&mut self, pc: u32) -> Option<u32> {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(pc);
        let hit = self.entries[range].iter_mut().find(|e| e.0 == pc).map(|e| {
            e.2 = clock;
            e.1
        });
        if hit.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Install/refresh a target.
    pub fn insert(&mut self, pc: u32, target: u32) {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(pc);
        let set = &mut self.entries[range];
        if let Some(e) = set.iter_mut().find(|e| e.0 == pc) {
            e.1 = target;
            e.2 = clock;
            return;
        }
        let victim = set.iter_mut().min_by_key(|e| e.2).expect("ways >= 1");
        *victim = (pc, target, clock);
    }

    /// (hits, misses).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Per-thread return address stack with checkpoint/restore (the paper
/// augments the RAS with top-of-stack repair per Skadron et al.).
#[derive(Clone, Debug)]
pub struct ReturnAddressStack {
    stack: Vec<u32>,
    capacity: usize,
}

impl ReturnAddressStack {
    /// A RAS of `capacity` entries.
    pub fn new(capacity: usize) -> ReturnAddressStack {
        ReturnAddressStack {
            stack: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Push a return address (oldest entry lost on overflow).
    pub fn push(&mut self, ret: u32) {
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(ret);
    }

    /// Pop the predicted return target.
    pub fn pop(&mut self) -> Option<u32> {
        self.stack.pop()
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_learns_a_biased_branch() {
        let mut p = BranchPredictor::new();
        for _ in 0..64 {
            p.predict(Ctx(0), 100);
            p.train(Ctx(0), 100, true);
        }
        assert!(p.predict(Ctx(0), 100), "always-taken branch not learned");
        for _ in 0..64 {
            p.train(Ctx(0), 100, false);
        }
        assert!(!p.predict(Ctx(0), 100), "bias flip not learned");
    }

    #[test]
    fn predictor_learns_a_short_loop_pattern() {
        // taken, taken, taken, not-taken repeating (4-iteration loop).
        let mut p = BranchPredictor::new();
        let pattern = [true, true, true, false];
        for _ in 0..200 {
            for &t in &pattern {
                p.predict(Ctx(1), 555);
                p.train(Ctx(1), 555, t);
            }
        }
        let mut correct = 0;
        for _ in 0..25 {
            for &t in &pattern {
                if p.predict(Ctx(1), 555) == t {
                    correct += 1;
                }
                p.train(Ctx(1), 555, t);
            }
        }
        assert!(correct >= 90, "loop pattern accuracy {correct}/100");
    }

    #[test]
    fn histories_are_per_thread() {
        let mut p = BranchPredictor::new();
        for _ in 0..100 {
            p.train(Ctx(0), 7, true);
            p.train(Ctx(2), 7, false);
        }
        // Shared PHTs fight, but per-thread local histories reach different
        // counters; at minimum the stats must be tracked separately.
        p.predict(Ctx(0), 7);
        p.record_mispredict(Ctx(0));
        assert_eq!(p.stats(Ctx(0)).1, 1);
        assert_eq!(p.stats(Ctx(2)).1, 0);
    }

    #[test]
    fn btb_hits_after_insert_and_replaces_lru() {
        let mut b = Btb::new(4, 2);
        assert_eq!(b.lookup(10), None);
        b.insert(10, 99);
        assert_eq!(b.lookup(10), Some(99));
        // Fill the set (pcs congruent mod 4).
        b.insert(14, 1);
        b.lookup(10); // make 14 LRU
        b.insert(18, 2); // evicts 14
        assert_eq!(b.lookup(14), None);
        assert_eq!(b.lookup(10), Some(99));
        let (h, m) = b.stats();
        assert!(h >= 3 && m >= 2);
    }

    #[test]
    fn ras_round_trips_and_bounds_depth() {
        let mut r = ReturnAddressStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // drops 1
        assert_eq!(r.depth(), 2);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }
}
