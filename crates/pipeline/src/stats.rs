//! Pipeline statistics backing the paper's tables.

use smtp_types::{Cycle, PeakTracker, MAX_CTX};

/// Counters and peak trackers collected by [`crate::SmtPipeline`].
#[derive(Clone, Debug, Default)]
pub struct PipeStats {
    /// Cycles simulated.
    pub cycles: Cycle,
    /// Instructions committed per context.
    pub committed: [u64; MAX_CTX],
    /// Instructions fetched per context.
    pub fetched: [u64; MAX_CTX],
    /// Instructions squashed per context.
    pub squashed: [u64; MAX_CTX],
    /// Cycles in which the graduation unit was stalled with a memory
    /// operation at the top of a context's active list (paper's memory
    /// stall definition, §4).
    pub memory_stall: [u64; MAX_CTX],
    /// Cycles in which the context committed at least one instruction
    /// (the "busy" component of the paper's Fig. 5/7 time breakdown).
    pub busy_cycles: [u64; MAX_CTX],
    /// Non-committing cycles blocked on a synchronization instruction
    /// (`SyncBranch`/`SyncStore` serializing fetch — the paper's
    /// "synchronization" component).
    pub sync_stall: [u64; MAX_CTX],
    /// Non-committing cycles inside a squash-recovery window (fetch
    /// suppressed after a misprediction redirect).
    pub squash_stall: [u64; MAX_CTX],
    /// Non-committing cycles with the context completely empty — nothing
    /// in the window or front-end (fetch-starved).
    pub fetch_starved: [u64; MAX_CTX],
    /// Non-committing cycles not attributable to any other bucket
    /// (front-end / execution latency).
    pub other_stall: [u64; MAX_CTX],
    /// Rename rejections because the issue queue share was exhausted.
    pub iq_full_stalls: [u64; MAX_CTX],
    /// Rename rejections because the LSQ share was exhausted.
    pub lsq_full_stalls: [u64; MAX_CTX],
    /// Branch mispredictions per context (see also the predictor stats).
    pub mispredicts: [u64; MAX_CTX],
    /// Conditional branches resolved per context.
    pub branches: [u64; MAX_CTX],
    /// Cycles in which the protocol thread had instructions in flight or
    /// ready to fetch (protocol occupancy, Table 7).
    pub protocol_active_cycles: u64,
    /// Cycles in which at least one squashed protocol instruction was freed
    /// (Table 8 "Squash %").
    pub protocol_squash_cycles: u64,
    /// Handlers whose first instruction was fetched via look-ahead
    /// scheduling (dispatched before the previous handler graduated).
    pub look_ahead_handlers: u64,
    /// Peak branch-stack entries held by the protocol thread while active
    /// (Table 9).
    pub prot_branch_stack: PeakTracker,
    /// Peak integer-queue entries held by the protocol thread (Table 9).
    pub prot_int_queue: PeakTracker,
    /// Peak LSQ entries held by the protocol thread (Table 9).
    pub prot_lsq: PeakTracker,
    /// Peak integer registers held by the protocol thread (Table 9; the 32
    /// permanently mapped registers are included).
    pub prot_int_regs_peak: u64,
}

impl PipeStats {
    /// Total committed instructions across application contexts.
    pub fn committed_app(&self) -> u64 {
        self.committed[..MAX_CTX - 1].iter().sum()
    }

    /// Committed protocol instructions.
    pub fn committed_protocol(&self) -> u64 {
        self.committed[MAX_CTX - 1]
    }

    /// Retired protocol instructions as a fraction of all retired
    /// instructions (Table 8 last column).
    pub fn protocol_retired_fraction(&self) -> f64 {
        let total: u64 = self.committed.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.committed_protocol() as f64 / total as f64
        }
    }

    /// Protocol branch misprediction rate (Table 8).
    pub fn protocol_mispredict_rate(&self) -> f64 {
        let b = self.branches[MAX_CTX - 1];
        if b == 0 {
            0.0
        } else {
            self.mispredicts[MAX_CTX - 1] as f64 / b as f64
        }
    }

    /// Protocol occupancy as a fraction of execution time (Table 7).
    pub fn protocol_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.protocol_active_cycles as f64 / self.cycles as f64
        }
    }

    /// The Fig. 5/7 time breakdown for one context as
    /// `[busy, memory, sync, squash, fetch-starved, other]` cycle counts.
    pub fn thread_breakdown(&self, ctx: usize) -> [u64; 6] {
        [
            self.busy_cycles[ctx],
            self.memory_stall[ctx],
            self.sync_stall[ctx],
            self.squash_stall[ctx],
            self.fetch_starved[ctx],
            self.other_stall[ctx],
        ]
    }
}

/// Component names matching [`PipeStats::thread_breakdown`].
pub const BREAKDOWN_NAMES: [&str; 6] = ["busy", "memory", "sync", "squash", "starved", "other"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_fractions() {
        let mut s = PipeStats::default();
        s.committed[0] = 900;
        s.committed[MAX_CTX - 1] = 100;
        assert!((s.protocol_retired_fraction() - 0.1).abs() < 1e-12);
        assert_eq!(s.committed_app(), 900);
        assert_eq!(s.committed_protocol(), 100);
        s.branches[MAX_CTX - 1] = 50;
        s.mispredicts[MAX_CTX - 1] = 5;
        assert!((s.protocol_mispredict_rate() - 0.1).abs() < 1e-12);
        s.cycles = 1000;
        s.protocol_active_cycles = 120;
        assert!((s.protocol_occupancy() - 0.12).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = PipeStats::default();
        assert_eq!(s.protocol_retired_fraction(), 0.0);
        assert_eq!(s.protocol_mispredict_rate(), 0.0);
        assert_eq!(s.protocol_occupancy(), 0.0);
    }

    #[test]
    fn thread_breakdown_orders_components() {
        let mut s = PipeStats::default();
        s.busy_cycles[1] = 10;
        s.memory_stall[1] = 20;
        s.sync_stall[1] = 30;
        s.squash_stall[1] = 40;
        s.fetch_starved[1] = 50;
        s.other_stall[1] = 60;
        assert_eq!(s.thread_breakdown(1), [10, 20, 30, 40, 50, 60]);
        assert_eq!(BREAKDOWN_NAMES.len(), s.thread_breakdown(1).len());
    }
}
