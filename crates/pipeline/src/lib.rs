//! The out-of-order simultaneous multi-threading pipeline, with the SMTp
//! protocol-thread extensions.
//!
//! The model follows paper §2 and Table 2: nine stages (fetch, decode,
//! rename, issue, two operand-read stages, execute, cache access, commit),
//! ICOUNT.2.8 fetch, per-thread active lists, shared issue/load-store
//! queues, a 21264-style tournament predictor with per-thread histories,
//! and round-robin commit.
//!
//! SMTp extensions (§2.1–2.3):
//!
//! * a statically bound **protocol thread context** whose instructions are
//!   supplied by the handler dispatch unit through [`PipeEnv`] — the
//!   "Protocol PC Valid" bit is modeled by
//!   [`PipeEnv::next_protocol_inst`] returning `Some`;
//! * **reserved resources** (one decode/rename-queue slot, branch-stack
//!   entry, integer register, integer-queue slot, LSQ slot, store-buffer
//!   entry) usable only by the protocol thread, breaking the cyclic
//!   resource dependence between application L2 misses and the handler
//!   that services them;
//! * non-speculative execution of `send`, `switch`, `ldctxt` and protocol
//!   stores at graduation;
//! * **look-ahead scheduling** support: squashed handler instructions are
//!   recycled through the per-thread refetch buffer, which reproduces the
//!   paper's `ldctxt_id`/`LookAhead` recovery behaviour.

pub mod branch;
pub mod env;
pub mod regs;
pub mod smt;
pub mod stats;
pub mod window;

pub use branch::{BranchPredictor, Btb, ReturnAddressStack};
pub use env::PipeEnv;
pub use regs::{RegFiles, RenameOutcome};
pub use smt::SmtPipeline;
pub use stats::{PipeStats, BREAKDOWN_NAMES};
pub use window::DynInst;
