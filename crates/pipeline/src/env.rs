//! The pipeline's interface to the rest of the node.

use smtp_isa::{Inst, SyncCond, SyncOp, SyncOutcome};
use smtp_types::{Ctx, Cycle, NodeId};

/// Everything the pipeline needs from its environment: instruction supply
/// (application workload generators and the protocol handler dispatch
/// unit), synchronization semantics, and the protocol thread's
/// non-speculative effects.
///
/// Implemented by the node assembly in `smtp-core`.
pub trait PipeEnv {
    /// Next program-order instruction for application context `ctx`.
    fn next_app_inst(&mut self, ctx: Ctx) -> Inst;

    /// Next protocol-thread instruction, or `None` when the "Protocol PC
    /// Valid" bit is clear (no handler is ready to fetch). The dispatch
    /// unit implements both the normal gate (next handler PC handed out
    /// when the previous handler's `ldctxt` graduates) and look-ahead
    /// scheduling (handed out as soon as the previous handler's fetch
    /// finishes).
    fn next_protocol_inst(&mut self) -> Option<Inst>;

    /// Resolve a serializing sync-branch condition (at execute).
    fn poll(&mut self, node: NodeId, ctx: Ctx, cond: SyncCond) -> bool;

    /// Perform a sync store's semantics (at graduation, after its memory
    /// access performed).
    fn sync_store(&mut self, node: NodeId, ctx: Ctx, op: SyncOp) -> SyncOutcome;

    /// Deliver a resolved sync outcome to the thread's generator.
    fn sync_result(&mut self, ctx: Ctx, outcome: SyncOutcome);

    /// A protocol `send` graduated: emit the `msg_idx`-th prepared message
    /// of the handler that is currently graduating.
    fn send_graduated(&mut self, msg_idx: u8, now: Cycle);

    /// The current handler's `ldctxt` graduated (`handlerCompletion`).
    fn ldctxt_graduated(&mut self, now: Cycle);
}
