//! Stable configuration fingerprints for the cross-run experiment archive.
//!
//! [`Fingerprint`] is a deterministic 64-bit FNV-1a accumulator with typed
//! `mix_*` methods. Unlike [`std::hash::Hasher`] implementations, its
//! output is *specified*: it depends only on the byte sequence fed in, not
//! on the Rust version, platform, or process, so fingerprints written into
//! an on-disk archive remain comparable across builds and machines.
//!
//! Every `mix_*` call is length/tag-framed, so adjacent fields cannot
//! alias (`("ab", "c")` and `("a", "bc")` produce different fingerprints).

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A deterministic, platform-independent 64-bit fingerprint accumulator.
///
/// ```
/// use smtp_types::Fingerprint;
/// let mut f = Fingerprint::new();
/// f.mix_str("SMTp");
/// f.mix_u64(8);
/// let a = f.finish();
/// let mut g = Fingerprint::new();
/// g.mix_str("SMTp");
/// g.mix_u64(8);
/// assert_eq!(a, g.finish());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Fingerprint {
    state: u64,
}

impl Default for Fingerprint {
    fn default() -> Fingerprint {
        Fingerprint { state: FNV_OFFSET }
    }
}

impl Fingerprint {
    /// A fresh accumulator.
    pub fn new() -> Fingerprint {
        Fingerprint::default()
    }

    fn mix_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Mix a string field (length-framed).
    pub fn mix_str(&mut self, s: &str) {
        self.mix_bytes(&(s.len() as u64).to_le_bytes());
        self.mix_bytes(s.as_bytes());
    }

    /// Mix an unsigned integer field.
    pub fn mix_u64(&mut self, v: u64) {
        self.mix_bytes(b"u");
        self.mix_bytes(&v.to_le_bytes());
    }

    /// Mix a float field by its exact bit pattern (`-0.0` and `0.0`
    /// therefore differ; configuration values never rely on that).
    pub fn mix_f64(&mut self, v: f64) {
        self.mix_bytes(b"f");
        self.mix_bytes(&v.to_bits().to_le_bytes());
    }

    /// Mix a boolean field.
    pub fn mix_bool(&mut self, v: bool) {
        self.mix_bytes(&[b'b', v as u8]);
    }

    /// Mix an optional unsigned integer (presence is part of the value).
    pub fn mix_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.mix_bytes(b"S");
                self.mix_u64(v);
            }
            None => self.mix_bytes(b"N"),
        }
    }

    /// The accumulated fingerprint.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_value_is_stable() {
        // Pin the algorithm: if this changes, archived fingerprints from
        // older builds silently stop matching.
        let mut f = Fingerprint::new();
        f.mix_str("SMTp");
        f.mix_u64(8);
        f.mix_f64(2.0);
        f.mix_bool(true);
        f.mix_opt_u64(None);
        assert_eq!(f.finish(), 0x5dca_12ea_4d62_a8d7);
    }

    #[test]
    fn field_framing_prevents_aliasing() {
        let mut a = Fingerprint::new();
        a.mix_str("ab");
        a.mix_str("c");
        let mut b = Fingerprint::new();
        b.mix_str("a");
        b.mix_str("bc");
        assert_ne!(a.finish(), b.finish());

        let mut c = Fingerprint::new();
        c.mix_opt_u64(Some(0));
        let mut d = Fingerprint::new();
        d.mix_opt_u64(None);
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn every_field_changes_the_value() {
        let base = {
            let mut f = Fingerprint::new();
            f.mix_u64(1);
            f.mix_bool(false);
            f.finish()
        };
        let mut f = Fingerprint::new();
        f.mix_u64(2);
        f.mix_bool(false);
        assert_ne!(base, f.finish());
        let mut f = Fingerprint::new();
        f.mix_u64(1);
        f.mix_bool(true);
        assert_ne!(base, f.finish());
    }
}
