//! Common identifiers, the physical address map, machine configuration and
//! statistics primitives shared by every crate of the SMTp simulator.
//!
//! The SMTp simulator reproduces the system evaluated in *Chaudhuri &
//! Heinrich, "SMTp: An Architecture for Next-generation Scalable
//! Multi-threading", ISCA 2004*: a directory-based hardware DSM built from
//! nodes whose SMT processor hosts a coherence **protocol thread**.
//!
//! This crate deliberately contains no simulation logic — only the vocabulary
//! types the rest of the workspace agrees on:
//!
//! * [`NodeId`], [`Ctx`] — node and hardware-thread-context identifiers,
//! * [`Addr`] / [`LineAddr`] — the global physical address map (home node and
//!   region are encoded in the address, mirroring a real DSM),
//! * [`SharerSet`] — the directory's sharer bitvector,
//! * [`config`] — every knob of paper Tables 2, 3 and 4,
//! * [`stats`] — counters, peak trackers and histograms used for the
//!   paper's tables and figures.

pub mod addr;
pub mod capture;
pub mod config;
pub mod faults;
pub mod fingerprint;
pub mod ids;
pub mod latency;
pub mod rng;
pub mod sharers;
pub mod span;
pub mod stats;

pub use addr::{app_code_addr, Addr, LineAddr, Region, APP_CODE_BASE, DIR_ENTRY_BYTES, L2_LINE};
pub use capture::CapturePoint;
pub use config::{CacheParams, MachineModel, MemParams, NetParams, PipelineParams, SystemConfig};
pub use faults::{
    EccFaults, FaultConfig, FaultStream, FaultSummary, FaultWindows, HandlerDelayFaults,
    LinkFaults, StallFaults,
};
pub use fingerprint::Fingerprint;
pub use ids::{Ctx, NodeId, MAX_APP_THREADS, MAX_CTX};
pub use latency::{
    take_captured_prof_ops, LatencyBreakdown, LatencyRecord, PhaseBoundary, PhaseProfiler, ProfOp,
    TxnClass, CLASS_NAMES, NUM_CLASSES, NUM_PHASES, PHASE_NAMES,
};
pub use rng::SplitMix64;
pub use sharers::SharerSet;
pub use span::{SpanAlloc, SpanId};
pub use stats::{Distribution, Histogram, PeakTracker, RunningStat, HISTOGRAM_BUCKETS};

/// Simulation time in CPU cycles.
pub type Cycle = u64;
