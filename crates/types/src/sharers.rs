//! Directory sharer bitvector.

use crate::ids::NodeId;
use std::fmt;

/// A set of nodes, stored as a 64-bit bitvector.
///
/// This is the sharer vector of the bitvector directory protocol (derived
/// from the SGI Origin 2000 protocol, paper §3): bit *i* set means node *i*
/// holds (or may hold) a shared copy of the line.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SharerSet(u64);

impl SharerSet {
    /// The empty set.
    #[inline]
    pub fn new() -> SharerSet {
        SharerSet(0)
    }

    /// A set containing exactly one node.
    #[inline]
    pub fn singleton(n: NodeId) -> SharerSet {
        let mut s = SharerSet(0);
        s.insert(n);
        s
    }

    /// Insert a node.
    #[inline]
    pub fn insert(&mut self, n: NodeId) {
        debug_assert!(n.idx() < 64);
        self.0 |= 1u64 << n.idx();
    }

    /// Remove a node; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, n: NodeId) -> bool {
        let bit = 1u64 << n.idx();
        let was = self.0 & bit != 0;
        self.0 &= !bit;
        was
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, n: NodeId) -> bool {
        self.0 & (1u64 << n.idx()) != 0
    }

    /// Number of members ("population count", one of the bit-manipulation
    /// instructions the paper assumes protocol code uses).
    #[inline]
    pub fn len(&self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterate over members in increasing node order.
    pub fn iter(&self) -> Iter {
        Iter(self.0)
    }

    /// Raw bitvector (what the directory entry actually stores).
    #[inline]
    pub fn bits(&self) -> u64 {
        self.0
    }

    /// Rebuild from a raw bitvector.
    #[inline]
    pub fn from_bits(bits: u64) -> SharerSet {
        SharerSet(bits)
    }
}

/// Iterator over the members of a [`SharerSet`].
#[derive(Clone, Debug)]
pub struct Iter(u64);

impl Iterator for Iter {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros();
            self.0 &= self.0 - 1;
            Some(NodeId(i as u16))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl IntoIterator for SharerSet {
    type Item = NodeId;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

impl FromIterator<NodeId> for SharerSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> SharerSet {
        let mut s = SharerSet::new();
        for n in iter {
            s.insert(n);
        }
        s
    }
}

impl Extend<NodeId> for SharerSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for n in iter {
            self.insert(n);
        }
    }
}

impl fmt::Debug for SharerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn insert_remove_contains() {
        let mut s = SharerSet::new();
        assert!(s.is_empty());
        s.insert(NodeId(3));
        s.insert(NodeId(31));
        assert!(s.contains(NodeId(3)));
        assert!(!s.contains(NodeId(4)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(NodeId(3)));
        assert!(!s.remove(NodeId(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iteration_is_ordered() {
        let s: SharerSet = [NodeId(9), NodeId(1), NodeId(40)].into_iter().collect();
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![NodeId(1), NodeId(9), NodeId(40)]);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn singleton() {
        let s = SharerSet::singleton(NodeId(7));
        assert_eq!(s.len(), 1);
        assert!(s.contains(NodeId(7)));
    }

    /// Property-style sweep over random bit patterns (deterministic seed).
    #[test]
    fn bits_round_trip() {
        let mut rng = SplitMix64::new(0xB175);
        for bits in [0u64, u64::MAX, 1, 1 << 63]
            .into_iter()
            .chain((0..512).map(|_| rng.next_u64()))
        {
            let s = SharerSet::from_bits(bits);
            assert_eq!(s.bits(), bits);
            assert_eq!(s.len() as usize, s.iter().count());
            let rebuilt: SharerSet = s.iter().collect();
            assert_eq!(rebuilt, s);
        }
    }

    #[test]
    fn insert_then_contains() {
        for n in 0u16..64 {
            let mut s = SharerSet::new();
            s.insert(NodeId(n));
            assert!(s.contains(NodeId(n)));
            assert_eq!(s.len(), 1);
        }
    }
}
