//! Thread-local capture points for deterministic parallel replay.
//!
//! The parallel epoch engine runs nodes on worker threads, but the trace
//! stream and the latency profiler are order-sensitive: the serial engine
//! interleaves their side effects in a fixed per-cycle order (network
//! deliveries, then each node's tick, then each node's injections). To
//! reproduce that order bit-exactly, workers do not apply observability
//! side effects directly; they *capture* them into thread-local buffers
//! tagged with a [`CapturePoint`] — the position in the serial order at
//! which the serial engine would have applied them. At each epoch barrier
//! the coordinator merges all buffers with a stable sort on the capture
//! point and replays them, recreating the serial stream exactly.
//!
//! The point is `(cycle, lane, slot)`:
//!
//! * `cycle` — the processing cycle (not the event's own timestamp, which
//!   may be future-dated, e.g. a `NetInject`'s delivery time);
//! * `lane` — the phase within the cycle: `0` for the network delivery
//!   phase, `2*i + 1` for node `i`'s tick, `2*i + 2` for node `i`'s
//!   injections;
//! * `slot` — the index within the lane (the per-cycle pop index for
//!   deliveries, the outbox index for injections).
//!
//! Capture state is thread-local and costs one `Cell` read per emission
//! when inactive, so the serial engine is unaffected.

use crate::Cycle;
use std::cell::Cell;

/// Position in the serial side-effect order: `(cycle, lane, slot)`.
pub type CapturePoint = (Cycle, u32, u32);

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static POINT: Cell<CapturePoint> = const { Cell::new((0, 0, 0)) };
}

/// Start capturing on this thread, positioned at `point`.
pub fn begin(point: CapturePoint) {
    ACTIVE.with(|a| a.set(true));
    POINT.with(|p| p.set(point));
}

/// Move this thread's capture position (a no-op unless capturing).
pub fn set_point(point: CapturePoint) {
    POINT.with(|p| p.set(point));
}

/// Stop capturing on this thread.
pub fn end() {
    ACTIVE.with(|a| a.set(false));
}

/// Whether this thread is currently capturing.
#[inline]
pub fn is_active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// This thread's current capture position.
#[inline]
pub fn point() -> CapturePoint {
    POINT.with(|p| p.get())
}

/// Lane for the network delivery phase of a cycle.
pub const LANE_DELIVER: u32 = 0;

/// Lane for node `i`'s tick phase.
pub fn lane_tick(node: usize) -> u32 {
    2 * node as u32 + 1
}

/// Lane for node `i`'s injection phase.
pub fn lane_inject(node: usize) -> u32 {
    2 * node as u32 + 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_point_lifecycle() {
        assert!(!is_active());
        begin((5, lane_tick(2), 0));
        assert!(is_active());
        assert_eq!(point(), (5, 5, 0));
        set_point((6, LANE_DELIVER, 3));
        assert_eq!(point(), (6, 0, 3));
        end();
        assert!(!is_active());
    }

    #[test]
    fn lanes_order_like_the_serial_tick() {
        // Deliveries, then tick 0, inject 0, tick 1, inject 1, ...
        assert!(LANE_DELIVER < lane_tick(0));
        assert!(lane_tick(0) < lane_inject(0));
        assert!(lane_inject(0) < lane_tick(1));
        assert!(lane_inject(1) < lane_tick(2));
    }
}
