//! Deterministic fault injection: configuration and seeded fault streams.
//!
//! Every injected fault in the simulator is drawn from a [`SplitMix64`]
//! stream seeded from [`FaultConfig::seed`] mixed with a per-site constant,
//! so a given `(config, seed)` pair reproduces the exact same fault schedule
//! on every run. Rates are expressed as integer events-per-million draws —
//! no floating point touches the hot path.
//!
//! With `enabled == false` (the default) every hook site reduces to a single
//! predictable branch (an `Option`/flag test) and the simulation is
//! cycle-for-cycle identical to a build without the subsystem.

use crate::rng::SplitMix64;
use crate::Cycle;

/// One million: the denominator of all fault rates.
pub const PER_MILLION: u64 = 1_000_000;

/// Per-site seed salt: NoC link faults (mixed with a link/channel index).
pub const SITE_LINK: u64 = 0x4C49_4E4B;
/// Per-site seed salt: NoC link faults on the retransmission path (kept on
/// an independent stream from first transmissions).
pub const SITE_LINK_RETRY: u64 = 0x4C52_5452;
/// Per-site seed salt: SDRAM ECC faults (mixed with the node id).
pub const SITE_ECC: u64 = 0x4543_4300;
/// Per-site seed salt: dispatch-queue stall windows (mixed with the node id).
pub const SITE_DISPATCH: u64 = 0x5354_4C4C;
/// Per-site seed salt: protocol-thread starvation windows (node-mixed).
pub const SITE_STARVE: u64 = 0x5354_5256;
/// Per-site seed salt: delayed handler dispatch (node-mixed).
pub const SITE_HANDLER: u64 = 0x4841_4E44;

/// Link-level fault rates, applied per *physical* packet transmission
/// (retransmissions roll the dice again).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkFaults {
    /// Chance per million transmissions that the packet vanishes in flight.
    pub drop_per_million: u32,
    /// Chance per million that the payload is corrupted; the receiver's CRC
    /// check detects it and discards the packet (equivalent to a drop, but
    /// counted separately).
    pub corrupt_per_million: u32,
    /// Chance per million that the router emits a duplicate copy.
    pub duplicate_per_million: u32,
    /// Chance per million that the packet is delayed by a uniform
    /// `1..=max_delay_cycles` extra cycles.
    pub delay_per_million: u32,
    /// Maximum extra delay for a delayed packet.
    pub max_delay_cycles: u64,
}

impl LinkFaults {
    /// Whether any link fault can ever fire.
    pub fn any(&self) -> bool {
        self.drop_per_million != 0
            || self.corrupt_per_million != 0
            || self.duplicate_per_million != 0
            || self.delay_per_million != 0
    }
}

/// SDRAM ECC fault rates, applied per read access.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EccFaults {
    /// Chance per million reads of a correctable (single-bit) error; the
    /// controller corrects it at the cost of `correction_cycles`.
    pub correctable_per_million: u32,
    /// Chance per million reads of an uncorrectable (multi-bit) error. The
    /// access completes with poisoned data; the watchdog surfaces it as
    /// `RunError::UnrecoverableFault`.
    pub uncorrectable_per_million: u32,
    /// Extra latency charged for correcting a single-bit error.
    pub correction_cycles: u64,
}

impl EccFaults {
    /// Whether any ECC fault can ever fire.
    pub fn any(&self) -> bool {
        self.correctable_per_million != 0 || self.uncorrectable_per_million != 0
    }
}

/// Stall-window fault rates: every `check_every` cycles there is a
/// `window_per_million` chance that the afflicted unit freezes for
/// `window_cycles`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallFaults {
    /// Chance per million checks that a stall window opens.
    pub window_per_million: u32,
    /// Length of an open stall window in cycles.
    pub window_cycles: u64,
    /// Interval between window rolls (in cycles).
    pub check_every: u64,
}

impl StallFaults {
    /// Whether windows can ever open.
    pub fn any(&self) -> bool {
        self.window_per_million != 0 && self.window_cycles != 0
    }
}

/// Delayed-handler-dispatch fault rates (per dispatched handler).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HandlerDelayFaults {
    /// Chance per million dispatches that the handler is held back.
    pub delay_per_million: u32,
    /// How long a delayed handler is held before it may dispatch.
    pub delay_cycles: u64,
}

impl HandlerDelayFaults {
    /// Whether delays can ever fire.
    pub fn any(&self) -> bool {
        self.delay_per_million != 0 && self.delay_cycles != 0
    }
}

/// Complete fault-injection configuration. [`FaultConfig::default`] disables
/// everything; [`FaultConfig::chaos`] is a moderate everything-on preset.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultConfig {
    /// Master switch; when false no fault machinery is even constructed.
    pub enabled: bool,
    /// Seed for all fault streams (independent of the simulation seed).
    pub seed: u64,
    /// NoC link faults (handled by the link-level retry layer).
    pub link: LinkFaults,
    /// SDRAM ECC errors.
    pub ecc: EccFaults,
    /// Memory-controller dispatch-queue stall windows.
    pub dispatch_stall: StallFaults,
    /// Transient protocol-thread starvation windows.
    pub starvation: StallFaults,
    /// Delayed coherence-handler dispatch.
    pub handler_delay: HandlerDelayFaults,
}

impl FaultConfig {
    /// A moderate all-fault preset: a couple of link faults and ECC errors
    /// per hundred thousand events plus occasional short stall windows —
    /// enough to exercise every recovery path without drowning the machine.
    pub fn chaos(seed: u64) -> FaultConfig {
        FaultConfig {
            enabled: true,
            seed,
            link: LinkFaults {
                drop_per_million: 20_000,
                corrupt_per_million: 10_000,
                duplicate_per_million: 10_000,
                delay_per_million: 20_000,
                max_delay_cycles: 200,
            },
            ecc: EccFaults {
                correctable_per_million: 20_000,
                uncorrectable_per_million: 0,
                correction_cycles: 24,
            },
            dispatch_stall: StallFaults {
                window_per_million: 50_000,
                window_cycles: 300,
                check_every: 4096,
            },
            starvation: StallFaults {
                window_per_million: 50_000,
                window_cycles: 200,
                check_every: 4096,
            },
            handler_delay: HandlerDelayFaults {
                delay_per_million: 10_000,
                delay_cycles: 100,
            },
        }
    }

    /// Whether any fault can actually fire (enabled and at least one rate
    /// non-zero).
    pub fn is_active(&self) -> bool {
        self.enabled
            && (self.link.any()
                || self.ecc.any()
                || self.dispatch_stall.any()
                || self.starvation.any()
                || self.handler_delay.any())
    }

    /// A fault stream for `site` (one of the `SITE_*` salts, typically
    /// XOR-mixed with a node or channel index). The seed is scrambled
    /// through one SplitMix64 step so nearby sites get unrelated streams.
    pub fn stream(&self, site: u64) -> FaultStream {
        let mut scramble = SplitMix64::new(self.seed ^ site.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        FaultStream {
            rng: SplitMix64::new(scramble.next_u64()),
        }
    }
}

/// A seeded per-site stream of fault decisions.
#[derive(Clone, Debug)]
pub struct FaultStream {
    rng: SplitMix64,
}

impl FaultStream {
    /// Roll a `rate`-per-million event. A zero rate never draws from the
    /// stream, so disabled fault dimensions consume no entropy.
    pub fn fires(&mut self, per_million: u32) -> bool {
        per_million != 0 && self.rng.below(PER_MILLION) < u64::from(per_million)
    }

    /// A uniform magnitude in `1..=max` (0 if `max` is 0).
    pub fn magnitude(&mut self, max: u64) -> u64 {
        if max == 0 {
            0
        } else {
            self.rng.range(1, max + 1)
        }
    }
}

/// A seeded generator of stall windows: at most one roll per
/// `check_every`-cycle interval, opening a `window_cycles` freeze on success.
#[derive(Clone, Debug)]
pub struct FaultWindows {
    stream: FaultStream,
    rate_per_million: u32,
    window_cycles: u64,
    check_every: u64,
    until: Cycle,
    next_check: Cycle,
    opened: u64,
    newly_opened: Option<Cycle>,
}

impl FaultWindows {
    /// A window generator for `cfg`, drawing from `stream`.
    pub fn new(stream: FaultStream, cfg: &StallFaults) -> FaultWindows {
        FaultWindows {
            stream,
            rate_per_million: cfg.window_per_million,
            window_cycles: cfg.window_cycles,
            check_every: cfg.check_every.max(1),
            until: 0,
            next_check: 0,
            opened: 0,
            newly_opened: None,
        }
    }

    /// Whether the afflicted unit is stalled at `now`. Rolls for a new
    /// window at most once per `check_every` cycles.
    pub fn stalled(&mut self, now: Cycle) -> bool {
        if self.rate_per_million == 0 || self.window_cycles == 0 {
            return false;
        }
        if now < self.until {
            return true;
        }
        if now >= self.next_check {
            self.next_check = now + self.check_every;
            if self.stream.fires(self.rate_per_million) {
                self.until = now + self.window_cycles;
                self.opened += 1;
                self.newly_opened = Some(self.until);
                return true;
            }
        }
        false
    }

    /// Number of windows opened so far.
    pub fn opened(&self) -> u64 {
        self.opened
    }

    /// The end cycle of a window opened since the last call, if any — lets
    /// the owner emit one trace event per window without the generator
    /// holding a tracer itself.
    pub fn take_newly_opened(&mut self) -> Option<Cycle> {
        self.newly_opened.take()
    }
}

/// Aggregated injected-fault and recovery counters, reported in `RunStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Physical packets dropped in flight.
    pub link_drops: u64,
    /// Physical packets discarded by the receiver's CRC check.
    pub link_crc_errors: u64,
    /// Duplicate physical packets emitted.
    pub link_duplicates: u64,
    /// Physical packets delayed in flight.
    pub link_delays: u64,
    /// Retransmissions performed by the link-level retry layer.
    pub link_retransmits: u64,
    /// SDRAM reads with a corrected single-bit error.
    pub ecc_corrected: u64,
    /// SDRAM reads with an uncorrectable multi-bit error.
    pub ecc_uncorrectable: u64,
    /// Dispatch-queue stall windows opened.
    pub dispatch_stall_windows: u64,
    /// Protocol-thread starvation windows opened.
    pub starvation_windows: u64,
    /// Coherence handlers whose dispatch was delayed.
    pub handler_delays: u64,
}

impl FaultSummary {
    /// Whether anything at all was injected or recovered.
    pub fn any(&self) -> bool {
        *self != FaultSummary::default()
    }

    /// Fold another summary in (counters add component-wise).
    pub fn merge(&mut self, other: &FaultSummary) {
        self.link_drops += other.link_drops;
        self.link_crc_errors += other.link_crc_errors;
        self.link_duplicates += other.link_duplicates;
        self.link_delays += other.link_delays;
        self.link_retransmits += other.link_retransmits;
        self.ecc_corrected += other.ecc_corrected;
        self.ecc_uncorrectable += other.ecc_uncorrectable;
        self.dispatch_stall_windows += other.dispatch_stall_windows;
        self.starvation_windows += other.starvation_windows;
        self.handler_delays += other.handler_delays;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inert() {
        let cfg = FaultConfig::default();
        assert!(!cfg.enabled);
        assert!(!cfg.is_active());
        assert!(!cfg.link.any() && !cfg.ecc.any());
    }

    #[test]
    fn chaos_preset_is_active() {
        assert!(FaultConfig::chaos(7).is_active());
    }

    #[test]
    fn streams_are_deterministic_and_site_separated() {
        let cfg = FaultConfig::chaos(0xDEAD);
        let mut a1 = cfg.stream(SITE_ECC ^ 3);
        let mut a2 = cfg.stream(SITE_ECC ^ 3);
        let mut b = cfg.stream(SITE_ECC ^ 4);
        let (mut same, mut diff) = (0, 0);
        for _ in 0..1000 {
            let x = a1.fires(500_000);
            assert_eq!(x, a2.fires(500_000));
            if x == b.fires(500_000) {
                same += 1;
            } else {
                diff += 1;
            }
        }
        // Neighbouring sites must not be correlated.
        assert!(diff > 200, "sites correlated: same={same} diff={diff}");
    }

    #[test]
    fn zero_rate_never_fires_or_draws() {
        let cfg = FaultConfig::chaos(1);
        let mut s = cfg.stream(SITE_LINK);
        let mut t = cfg.stream(SITE_LINK);
        for _ in 0..100 {
            assert!(!s.fires(0));
        }
        // `s` drew nothing: it still agrees with a fresh stream.
        for _ in 0..100 {
            assert_eq!(s.fires(500_000), t.fires(500_000));
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let cfg = FaultConfig::chaos(42);
        let mut s = cfg.stream(SITE_LINK ^ 9);
        let hits = (0..100_000).filter(|_| s.fires(100_000)).count();
        // 10% ± generous slack.
        assert!((8_000..12_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn windows_open_and_close() {
        let cfg = StallFaults {
            window_per_million: 1_000_000, // always
            window_cycles: 10,
            check_every: 100,
        };
        let mut w = FaultWindows::new(FaultConfig::chaos(3).stream(SITE_STARVE), &cfg);
        assert!(w.stalled(0));
        assert_eq!(w.take_newly_opened(), Some(10));
        assert!(w.stalled(9));
        assert!(!w.stalled(50)); // window over, next roll not due until 100
        assert!(w.stalled(100)); // rolls again (rate = certain)
        assert_eq!(w.opened(), 2);
    }

    #[test]
    fn magnitude_in_range() {
        let mut s = FaultConfig::chaos(5).stream(SITE_LINK);
        assert_eq!(s.magnitude(0), 0);
        for _ in 0..100 {
            let m = s.magnitude(7);
            assert!((1..=7).contains(&m));
        }
    }

    #[test]
    fn summary_any() {
        let mut f = FaultSummary::default();
        assert!(!f.any());
        f.link_retransmits = 1;
        assert!(f.any());
    }
}
