//! The global physical address map of the simulated DSM machine.
//!
//! As in a real distributed shared memory machine with integrated memory
//! controllers, the *home node* of every physical address is a fixed function
//! of the address bits. The map used here is:
//!
//! ```text
//!  63        42 41  36 35  32 31                                   0
//! +------------+------+------+--------------------------------------+
//! |   unused   | home | rgn  |        offset within region          |
//! +------------+------+------+--------------------------------------+
//! ```
//!
//! * `home` — the node whose SDRAM backs the address (up to 64 nodes),
//! * `rgn`  — one of the [`Region`]s below,
//! * `offset` — byte offset inside that node's slice of the region.
//!
//! The [`Region::Directory`] region holds the directory entries: one
//! [`DIR_ENTRY_BYTES`]-byte entry per [`L2_LINE`] bytes of application data.
//! The [`Region::ProtocolCode`] region holds protocol handler code. Both are
//! *unmapped* physical memory — the protocol thread accesses them without
//! touching the ITLB/DTLB, exactly as in the paper (§2.1).

use crate::ids::NodeId;
use std::fmt;

/// Coherence granularity: the unified L2 cache line size (paper Table 2).
pub const L2_LINE: u64 = 128;

/// Size of one directory entry in bytes (32-bit entry up to 16 nodes, 64-bit
/// for 32 nodes; we always reserve 8 bytes of directory storage per line).
pub const DIR_ENTRY_BYTES: u64 = 8;

/// Base offset (within [`Region::AppData`]) of the per-thread application
/// code images; workload data structures must stay below this offset.
pub const APP_CODE_BASE: u64 = 0xF000_0000;

/// Fetch address of application-code PC `pc` for context index `ctx_idx`
/// at `node` (each node holds a local replica of the code).
pub fn app_code_addr(node: NodeId, ctx_idx: usize, pc: u32) -> Addr {
    Addr::new(
        node,
        Region::AppData,
        APP_CODE_BASE + ctx_idx as u64 * 0x0100_0000 + pc as u64 * 4,
    )
}

const REGION_SHIFT: u32 = 32;
const HOME_SHIFT: u32 = 36;
const OFFSET_MASK: u64 = (1 << REGION_SHIFT) - 1;

/// The four top-level regions of each node's physical memory.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum Region {
    /// Normal (TLB-mapped) application data, including synchronization words.
    AppData = 0,
    /// Directory entries for lines homed at this node (unmapped).
    Directory = 1,
    /// Coherence protocol handler code (unmapped).
    ProtocolCode = 2,
    /// Coherence protocol private data (unmapped).
    ProtocolData = 3,
}

impl Region {
    fn from_bits(bits: u64) -> Region {
        match bits & 0xf {
            0 => Region::AppData,
            1 => Region::Directory,
            2 => Region::ProtocolCode,
            _ => Region::ProtocolData,
        }
    }
}

/// A 64-bit physical address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Build an address from its components.
    ///
    /// # Panics
    ///
    /// Panics if `offset` overflows the 32-bit per-node region offset.
    #[inline]
    pub fn new(home: NodeId, region: Region, offset: u64) -> Addr {
        assert!(
            offset <= OFFSET_MASK,
            "region offset too large: {offset:#x}"
        );
        Addr(((home.0 as u64) << HOME_SHIFT) | ((region as u64) << REGION_SHIFT) | offset)
    }

    /// The node whose memory controller owns this address.
    #[inline]
    pub fn home(self) -> NodeId {
        NodeId(((self.0 >> HOME_SHIFT) & 0x3f) as u16)
    }

    /// The region this address falls in.
    #[inline]
    pub fn region(self) -> Region {
        Region::from_bits(self.0 >> REGION_SHIFT)
    }

    /// Byte offset within the (node, region) slice.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0 & OFFSET_MASK
    }

    /// The coherence-granularity line containing this address.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 & !(L2_LINE - 1))
    }

    /// True for the unmapped protocol regions that never touch the TLBs.
    #[inline]
    pub fn is_unmapped(self) -> bool {
        !matches!(self.region(), Region::AppData)
    }

    /// Raw address value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}:{:?}+{:#x}",
            self.home(),
            self.region(),
            self.offset()
        )
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<LineAddr> for Addr {
    fn from(l: LineAddr) -> Addr {
        Addr(l.0)
    }
}

/// An address aligned to the coherence granularity ([`L2_LINE`] bytes).
///
/// All directory state, coherence messages and L2 transactions operate on
/// `LineAddr`s.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The home node of the line.
    #[inline]
    pub fn home(self) -> NodeId {
        Addr(self.0).home()
    }

    /// The region of the line.
    #[inline]
    pub fn region(self) -> Region {
        Addr(self.0).region()
    }

    /// Address of the directory entry tracking this application-data line.
    ///
    /// The entry lives in the [`Region::Directory`] region of the line's home
    /// node, at `DIR_ENTRY_BYTES` per `L2_LINE` of data. The protocol thread
    /// (or embedded protocol processor) loads and stores this address when
    /// running handlers.
    ///
    /// # Panics
    ///
    /// Panics if called on a line that is itself in the directory region —
    /// directory entries have no directory entries.
    #[inline]
    pub fn directory_entry(self) -> Addr {
        assert!(
            self.region() != Region::Directory,
            "directory lines are not themselves tracked"
        );
        let a = Addr(self.0);
        Addr::new(
            a.home(),
            Region::Directory,
            (a.offset() / L2_LINE) * DIR_ENTRY_BYTES,
        )
    }

    /// Raw aligned address value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L[{:?}]", Addr(self.0))
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<Addr> for LineAddr {
    fn from(a: Addr) -> LineAddr {
        a.line()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_components() {
        let a = Addr::new(NodeId(13), Region::AppData, 0x1234_5678);
        assert_eq!(a.home(), NodeId(13));
        assert_eq!(a.region(), Region::AppData);
        assert_eq!(a.offset(), 0x1234_5678);
    }

    #[test]
    fn line_alignment() {
        let a = Addr::new(NodeId(2), Region::AppData, 0x1007);
        let l = a.line();
        assert_eq!(l.raw() % L2_LINE, 0);
        assert_eq!(l.home(), NodeId(2));
        assert_eq!(Addr::from(l).offset(), 0x1000);
    }

    #[test]
    fn directory_entry_location() {
        let l = Addr::new(NodeId(5), Region::AppData, 4 * L2_LINE).line();
        let d = l.directory_entry();
        assert_eq!(d.home(), NodeId(5));
        assert_eq!(d.region(), Region::Directory);
        assert_eq!(d.offset(), 4 * DIR_ENTRY_BYTES);
        assert!(d.is_unmapped());
    }

    #[test]
    fn distinct_homes_never_alias() {
        let a = Addr::new(NodeId(0), Region::AppData, 0x100);
        let b = Addr::new(NodeId(1), Region::AppData, 0x100);
        assert_ne!(a.line(), b.line());
    }

    #[test]
    #[should_panic(expected = "directory lines")]
    fn directory_of_directory_panics() {
        Addr::new(NodeId(0), Region::Directory, 0)
            .line()
            .directory_entry();
    }

    #[test]
    #[should_panic(expected = "offset too large")]
    fn oversized_offset_panics() {
        Addr::new(NodeId(0), Region::AppData, 1 << 33);
    }
}
