//! Per-transaction latency phase accounting.
//!
//! Every application L2 miss owns a [`LatencyRecord`]: a vector of cycle
//! timestamps, one per [`PhaseBoundary`], stamped as the transaction crosses
//! each stage of the memory system (MSHR allocation, request network,
//! home dispatch queue, protocol handler, reply network, cache fill,
//! invalidation-ack gather). Phase durations are the *differences between
//! consecutive boundaries*, so the per-phase components telescope and sum
//! exactly to the end-to-end miss latency by construction — the
//! reconciliation property the paper's latency-decomposition figures rely
//! on.
//!
//! Boundaries a transaction never crosses (a local miss has no network
//! legs; an upgrade carries no data reply) are forward-filled from the
//! previous boundary, contributing zero cycles to the skipped phase. The
//! [`PhaseProfiler`] is a cheap-clone handle in the style of
//! `smtp_trace::Tracer`: disabled profilers cost one branch per stamp.

use crate::capture::{self, CapturePoint};
use crate::ids::NodeId;
use crate::stats::{Distribution, Histogram};
use crate::{Cycle, LineAddr};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Transaction flavour, for read-vs-read-exclusive aggregation.
/// Upgrades are accounted as read-exclusive: they acquire write
/// permission, which is what the class distinction is about.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxnClass {
    /// A read (GetS) miss.
    Read,
    /// A read-exclusive (GetX) or upgrade miss.
    ReadExclusive,
}

/// Timestamps recorded over a transaction's lifetime, in causal order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PhaseBoundary {
    /// MSHR allocated; the miss exists.
    Alloc = 0,
    /// Request left the L2 (onto the bus toward the local memory
    /// interface or the network interface).
    ReqSent = 1,
    /// Request arrived at the home node's inbound queue.
    ReqDelivered = 2,
    /// Home dispatched the request to a protocol handler (directory
    /// transition computed; handler occupancy begins). The home also
    /// starts the SDRAM data read here, overlapped with the handler run.
    Dispatched = 3,
    /// Data/ownership reply left the home.
    ReplySent = 4,
    /// Reply arrived back at the requesting node.
    ReplyDelivered = 5,
    /// Line installed in the requester's cache (data usable).
    Filled = 6,
    /// MSHR freed: all invalidation acks gathered, transaction complete.
    Freed = 7,
}

/// Number of boundary timestamps in a [`LatencyRecord`].
pub const NUM_BOUNDARIES: usize = 8;

/// Number of phases (consecutive boundary differences).
pub const NUM_PHASES: usize = NUM_BOUNDARIES - 1;

/// Human-readable phase names, indexed as [`LatencyRecord::phases`].
pub const PHASE_NAMES: [&str; NUM_PHASES] = [
    "issue (LSQ/MSHR + bus)",
    "request network",
    "dispatch queue",
    "handler + SDRAM",
    "reply network",
    "fill (bus + install)",
    "completion (ack gather)",
];

/// Number of aggregation classes in [`LatencyBreakdown`]:
/// {local, remote} x {read, read-exclusive}.
pub const NUM_CLASSES: usize = 4;

/// Names for the four aggregation classes, indexed by
/// [`LatencyBreakdown::class_index`].
pub const CLASS_NAMES: [&str; NUM_CLASSES] = [
    "local read",
    "local read-excl",
    "remote read",
    "remote read-excl",
];

/// Sentinel for a boundary that has not been stamped.
const UNSET: Cycle = Cycle::MAX;

/// The latency life of one miss transaction.
#[derive(Clone, Copy, Debug)]
pub struct LatencyRecord {
    /// Missing line.
    pub line: LineAddr,
    /// Requesting node.
    pub requester: NodeId,
    /// Read vs read-exclusive.
    pub class: TxnClass,
    /// Whether the home node differs from the requester.
    pub remote: bool,
    /// Boundary timestamps; `Cycle::MAX` marks a boundary never crossed.
    t: [Cycle; NUM_BOUNDARIES],
}

impl LatencyRecord {
    fn new(line: LineAddr, requester: NodeId, class: TxnClass, remote: bool, now: Cycle) -> Self {
        let mut t = [UNSET; NUM_BOUNDARIES];
        t[PhaseBoundary::Alloc as usize] = now;
        LatencyRecord {
            line,
            requester,
            class,
            remote,
            t,
        }
    }

    /// Record a boundary crossing. Stamps are max-monotonic: re-stamping a
    /// boundary keeps the latest time, so retried sends settle on the
    /// attempt that actually completed the transaction.
    pub fn stamp(&mut self, b: PhaseBoundary, now: Cycle) {
        let slot = &mut self.t[b as usize];
        if *slot == UNSET || *slot < now {
            *slot = now;
        }
    }

    /// The raw timestamp of a boundary, if it was crossed.
    pub fn boundary(&self, b: PhaseBoundary) -> Option<Cycle> {
        let v = self.t[b as usize];
        (v != UNSET).then_some(v)
    }

    /// Per-phase durations. Boundaries never crossed are forward-filled
    /// from their predecessor (zero-length phase), and out-of-order stamps
    /// are clamped, so `phases().iter().sum() == end_to_end()` always
    /// holds.
    pub fn phases(&self) -> [Cycle; NUM_PHASES] {
        let mut out = [0; NUM_PHASES];
        let mut prev = self.t[0];
        debug_assert_ne!(prev, UNSET, "record without an Alloc stamp");
        for (i, slot) in out.iter_mut().enumerate() {
            let raw = self.t[i + 1];
            let cur = if raw == UNSET { prev } else { raw.max(prev) };
            *slot = cur - prev;
            prev = cur;
        }
        out
    }

    /// Total latency from allocation to the last crossed boundary.
    pub fn end_to_end(&self) -> Cycle {
        self.phases().iter().sum()
    }
}

/// Mergeable aggregate of completed [`LatencyRecord`]s: end-to-end
/// histograms per {local,remote}x{read,read-excl} class, plus per-phase
/// distributions (all misses, and remote-only).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// End-to-end latency per class (see [`CLASS_NAMES`]).
    pub end_to_end: [Histogram; NUM_CLASSES],
    /// Per-phase durations over every accounted miss.
    pub phases: [Distribution; NUM_PHASES],
    /// Per-phase durations over remote misses only — the decomposition the
    /// paper's remote-latency discussion is about.
    pub phases_remote: [Distribution; NUM_PHASES],
}

impl Default for LatencyBreakdown {
    fn default() -> Self {
        LatencyBreakdown {
            end_to_end: std::array::from_fn(|_| Histogram::new()),
            phases: std::array::from_fn(|_| Distribution::new()),
            phases_remote: std::array::from_fn(|_| Distribution::new()),
        }
    }
}

impl LatencyBreakdown {
    /// New, empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index into [`LatencyBreakdown::end_to_end`] / [`CLASS_NAMES`].
    pub fn class_index(remote: bool, class: TxnClass) -> usize {
        usize::from(remote) * 2 + usize::from(class == TxnClass::ReadExclusive)
    }

    /// Fold one completed record in.
    pub fn record(&mut self, rec: &LatencyRecord) {
        let idx = Self::class_index(rec.remote, rec.class);
        self.end_to_end[idx].record(rec.end_to_end());
        let phases = rec.phases();
        for (i, &p) in phases.iter().enumerate() {
            self.phases[i].record(p);
            if rec.remote {
                self.phases_remote[i].record(p);
            }
        }
    }

    /// Merge another breakdown in (exactly associative, like the
    /// underlying histograms).
    pub fn merge(&mut self, other: &LatencyBreakdown) {
        for (a, b) in self.end_to_end.iter_mut().zip(&other.end_to_end) {
            a.merge(b);
        }
        for (a, b) in self.phases.iter_mut().zip(&other.phases) {
            a.merge(b);
        }
        for (a, b) in self.phases_remote.iter_mut().zip(&other.phases_remote) {
            a.merge(b);
        }
    }

    /// Total accounted misses.
    pub fn count(&self) -> u64 {
        self.end_to_end.iter().map(|h| h.count()).sum()
    }
}

struct ProfilerInner {
    /// Transactions in flight, keyed by (requester, line). Directory
    /// serialization guarantees at most one outstanding miss per line per
    /// requester, so the key is unique.
    open: Mutex<HashMap<(NodeId, LineAddr), LatencyRecord>>,
    agg: Mutex<LatencyBreakdown>,
    /// Retain closed records individually (tests / deep analysis).
    keep: AtomicBool,
    closed: Mutex<Vec<LatencyRecord>>,
}

/// One profiler operation, as captured for deterministic parallel replay
/// (see [`crate::capture`]).
#[derive(Clone, Copy, Debug)]
pub enum ProfOp {
    /// A [`PhaseProfiler::start`] call.
    Start {
        /// Requesting node.
        requester: NodeId,
        /// Missing line.
        line: LineAddr,
        /// Read vs read-exclusive.
        class: TxnClass,
        /// Remote home.
        remote: bool,
        /// Allocation cycle.
        now: Cycle,
    },
    /// A [`PhaseProfiler::stamp`] call.
    Stamp {
        /// Requesting node.
        requester: NodeId,
        /// Missing line.
        line: LineAddr,
        /// Boundary crossed.
        b: PhaseBoundary,
        /// Crossing cycle.
        now: Cycle,
    },
    /// A [`PhaseProfiler::close`] call.
    Close {
        /// Requesting node.
        requester: NodeId,
        /// Missing line.
        line: LineAddr,
        /// MSHR-free cycle.
        now: Cycle,
    },
}

thread_local! {
    static CAPTURED_OPS: RefCell<Vec<(CapturePoint, ProfOp)>> = const { RefCell::new(Vec::new()) };
}

/// Drain this thread's captured profiler operations (tagged with the
/// capture point at which each was recorded).
pub fn take_captured_prof_ops() -> Vec<(CapturePoint, ProfOp)> {
    CAPTURED_OPS.with(|b| std::mem::take(&mut *b.borrow_mut()))
}

/// Cheap-clone handle to the phase-accounting state, threaded through the
/// cache hierarchy, node dispatch logic and network the same way the
/// `Tracer` is. A disabled profiler (`PhaseProfiler::disabled`) makes every
/// call a no-op costing one branch.
#[derive(Clone, Default)]
pub struct PhaseProfiler {
    inner: Option<Arc<ProfilerInner>>,
}

impl std::fmt::Debug for PhaseProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhaseProfiler")
            .field("enabled", &self.is_enabled())
            .field("open", &self.open_count())
            .finish()
    }
}

impl PhaseProfiler {
    /// An enabled profiler.
    pub fn new() -> Self {
        PhaseProfiler {
            inner: Some(Arc::new(ProfilerInner {
                open: Mutex::new(HashMap::new()),
                agg: Mutex::new(LatencyBreakdown::new()),
                keep: AtomicBool::new(false),
                closed: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A no-op profiler.
    pub fn disabled() -> Self {
        PhaseProfiler { inner: None }
    }

    /// Whether stamps are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Retain each closed [`LatencyRecord`] (off by default; aggregation
    /// always happens).
    pub fn keep_records(&self, keep: bool) {
        if let Some(inner) = &self.inner {
            inner.keep.store(keep, Ordering::Relaxed);
        }
    }

    /// Apply one operation to the real state (shared by the direct path
    /// and [`PhaseProfiler::replay_captured`]).
    fn apply(inner: &ProfilerInner, op: ProfOp) {
        match op {
            ProfOp::Start {
                requester,
                line,
                class,
                remote,
                now,
            } => {
                inner.open.lock().unwrap().insert(
                    (requester, line),
                    LatencyRecord::new(line, requester, class, remote, now),
                );
            }
            ProfOp::Stamp {
                requester,
                line,
                b,
                now,
            } => {
                if let Some(rec) = inner.open.lock().unwrap().get_mut(&(requester, line)) {
                    rec.stamp(b, now);
                }
            }
            ProfOp::Close {
                requester,
                line,
                now,
            } => {
                let Some(mut rec) = inner.open.lock().unwrap().remove(&(requester, line)) else {
                    return;
                };
                rec.stamp(PhaseBoundary::Freed, now);
                inner.agg.lock().unwrap().record(&rec);
                if inner.keep.load(Ordering::Relaxed) {
                    inner.closed.lock().unwrap().push(rec);
                }
            }
        }
    }

    /// Run `op`: capture it when this thread is in capture mode (parallel
    /// workers), apply it directly otherwise.
    #[inline]
    fn op(&self, op: ProfOp) {
        let Some(inner) = &self.inner else { return };
        if capture::is_active() {
            CAPTURED_OPS.with(|b| b.borrow_mut().push((capture::point(), op)));
            return;
        }
        Self::apply(inner, op);
    }

    /// Replay captured operations (already merged into serial order by the
    /// caller) against the real state.
    pub fn replay_captured(&self, ops: &[(CapturePoint, ProfOp)]) {
        let Some(inner) = &self.inner else { return };
        for &(_, op) in ops {
            Self::apply(inner, op);
        }
    }

    /// Open a transaction at MSHR-allocation time.
    pub fn start(
        &self,
        requester: NodeId,
        line: LineAddr,
        class: TxnClass,
        remote: bool,
        now: Cycle,
    ) {
        self.op(ProfOp::Start {
            requester,
            line,
            class,
            remote,
            now,
        });
    }

    /// Stamp a boundary on the open transaction for `(requester, line)`.
    /// A no-op if no such transaction is open — protocol-thread and
    /// instruction-fetch misses are never started, so stamps keyed off
    /// their messages fall through harmlessly.
    pub fn stamp(&self, requester: NodeId, line: LineAddr, b: PhaseBoundary, now: Cycle) {
        self.op(ProfOp::Stamp {
            requester,
            line,
            b,
            now,
        });
    }

    /// Close the transaction at MSHR-free time, folding it into the
    /// aggregate. A no-op if the transaction was never opened.
    pub fn close(&self, requester: NodeId, line: LineAddr, now: Cycle) {
        self.op(ProfOp::Close {
            requester,
            line,
            now,
        });
    }

    /// The aggregate over all closed transactions.
    pub fn breakdown(&self) -> LatencyBreakdown {
        match &self.inner {
            Some(inner) => inner.agg.lock().unwrap().clone(),
            None => LatencyBreakdown::new(),
        }
    }

    /// Retained individual records (empty unless
    /// [`PhaseProfiler::keep_records`] was turned on).
    pub fn records(&self) -> Vec<LatencyRecord> {
        match &self.inner {
            Some(inner) => inner.closed.lock().unwrap().clone(),
            None => Vec::new(),
        }
    }

    /// Transactions currently open (should be zero once a run quiesces).
    pub fn open_count(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.open.lock().unwrap().len(),
            None => 0,
        }
    }

    /// Snapshot of the transactions still in flight, oldest allocation
    /// first — the watchdog's stalled-transaction evidence. Ties break on
    /// (requester, line) so the order is deterministic.
    pub fn open_records(&self) -> Vec<LatencyRecord> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut recs: Vec<LatencyRecord> = inner.open.lock().unwrap().values().copied().collect();
        recs.sort_by_key(|r| {
            (
                r.boundary(PhaseBoundary::Alloc).unwrap_or(Cycle::MAX),
                r.requester.0,
                r.line.raw(),
            )
        });
        recs
    }

    /// The most recent boundary a record crossed, with its timestamp —
    /// "where the transaction is stuck".
    pub fn last_progress(rec: &LatencyRecord) -> (PhaseBoundary, Cycle) {
        const ALL: [PhaseBoundary; NUM_BOUNDARIES] = [
            PhaseBoundary::Alloc,
            PhaseBoundary::ReqSent,
            PhaseBoundary::ReqDelivered,
            PhaseBoundary::Dispatched,
            PhaseBoundary::ReplySent,
            PhaseBoundary::ReplyDelivered,
            PhaseBoundary::Filled,
            PhaseBoundary::Freed,
        ];
        let mut best = (PhaseBoundary::Alloc, 0);
        for b in ALL {
            if let Some(t) = rec.boundary(b) {
                best = (b, t);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Addr, Region};

    fn line(n: u64) -> LineAddr {
        Addr::new(NodeId(1), Region::AppData, n * 128).line()
    }

    fn full_record() -> LatencyRecord {
        let mut r = LatencyRecord::new(line(0), NodeId(0), TxnClass::ReadExclusive, true, 100);
        r.stamp(PhaseBoundary::ReqSent, 104);
        r.stamp(PhaseBoundary::ReqDelivered, 140);
        r.stamp(PhaseBoundary::Dispatched, 152);
        r.stamp(PhaseBoundary::ReplySent, 210);
        r.stamp(PhaseBoundary::ReplyDelivered, 250);
        r.stamp(PhaseBoundary::Filled, 262);
        r.stamp(PhaseBoundary::Freed, 270);
        r
    }

    #[test]
    fn phases_telescope_to_end_to_end() {
        let r = full_record();
        assert_eq!(r.phases(), [4, 36, 12, 58, 40, 12, 8]);
        assert_eq!(r.end_to_end(), 170);
        assert_eq!(r.phases().iter().sum::<Cycle>(), r.end_to_end());
    }

    #[test]
    fn unset_boundaries_forward_fill_as_zero_phases() {
        // A local miss never crosses the network boundaries.
        let mut r = LatencyRecord::new(line(0), NodeId(0), TxnClass::Read, false, 10);
        r.stamp(PhaseBoundary::ReqSent, 14);
        r.stamp(PhaseBoundary::Dispatched, 30);
        r.stamp(PhaseBoundary::Filled, 90);
        r.stamp(PhaseBoundary::Freed, 90);
        let p = r.phases();
        assert_eq!(p[1], 0, "request-network phase skipped");
        assert_eq!(p[4], 0, "reply-network phase skipped");
        assert_eq!(p.iter().sum::<Cycle>(), r.end_to_end());
        assert_eq!(r.end_to_end(), 80);
    }

    #[test]
    fn restamp_keeps_latest() {
        let mut r = LatencyRecord::new(line(0), NodeId(0), TxnClass::Read, true, 0);
        r.stamp(PhaseBoundary::ReqSent, 5);
        r.stamp(PhaseBoundary::ReqSent, 9); // retried send
        r.stamp(PhaseBoundary::ReqSent, 3); // stale stamp ignored
        assert_eq!(r.boundary(PhaseBoundary::ReqSent), Some(9));
    }

    #[test]
    fn profiler_lifecycle_and_aggregation() {
        let p = PhaseProfiler::new();
        p.keep_records(true);
        p.start(NodeId(0), line(1), TxnClass::Read, true, 100);
        assert_eq!(p.open_count(), 1);
        p.stamp(NodeId(0), line(1), PhaseBoundary::ReqSent, 104);
        // A stamp for a transaction that was never started is a no-op.
        p.stamp(NodeId(3), line(9), PhaseBoundary::ReqSent, 104);
        p.close(NodeId(0), line(1), 300);
        assert_eq!(p.open_count(), 0);
        let agg = p.breakdown();
        assert_eq!(agg.count(), 1);
        let idx = LatencyBreakdown::class_index(true, TxnClass::Read);
        assert_eq!(agg.end_to_end[idx].count(), 1);
        assert_eq!(agg.end_to_end[idx].max(), 200);
        let recs = p.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].end_to_end(), 200);
        // Closing an unknown transaction is a no-op.
        p.close(NodeId(5), line(2), 400);
        assert_eq!(p.breakdown().count(), 1);
    }

    #[test]
    fn disabled_profiler_is_inert() {
        let p = PhaseProfiler::disabled();
        assert!(!p.is_enabled());
        p.start(NodeId(0), line(1), TxnClass::Read, false, 0);
        p.stamp(NodeId(0), line(1), PhaseBoundary::Filled, 50);
        p.close(NodeId(0), line(1), 60);
        assert_eq!(p.open_count(), 0);
        assert_eq!(p.breakdown().count(), 0);
        assert!(p.records().is_empty());
    }

    #[test]
    fn breakdown_merge_matches_single_stream() {
        let (mut a, mut b, mut all) = (
            LatencyBreakdown::new(),
            LatencyBreakdown::new(),
            LatencyBreakdown::new(),
        );
        for i in 0..10u64 {
            let mut r = LatencyRecord::new(
                line(i),
                NodeId(0),
                if i % 2 == 0 {
                    TxnClass::Read
                } else {
                    TxnClass::ReadExclusive
                },
                i % 3 == 0,
                i * 10,
            );
            r.stamp(PhaseBoundary::Filled, i * 10 + 40 + i);
            r.stamp(PhaseBoundary::Freed, i * 10 + 50 + i);
            if i < 5 { &mut a } else { &mut b }.record(&r);
            all.record(&r);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
    }

    #[test]
    fn captured_ops_replay_to_identical_state() {
        // Direct path.
        let direct = PhaseProfiler::new();
        direct.start(NodeId(0), line(1), TxnClass::Read, true, 100);
        direct.stamp(NodeId(0), line(1), PhaseBoundary::ReqSent, 104);
        direct.close(NodeId(0), line(1), 300);

        // Captured path: same ops recorded under capture, then replayed.
        let replayed = PhaseProfiler::new();
        crate::capture::begin((100, 1, 0));
        replayed.start(NodeId(0), line(1), TxnClass::Read, true, 100);
        replayed.stamp(NodeId(0), line(1), PhaseBoundary::ReqSent, 104);
        replayed.close(NodeId(0), line(1), 300);
        crate::capture::end();
        assert_eq!(replayed.breakdown().count(), 0, "capture defers effects");
        let ops = take_captured_prof_ops();
        assert_eq!(ops.len(), 3);
        replayed.replay_captured(&ops);
        assert_eq!(replayed.breakdown(), direct.breakdown());
    }

    #[test]
    fn class_index_mapping() {
        assert_eq!(LatencyBreakdown::class_index(false, TxnClass::Read), 0);
        assert_eq!(
            LatencyBreakdown::class_index(false, TxnClass::ReadExclusive),
            1
        );
        assert_eq!(LatencyBreakdown::class_index(true, TxnClass::Read), 2);
        assert_eq!(
            LatencyBreakdown::class_index(true, TxnClass::ReadExclusive),
            3
        );
    }
}
