//! Node and hardware-context identifiers.

use std::fmt;

/// Maximum number of application thread contexts per node (paper: 1, 2 or 4).
pub const MAX_APP_THREADS: usize = 4;

/// Maximum hardware contexts per node: application threads plus the
/// statically-bound protocol thread context.
pub const MAX_CTX: usize = MAX_APP_THREADS + 1;

/// Identifier of a node in the DSM machine (0..`num_nodes`).
///
/// The paper evaluates 1- to 32-node systems; the sharer bitvector
/// ([`crate::SharerSet`]) supports up to 64 nodes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Index usable for `Vec` lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// A hardware thread context within one node's SMT pipeline.
///
/// Contexts `0..app_threads` run application code; the context returned by
/// [`Ctx::protocol`] is the statically bound coherence protocol thread of the
/// SMTp architecture (present but idle in non-SMTp machine models).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ctx(pub u8);

impl Ctx {
    /// The protocol thread context (always the last context slot).
    pub const PROTOCOL: Ctx = Ctx(MAX_APP_THREADS as u8);

    /// Context of the protocol thread.
    #[inline]
    pub fn protocol() -> Ctx {
        Self::PROTOCOL
    }

    /// Whether this context is the protocol thread.
    #[inline]
    pub fn is_protocol(self) -> bool {
        self == Self::PROTOCOL
    }

    /// Index usable for array lookups (`0..MAX_CTX`).
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Ctx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_protocol() {
            write!(f, "PT")
        } else {
            write!(f, "T{}", self.0)
        }
    }
}

impl fmt::Display for Ctx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_ctx_is_last_slot() {
        assert_eq!(Ctx::protocol().idx(), MAX_CTX - 1);
        assert!(Ctx::protocol().is_protocol());
        assert!(!Ctx(0).is_protocol());
    }

    #[test]
    fn node_id_formats() {
        assert_eq!(format!("{:?}", NodeId(3)), "N3");
        assert_eq!(format!("{}", NodeId(3)), "node3");
        assert_eq!(NodeId::from(7u16).idx(), 7);
    }

    #[test]
    fn ctx_formats() {
        assert_eq!(format!("{:?}", Ctx(1)), "T1");
        assert_eq!(format!("{:?}", Ctx::protocol()), "PT");
    }
}
