//! Statistics primitives used by the experiment harness.

/// Tracks the peak and the running value of an occupancy counter, e.g. the
/// protocol thread's share of integer registers (paper Table 9).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeakTracker {
    current: u64,
    peak: u64,
}

impl PeakTracker {
    /// A tracker starting at zero.
    pub fn new() -> PeakTracker {
        PeakTracker::default()
    }

    /// Increase the current occupancy.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.current += n;
        if self.current > self.peak {
            self.peak = self.current;
        }
    }

    /// Decrease the current occupancy.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the counter would go negative — that
    /// always indicates a resource-accounting bug in the pipeline.
    #[inline]
    pub fn sub(&mut self, n: u64) {
        debug_assert!(self.current >= n, "occupancy underflow");
        self.current = self.current.saturating_sub(n);
    }

    /// Set the current occupancy to an absolute value.
    #[inline]
    pub fn set(&mut self, n: u64) {
        self.current = n;
        if n > self.peak {
            self.peak = n;
        }
    }

    /// Current occupancy.
    #[inline]
    pub fn current(&self) -> u64 {
        self.current
    }

    /// Peak occupancy observed so far.
    #[inline]
    pub fn peak(&self) -> u64 {
        self.peak
    }
}

/// Running mean over `f64` samples (for "average of per-node peaks" style
/// aggregations in the paper's tables).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunningStat {
    n: u64,
    sum: f64,
    max: f64,
}

impl RunningStat {
    /// An empty statistic.
    pub fn new() -> RunningStat {
        RunningStat::default()
    }

    /// Record one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        if self.n == 1 || x > self.max {
            self.max = x;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Maximum sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut p = PeakTracker::new();
        p.add(3);
        p.add(2);
        p.sub(4);
        p.add(1);
        assert_eq!(p.current(), 2);
        assert_eq!(p.peak(), 5);
        p.set(10);
        assert_eq!(p.peak(), 10);
    }

    #[test]
    fn running_stat_mean_max() {
        let mut s = RunningStat::new();
        assert_eq!(s.mean(), 0.0);
        for x in [1.0, 2.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 4.0).abs() < 1e-12);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.sum(), 12.0);
    }

    #[test]
    fn running_stat_handles_negative_samples() {
        let mut s = RunningStat::new();
        s.push(-5.0);
        s.push(-1.0);
        assert_eq!(s.max(), -1.0);
        assert!((s.mean() + 3.0).abs() < 1e-12);
    }
}
