//! Statistics primitives used by the experiment harness: counters, peak
//! trackers, and the log2-bucketed [`Histogram`] / [`Distribution`] pair
//! every component's `*Stats` struct uses for latency and occupancy
//! distributions. Histograms are built from integer fields only, so merging
//! per-node instances is *exactly* associative — machine-wide aggregates do
//! not depend on the merge order.

/// Number of [`Histogram`] buckets: bucket 0 holds the value 0, bucket `k`
/// (k ≥ 1) holds values in `[2^(k-1), 2^k - 1]`; bucket 64 tops out at
/// `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples (cycle latencies, queue
/// depths). Recording is O(1); buckets are powers of two, so percentile
/// estimates are exact to within a factor of two and are refined by linear
/// interpolation inside the bucket (and clamped to the observed min/max).
///
/// All state is integral, so [`Histogram::merge`] is exactly associative
/// and commutative.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Bucket index holding value `v`.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive value range `[lo, hi]` of bucket `k`.
    pub fn bucket_bounds(k: usize) -> (u64, u64) {
        debug_assert!(k < HISTOGRAM_BUCKETS);
        if k == 0 {
            (0, 0)
        } else if k == 64 {
            (1 << 63, u64::MAX)
        } else {
            (1 << (k - 1), (1 << k) - 1)
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one (exactly associative).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Estimate the `p`-th percentile (`0.0 ..= 100.0`). The estimate lies
    /// in the same log2 bucket as the exact order statistic and is linearly
    /// interpolated by rank within it, clamped to the observed min/max.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        if target == 1 {
            return self.min;
        }
        if target == self.count {
            return self.max;
        }
        let mut cum = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cum + n >= target {
                let (lo, hi) = Self::bucket_bounds(k);
                let within = (target - cum - 1) as f64 / n as f64;
                let est = lo + ((hi - lo) as f64 * within) as u64;
                return est.clamp(self.min.max(lo), self.max.min(hi));
            }
            cum += n;
        }
        self.max
    }

    /// Non-empty buckets as `(lo, hi, count)` triples, in value order (for
    /// report/JSON rendering).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(k, &n)| {
                let (lo, hi) = Self::bucket_bounds(k);
                (lo, hi, n)
            })
    }
}

/// A [`Histogram`] extended with an exact sum of squares, giving mean,
/// standard deviation and percentiles. Like the histogram it merges
/// exactly associatively across nodes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Distribution {
    hist: Histogram,
    sumsq: u128,
}

impl Distribution {
    /// An empty distribution.
    pub fn new() -> Distribution {
        Distribution::default()
    }

    /// Record one sample. The sum of squares uses wrapping arithmetic —
    /// still exactly associative under merge; [`Distribution::stddev`] is
    /// meaningful as long as the true sum of squares fits in a `u128`,
    /// which any realistic set of cycle counts satisfies.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.hist.record(v);
        self.sumsq = self.sumsq.wrapping_add((v as u128).wrapping_mul(v as u128));
    }

    /// Fold another distribution into this one (exactly associative).
    pub fn merge(&mut self, other: &Distribution) {
        self.hist.merge(&other.hist);
        self.sumsq = self.sumsq.wrapping_add(other.sumsq);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.hist.is_empty()
    }

    /// Sum of samples.
    pub fn sum(&self) -> u128 {
        self.hist.sum()
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> u64 {
        self.hist.min()
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.hist.max()
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.hist.mean()
    }

    /// Population standard deviation (0 if empty).
    pub fn stddev(&self) -> f64 {
        let n = self.hist.count();
        if n == 0 {
            return 0.0;
        }
        let mean = self.mean();
        let ex2 = self.sumsq as f64 / n as f64;
        (ex2 - mean * mean).max(0.0).sqrt()
    }

    /// Estimate the `p`-th percentile (see [`Histogram::percentile`]).
    pub fn percentile(&self, p: f64) -> u64 {
        self.hist.percentile(p)
    }

    /// The underlying histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }
}

/// Tracks the peak and the running value of an occupancy counter, e.g. the
/// protocol thread's share of integer registers (paper Table 9).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeakTracker {
    current: u64,
    peak: u64,
}

impl PeakTracker {
    /// A tracker starting at zero.
    pub fn new() -> PeakTracker {
        PeakTracker::default()
    }

    /// Increase the current occupancy.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.current += n;
        if self.current > self.peak {
            self.peak = self.current;
        }
    }

    /// Decrease the current occupancy.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the counter would go negative — that
    /// always indicates a resource-accounting bug in the pipeline.
    #[inline]
    pub fn sub(&mut self, n: u64) {
        debug_assert!(self.current >= n, "occupancy underflow");
        self.current = self.current.saturating_sub(n);
    }

    /// Set the current occupancy to an absolute value.
    #[inline]
    pub fn set(&mut self, n: u64) {
        self.current = n;
        if n > self.peak {
            self.peak = n;
        }
    }

    /// Current occupancy.
    #[inline]
    pub fn current(&self) -> u64 {
        self.current
    }

    /// Peak occupancy observed so far.
    #[inline]
    pub fn peak(&self) -> u64 {
        self.peak
    }
}

/// Running mean over `f64` samples (for "average of per-node peaks" style
/// aggregations in the paper's tables).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunningStat {
    n: u64,
    sum: f64,
    max: f64,
}

impl RunningStat {
    /// An empty statistic.
    pub fn new() -> RunningStat {
        RunningStat::default()
    }

    /// Record one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        if self.n == 1 || x > self.max {
            self.max = x;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Maximum sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut p = PeakTracker::new();
        p.add(3);
        p.add(2);
        p.sub(4);
        p.add(1);
        assert_eq!(p.current(), 2);
        assert_eq!(p.peak(), 5);
        p.set(10);
        assert_eq!(p.peak(), 10);
    }

    #[test]
    fn running_stat_mean_max() {
        let mut s = RunningStat::new();
        assert_eq!(s.mean(), 0.0);
        for x in [1.0, 2.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 4.0).abs() < 1e-12);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.sum(), 12.0);
    }

    #[test]
    fn running_stat_handles_negative_samples() {
        let mut s = RunningStat::new();
        s.push(-5.0);
        s.push(-1.0);
        assert_eq!(s.max(), -1.0);
        assert!((s.mean() + 3.0).abs() < 1e-12);
    }

    // ----------------------- histogram / distribution -----------------------

    use crate::rng::SplitMix64;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        for k in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(k);
            assert_eq!(Histogram::bucket_of(lo), k);
            assert_eq!(Histogram::bucket_of(hi), k);
        }
    }

    #[test]
    fn histogram_exact_moments() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 5, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 111);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 22.2).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
        let d = Distribution::new();
        assert_eq!(d.stddev(), 0.0);
    }

    #[test]
    fn distribution_stddev_matches_direct_computation() {
        let samples = [10u64, 20, 30, 40, 50];
        let mut d = Distribution::new();
        for &v in &samples {
            d.record(v);
        }
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        let var = samples
            .iter()
            .map(|&v| (v as f64 - mean) * (v as f64 - mean))
            .sum::<f64>()
            / samples.len() as f64;
        assert!((d.mean() - mean).abs() < 1e-9);
        assert!((d.stddev() - var.sqrt()).abs() < 1e-9);
    }

    /// Merge must be exactly associative (and commutative): folding per-node
    /// histograms in any grouping yields identical state. Integer-only
    /// fields make this an equality, not an approximation.
    #[test]
    fn merge_is_exactly_associative() {
        let mut rng = SplitMix64::new(0x5eed_0001);
        for _ in 0..20 {
            let parts: Vec<Distribution> = (0..3)
                .map(|_| {
                    let mut d = Distribution::new();
                    for _ in 0..rng.below(200) {
                        // Mix magnitudes so many buckets are exercised.
                        let v = rng.next_u64() >> (rng.below(64) as u32);
                        d.record(v);
                    }
                    d
                })
                .collect();
            let (a, b, c) = (&parts[0], &parts[1], &parts[2]);
            // (a ⊕ b) ⊕ c
            let mut left = a.clone();
            left.merge(b);
            left.merge(c);
            // a ⊕ (b ⊕ c)
            let mut bc = b.clone();
            bc.merge(c);
            let mut right = a.clone();
            right.merge(&bc);
            assert_eq!(left, right);
            // c ⊕ b ⊕ a (commutativity)
            let mut rev = c.clone();
            rev.merge(b);
            rev.merge(a);
            assert_eq!(left, rev);
        }
    }

    /// Percentile estimates checked against a brute-force sorted-vector
    /// oracle: the estimate must land in the same log2 bucket as the exact
    /// order statistic (factor-of-two bound) and at the observed extremes
    /// for p0/p100.
    #[test]
    fn percentile_matches_sorted_oracle_within_bucket() {
        let mut rng = SplitMix64::new(0xdead_beef_cafe);
        for case in 0..10 {
            let n = 1 + rng.below(500) as usize;
            let mut h = Histogram::new();
            let mut vals: Vec<u64> = Vec::with_capacity(n);
            for _ in 0..n {
                let v = match case % 3 {
                    0 => rng.below(1000),                          // uniform small
                    1 => rng.next_u64() >> (rng.below(60) as u32), // wide magnitudes
                    _ => 100 + rng.below(8),                       // tight cluster
                };
                h.record(v);
                vals.push(v);
            }
            vals.sort_unstable();
            for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0] {
                let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
                let exact = vals[rank - 1];
                let est = h.percentile(p);
                assert_eq!(
                    Histogram::bucket_of(est),
                    Histogram::bucket_of(exact),
                    "case {case} p{p}: estimate {est} not in bucket of exact {exact}"
                );
            }
            assert_eq!(h.percentile(0.0), vals[0], "p0 must be the minimum");
            assert_eq!(
                h.percentile(100.0),
                *vals.last().unwrap(),
                "p100 must be the maximum"
            );
        }
    }

    #[test]
    fn nonzero_buckets_cover_all_samples() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 3, 1000, 1 << 40] {
            h.record(v);
        }
        let total: u64 = h.nonzero_buckets().map(|(_, _, n)| n).sum();
        assert_eq!(total, h.count());
        // Buckets come out in ascending value order.
        let los: Vec<u64> = h.nonzero_buckets().map(|(lo, _, _)| lo).collect();
        let mut sorted = los.clone();
        sorted.sort_unstable();
        assert_eq!(los, sorted);
    }
}
