//! Causal transaction spans.
//!
//! A [`SpanId`] names one coherence transaction: it is allocated when an L2
//! miss allocates an MSHR and is inherited by every message, intervention,
//! invalidation, writeback, retransmission and handler activation that the
//! transaction causes. Threading the span through the simulator lets the
//! trace subsystem reconstruct a per-transaction causal DAG from the event
//! stream (see `smtp_trace::causal`) the same way distributed tracers stitch
//! RPC spans together.
//!
//! Identifiers are allocated per node: the high 16 bits carry the allocating
//! node, the low 48 bits a per-node sequence number starting at 1. Each node
//! allocates in its own deterministic execution order, so span values are
//! bit-identical between the serial and parallel engines without any global
//! coordination.

use crate::ids::NodeId;
use std::fmt;

/// Identifier of one coherence transaction (an L2-miss span).
///
/// `SpanId::NONE` (the all-zero value, also the `Default`) marks events and
/// messages that belong to no transaction — e.g. sync traffic or events
/// emitted before span threading begins.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(pub u64);

const NODE_SHIFT: u32 = 48;

impl SpanId {
    /// "No transaction": the default span carried by messages and events
    /// that are not part of any miss transaction.
    pub const NONE: SpanId = SpanId(0);

    /// The `seq`-th span allocated by `node` (`seq` starts at 1).
    #[inline]
    pub fn new(node: NodeId, seq: u64) -> SpanId {
        debug_assert!(seq < 1 << NODE_SHIFT, "span sequence overflow");
        SpanId(((node.0 as u64) << NODE_SHIFT) | seq)
    }

    /// Whether this is a real transaction span (not [`SpanId::NONE`]).
    #[inline]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }

    /// The node that allocated this span.
    #[inline]
    pub fn node(self) -> NodeId {
        NodeId((self.0 >> NODE_SHIFT) as u16)
    }

    /// The per-node sequence number (1-based).
    #[inline]
    pub fn seq(self) -> u64 {
        self.0 & ((1 << NODE_SHIFT) - 1)
    }

    /// The packed 64-bit value (used as the flow-event id in Chrome traces).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_some() {
            write!(f, "S{}.{}", self.node().0, self.seq())
        } else {
            write!(f, "S-")
        }
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Per-node span allocator; lives in each node's memory hierarchy so
/// allocation order is the node's own deterministic execution order.
#[derive(Clone, Debug)]
pub struct SpanAlloc {
    node: NodeId,
    next_seq: u64,
}

impl SpanAlloc {
    /// An allocator for `node`, starting at sequence 1.
    pub fn new(node: NodeId) -> SpanAlloc {
        SpanAlloc { node, next_seq: 1 }
    }

    /// Allocate the next span.
    #[allow(clippy::should_implement_trait)] // not an iterator: never exhausts
    #[inline]
    pub fn next(&mut self) -> SpanId {
        let s = SpanId::new(self.node, self.next_seq);
        self.next_seq += 1;
        s
    }

    /// Number of spans allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next_seq - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_round_trips() {
        let s = SpanId::new(NodeId(31), 12345);
        assert!(s.is_some());
        assert_eq!(s.node(), NodeId(31));
        assert_eq!(s.seq(), 12345);
        assert_eq!(format!("{s}"), "S31.12345");
        assert_eq!(format!("{}", SpanId::NONE), "S-");
    }

    #[test]
    fn allocator_is_sequential_per_node() {
        let mut a = SpanAlloc::new(NodeId(2));
        assert_eq!(a.next(), SpanId::new(NodeId(2), 1));
        assert_eq!(a.next(), SpanId::new(NodeId(2), 2));
        assert_eq!(a.allocated(), 2);
        // Different nodes never collide.
        let mut b = SpanAlloc::new(NodeId(3));
        assert_ne!(b.next(), SpanId::new(NodeId(2), 1));
    }

    #[test]
    fn none_is_default_and_distinct() {
        assert_eq!(SpanId::default(), SpanId::NONE);
        assert!(!SpanId::NONE.is_some());
        assert_ne!(SpanId::new(NodeId(0), 1), SpanId::NONE);
    }
}
