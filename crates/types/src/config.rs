//! Machine configuration: every knob from paper Tables 2 (processor),
//! 3 (memory system) and 4 (machine models).

use crate::ids::MAX_APP_THREADS;

/// The five machine models compared in the paper (Table 4).
///
/// All directory-protocol execution happens either on an embedded
/// programmable dual-issue protocol processor (`Base`, `IntPerfect`,
/// `Int512KB`, `Int64KB`) or — in `SMTp` — on a protocol thread context of
/// the main SMT pipeline together with a *standard* integrated memory
/// controller.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MachineModel {
    /// Non-integrated protocol processor / memory controller at a fixed
    /// 400 MHz with a 512 KB direct-mapped directory data cache
    /// (an SGI-Origin-2000-like design).
    Base,
    /// Integrated PP/MC running at full processor frequency with a perfect
    /// (always hitting) directory data cache: the aggressive upper bound.
    IntPerfect,
    /// Integrated PP/MC at half processor frequency, 512 KB DM directory
    /// data cache.
    Int512KB,
    /// Integrated PP/MC at half processor frequency, 64 KB DM directory
    /// data cache: the realistic single-cycle-access design point.
    Int64KB,
    /// The paper's proposal: standard integrated MC (no protocol processor)
    /// at half processor frequency; coherence handlers run on the SMT
    /// protocol thread.
    SMTp,
}

impl MachineModel {
    /// All models, in the order the paper's figures present them.
    pub const ALL: [MachineModel; 5] = [
        MachineModel::Base,
        MachineModel::IntPerfect,
        MachineModel::Int512KB,
        MachineModel::Int64KB,
        MachineModel::SMTp,
    ];

    /// Whether the coherence protocol runs on the SMT protocol thread.
    pub fn uses_protocol_thread(self) -> bool {
        matches!(self, MachineModel::SMTp)
    }

    /// Whether the node has an embedded protocol processor.
    pub fn has_protocol_engine(self) -> bool {
        !self.uses_protocol_thread()
    }

    /// Directory data cache capacity in KB; `None` means a perfect cache.
    /// `SMTp` has no directory cache at all (directory accesses go through
    /// the shared L1D/L2), which is also reported as `None` here — check
    /// [`MachineModel::uses_protocol_thread`] first.
    pub fn dir_cache_kb(self) -> Option<u32> {
        match self {
            MachineModel::Base | MachineModel::Int512KB => Some(512),
            MachineModel::Int64KB => Some(64),
            MachineModel::IntPerfect | MachineModel::SMTp => None,
        }
    }

    /// Memory-controller clock divisor relative to the CPU clock.
    ///
    /// `Base` keeps its off-chip controller at 400 MHz regardless of CPU
    /// frequency (paper §4.2); the integrated models run at half CPU speed
    /// except `IntPerfect` which runs at full speed.
    pub fn mc_divisor(self, cpu_ghz: f64) -> u64 {
        match self {
            MachineModel::Base => ((cpu_ghz * 1000.0) / 400.0).round() as u64,
            MachineModel::IntPerfect => 1,
            _ => 2,
        }
    }

    /// Short label used in table/figure output.
    pub fn label(self) -> &'static str {
        match self {
            MachineModel::Base => "Base",
            MachineModel::IntPerfect => "IntPerfect",
            MachineModel::Int512KB => "Int512KB",
            MachineModel::Int64KB => "Int64KB",
            MachineModel::SMTp => "SMTp",
        }
    }
}

impl std::fmt::Display for MachineModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Geometry and latency of one cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Line size in bytes (power of two).
    pub line: u64,
    /// Associativity (ways).
    pub ways: u32,
    /// Access (hit) latency in CPU cycles.
    pub hit_cycles: u64,
}

impl CacheParams {
    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity / (self.line * self.ways as u64)
    }
}

/// Out-of-order SMT pipeline parameters (paper Table 2).
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineParams {
    /// Instructions fetched per cycle (from up to [`Self::fetch_threads`]).
    pub fetch_width: usize,
    /// Threads fetched from per cycle (ICOUNT.2.8).
    pub fetch_threads: usize,
    /// Decode queue slots (shared; one reserved for the protocol thread).
    pub decode_queue: usize,
    /// Rename queue slots (shared; one reserved for the protocol thread).
    pub rename_queue: usize,
    /// Branch target buffer sets.
    pub btb_sets: usize,
    /// Branch target buffer ways.
    pub btb_ways: usize,
    /// Return address stack entries (per thread).
    pub ras_entries: usize,
    /// Active list (per-thread reorder buffer) entries.
    pub active_list: usize,
    /// Branch stack entries: maximum in-flight branches (shared; one
    /// reserved for the protocol thread).
    pub branch_stack: usize,
    /// Extra integer rename registers beyond the architected
    /// `32 × (threads + 1)`.
    pub extra_int_regs: usize,
    /// Extra floating-point rename registers, same rule.
    pub extra_fp_regs: usize,
    /// Integer issue queue entries (one reserved for the protocol thread).
    pub int_queue: usize,
    /// Floating-point issue queue entries.
    pub fp_queue: usize,
    /// Unified load/store queue entries (one reserved for protocol).
    pub lsq: usize,
    /// Integer ALUs (one dedicated to address calculation).
    pub alus: usize,
    /// Floating-point units.
    pub fpus: usize,
    /// Integer multiply latency (cycles).
    pub int_mul_latency: u64,
    /// Integer divide latency (cycles).
    pub int_div_latency: u64,
    /// Floating-point multiply latency (fully pipelined).
    pub fp_mul_latency: u64,
    /// Floating-point divide latency (double precision).
    pub fp_div_latency: u64,
    /// Instructions committed per cycle (round robin across threads).
    pub commit_width: usize,
    /// L1 instruction cache.
    pub l1i: CacheParams,
    /// L1 data cache.
    pub l1d: CacheParams,
    /// Unified L2 cache.
    pub l2: CacheParams,
    /// Miss status holding registers (application; +1 retiring-store MSHR,
    /// +1 reserved protocol MSHR in SMTp).
    pub mshrs: usize,
    /// Speculative store buffer entries (one reserved for protocol).
    pub store_buffer: usize,
    /// Fully-associative bypass buffer lines for each of L1I/L1D/L2 (SMTp
    /// deadlock avoidance, paper §2.2).
    pub bypass_lines: usize,
    /// Whether Look-Ahead Scheduling of protocol handlers is enabled
    /// (paper §2.3; on by default, ablatable).
    pub look_ahead_scheduling: bool,
    /// Give the protocol thread separate, perfect instruction and data
    /// caches — the paper's §2.3 experiment isolating the cost of cache
    /// sharing (0.9–5.1% there). Off by default: SMTp shares the caches.
    pub perfect_protocol_caches: bool,
    /// ITLB/DTLB entries (fully associative, LRU; paper Table 2: 128).
    pub tlb_entries: usize,
    /// Page size in bytes (Table 2: 4 KB).
    pub page_bytes: u64,
    /// TLB miss penalty in cycles (software-managed refill, MIPS-style).
    pub tlb_miss_cycles: u64,
    /// Extra front-end redirect penalty cycles on a branch misprediction,
    /// on top of the natural drain of the 9-stage pipe.
    pub redirect_penalty: u64,
}

impl PipelineParams {
    /// Total integer physical registers for `app_threads` application
    /// contexts plus the protocol context: `32 × (t + 1) + extra`
    /// (160/192/256 for 1/2/4 application threads).
    pub fn int_regs(&self, app_threads: usize) -> usize {
        32 * (app_threads + 1) + self.extra_int_regs
    }

    /// Total floating-point physical registers (same sizing rule).
    pub fn fp_regs(&self, app_threads: usize) -> usize {
        32 * (app_threads + 1) + self.extra_fp_regs
    }
}

impl Default for PipelineParams {
    fn default() -> Self {
        PipelineParams {
            fetch_width: 8,
            fetch_threads: 2,
            decode_queue: 8,
            rename_queue: 8,
            btb_sets: 256,
            btb_ways: 4,
            ras_entries: 32,
            active_list: 128,
            branch_stack: 32,
            extra_int_regs: 96,
            extra_fp_regs: 96,
            int_queue: 32,
            fp_queue: 32,
            lsq: 64,
            alus: 7,
            fpus: 3,
            int_mul_latency: 6,
            int_div_latency: 35,
            fp_mul_latency: 1,
            fp_div_latency: 19,
            commit_width: 8,
            l1i: CacheParams {
                capacity: 32 * 1024,
                line: 64,
                ways: 2,
                hit_cycles: 1,
            },
            l1d: CacheParams {
                capacity: 32 * 1024,
                line: 32,
                ways: 2,
                hit_cycles: 1,
            },
            l2: CacheParams {
                capacity: 2 * 1024 * 1024,
                line: 128,
                ways: 8,
                hit_cycles: 9,
            },
            mshrs: 16,
            store_buffer: 32,
            bypass_lines: 16,
            look_ahead_scheduling: true,
            perfect_protocol_caches: false,
            tlb_entries: 128,
            page_bytes: 4096,
            tlb_miss_cycles: 30,
            redirect_penalty: 2,
        }
    }
}

/// Memory-system parameters (paper Table 3).
#[derive(Clone, Debug, PartialEq)]
pub struct MemParams {
    /// SDRAM access time in nanoseconds.
    pub sdram_access_ns: f64,
    /// SDRAM bandwidth in GB/s.
    pub sdram_bw_gbps: f64,
    /// SDRAM request queue entries.
    pub sdram_queue: usize,
    /// Local miss queue entries.
    pub local_miss_queue: usize,
    /// Network-interface input queue entries (each of 4 virtual networks).
    pub ni_in_queue: usize,
    /// Network-interface output queue entries (each of 4 virtual networks).
    pub ni_out_queue: usize,
    /// Directory data cache line size in bytes (direct mapped).
    pub dir_cache_line: u64,
    /// Divisor applied to the paper's directory-cache capacities (Table 4).
    /// Problem sizes are scaled ~16× down from the paper (DESIGN.md §7);
    /// scaling the directory caches by the same factor preserves the
    /// capacity *ratios* that drive the Int64KB results. Set to 1 for the
    /// paper's absolute capacities.
    pub dir_cache_scale_div: u32,
    /// System bus width in bytes (64 bits, Table 3): every L2↔MC transfer
    /// crosses it at the memory-controller clock.
    pub bus_bytes: u64,
    /// Embedded protocol processor instruction cache capacity (bytes,
    /// direct mapped; fixed 32 KB in all non-SMTp models).
    pub pp_icache_bytes: u64,
}

impl Default for MemParams {
    fn default() -> Self {
        MemParams {
            sdram_access_ns: 80.0,
            sdram_bw_gbps: 3.2,
            sdram_queue: 16,
            local_miss_queue: 16,
            ni_in_queue: 2,
            ni_out_queue: 16,
            dir_cache_line: 64,
            dir_cache_scale_div: 16,
            bus_bytes: 8,
            pp_icache_bytes: 32 * 1024,
        }
    }
}

/// Interconnect parameters (paper Table 3; SGI-Spider-like router).
#[derive(Clone, Debug, PartialEq)]
pub struct NetParams {
    /// Per-hop latency in nanoseconds.
    pub hop_ns: f64,
    /// Link bandwidth in GB/s.
    pub link_gbps: f64,
    /// Message header size in bytes (address + header registers).
    pub header_bytes: u64,
    /// Number of virtual networks (the protocol uses three: request,
    /// intervention, reply).
    pub virtual_networks: usize,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            hop_ns: 25.0,
            link_gbps: 1.0,
            header_bytes: 16,
            virtual_networks: 4,
        }
    }
}

/// Full configuration of a simulated machine.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Number of DSM nodes (1..=128; the paper evaluates 1–32, the larger
    /// bristled-hypercube configurations probe scaling past it).
    pub nodes: usize,
    /// Application thread contexts per node (1, 2 or 4).
    pub app_threads: usize,
    /// Processor clock in GHz (paper: 2 or 4).
    pub cpu_ghz: f64,
    /// Which of the five machine models to assemble.
    pub model: MachineModel,
    /// Pipeline parameters.
    pub pipeline: PipelineParams,
    /// Memory-system parameters.
    pub mem: MemParams,
    /// Interconnect parameters.
    pub net: NetParams,
    /// Seed for all deterministic pseudo-randomness.
    pub seed: u64,
    /// Fault-injection configuration (disabled by default).
    pub faults: crate::faults::FaultConfig,
    /// Pin the parallel engine's worker-thread count (`None` = use the
    /// host's available parallelism). A host-side knob: the simulated
    /// machine, and therefore every guest-visible result, is identical for
    /// any worker count. A count larger than the node count is clamped to
    /// one worker per node (never an empty partition); `Some(0)` is
    /// rejected by [`SystemConfig::validate`].
    pub workers: Option<usize>,
}

impl SystemConfig {
    /// A machine of `nodes` nodes with `app_threads` application threads per
    /// node, in the given machine model, at 2 GHz with default parameters.
    pub fn new(model: MachineModel, nodes: usize, app_threads: usize) -> SystemConfig {
        let c = SystemConfig {
            nodes,
            app_threads,
            cpu_ghz: 2.0,
            model,
            pipeline: PipelineParams::default(),
            mem: MemParams::default(),
            net: NetParams::default(),
            seed: 0x5317_9a7e,
            faults: crate::faults::FaultConfig::default(),
            workers: None,
        };
        c.validate();
        c
    }

    /// Validate structural invariants.
    ///
    /// # Panics
    ///
    /// Panics on an unbuildable configuration (zero nodes, too many threads,
    /// non-power-of-two node count above 1, …).
    pub fn validate(&self) {
        assert!(
            self.nodes >= 1 && self.nodes <= 128,
            "1..=128 nodes supported"
        );
        assert!(
            self.nodes == 1 || self.nodes.is_power_of_two(),
            "multi-node machines must have a power-of-two node count"
        );
        assert!(
            (1..=MAX_APP_THREADS).contains(&self.app_threads),
            "1..={MAX_APP_THREADS} application threads per node"
        );
        assert!(self.cpu_ghz > 0.0);
        assert!(self.pipeline.fetch_width >= 1);
        assert!(self.pipeline.commit_width >= 1);
        assert!(
            self.workers != Some(0),
            "worker count, when pinned, must be >= 1"
        );
    }

    /// Convert nanoseconds to CPU cycles (rounding up).
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns * self.cpu_ghz).ceil() as u64
    }

    /// CPU cycles to transfer `bytes` at `gbps` GB/s (rounding up).
    pub fn transfer_cycles(&self, bytes: u64, gbps: f64) -> u64 {
        self.ns_to_cycles(bytes as f64 / gbps)
    }

    /// Memory-controller clock divisor for this model/frequency.
    pub fn mc_divisor(&self) -> u64 {
        self.model.mc_divisor(self.cpu_ghz)
    }

    /// Total number of application threads in the machine.
    pub fn total_app_threads(&self) -> usize {
        self.nodes * self.app_threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_file_sizing_matches_table2() {
        let p = PipelineParams::default();
        assert_eq!(p.int_regs(1), 160);
        assert_eq!(p.int_regs(2), 192);
        assert_eq!(p.int_regs(4), 256);
        assert_eq!(p.fp_regs(4), 256);
    }

    #[test]
    fn mc_divisors_match_table4() {
        assert_eq!(MachineModel::Base.mc_divisor(2.0), 5); // 400 MHz at 2 GHz
        assert_eq!(MachineModel::Base.mc_divisor(4.0), 10); // still 400 MHz
        assert_eq!(MachineModel::IntPerfect.mc_divisor(2.0), 1);
        assert_eq!(MachineModel::Int512KB.mc_divisor(2.0), 2);
        assert_eq!(MachineModel::SMTp.mc_divisor(4.0), 2);
    }

    #[test]
    fn dir_cache_sizes_match_table4() {
        assert_eq!(MachineModel::Base.dir_cache_kb(), Some(512));
        assert_eq!(MachineModel::Int512KB.dir_cache_kb(), Some(512));
        assert_eq!(MachineModel::Int64KB.dir_cache_kb(), Some(64));
        assert_eq!(MachineModel::IntPerfect.dir_cache_kb(), None);
        assert!(MachineModel::SMTp.uses_protocol_thread());
        assert!(!MachineModel::Int64KB.uses_protocol_thread());
    }

    #[test]
    fn ns_conversion() {
        let c = SystemConfig::new(MachineModel::SMTp, 4, 2);
        assert_eq!(c.ns_to_cycles(80.0), 160); // 80 ns SDRAM at 2 GHz
        assert_eq!(c.ns_to_cycles(25.0), 50); // hop time
        assert_eq!(c.transfer_cycles(128, 1.0), 256); // 128 B over 1 GB/s link
    }

    #[test]
    fn cache_geometry() {
        let p = PipelineParams::default();
        assert_eq!(p.l1d.sets(), 512);
        assert_eq!(p.l2.sets(), 2048);
        assert_eq!(p.l1i.sets(), 256);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_pow2_nodes() {
        SystemConfig::new(MachineModel::Base, 6, 1);
    }

    #[test]
    #[should_panic(expected = "application threads")]
    fn rejects_too_many_threads() {
        SystemConfig::new(MachineModel::Base, 4, 5);
    }
}
