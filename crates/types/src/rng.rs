//! A tiny deterministic PRNG (SplitMix64) for tests and stress harnesses.
//!
//! The simulator itself is fully deterministic and never draws random
//! numbers; this generator exists so property-style tests can explore many
//! input interleavings reproducibly without an external dependency.

/// SplitMix64: fast, well-distributed, and trivially seedable.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform value in `[lo, hi)`; the range must be non-empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounds_respected() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.range(3, 17);
            assert!((3..17).contains(&v));
            assert!(r.below(5) < 5);
        }
    }
}
