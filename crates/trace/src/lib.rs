//! Event tracing, interval metrics and trace export for the SMTp simulator.
//!
//! The simulator's end-of-run [`RunStats`](../smtp_core/stats/index.html)
//! aggregates answer *how much*; this crate answers *when* and *in what
//! order*. It provides:
//!
//! * a typed [`Event`] enum covering the full life of a coherence
//!   transaction — L2 miss → MSHR allocate → handler dispatch → directory
//!   transition → NoC inject/deliver → SDRAM access → reply → fill,
//! * a [`Tracer`] handle threaded through every component, costing a single
//!   branch on a disabled category mask ([`Category`]),
//! * pluggable [`TraceSink`]s: a bounded in-memory ring buffer (dumped on
//!   deadlock panics), a JSONL writer, and a Chrome trace-event writer whose
//!   output loads directly into Perfetto / `chrome://tracing`,
//! * an [`IntervalSampler`] metrics registry emitting a cycle-indexed
//!   time-series (per-node IPC, protocol occupancy, queue depths, per-VN
//!   network utilization),
//! * the [`host`] module: host-side engine telemetry ([`HostProfile`],
//!   [`PhaseTimer`], [`Heartbeat`]) attributing the *simulator's own*
//!   wall-clock to run-loop phases — the observability layer for the
//!   execution engines themselves.
//!
//! # Architecture
//!
//! [`Tracer`] is a cheap-clone handle (`Arc` internally) created once per
//! `System` and attached to every node component at build time. Components
//! emit through [`Tracer::emit`], which takes a closure so the event is only
//! constructed when its [`Category`] is enabled:
//!
//! ```ignore
//! self.tracer.emit(Category::Cache, now, || Event::Fill { node, line, grant });
//! ```
//!
//! Lower simulator crates (`smtp-noc`, `smtp-cache`, …) convert their own
//! enums into this crate's label enums ([`MsgLabel`], [`HandlerClass`], …)
//! so `smtp-trace` depends only on `smtp-types` and sits directly above it
//! in the workspace layering.

pub mod causal;
pub mod event;
pub mod host;
pub mod metrics;
pub mod sink;
pub mod spatial;
pub mod tracer;

pub use causal::{
    CausalSpans, CriticalPathBreakdown, PathCat, SpanExemplar, NUM_PATH_CATS, PATH_CAT_NAMES,
};
pub use event::{
    Category, DirClass, Event, GrantClass, HandlerClass, LinkFaultClass, MissClass, MsgLabel,
    StallClass,
};
pub use host::{
    Heartbeat, HostPhase, HostProfile, LaneProfile, PhaseTimer, HOST_PHASE_NAMES, NUM_HOST_PHASES,
};
pub use metrics::IntervalSampler;
pub use sink::{ChromeTraceSink, JsonlSink, MemorySink, SharedBuf, SharedEvents, TraceSink};
pub use spatial::{
    classify, record_home, HomeHeat, HomeReq, HotLine, LineCounters, LineTracker, LinkHeat,
    PrevState, SharingClass, SpatialStats, TrackedLine,
};
pub use tracer::{take_captured_events, CapturedEvent, Tracer};
