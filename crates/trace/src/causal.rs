//! Causal-span reconstruction: per-transaction DAGs, critical-path
//! attribution and tail-latency exemplars.
//!
//! Every span-carrying [`Event`] names the coherence transaction it belongs
//! to (see [`smtp_types::SpanId`]). [`CausalSpans`] is a [`TraceSink`] that
//! groups the event stream by span online: while a transaction is open its
//! events accumulate; when its `mshr_free` arrives the span is *closed* —
//! its critical path is computed, folded into a run-level
//! [`CriticalPathBreakdown`], and the transaction is considered for the
//! bounded top-K reservoir of slowest exemplars.
//!
//! # Critical path
//!
//! Events reach the sink in serial emission order (the parallel engine
//! replays captured events at epoch barriers in exactly this order), so a
//! span's event list is already causally ordered. The critical path is the
//! telescoping walk over that list with monotonically-clamped timestamps:
//! each consecutive pair contributes `t[i+1] - t[i]` cycles attributed to
//! a [`PathCat`] chosen from the *kind* of the later event (an edge ending
//! in `net_deliver` is network time; one ending in `handler_dispatch` is
//! home queueing — unless the span was previously deferred, which makes it
//! retry time; and so on). Clamping makes the per-edge attributions sum
//! *exactly* to `free_cycle - alloc_cycle`, the same end-to-end latency the
//! phase profiler reports — the telescoping invariant the report's
//! breakdown relies on.

use crate::event::Event;
use crate::sink::TraceSink;
use smtp_types::{Cycle, LineAddr, NodeId, SpanId};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};

/// Critical-path attribution categories.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum PathCat {
    /// Requester-side cycles: issue, fill install, ack gathering,
    /// writeback handling.
    Requester = 0,
    /// Network hops (inject → deliver) and local short-circuit delivery.
    Network = 1,
    /// Home-side queueing between message arrival and handler dispatch.
    Queueing = 2,
    /// Protocol handler execution (dispatch → sends/completion).
    Handler = 3,
    /// SDRAM access windows opened by a handler or local fill.
    Sdram = 4,
    /// Retry loops: busy-line defer replays and LLP retransmissions.
    Retry = 5,
}

/// Number of [`PathCat`] variants.
pub const NUM_PATH_CATS: usize = 6;

/// Stable names, indexed by [`PathCat`] discriminants.
pub const PATH_CAT_NAMES: [&str; NUM_PATH_CATS] = [
    "requester",
    "network",
    "home queueing",
    "handler",
    "sdram",
    "retry",
];

/// Classify the critical-path edge *ending* at `next`, given the event
/// before it on the span.
fn edge_cat(prev: &Event, next: &Event) -> PathCat {
    match next {
        Event::NetDeliver { .. } | Event::LocalMsg { .. } => PathCat::Network,
        Event::HandlerDispatch { .. } => {
            if matches!(prev, Event::DirDefer { .. }) {
                PathCat::Retry
            } else {
                PathCat::Queueing
            }
        }
        Event::HandlerComplete { .. } | Event::SdramWrite { .. } => PathCat::Handler,
        Event::DirTransition { .. } | Event::DirDefer { .. } => PathCat::Queueing,
        Event::SdramRead { .. } => PathCat::Handler,
        Event::LinkRetransmit { .. } => PathCat::Retry,
        Event::NetInject { .. } => match prev {
            // A send waiting on the SDRAM data the handler requested.
            Event::SdramRead { .. } => PathCat::Sdram,
            Event::HandlerDispatch { .. }
            | Event::HandlerComplete { .. }
            | Event::DirTransition { .. } => PathCat::Handler,
            Event::LinkRetransmit { .. } => PathCat::Retry,
            _ => PathCat::Requester,
        },
        // Fill, Writeback, MshrFree and anything unexpected: cycles spent
        // back at the requester.
        _ => PathCat::Requester,
    }
}

/// A closed (or, on deadlock, still-open) transaction with its full event
/// list and per-category critical-path attribution.
#[derive(Clone, Debug)]
pub struct SpanExemplar {
    /// The transaction's span.
    pub span: SpanId,
    /// Line the transaction concerned.
    pub line: LineAddr,
    /// Node that allocated the span (the requester).
    pub requester: NodeId,
    /// Cycle of the first event (MSHR allocation).
    pub alloc_at: Cycle,
    /// Cycle of the last event (MSHR free; last recorded event for open
    /// spans).
    pub last_at: Cycle,
    /// Per-category critical-path cycles; sums to `last_at - alloc_at`.
    pub cats: [u64; NUM_PATH_CATS],
    /// The span's events in serial emission order.
    pub events: Vec<(Cycle, Event)>,
}

impl SpanExemplar {
    /// End-to-end latency (equals the sum of `cats` by construction).
    pub fn latency(&self) -> Cycle {
        self.last_at - self.alloc_at
    }

    /// Render the span as an annotated text tree.
    ///
    /// Each event's parent is its causal predecessor: a `net_deliver`
    /// hangs off its matching `net_inject`; every other event hangs off
    /// the span's latest previous event on the same node (falling back to
    /// the latest event anywhere). Children are indented under parents, so
    /// a remote miss reads as requester → network → home → network →
    /// requester, with interventions and invalidations as side branches.
    pub fn render_tree(&self) -> String {
        let n = self.events.len();
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut inject_used = vec![false; n];
        for (i, par) in parent.iter_mut().enumerate().skip(1) {
            let (_, ev) = self.events[i];
            *par = match ev {
                Event::NetDeliver { src, dst, msg, .. } => {
                    let found = (0..i).rev().find(|&j| {
                        !inject_used[j]
                            && matches!(self.events[j].1, Event::NetInject {
                                src: s, dst: d, msg: m, ..
                            } if s == src && d == dst && m == msg)
                    });
                    if let Some(j) = found {
                        inject_used[j] = true;
                    }
                    found.or(Some(i - 1))
                }
                _ => (0..i)
                    .rev()
                    .find(|&j| self.events[j].1.node() == ev.node())
                    .or(Some(i - 1)),
            };
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, p) in parent.iter().enumerate().skip(1) {
            if let Some(p) = *p {
                children[p].push(i);
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "span {} line {:#x} node{}: {} cycles ({}..{})",
            self.span,
            self.line.raw(),
            self.requester.0,
            self.latency(),
            self.alloc_at,
            self.last_at
        );
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        while let Some((i, depth)) = stack.pop() {
            let (cycle, ev) = self.events[i];
            let delta = parent[i].map_or(0, |p| cycle.saturating_sub(self.events[p].0));
            let _ = writeln!(
                out,
                "  @{cycle:<8} {:indent$}+{delta:<6} {ev}",
                "",
                indent = depth * 2
            );
            for &c in children[i].iter().rev() {
                stack.push((c, depth + 1));
            }
        }
        out
    }

    /// Render the critical-path walk: one line per edge with its category
    /// and cycle cost, then the per-category totals.
    pub fn render_critical_path(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical path for {} ({} cycles):",
            self.span,
            self.latency()
        );
        let mut t_prev = self.alloc_at;
        for w in self.events.windows(2) {
            let (_, prev) = w[0];
            let (cycle, next) = w[1];
            let t = cycle.max(t_prev);
            let cat = edge_cat(&prev, &next);
            if t > t_prev {
                let _ = writeln!(
                    out,
                    "  +{:<6} [{}] {}",
                    t - t_prev,
                    PATH_CAT_NAMES[cat as usize],
                    next
                );
            }
            t_prev = t;
        }
        let _ = writeln!(out, "  breakdown:");
        for (i, name) in PATH_CAT_NAMES.iter().enumerate() {
            if self.cats[i] > 0 {
                let pct = 100.0 * self.cats[i] as f64 / self.latency().max(1) as f64;
                let _ = writeln!(out, "    {name:<14} {:>8} cycles ({pct:.1}%)", self.cats[i]);
            }
        }
        out
    }
}

/// Run-level critical-path aggregate over every closed span.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CriticalPathBreakdown {
    /// Total critical-path cycles attributed to each [`PathCat`], summed
    /// over all closed spans.
    pub cycles: [u64; NUM_PATH_CATS],
    /// Number of spans folded in.
    pub spans: u64,
    /// Total end-to-end cycles over all spans (equals `cycles` summed).
    pub total_cycles: u64,
}

impl CriticalPathBreakdown {
    /// Fold one closed span in.
    fn record(&mut self, cats: &[u64; NUM_PATH_CATS], total: u64) {
        for (a, b) in self.cycles.iter_mut().zip(cats) {
            *a += b;
        }
        self.spans += 1;
        self.total_cycles += total;
    }
}

/// Compute a span's critical path: monotonically-clamped telescoping walk.
/// Returns per-category cycles and the clamped final timestamp.
fn critical_path(events: &[(Cycle, Event)]) -> ([u64; NUM_PATH_CATS], Cycle) {
    let mut cats = [0u64; NUM_PATH_CATS];
    let Some(&(first, _)) = events.first() else {
        return (cats, 0);
    };
    let mut t_prev = first;
    for w in events.windows(2) {
        let (_, prev) = w[0];
        let (cycle, next) = w[1];
        let t = cycle.max(t_prev);
        cats[edge_cat(&prev, &next) as usize] += t - t_prev;
        t_prev = t;
    }
    (cats, t_prev)
}

struct CausalState {
    open: HashMap<u64, Vec<(Cycle, Event)>>,
    /// Spans whose `mshr_free` has been seen. Trailing events can carry a
    /// closed span — the home's busy-state closeout (`TransferAck` /
    /// `SharingWb` handling) after a data reply raced ahead, or the victim
    /// writeback a fill triggered — and must not re-open it: the
    /// transaction's latency ended when its MSHR freed.
    closed: HashSet<u64>,
    agg: CriticalPathBreakdown,
    /// Slowest closed spans, sorted by latency descending (ties: older
    /// span first, so the reservoir is deterministic).
    top: Vec<SpanExemplar>,
    top_k: usize,
    /// Slowest closed span *per line*, bounded to
    /// [`LINE_EXEMPLAR_CAP`] distinct lines (hot-spot linkage: the spatial
    /// layer names a hot line, this map produces its worst transaction).
    line_best: HashMap<u64, SpanExemplar>,
}

/// Distinct lines the per-line exemplar map keeps (eviction drops the
/// line with the smallest best-latency, ties toward the higher address).
const LINE_EXEMPLAR_CAP: usize = 64;

impl CausalState {
    fn close_span(&mut self, raw: u64) {
        self.closed.insert(raw);
        let Some(events) = self.open.remove(&raw) else {
            return;
        };
        let Some(ex) = make_exemplar(events) else {
            return;
        };
        self.agg.record(&ex.cats, ex.latency());
        self.note_line_best(&ex);
        let worst_kept = self.top.last().map_or(0, |e| e.latency());
        if self.top.len() < self.top_k || ex.latency() > worst_kept {
            let pos = self.top.partition_point(|e| e.latency() >= ex.latency());
            self.top.insert(pos, ex);
            self.top.truncate(self.top_k);
        }
    }

    fn note_line_best(&mut self, ex: &SpanExemplar) {
        let key = ex.line.raw();
        if let Some(cur) = self.line_best.get_mut(&key) {
            // Strict improvement only: ties keep the older span, so the
            // map is a deterministic function of the event stream.
            if ex.latency() > cur.latency() {
                *cur = ex.clone();
            }
            return;
        }
        if self.line_best.len() < LINE_EXEMPLAR_CAP {
            self.line_best.insert(key, ex.clone());
            return;
        }
        let (victim, min_lat) = self
            .line_best
            .iter()
            .map(|(&k, e)| (k, e.latency()))
            .min_by_key(|&(k, lat)| (lat, std::cmp::Reverse(k)))
            .expect("map is at capacity");
        if ex.latency() > min_lat {
            self.line_best.remove(&victim);
            self.line_best.insert(key, ex.clone());
        }
    }
}

fn make_exemplar(events: Vec<(Cycle, Event)>) -> Option<SpanExemplar> {
    let &(alloc_at, first) = events.first()?;
    let span = first.span();
    let (cats, last_at) = critical_path(&events);
    Some(SpanExemplar {
        span,
        line: first.line().unwrap_or(LineAddr(0)),
        requester: span.node(),
        alloc_at,
        last_at,
        cats,
        events,
    })
}

/// Shared handle to the causal-span analyzer. Install its sink with
/// [`CausalSpans::sink`]; query the aggregate and exemplars any time
/// (including from a deadlock diagnosis while the run is wedged).
#[derive(Clone)]
pub struct CausalSpans {
    state: Arc<Mutex<CausalState>>,
}

impl CausalSpans {
    /// An analyzer keeping the `top_k` slowest transactions as full-tree
    /// exemplars.
    pub fn new(top_k: usize) -> CausalSpans {
        CausalSpans {
            state: Arc::new(Mutex::new(CausalState {
                open: HashMap::new(),
                closed: HashSet::new(),
                agg: CriticalPathBreakdown::default(),
                top: Vec::new(),
                top_k,
                line_best: HashMap::new(),
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, CausalState> {
        self.state.lock().unwrap()
    }

    /// A sink feeding this analyzer; install it on the run's `Tracer`.
    pub fn sink(&self) -> Box<dyn TraceSink> {
        Box::new(CausalSink {
            handle: self.clone(),
        })
    }

    /// The run-level critical-path aggregate over closed spans.
    pub fn breakdown(&self) -> CriticalPathBreakdown {
        self.lock().agg.clone()
    }

    /// The slowest closed transactions, worst first (at most `top_k`).
    pub fn exemplars(&self) -> Vec<SpanExemplar> {
        self.lock().top.clone()
    }

    /// The slowest closed transaction that touched `line` (raw address),
    /// if the bounded per-line map still holds it — the hot-spot linkage
    /// used by `explain --hotspots`.
    pub fn exemplar_for_line(&self, line: u64) -> Option<SpanExemplar> {
        let st = self.lock();
        st.line_best
            .get(&line)
            .cloned()
            .or_else(|| st.top.iter().find(|e| e.line.raw() == line).cloned())
    }

    /// Number of spans still open (non-zero after a deadlock).
    pub fn open_count(&self) -> usize {
        self.lock().open.len()
    }

    /// Still-open spans as exemplars (critical path up to their last
    /// event), oldest allocation first — deadlock evidence.
    pub fn open_spans(&self) -> Vec<SpanExemplar> {
        let st = self.lock();
        let mut out: Vec<SpanExemplar> = st
            .open
            .values()
            .filter_map(|ev| make_exemplar(ev.clone()))
            .collect();
        out.sort_by_key(|e| (e.alloc_at, e.span.raw()));
        out
    }
}

struct CausalSink {
    handle: CausalSpans,
}

impl TraceSink for CausalSink {
    fn record(&mut self, now: Cycle, ev: &Event) {
        let span = ev.span();
        if !span.is_some() {
            return;
        }
        let mut st = self.handle.lock();
        if st.closed.contains(&span.raw()) {
            return;
        }
        st.open.entry(span.raw()).or_default().push((now, *ev));
        if matches!(ev, Event::MshrFree { .. }) {
            st.close_span(span.raw());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{GrantClass, HandlerClass, MissClass, MsgLabel};

    fn line() -> LineAddr {
        LineAddr(0x1080)
    }

    fn span() -> SpanId {
        SpanId::new(NodeId(0), 1)
    }

    /// A minimal 2-node remote read: alloc → inject GetS → deliver →
    /// dispatch → sdram → inject DataShared → deliver → fill → free.
    fn remote_read_events(sink: &mut dyn TraceSink) {
        let (n0, n1, l, s) = (NodeId(0), NodeId(1), line(), span());
        sink.record(
            100,
            &Event::MshrAlloc {
                node: n0,
                line: l,
                miss: MissClass::Read,
                span: s,
            },
        );
        sink.record(
            104,
            &Event::NetInject {
                src: n0,
                dst: n1,
                line: l,
                msg: MsgLabel::GetS,
                vnet: 0,
                deliver_at: 140,
                span: s,
            },
        );
        sink.record(
            140,
            &Event::NetDeliver {
                src: n0,
                dst: n1,
                line: l,
                msg: MsgLabel::GetS,
                vnet: 0,
                span: s,
            },
        );
        sink.record(
            152,
            &Event::HandlerDispatch {
                node: n1,
                line: l,
                handler: HandlerClass::GetSUnowned,
                msg: MsgLabel::GetS,
                src: n0,
                seq: 0,
                span: s,
            },
        );
        sink.record(
            152,
            &Event::SdramRead {
                node: n1,
                protocol: false,
                ready_at: 210,
                span: s,
            },
        );
        sink.record(
            210,
            &Event::NetInject {
                src: n1,
                dst: n0,
                line: l,
                msg: MsgLabel::DataShared,
                vnet: 2,
                deliver_at: 250,
                span: s,
            },
        );
        sink.record(
            250,
            &Event::NetDeliver {
                src: n1,
                dst: n0,
                line: l,
                msg: MsgLabel::DataShared,
                vnet: 2,
                span: s,
            },
        );
        sink.record(
            262,
            &Event::Fill {
                node: n0,
                line: l,
                grant: GrantClass::Shared,
                span: s,
            },
        );
        sink.record(
            262,
            &Event::MshrFree {
                node: n0,
                line: l,
                span: s,
            },
        );
    }

    #[test]
    fn critical_path_telescopes_to_end_to_end() {
        let spans = CausalSpans::new(4);
        remote_read_events(&mut *spans.sink());
        let agg = spans.breakdown();
        assert_eq!(agg.spans, 1);
        assert_eq!(agg.total_cycles, 162);
        assert_eq!(agg.cycles.iter().sum::<u64>(), agg.total_cycles);
        // issue 4 + request net 36 + queueing 12 + sdram 58 + reply net 40
        // + fill 12.
        assert_eq!(agg.cycles[PathCat::Requester as usize], 4 + 12);
        assert_eq!(agg.cycles[PathCat::Network as usize], 36 + 40);
        assert_eq!(agg.cycles[PathCat::Queueing as usize], 12);
        assert_eq!(agg.cycles[PathCat::Sdram as usize], 58);
        assert_eq!(agg.cycles[PathCat::Retry as usize], 0);
    }

    #[test]
    fn exemplar_reservoir_keeps_slowest() {
        let spans = CausalSpans::new(2);
        let mut sink = spans.sink();
        // Three single-hop spans with latencies 10, 50, 30.
        for (i, lat) in [(1u64, 10u64), (2, 50), (3, 30)] {
            let s = SpanId::new(NodeId(0), i);
            sink.record(
                1000 * i,
                &Event::MshrAlloc {
                    node: NodeId(0),
                    line: line(),
                    miss: MissClass::Read,
                    span: s,
                },
            );
            sink.record(
                1000 * i + lat,
                &Event::MshrFree {
                    node: NodeId(0),
                    line: line(),
                    span: s,
                },
            );
        }
        let top = spans.exemplars();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].latency(), 50);
        assert_eq!(top[1].latency(), 30);
        assert_eq!(spans.breakdown().spans, 3);
        assert_eq!(spans.open_count(), 0);
    }

    #[test]
    fn per_line_exemplar_survives_outside_the_global_top() {
        let spans = CausalSpans::new(1);
        let mut sink = spans.sink();
        // Line A gets the overall-slowest span; line B's spans are faster
        // and would fall out of a top-1 reservoir.
        for (i, (l, lat)) in [(0x1080u64, 500u64), (0x2100, 80), (0x2100, 120)]
            .iter()
            .enumerate()
        {
            let s = SpanId::new(NodeId(0), i as u64 + 1);
            sink.record(
                1000 * i as u64,
                &Event::MshrAlloc {
                    node: NodeId(0),
                    line: LineAddr(*l),
                    miss: MissClass::Read,
                    span: s,
                },
            );
            sink.record(
                1000 * i as u64 + lat,
                &Event::MshrFree {
                    node: NodeId(0),
                    line: LineAddr(*l),
                    span: s,
                },
            );
        }
        assert_eq!(spans.exemplars().len(), 1);
        assert_eq!(spans.exemplar_for_line(0x1080).unwrap().latency(), 500);
        // Line B is not in the top reservoir but has a per-line exemplar,
        // and it is the slowest of its two spans.
        assert_eq!(spans.exemplar_for_line(0x2100).unwrap().latency(), 120);
        assert!(spans.exemplar_for_line(0x9999).is_none());
    }

    #[test]
    fn open_spans_surface_for_diagnosis() {
        let spans = CausalSpans::new(2);
        let mut sink = spans.sink();
        let s = span();
        sink.record(
            7,
            &Event::MshrAlloc {
                node: NodeId(0),
                line: line(),
                miss: MissClass::Write,
                span: s,
            },
        );
        sink.record(
            9,
            &Event::NetInject {
                src: NodeId(0),
                dst: NodeId(1),
                line: line(),
                msg: MsgLabel::GetX,
                vnet: 0,
                deliver_at: 40,
                span: s,
            },
        );
        assert_eq!(spans.open_count(), 1);
        let open = spans.open_spans();
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].span, s);
        assert_eq!(open[0].latency(), 2);
        let tree = open[0].render_tree();
        assert!(tree.contains("mshr_alloc"), "tree:\n{tree}");
        assert!(tree.contains("inject"), "tree:\n{tree}");
    }

    #[test]
    fn tree_and_path_render() {
        let spans = CausalSpans::new(1);
        remote_read_events(&mut *spans.sink());
        let ex = &spans.exemplars()[0];
        let tree = ex.render_tree();
        // The deliver hangs off its inject (indented one level deeper).
        assert!(tree.contains("162 cycles"), "tree:\n{tree}");
        assert!(tree.contains("deliver GetS"), "tree:\n{tree}");
        let path = ex.render_critical_path();
        assert!(path.contains("[sdram]"), "path:\n{path}");
        assert!(path.contains("[network]"), "path:\n{path}");
        assert!(
            path.contains("162 cycles"),
            "path header shows total:\n{path}"
        );
    }

    #[test]
    fn trailing_events_do_not_reopen_a_closed_span() {
        let spans = CausalSpans::new(1);
        let mut sink = spans.sink();
        remote_read_events(&mut *sink);
        // Home-side closeout arriving after the requester freed its MSHR
        // (e.g. the SharingWb leg of a 3-hop transfer) must be dropped.
        sink.record(
            300,
            &Event::DirTransition {
                node: NodeId(1),
                line: line(),
                from: crate::event::DirClass::BusyShared,
                to: crate::event::DirClass::Shared,
                span: span(),
            },
        );
        assert_eq!(spans.open_count(), 0);
        assert_eq!(spans.breakdown().spans, 1);
        assert_eq!(spans.exemplars()[0].latency(), 162);
    }

    #[test]
    fn retransmit_and_defer_count_as_retry() {
        let spans = CausalSpans::new(1);
        let mut sink = spans.sink();
        let (n0, n1, l, s) = (NodeId(0), NodeId(1), line(), span());
        sink.record(
            0,
            &Event::MshrAlloc {
                node: n0,
                line: l,
                miss: MissClass::Read,
                span: s,
            },
        );
        sink.record(
            2,
            &Event::NetInject {
                src: n0,
                dst: n1,
                line: l,
                msg: MsgLabel::GetS,
                vnet: 0,
                deliver_at: 10,
                span: s,
            },
        );
        // The packet was lost; the LLP retransmits at 40.
        sink.record(
            40,
            &Event::LinkRetransmit {
                src: n0,
                dst: n1,
                vnet: 0,
                seq: 1,
                attempt: 1,
                span: s,
            },
        );
        sink.record(
            48,
            &Event::NetDeliver {
                src: n0,
                dst: n1,
                line: l,
                msg: MsgLabel::GetS,
                vnet: 0,
                span: s,
            },
        );
        // Busy line: deferred, replayed later.
        sink.record(
            50,
            &Event::DirDefer {
                node: n1,
                line: l,
                msg: MsgLabel::GetS,
                span: s,
            },
        );
        sink.record(
            90,
            &Event::HandlerDispatch {
                node: n1,
                line: l,
                handler: HandlerClass::GetSUnowned,
                msg: MsgLabel::GetS,
                src: n0,
                seq: 3,
                span: s,
            },
        );
        sink.record(
            95,
            &Event::MshrFree {
                node: n0,
                line: l,
                span: s,
            },
        );
        let agg = spans.breakdown();
        // retransmit wait 38 + defer replay wait 40.
        assert_eq!(agg.cycles[PathCat::Retry as usize], 38 + 40);
        assert_eq!(agg.cycles.iter().sum::<u64>(), agg.total_cycles);
    }
}
