//! Host-side engine telemetry: where the *simulator itself* spends
//! wall-clock time.
//!
//! Everything else in this crate observes the simulated machine; this
//! module observes the machine running the simulation. The execution
//! engines in `smtp-core` stamp a monotonic clock ([`std::time::Instant`])
//! at every phase transition of their run loops and aggregate the
//! intervals into a [`HostProfile`]:
//!
//! * one [`LaneProfile`] per host thread — the coordinator plus each
//!   worker of the parallel epoch engine, or the single lane of the
//!   serial reference loop — attributing every nanosecond of the lane's
//!   lifetime to exactly one [`HostPhase`] (tick/compute, barrier-arrival
//!   wait, barrier-departure wait, message exchange, harvest merge,
//!   capture/replay of the trace+profiler streams, injection replay,
//!   quiescence retraction, scheduled checks, loop bookkeeping);
//! * per-epoch counters: epoch length in simulated cycles, node-cycles
//!   actually ticked vs. idle-skipped, messages exchanged at each barrier,
//!   and the per-worker owned-node tick imbalance.
//!
//! Phase attribution telescopes by construction: a [`PhaseTimer`] records
//! the interval between consecutive stamps into the phase being left, so
//! the per-phase sums add up to the lane's total wall-clock exactly (the
//! engines assert this within a measurement epsilon). Per-epoch phase
//! durations land in mergeable log2 [`Histogram`]s, so profiles from
//! sharded runs can be folded together like every other statistic in the
//! workspace.
//!
//! Telemetry is strictly host-side: it never touches simulated state, so
//! guest-visible results (RunStats, trace streams, span allocation) are
//! bit-identical with telemetry on or off, serial or parallel.
//!
//! The module also provides the [`Heartbeat`] emitter: periodic JSONL
//! records (cycle, simulated cycles per wall second, epoch rate, worker
//! utilization) written to stderr or any sink, each line flushed
//! immediately so a run that dies mid-flight still leaves a readable,
//! line-complete log behind.

use smtp_types::{Cycle, Histogram};
use std::io::Write;
use std::time::Instant;

/// Number of host phases a lane's wall-clock is attributed into.
pub const NUM_HOST_PHASES: usize = 10;

/// JSON/report names of the host phases, indexed by `HostPhase as usize`.
pub const HOST_PHASE_NAMES: [&str; NUM_HOST_PHASES] = [
    "tick",
    "barrier_arrive",
    "barrier_depart",
    "exchange",
    "merge",
    "capture_replay",
    "inject_replay",
    "quiescence",
    "checks",
    "other",
];

/// One phase of an execution engine's run loop. Every nanosecond of a
/// lane's lifetime is attributed to exactly one phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostPhase {
    /// Advancing simulated state: node ticks, deliveries, idle skipping
    /// (includes the sync-fabric spin waits, which happen mid-tick).
    Tick = 0,
    /// Waiting at the epoch-close barrier for straggler workers (workers),
    /// or for the epoch to finish (coordinator).
    BarrierArrive = 1,
    /// Waiting at the epoch-open barrier for the next window plan.
    BarrierDepart = 2,
    /// Cross-node message exchange: popping arrivals from the network and
    /// pre-distributing them to per-node inboxes (coordinator pre-pass).
    Exchange = 3,
    /// Collecting and sorting the workers' harvest (captured events,
    /// profiler ops, recorded injections) into serial order.
    Merge = 4,
    /// Replaying captured trace events and profiler operations into the
    /// shared tracer/profiler at their serial positions.
    CaptureReplay = 5,
    /// Replaying recorded message injections into the network.
    InjectReplay = 6,
    /// Exact-quiescence detection and idle-overshoot retraction.
    Quiescence = 7,
    /// Scheduled checks: watchdog, coherence sanitizer, metrics sampler.
    Checks = 8,
    /// Run-loop bookkeeping not covered by a phase above (epoch planning,
    /// heartbeat I/O, setup/teardown).
    Other = 9,
}

/// Wall-clock attribution for one host thread (lane) of an engine run.
#[derive(Clone, Debug)]
pub struct LaneProfile {
    /// Lane name: `"serial"`, `"coord"`, or `"w<N>"` for worker N.
    pub name: String,
    /// Total lane lifetime in nanoseconds (first to last stamp).
    pub total_ns: u64,
    /// Nanoseconds attributed to each phase; sums to `total_ns` exactly.
    pub phase_ns: [u64; NUM_HOST_PHASES],
    /// Per-epoch nanoseconds per phase (log2 histogram, mergeable).
    pub epoch_ns: [Histogram; NUM_HOST_PHASES],
}

impl LaneProfile {
    /// Sum of the per-phase attributions — equals [`LaneProfile::total_ns`]
    /// up to the engines' measurement epsilon.
    pub fn phase_sum(&self) -> u64 {
        self.phase_ns.iter().sum()
    }

    /// Fold another lane into this one (for cross-run merges).
    pub fn merge(&mut self, other: &LaneProfile) {
        self.total_ns += other.total_ns;
        for (a, b) in self.phase_ns.iter_mut().zip(other.phase_ns.iter()) {
            *a += b;
        }
        for (a, b) in self.epoch_ns.iter_mut().zip(other.epoch_ns.iter()) {
            a.merge(b);
        }
    }
}

/// Attributes elapsed wall-clock to [`HostPhase`]s via consecutive
/// monotonic stamps. The interval between two stamps is charged to the
/// phase that was active when it began, so attribution telescopes: after
/// [`PhaseTimer::finish`], the per-phase sums equal the lane total.
#[derive(Debug)]
pub struct PhaseTimer {
    start: Instant,
    last: Instant,
    phase: HostPhase,
    phase_ns: [u64; NUM_HOST_PHASES],
    epoch_acc: [u64; NUM_HOST_PHASES],
    epoch_ns: [Histogram; NUM_HOST_PHASES],
}

impl PhaseTimer {
    /// Start timing, in `initial` phase.
    pub fn new(initial: HostPhase) -> PhaseTimer {
        let now = Instant::now();
        PhaseTimer {
            start: now,
            last: now,
            phase: initial,
            phase_ns: [0; NUM_HOST_PHASES],
            epoch_acc: [0; NUM_HOST_PHASES],
            epoch_ns: std::array::from_fn(|_| Histogram::new()),
        }
    }

    /// Charge the interval since the previous stamp to the current phase
    /// and switch to `next`.
    #[inline]
    pub fn switch(&mut self, next: HostPhase) {
        let now = Instant::now();
        let d = now.duration_since(self.last).as_nanos() as u64;
        self.phase_ns[self.phase as usize] += d;
        self.epoch_acc[self.phase as usize] += d;
        self.last = now;
        self.phase = next;
    }

    /// Charge the pending interval without changing phase (so accumulated
    /// totals are current before reading them).
    #[inline]
    pub fn flush(&mut self) {
        let p = self.phase;
        self.switch(p);
    }

    /// The currently active phase.
    pub fn phase(&self) -> HostPhase {
        self.phase
    }

    /// Nanoseconds charged to `p` in the current epoch (call
    /// [`PhaseTimer::flush`] first for an up-to-the-stamp value).
    pub fn epoch_phase_ns(&self, p: HostPhase) -> u64 {
        self.epoch_acc[p as usize]
    }

    /// Total nanoseconds charged to `p` so far.
    pub fn phase_total_ns(&self, p: HostPhase) -> u64 {
        self.phase_ns[p as usize]
    }

    /// Total nanoseconds charged to all phases so far (call
    /// [`PhaseTimer::flush`] first for an up-to-the-stamp value).
    pub fn charged_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }

    /// Close the current epoch: record each phase's accumulated epoch
    /// nanoseconds into its histogram and reset the epoch accumulators.
    pub fn end_epoch(&mut self) {
        for (acc, h) in self.epoch_acc.iter_mut().zip(self.epoch_ns.iter_mut()) {
            h.record(*acc);
            *acc = 0;
        }
    }

    /// Charge the final interval and package the lane profile.
    pub fn finish(mut self, name: &str) -> LaneProfile {
        self.flush();
        LaneProfile {
            name: name.to_string(),
            total_ns: self.last.duration_since(self.start).as_nanos() as u64,
            phase_ns: self.phase_ns,
            epoch_ns: self.epoch_ns,
        }
    }
}

/// Host-side profile of one engine run: per-lane wall-clock attribution
/// plus per-epoch counters. All fields are mergeable (integer sums and
/// log2 histograms), so profiles from repeated or sharded runs fold
/// together exactly associatively.
#[derive(Clone, Debug, Default)]
pub struct HostProfile {
    /// Engine that produced the profile (`"serial"` or `"parallel"`).
    pub engine: String,
    /// Worker threads the run used (1 for the serial engine).
    pub workers: usize,
    /// Epochs executed (watchdog-interval segments for the serial engine).
    pub epochs: u64,
    /// Epoch lookahead in simulated cycles (0 for the serial engine).
    pub lookahead: Cycle,
    /// Simulated cycles the run advanced.
    pub sim_cycles: Cycle,
    /// Engine wall-clock in nanoseconds (the coordinator lane's total).
    pub wall_ns: u64,
    /// Lane 0 is the coordinator (or the serial loop); lanes 1.. are the
    /// parallel engine's workers.
    pub lanes: Vec<LaneProfile>,
    /// Epoch length in simulated cycles, per epoch.
    pub epoch_cycles: Histogram,
    /// Messages exchanged (injection-replayed) at each epoch barrier.
    pub barrier_msgs: Histogram,
    /// Per-epoch owned-node tick imbalance across workers, as
    /// `1000 * max(ticks per worker) / mean(ticks per worker)` (1000 =
    /// perfectly balanced; only recorded for multi-worker epochs that
    /// ticked at all).
    pub imbalance_x1000: Histogram,
    /// Node-cycles actually ticked (one node, one cycle).
    pub ticked_cycles: u64,
    /// Node-cycles skipped as provably idle.
    pub skipped_cycles: u64,
}

impl HostProfile {
    /// Fold another profile into this one. Lane lists are matched by
    /// index; a longer lane list is appended.
    pub fn merge(&mut self, other: &HostProfile) {
        if self.engine.is_empty() {
            self.engine = other.engine.clone();
        }
        self.workers = self.workers.max(other.workers);
        self.epochs += other.epochs;
        self.lookahead = self.lookahead.max(other.lookahead);
        self.sim_cycles += other.sim_cycles;
        self.wall_ns += other.wall_ns;
        for (i, lane) in other.lanes.iter().enumerate() {
            match self.lanes.get_mut(i) {
                Some(mine) => mine.merge(lane),
                None => self.lanes.push(lane.clone()),
            }
        }
        self.epoch_cycles.merge(&other.epoch_cycles);
        self.barrier_msgs.merge(&other.barrier_msgs);
        self.imbalance_x1000.merge(&other.imbalance_x1000);
        self.ticked_cycles += other.ticked_cycles;
        self.skipped_cycles += other.skipped_cycles;
    }

    /// Worker lanes (everything after the coordinator lane).
    pub fn worker_lanes(&self) -> &[LaneProfile] {
        if self.lanes.len() > 1 {
            &self.lanes[1..]
        } else {
            &self.lanes
        }
    }

    /// Fraction of worker wall-clock spent waiting at epoch barriers
    /// (arrival + departure). 0 for the serial engine.
    pub fn barrier_wait_frac(&self) -> f64 {
        let lanes = self.worker_lanes();
        let total: u64 = lanes.iter().map(|l| l.total_ns).sum();
        if total == 0 {
            return 0.0;
        }
        let wait: u64 = lanes
            .iter()
            .map(|l| {
                l.phase_ns[HostPhase::BarrierArrive as usize]
                    + l.phase_ns[HostPhase::BarrierDepart as usize]
            })
            .sum();
        wait as f64 / total as f64
    }

    /// Fraction of node-cycles the engine skipped as provably idle
    /// instead of ticking.
    pub fn skip_efficiency(&self) -> f64 {
        let total = self.ticked_cycles + self.skipped_cycles;
        if total == 0 {
            0.0
        } else {
            self.skipped_cycles as f64 / total as f64
        }
    }

    /// Mean per-epoch owned-node tick imbalance (`max / mean` across
    /// workers; 1.0 = perfectly balanced, 0 when never recorded).
    pub fn imbalance_ratio(&self) -> f64 {
        if self.imbalance_x1000.is_empty() {
            0.0
        } else {
            self.imbalance_x1000.mean() / 1000.0
        }
    }

    /// Simulated cycles per wall-clock second.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.sim_cycles as f64 * 1e9 / self.wall_ns as f64
        }
    }

    /// Per-worker utilization: tick/compute share of each worker lane's
    /// wall-clock.
    pub fn worker_utilization(&self) -> Vec<f64> {
        self.worker_lanes()
            .iter()
            .map(|l| {
                if l.total_ns == 0 {
                    0.0
                } else {
                    l.phase_ns[HostPhase::Tick as usize] as f64 / l.total_ns as f64
                }
            })
            .collect()
    }

    /// Worst relative telescoping error across lanes:
    /// `max |phase_sum - total| / total`. The engines stamp phases over
    /// the lane's whole lifetime, so this is 0 up to clock granularity.
    pub fn telescoping_error(&self) -> f64 {
        self.lanes
            .iter()
            .filter(|l| l.total_ns > 0)
            .map(|l| l.phase_sum().abs_diff(l.total_ns) as f64 / l.total_ns as f64)
            .fold(0.0, f64::max)
    }

    /// Render as a JSON object (hand-rolled, deterministic field order) —
    /// the artifact CI uploads and the `host_profile` section of report
    /// JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push('{');
        push_kv_str(&mut out, "engine", &self.engine);
        push_kv_num(&mut out, "workers", self.workers as f64);
        push_kv_num(&mut out, "epochs", self.epochs as f64);
        push_kv_num(&mut out, "lookahead", self.lookahead as f64);
        push_kv_num(&mut out, "sim_cycles", self.sim_cycles as f64);
        push_kv_num(&mut out, "wall_ns", self.wall_ns as f64);
        push_kv_num(&mut out, "sim_cycles_per_sec", self.sim_cycles_per_sec());
        push_kv_num(&mut out, "barrier_wait_frac", self.barrier_wait_frac());
        push_kv_num(&mut out, "imbalance_ratio", self.imbalance_ratio());
        push_kv_num(&mut out, "skip_efficiency", self.skip_efficiency());
        push_kv_num(&mut out, "ticked_cycles", self.ticked_cycles as f64);
        push_kv_num(&mut out, "skipped_cycles", self.skipped_cycles as f64);
        push_kv_num(&mut out, "telescoping_error", self.telescoping_error());
        out.push_str(",\"epoch_cycles\":");
        push_hist(&mut out, &self.epoch_cycles);
        out.push_str(",\"barrier_msgs\":");
        push_hist(&mut out, &self.barrier_msgs);
        out.push_str(",\"lanes\":[");
        for (i, lane) in self.lanes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_kv_str(&mut out, "name", &lane.name);
            push_kv_num(&mut out, "total_ns", lane.total_ns as f64);
            out.push_str(",\"phases\":{");
            for (p, name) in HOST_PHASE_NAMES.iter().enumerate() {
                if p > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{name}\":{}", lane.phase_ns[p]));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// A one-screen plain-text summary (for quickstart and bench output).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "host profile ({} engine, {} worker(s), {} epochs): {:.1} ms wall, {:.2} Msim-cycles/s",
            self.engine,
            self.workers,
            self.epochs,
            self.wall_ns as f64 / 1e6,
            self.sim_cycles_per_sec() / 1e6,
        );
        let _ = writeln!(
            s,
            "  barrier wait {:.1}%  imbalance {:.2}x  skip efficiency {:.1}%",
            100.0 * self.barrier_wait_frac(),
            self.imbalance_ratio(),
            100.0 * self.skip_efficiency(),
        );
        for lane in &self.lanes {
            let total = lane.total_ns.max(1);
            let mut parts: Vec<String> = Vec::new();
            for (p, name) in HOST_PHASE_NAMES.iter().enumerate() {
                let ns = lane.phase_ns[p];
                if ns * 200 >= total {
                    // only phases worth >= 0.5%
                    parts.push(format!("{name} {:.1}%", 100.0 * ns as f64 / total as f64));
                }
            }
            let _ = writeln!(
                s,
                "  {:>6}: {:>9.1} ms  {}",
                lane.name,
                lane.total_ns as f64 / 1e6,
                parts.join(", ")
            );
        }
        s
    }
}

fn push_kv_str(out: &mut String, k: &str, v: &str) {
    if !out.ends_with('{') {
        out.push(',');
    }
    out.push_str(&format!(
        "\"{k}\":\"{}\"",
        v.replace('\\', "\\\\").replace('"', "\\\"")
    ));
}

fn push_kv_num(out: &mut String, k: &str, v: f64) {
    if !out.ends_with('{') {
        out.push(',');
    }
    out.push_str(&format!("\"{k}\":{}", json_num(v)));
}

fn push_hist(out: &mut String, h: &Histogram) {
    out.push_str(&format!(
        "{{\"count\":{},\"mean\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{}}}",
        h.count(),
        json_num(h.mean()),
        h.min(),
        h.max(),
        h.percentile(50.0),
        h.percentile(95.0)
    ));
}

/// Format a finite number: integers without a fraction, everything else
/// with four digits (locale-independent).
fn json_num(v: f64) -> String {
    if !v.is_finite() {
        "0".to_string()
    } else if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

// ---------------------------------------------------------------------------
// Heartbeat
// ---------------------------------------------------------------------------

/// Periodic liveness records for long runs: one JSON object per line,
/// flushed immediately, so an interrupted run still leaves a readable,
/// line-complete log. Each record carries the simulated cycle, wall-clock
/// progress, simulated-cycles-per-second and epoch rate since the previous
/// record, and per-worker utilization.
pub struct Heartbeat {
    out: Box<dyn Write + Send>,
    every: Cycle,
    next_due: Cycle,
    started: Option<Instant>,
    last_wall: Option<Instant>,
    last_cycle: Cycle,
    last_epochs: u64,
    records: u64,
}

impl Heartbeat {
    /// A heartbeat emitting every `every` simulated cycles into `out`
    /// (`None` = stderr).
    pub fn new(every: Cycle, out: Option<Box<dyn Write + Send>>) -> Heartbeat {
        Heartbeat {
            out: out.unwrap_or_else(|| Box::new(std::io::stderr())),
            every: every.max(1),
            next_due: 0,
            started: None,
            last_wall: None,
            last_cycle: 0,
            last_epochs: 0,
            records: 0,
        }
    }

    /// Arm the emitter at the run's starting cycle.
    pub fn start(&mut self, cycle: Cycle) {
        let now = Instant::now();
        self.started = Some(now);
        self.last_wall = Some(now);
        self.last_cycle = cycle;
        self.last_epochs = 0;
        self.next_due = cycle.saturating_add(self.every);
    }

    /// Whether a record is due at `cycle` (call [`Heartbeat::start`] first).
    #[inline]
    pub fn due(&self, cycle: Cycle) -> bool {
        self.started.is_some() && cycle >= self.next_due
    }

    /// Records emitted so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The configured emission interval in simulated cycles.
    pub fn every(&self) -> Cycle {
        self.every
    }

    /// Emit one record at `cycle`. `util` is per-worker utilization since
    /// the previous record (tick share of wall-clock, `0.0..=1.0`).
    pub fn emit(&mut self, cycle: Cycle, engine: &str, workers: usize, epochs: u64, util: &[f64]) {
        let now = Instant::now();
        let (Some(started), Some(last)) = (self.started, self.last_wall) else {
            return;
        };
        let dt = now.duration_since(last).as_secs_f64();
        let wall_ms = now.duration_since(started).as_secs_f64() * 1e3;
        let d_cycles = cycle.saturating_sub(self.last_cycle);
        let d_epochs = epochs.saturating_sub(self.last_epochs);
        let (cps, eps) = if dt > 0.0 {
            (d_cycles as f64 / dt, d_epochs as f64 / dt)
        } else {
            (0.0, 0.0)
        };
        self.records += 1;
        let mut line = format!(
            "{{\"hb\":{},\"engine\":\"{engine}\",\"cycle\":{cycle},\"wall_ms\":{},\
             \"sim_cycles_per_sec\":{},\"epochs\":{epochs},\"epoch_rate\":{},\"workers\":{workers},\"util\":[",
            self.records,
            json_num(wall_ms),
            json_num(cps),
            json_num(eps),
        );
        for (i, u) in util.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&json_num(u.clamp(0.0, 1.0)));
        }
        line.push_str("]}\n");
        let _ = self.out.write_all(line.as_bytes());
        let _ = self.out.flush();
        self.last_wall = Some(now);
        self.last_cycle = cycle;
        self.last_epochs = epochs;
        while self.next_due <= cycle {
            self.next_due = self.next_due.saturating_add(self.every);
        }
    }
}

impl std::fmt::Debug for Heartbeat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Heartbeat")
            .field("every", &self.every)
            .field("records", &self.records)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_timer_telescopes_exactly() {
        let mut t = PhaseTimer::new(HostPhase::Tick);
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.switch(HostPhase::BarrierArrive);
        std::thread::sleep(std::time::Duration::from_millis(1));
        t.switch(HostPhase::Merge);
        t.end_epoch();
        t.switch(HostPhase::Tick);
        let lane = t.finish("w0");
        assert_eq!(lane.name, "w0");
        // Every interval lands in exactly one phase, so the sums telescope
        // to the lane total exactly (both come from the same stamps).
        assert_eq!(lane.phase_sum(), lane.total_ns);
        assert!(lane.phase_ns[HostPhase::Tick as usize] >= 1_000_000);
        assert!(lane.phase_ns[HostPhase::BarrierArrive as usize] >= 500_000);
    }

    #[test]
    fn epoch_histograms_record_per_epoch_values() {
        let mut t = PhaseTimer::new(HostPhase::Tick);
        for _ in 0..3 {
            t.flush();
            t.end_epoch();
        }
        let lane = t.finish("coord");
        assert_eq!(lane.epoch_ns[HostPhase::Tick as usize].count(), 3);
    }

    #[test]
    fn profile_merge_sums_counters() {
        let mk = || {
            let mut p = HostProfile {
                engine: "parallel".into(),
                workers: 2,
                epochs: 4,
                sim_cycles: 100,
                wall_ns: 1000,
                ticked_cycles: 50,
                skipped_cycles: 150,
                ..HostProfile::default()
            };
            p.epoch_cycles.record(25);
            p.imbalance_x1000.record(1500);
            p
        };
        let mut a = mk();
        a.merge(&mk());
        assert_eq!(a.epochs, 8);
        assert_eq!(a.sim_cycles, 200);
        assert_eq!(a.epoch_cycles.count(), 2);
        assert!((a.skip_efficiency() - 0.75).abs() < 1e-12);
        assert!((a.imbalance_ratio() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn profile_json_is_balanced() {
        let mut p = HostProfile {
            engine: "serial".into(),
            workers: 1,
            ..HostProfile::default()
        };
        p.lanes.push(LaneProfile {
            name: "serial".into(),
            total_ns: 10,
            phase_ns: [0; NUM_HOST_PHASES],
            epoch_ns: std::array::from_fn(|_| Histogram::new()),
        });
        let json = p.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"engine\":\"serial\""));
        assert!(json.contains("\"tick\":"));
    }

    #[test]
    fn heartbeat_emits_valid_jsonl_lines() {
        use std::sync::{Arc, Mutex};
        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, d: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(d);
                Ok(d.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Buf::default();
        let mut hb = Heartbeat::new(1000, Some(Box::new(buf.clone())));
        hb.start(0);
        assert!(!hb.due(999));
        assert!(hb.due(1000));
        hb.emit(1000, "serial", 1, 0, &[0.5]);
        assert!(!hb.due(1999));
        assert!(hb.due(2048));
        hb.emit(2048, "serial", 1, 0, &[1.0]);
        assert_eq!(hb.records(), 2);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.starts_with("{\"hb\":"));
            assert!(line.ends_with('}'));
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
        assert!(text.lines().next().unwrap().contains("\"cycle\":1000"));
    }
}
