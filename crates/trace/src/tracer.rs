//! The [`Tracer`] handle: a cheap-clone, one-branch-when-disabled conduit
//! from every simulator component to the installed sinks and the crash ring
//! buffer.

use crate::event::{Category, Event};
use crate::sink::TraceSink;
use smtp_types::Cycle;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

/// Bounded ring of the most recent events, dumped on deadlock panics.
struct RingBuffer {
    cap: usize,
    buf: VecDeque<(Cycle, Event)>,
}

/// State shared by every clone of a [`Tracer`].
struct TraceShared {
    mask: Cell<u32>,
    ring: RefCell<RingBuffer>,
    sinks: RefCell<Vec<Box<dyn TraceSink>>>,
}

/// A handle to the trace subsystem.
///
/// `System` creates one tracer and clones it into every component at build
/// time; clones share the enable mask, ring buffer and sinks through an
/// `Rc`. [`Tracer::default`] (and [`Tracer::disabled`]) produce a detached
/// handle that ignores everything — components start with one so their
/// constructors need no tracer argument.
///
/// The hot path is [`Tracer::emit`]: on a disabled category it costs one
/// `Option` check, one pointer load and one mask test; the event closure is
/// never run.
#[derive(Clone, Default)]
pub struct Tracer {
    shared: Option<Rc<TraceShared>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("attached", &self.is_attached())
            .field("mask", &self.mask())
            .finish()
    }
}

impl Tracer {
    /// An attached tracer with an empty mask (everything off until
    /// [`Tracer::set_mask`] / [`Tracer::enable_all`]).
    pub fn new() -> Tracer {
        Tracer {
            shared: Some(Rc::new(TraceShared {
                mask: Cell::new(0),
                ring: RefCell::new(RingBuffer {
                    cap: 0,
                    buf: VecDeque::new(),
                }),
                sinks: RefCell::new(Vec::new()),
            })),
        }
    }

    /// A detached tracer that drops everything (what components hold before
    /// `System` attaches the real one).
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// Whether this handle is attached to shared trace state.
    pub fn is_attached(&self) -> bool {
        self.shared.is_some()
    }

    /// Whether `cat` is currently enabled.
    #[inline(always)]
    pub fn enabled(&self, cat: Category) -> bool {
        match &self.shared {
            Some(sh) => sh.mask.get() & cat.bit() != 0,
            None => false,
        }
    }

    /// Current category mask (0 when detached).
    pub fn mask(&self) -> u32 {
        self.shared.as_ref().map_or(0, |sh| sh.mask.get())
    }

    /// Replace the category mask (bits per [`Category::bit`]).
    pub fn set_mask(&self, mask: u32) {
        if let Some(sh) = &self.shared {
            sh.mask.set(mask & Category::ALL);
        }
    }

    /// Enable every category.
    pub fn enable_all(&self) {
        self.set_mask(Category::ALL);
    }

    /// Record `f()` at cycle `now` if `cat` is enabled.
    ///
    /// The closure only runs — and the event is only constructed — when the
    /// category bit is set, so instrumentation sites cost one branch when
    /// tracing is off.
    #[inline(always)]
    pub fn emit<F: FnOnce() -> Event>(&self, cat: Category, now: Cycle, f: F) {
        if let Some(sh) = &self.shared {
            if sh.mask.get() & cat.bit() != 0 {
                Tracer::record(sh, now, f());
            }
        }
    }

    #[cold]
    fn record(sh: &TraceShared, now: Cycle, ev: Event) {
        {
            let mut ring = sh.ring.borrow_mut();
            if ring.cap > 0 {
                if ring.buf.len() == ring.cap {
                    ring.buf.pop_front();
                }
                ring.buf.push_back((now, ev));
            }
        }
        for sink in sh.sinks.borrow_mut().iter_mut() {
            sink.record(now, &ev);
        }
    }

    /// Install a sink; events matching the mask are delivered to every
    /// installed sink in installation order.
    pub fn add_sink(&self, sink: Box<dyn TraceSink>) {
        if let Some(sh) = &self.shared {
            sh.sinks.borrow_mut().push(sink);
        }
    }

    /// Keep the last `cap` events in an in-memory ring for crash dumps
    /// (0 disables the ring).
    pub fn enable_ring(&self, cap: usize) {
        if let Some(sh) = &self.shared {
            let mut ring = sh.ring.borrow_mut();
            ring.cap = cap;
            while ring.buf.len() > cap {
                ring.buf.pop_front();
            }
        }
    }

    /// The ring contents, oldest first, formatted one event per line.
    pub fn ring_dump(&self) -> Vec<String> {
        match &self.shared {
            Some(sh) => sh
                .ring
                .borrow()
                .buf
                .iter()
                .map(|(t, ev)| format!("[{t:>10}] {ev}"))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Flush every installed sink (finalizes file formats; Chrome traces
    /// are unreadable until flushed).
    pub fn flush(&self) {
        if let Some(sh) = &self.shared {
            for sink in sh.sinks.borrow_mut().iter_mut() {
                sink.flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;
    use smtp_types::{LineAddr, NodeId};

    fn ev(n: u16) -> Event {
        Event::MshrFree {
            node: NodeId(n),
            line: LineAddr(0x80),
        }
    }

    #[test]
    fn disabled_tracer_drops_everything() {
        let t = Tracer::disabled();
        let mut ran = false;
        t.emit(Category::Cache, 1, || {
            ran = true;
            ev(0)
        });
        assert!(!ran);
        assert!(!t.enabled(Category::Cache));
    }

    #[test]
    fn mask_gates_closure_execution() {
        let t = Tracer::new();
        let sink = MemorySink::shared();
        t.add_sink(Box::new(MemorySink::attach(&sink)));

        let mut ran = false;
        t.emit(Category::Cache, 1, || {
            ran = true;
            ev(0)
        });
        assert!(!ran, "closure must not run with the category disabled");

        t.set_mask(Category::Cache.bit());
        t.emit(Category::Cache, 2, || {
            ran = true;
            ev(1)
        });
        assert!(ran);
        t.emit(Category::Network, 3, || ev(2));
        assert_eq!(sink.borrow().len(), 1, "network event must be masked out");
    }

    #[test]
    fn clones_share_mask_ring_and_sinks() {
        let t = Tracer::new();
        let clone = t.clone();
        t.enable_all();
        t.enable_ring(2);
        clone.emit(Category::Cache, 1, || ev(0));
        clone.emit(Category::Cache, 2, || ev(1));
        clone.emit(Category::Cache, 3, || ev(2));
        let dump = t.ring_dump();
        assert_eq!(dump.len(), 2, "ring must stay bounded");
        assert!(dump[0].contains("[         2]"), "oldest retained is t=2");
    }
}
