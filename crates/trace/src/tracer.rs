//! The [`Tracer`] handle: a cheap-clone, one-branch-when-disabled conduit
//! from every simulator component to the installed sinks and the crash ring
//! buffer.

use crate::event::{Category, Event};
use crate::sink::TraceSink;
use smtp_types::capture::{self, CapturePoint};
use smtp_types::Cycle;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

/// Bounded ring of the most recent events, dumped on deadlock panics.
struct RingBuffer {
    cap: usize,
    buf: VecDeque<(Cycle, Event)>,
}

/// State shared by every clone of a [`Tracer`]. Shared state is behind
/// `Arc`/`Mutex`/atomics so tracer clones can live on the parallel epoch
/// engine's worker threads; the hot path only performs one relaxed atomic
/// load, and workers never touch the locks (they capture into thread-local
/// buffers instead — see [`smtp_types::capture`]).
struct TraceShared {
    mask: AtomicU32,
    ring: Mutex<RingBuffer>,
    sinks: Mutex<Vec<Box<dyn TraceSink>>>,
}

/// One trace event captured on a worker thread, tagged with the serial
/// position it must be replayed at.
pub type CapturedEvent = (CapturePoint, Cycle, Event);

thread_local! {
    static CAPTURED_EVENTS: RefCell<Vec<CapturedEvent>> = const { RefCell::new(Vec::new()) };
}

/// Drain this thread's captured trace events.
pub fn take_captured_events() -> Vec<CapturedEvent> {
    CAPTURED_EVENTS.with(|b| std::mem::take(&mut *b.borrow_mut()))
}

/// A handle to the trace subsystem.
///
/// `System` creates one tracer and clones it into every component at build
/// time; clones share the enable mask, ring buffer and sinks through an
/// `Arc`. [`Tracer::default`] (and [`Tracer::disabled`]) produce a detached
/// handle that ignores everything — components start with one so their
/// constructors need no tracer argument.
///
/// The hot path is [`Tracer::emit`]: on a disabled category it costs one
/// `Option` check, one pointer load and one mask test; the event closure is
/// never run.
#[derive(Clone, Default)]
pub struct Tracer {
    shared: Option<Arc<TraceShared>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("attached", &self.is_attached())
            .field("mask", &self.mask())
            .finish()
    }
}

impl Tracer {
    /// An attached tracer with an empty mask (everything off until
    /// [`Tracer::set_mask`] / [`Tracer::enable_all`]).
    pub fn new() -> Tracer {
        Tracer {
            shared: Some(Arc::new(TraceShared {
                mask: AtomicU32::new(0),
                ring: Mutex::new(RingBuffer {
                    cap: 0,
                    buf: VecDeque::new(),
                }),
                sinks: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A detached tracer that drops everything (what components hold before
    /// `System` attaches the real one).
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// Whether this handle is attached to shared trace state.
    pub fn is_attached(&self) -> bool {
        self.shared.is_some()
    }

    /// Whether `cat` is currently enabled.
    #[inline(always)]
    pub fn enabled(&self, cat: Category) -> bool {
        match &self.shared {
            Some(sh) => sh.mask.load(Ordering::Relaxed) & cat.bit() != 0,
            None => false,
        }
    }

    /// Current category mask (0 when detached).
    pub fn mask(&self) -> u32 {
        self.shared
            .as_ref()
            .map_or(0, |sh| sh.mask.load(Ordering::Relaxed))
    }

    /// Replace the category mask (bits per [`Category::bit`]).
    pub fn set_mask(&self, mask: u32) {
        if let Some(sh) = &self.shared {
            sh.mask.store(mask & Category::ALL, Ordering::Relaxed);
        }
    }

    /// Enable every category.
    pub fn enable_all(&self) {
        self.set_mask(Category::ALL);
    }

    /// Record `f()` at cycle `now` if `cat` is enabled.
    ///
    /// The closure only runs — and the event is only constructed — when the
    /// category bit is set, so instrumentation sites cost one branch when
    /// tracing is off.
    #[inline(always)]
    pub fn emit<F: FnOnce() -> Event>(&self, cat: Category, now: Cycle, f: F) {
        if let Some(sh) = &self.shared {
            if sh.mask.load(Ordering::Relaxed) & cat.bit() != 0 {
                Tracer::record(sh, now, f());
            }
        }
    }

    #[cold]
    fn record(sh: &TraceShared, now: Cycle, ev: Event) {
        // Parallel workers defer delivery: the event is buffered with its
        // serial position and replayed at the next epoch barrier, so the
        // ring and sinks see the exact serial-order stream.
        if capture::is_active() {
            CAPTURED_EVENTS.with(|b| b.borrow_mut().push((capture::point(), now, ev)));
            return;
        }
        Tracer::deliver(sh, now, ev);
    }

    fn deliver(sh: &TraceShared, now: Cycle, ev: Event) {
        {
            let mut ring = sh.ring.lock().unwrap();
            if ring.cap > 0 {
                if ring.buf.len() == ring.cap {
                    ring.buf.pop_front();
                }
                ring.buf.push_back((now, ev));
            }
        }
        for sink in sh.sinks.lock().unwrap().iter_mut() {
            sink.record(now, &ev);
        }
    }

    /// Deliver captured events (already merged into serial order by the
    /// caller) to the ring and sinks. The category mask was applied when
    /// each event was captured, so it is not re-checked.
    pub fn replay_captured(&self, events: &[CapturedEvent]) {
        if let Some(sh) = &self.shared {
            for &(_, now, ev) in events {
                Tracer::deliver(sh, now, ev);
            }
        }
    }

    /// Install a sink; events matching the mask are delivered to every
    /// installed sink in installation order.
    pub fn add_sink(&self, sink: Box<dyn TraceSink>) {
        if let Some(sh) = &self.shared {
            sh.sinks.lock().unwrap().push(sink);
        }
    }

    /// Keep the last `cap` events in an in-memory ring for crash dumps
    /// (0 disables the ring).
    pub fn enable_ring(&self, cap: usize) {
        if let Some(sh) = &self.shared {
            let mut ring = sh.ring.lock().unwrap();
            ring.cap = cap;
            while ring.buf.len() > cap {
                ring.buf.pop_front();
            }
        }
    }

    /// The ring contents, oldest first, formatted one event per line.
    pub fn ring_dump(&self) -> Vec<String> {
        match &self.shared {
            Some(sh) => sh
                .ring
                .lock()
                .unwrap()
                .buf
                .iter()
                .map(|(t, ev)| format!("[{t:>10}] {ev}"))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Flush every installed sink (finalizes file formats; Chrome traces
    /// are unreadable until flushed).
    pub fn flush(&self) {
        if let Some(sh) = &self.shared {
            for sink in sh.sinks.lock().unwrap().iter_mut() {
                sink.flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;
    use smtp_types::{LineAddr, NodeId};

    fn ev(n: u16) -> Event {
        Event::MshrFree {
            node: NodeId(n),
            line: LineAddr(0x80),
            span: smtp_types::SpanId::new(NodeId(n), 1),
        }
    }

    #[test]
    fn disabled_tracer_drops_everything() {
        let t = Tracer::disabled();
        let mut ran = false;
        t.emit(Category::Cache, 1, || {
            ran = true;
            ev(0)
        });
        assert!(!ran);
        assert!(!t.enabled(Category::Cache));
    }

    #[test]
    fn mask_gates_closure_execution() {
        let t = Tracer::new();
        let sink = MemorySink::shared();
        t.add_sink(Box::new(MemorySink::attach(&sink)));

        let mut ran = false;
        t.emit(Category::Cache, 1, || {
            ran = true;
            ev(0)
        });
        assert!(!ran, "closure must not run with the category disabled");

        t.set_mask(Category::Cache.bit());
        t.emit(Category::Cache, 2, || {
            ran = true;
            ev(1)
        });
        assert!(ran);
        t.emit(Category::Network, 3, || ev(2));
        assert_eq!(sink.borrow().len(), 1, "network event must be masked out");
    }

    #[test]
    fn clones_share_mask_ring_and_sinks() {
        let t = Tracer::new();
        let clone = t.clone();
        t.enable_all();
        t.enable_ring(2);
        clone.emit(Category::Cache, 1, || ev(0));
        clone.emit(Category::Cache, 2, || ev(1));
        clone.emit(Category::Cache, 3, || ev(2));
        let dump = t.ring_dump();
        assert_eq!(dump.len(), 2, "ring must stay bounded");
        assert!(dump[0].contains("[         2]"), "oldest retained is t=2");
    }

    #[test]
    fn captured_events_replay_in_merged_order() {
        let t = Tracer::new();
        t.enable_all();
        let sink = MemorySink::shared();
        t.add_sink(Box::new(MemorySink::attach(&sink)));

        // Capture events out of serial order (as two workers would).
        smtp_types::capture::begin((7, 3, 0));
        t.emit(Category::Cache, 7, || ev(1));
        smtp_types::capture::set_point((7, 1, 0));
        t.emit(Category::Cache, 7, || ev(0));
        smtp_types::capture::end();
        assert!(sink.borrow().is_empty(), "capture defers sink delivery");

        let mut events = take_captured_events();
        events.sort_by_key(|&(point, _, _)| point);
        t.replay_captured(&events);
        let store = sink.borrow();
        assert_eq!(store.len(), 2);
        assert_eq!(store[0].1, ev(0), "lane 1 replays before lane 3");
        assert_eq!(store[1].1, ev(1));
    }
}
