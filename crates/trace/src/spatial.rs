//! Spatial hot-spot attribution: per-line heavy-hitter tracking with a
//! sharing-pattern classifier, per-home-node directory heatmaps, and
//! per-directed-link NoC utilization — the paper's Table 7 occupancy
//! numbers resolved to *which* home node, *which* cache line and *which*
//! hypercube link.
//!
//! # Determinism
//!
//! Every structure here is owned by exactly one simulated component
//! (a node's directory or cache hierarchy, or the coordinator-owned
//! network) and mutated only on real protocol/cache/network activity —
//! never on idle ticks. That is the same ownership contract the existing
//! `*Stats` structs rely on, so the parallel epoch engine needs no extra
//! capture/replay: serial and parallel runs update these counters at the
//! same call sites in the same order, and the end-of-run merge (node 0..n,
//! then the network) is fixed. The [`LineTracker`] is a deterministic
//! Space-Saving summary: eviction and merge tie-breaks are total orders
//! over `(weight, line address)`, so identical event streams produce
//! bit-identical trackers.
//!
//! # Space-Saving guarantees
//!
//! With capacity `k` over a stream of `n` tracked events:
//! * every tracked weight over-estimates the true count by at most its
//!   recorded `err`, and `err <= n / k`;
//! * any line whose true count exceeds `n / k` is present in the tracker.

use smtp_types::{Addr, Distribution, LineAddr, L2_LINE};
use std::collections::HashMap;

/// Bytes per false-sharing sub-block; one bit of the access masks.
pub const SUB_BLOCK: u64 = 8;

/// Sub-blocks per L2 line (mask width).
pub const SUB_BLOCKS: u32 = (L2_LINE / SUB_BLOCK) as u32;

/// Mask bit for the sub-block `addr` falls in.
#[inline]
pub fn sub_block_bit(addr: Addr) -> u16 {
    1 << ((addr.raw() % L2_LINE) / SUB_BLOCK)
}

/// Mask bit for a node id (aliased mod 64 on >64-node machines — the
/// classifier only needs "one node vs several", which aliasing preserves
/// in practice).
#[inline]
pub fn node_bit(node: usize) -> u64 {
    1 << (node % 64)
}

/// Per-line event counters and sharer-transition signature. Home-side
/// fields are filled by the directory that owns the line; requester-side
/// fields by each node's cache hierarchy; the end-of-run merge joins both
/// views on the line address.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LineCounters {
    // ---- home side (directory) ----
    /// GetS requests handled.
    pub reads: u64,
    /// GetX + Upgrade requests handled.
    pub writes: u64,
    /// Upgrade requests handled.
    pub upgrades: u64,
    /// Put requests handled (writebacks reaching the home).
    pub writebacks: u64,
    /// Invalidations the home sent for this line.
    pub invals_sent: u64,
    /// Interventions (shared or exclusive) the home sent.
    pub interventions: u64,
    /// Requests deferred while the line was busy (NACK/retry analog).
    pub nacks: u64,
    /// GetS arriving while another node held the line exclusive
    /// (producer-consumer / migratory signal).
    pub read_after_write: u64,
    /// GetX/Upgrade arriving while the line was shared.
    pub write_after_read: u64,
    /// Times exclusive ownership moved to a different node.
    pub writer_changes: u64,
    /// Peak sharer count observed after a transition.
    pub peak_sharers: u32,
    /// Last node granted write ownership (home side).
    pub last_writer: Option<u32>,
    // ---- requester side (cache hierarchy) ----
    /// Coherence-visible misses (read/write/upgrade MSHR allocations).
    pub misses: u64,
    /// Invalidations received by requesters.
    pub invals_rx: u64,
    /// Interventions received by requesters.
    pub interventions_rx: u64,
    /// Sub-blocks written (union over all merged requesters).
    pub write_mask: u16,
    /// Sub-blocks read (union over all merged requesters).
    pub read_mask: u16,
    /// Sub-blocks written by two or more *distinct* nodes (populated by
    /// the cross-node merge; always zero inside a single node's tracker).
    pub multi_write_mask: u16,
    /// Nodes that touched the line (requester or home request source).
    pub toucher_mask: u64,
    /// Nodes that requested write permission.
    pub writer_mask: u64,
}

/// The home-visible request kinds [`record_home`] distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HomeReq {
    /// GetS.
    Read,
    /// GetX.
    Write,
    /// Upgrade.
    Upgrade,
    /// Put (writeback).
    Writeback,
}

/// Directory state of the line *before* the request was applied, reduced
/// to what the signature needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrevState {
    /// No cached copy.
    Unowned,
    /// Shared by `n` nodes.
    Shared(u32),
    /// Exclusively owned by node `owner`.
    Exclusive(usize),
}

/// Fold one home-side request into a line's signature. `src` is the
/// requesting node, `prev` the directory state the request found, and
/// `sharers_after` the sharer count after the transition applied.
pub fn record_home(
    c: &mut LineCounters,
    src: usize,
    req: HomeReq,
    prev: PrevState,
    sharers_after: u32,
) {
    c.toucher_mask |= node_bit(src);
    c.peak_sharers = c.peak_sharers.max(sharers_after);
    match req {
        HomeReq::Read => {
            c.reads += 1;
            if matches!(prev, PrevState::Exclusive(o) if o != src) {
                c.read_after_write += 1;
            }
        }
        HomeReq::Write | HomeReq::Upgrade => {
            c.writes += 1;
            if req == HomeReq::Upgrade {
                c.upgrades += 1;
            }
            if matches!(prev, PrevState::Shared(n) if n > 0) {
                c.write_after_read += 1;
            }
            c.writer_mask |= node_bit(src);
            let src = src as u32;
            if c.last_writer != Some(src) {
                if c.last_writer.is_some() {
                    c.writer_changes += 1;
                }
                c.last_writer = Some(src);
            }
        }
        HomeReq::Writeback => c.writebacks += 1,
    }
}

impl LineCounters {
    /// Fold another view of the same line into this one. Cross-node merge:
    /// sub-blocks written by both sides' (disjoint) writer sets become
    /// multi-writer blocks.
    pub fn merge(&mut self, o: &LineCounters) {
        self.multi_write_mask |= o.multi_write_mask | (self.write_mask & o.write_mask);
        self.write_mask |= o.write_mask;
        self.read_mask |= o.read_mask;
        self.toucher_mask |= o.toucher_mask;
        self.writer_mask |= o.writer_mask;
        self.reads += o.reads;
        self.writes += o.writes;
        self.upgrades += o.upgrades;
        self.writebacks += o.writebacks;
        self.invals_sent += o.invals_sent;
        self.interventions += o.interventions;
        self.nacks += o.nacks;
        self.read_after_write += o.read_after_write;
        self.write_after_read += o.write_after_read;
        self.writer_changes += o.writer_changes;
        self.peak_sharers = self.peak_sharers.max(o.peak_sharers);
        self.last_writer = self.last_writer.or(o.last_writer);
        self.misses += o.misses;
        self.invals_rx += o.invals_rx;
        self.interventions_rx += o.interventions_rx;
    }
}

/// Sharing-pattern labels the classifier assigns to hot lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SharingClass {
    /// Only one node ever touched the line.
    Private,
    /// Read by several nodes, never written.
    ReadMostly,
    /// Exclusive ownership keeps hopping between nodes.
    Migratory,
    /// One writer, several readers pulling its updates.
    ProducerConsumer,
    /// Several writers, heavy coherence traffic, overlapping sub-blocks.
    Contended,
    /// Several writers generating coherence traffic on *disjoint*
    /// sub-blocks — padding would likely eliminate the traffic.
    FalseSharingSuspect,
    /// None of the signatures above fits cleanly.
    Mixed,
}

impl SharingClass {
    /// Stable lower-case label (report/JSON rendering).
    pub fn as_str(self) -> &'static str {
        match self {
            SharingClass::Private => "private",
            SharingClass::ReadMostly => "read-mostly",
            SharingClass::Migratory => "migratory",
            SharingClass::ProducerConsumer => "producer-consumer",
            SharingClass::Contended => "contended",
            SharingClass::FalseSharingSuspect => "false-sharing-suspect",
            SharingClass::Mixed => "mixed",
        }
    }

    /// Parse a label produced by [`SharingClass::as_str`].
    pub fn from_str_label(s: &str) -> Option<SharingClass> {
        Some(match s {
            "private" => SharingClass::Private,
            "read-mostly" => SharingClass::ReadMostly,
            "migratory" => SharingClass::Migratory,
            "producer-consumer" => SharingClass::ProducerConsumer,
            "contended" => SharingClass::Contended,
            "false-sharing-suspect" => SharingClass::FalseSharingSuspect,
            "mixed" => SharingClass::Mixed,
            _ => return None,
        })
    }
}

impl std::fmt::Display for SharingClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Minimum coherence-traffic events (invals + interventions + NACKs)
/// before a line is called contended.
const CONTENTION_MIN: u64 = 4;

/// Classify a merged line signature. Rules are checked in a fixed order,
/// so the label is a deterministic function of the counters.
pub fn classify(c: &LineCounters) -> SharingClass {
    let nodes = (c.toucher_mask | c.writer_mask).count_ones();
    let writers = c.writer_mask.count_ones();
    let coherence = c.invals_sent + c.interventions + c.invals_rx + c.interventions_rx;
    if nodes <= 1 && coherence == 0 && c.writer_changes == 0 {
        return SharingClass::Private;
    }
    if c.writes == 0 && c.writer_mask == 0 {
        return SharingClass::ReadMostly;
    }
    if writers >= 2 && c.write_mask.count_ones() >= 2 && c.multi_write_mask == 0 && coherence >= 2 {
        return SharingClass::FalseSharingSuspect;
    }
    if c.writer_changes >= 2 && c.reads <= c.writes.saturating_mul(2) {
        return SharingClass::Migratory;
    }
    if writers <= 1 && c.writer_changes == 0 && c.writes >= 1 && c.read_after_write >= 2 {
        return SharingClass::ProducerConsumer;
    }
    if coherence + c.nacks >= CONTENTION_MIN || c.writer_changes >= 2 {
        return SharingClass::Contended;
    }
    SharingClass::Mixed
}

/// One tracked line in a [`LineTracker`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrackedLine {
    /// The line address.
    pub line: LineAddr,
    /// Estimated tracked-event count (over-estimates by at most `err`).
    pub weight: u64,
    /// Over-estimation bound inherited from evicted predecessors.
    pub err: u64,
    /// The line's counters (reset when a slot is recycled).
    pub c: LineCounters,
}

/// Deterministic Space-Saving heavy-hitter summary over line addresses.
#[derive(Clone, Debug, Default)]
pub struct LineTracker {
    cap: usize,
    total: u64,
    entries: Vec<TrackedLine>,
    index: HashMap<u64, usize>,
}

impl LineTracker {
    /// A tracker holding at most `cap` lines.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> LineTracker {
        assert!(cap > 0, "LineTracker capacity must be nonzero");
        LineTracker {
            cap,
            total: 0,
            entries: Vec::with_capacity(cap),
            index: HashMap::with_capacity(cap),
        }
    }

    /// Capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Total tracked events observed (stream length `n`).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of lines currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record one event on `line` and return its counters for the caller
    /// to update. Evicts the minimum-weight entry when full (ties broken
    /// toward the lowest line address), resetting its counters per
    /// Space-Saving.
    pub fn touch(&mut self, line: LineAddr) -> &mut LineCounters {
        self.total += 1;
        if let Some(&i) = self.index.get(&line.raw()) {
            self.entries[i].weight += 1;
            return &mut self.entries[i].c;
        }
        if self.entries.len() < self.cap {
            let i = self.entries.len();
            self.entries.push(TrackedLine {
                line,
                weight: 1,
                err: 0,
                c: LineCounters::default(),
            });
            self.index.insert(line.raw(), i);
            return &mut self.entries[i].c;
        }
        // Full: recycle the minimum-weight slot.
        let i = self.min_slot();
        let evicted = self.entries[i];
        self.index.remove(&evicted.line.raw());
        self.index.insert(line.raw(), i);
        self.entries[i] = TrackedLine {
            line,
            weight: evicted.weight + 1,
            err: evicted.weight,
            c: LineCounters::default(),
        };
        &mut self.entries[i].c
    }

    /// Counters of a tracked line, if present (read-only probe).
    pub fn get(&self, line: LineAddr) -> Option<&TrackedLine> {
        self.index.get(&line.raw()).map(|&i| &self.entries[i])
    }

    fn min_slot(&self) -> usize {
        let mut best = 0;
        for (i, e) in self.entries.iter().enumerate().skip(1) {
            let b = &self.entries[best];
            if (e.weight, e.line.raw()) < (b.weight, b.line.raw()) {
                best = i;
            }
        }
        best
    }

    /// Fold another tracker into this one. Entries are visited in the
    /// other tracker's sorted order, so the merge is a deterministic
    /// function of the two summaries.
    pub fn merge(&mut self, other: &LineTracker) {
        self.total += other.total;
        for e in other.sorted() {
            if let Some(&i) = self.index.get(&e.line.raw()) {
                self.entries[i].weight += e.weight;
                self.entries[i].err += e.err;
                let c = e.c;
                self.entries[i].c.merge(&c);
            } else if self.entries.len() < self.cap {
                let i = self.entries.len();
                self.entries.push(e);
                self.index.insert(e.line.raw(), i);
            } else {
                // Recycle the minimum slot (classic Space-Saving): the new
                // weight absorbs the evicted minimum, so weights stay
                // over-estimates even for keys dropped by earlier merges.
                let i = self.min_slot();
                let min_w = self.entries[i].weight;
                let victim = self.entries[i];
                self.index.remove(&victim.line.raw());
                self.index.insert(e.line.raw(), i);
                self.entries[i] = TrackedLine {
                    line: e.line,
                    weight: e.weight + min_w,
                    err: e.err + min_w,
                    c: e.c,
                };
            }
        }
    }

    /// Tracked lines sorted by weight (descending), ties by line address
    /// (ascending) — the deterministic report order.
    pub fn sorted(&self) -> Vec<TrackedLine> {
        let mut v = self.entries.clone();
        v.sort_by_key(|e| (std::cmp::Reverse(e.weight), e.line.raw()));
        v
    }
}

/// One classified hot line in the end-of-run summary.
#[derive(Clone, Debug, PartialEq)]
pub struct HotLine {
    /// The line address (raw).
    pub line: u64,
    /// Home node of the line.
    pub home: usize,
    /// Estimated tracked-event count.
    pub weight: u64,
    /// Over-estimation bound.
    pub err: u64,
    /// Classifier label.
    pub class: SharingClass,
    /// Merged counters.
    pub c: LineCounters,
}

/// Per-home-node directory heat (Table 7 resolved spatially).
#[derive(Clone, Debug, PartialEq)]
pub struct HomeHeat {
    /// The home node.
    pub node: usize,
    /// Handlers dispatched at this home.
    pub handlers: u64,
    /// Cycles the protocol engine / protocol thread was active.
    pub occupancy_cycles: u64,
    /// Requests deferred while lines were busy (NACK/retry analog).
    pub nacks: u64,
    /// Dispatch-queue wait at this home (LMI + NI input queues).
    pub queue_wait: Distribution,
    /// SDRAM channel queue wait at this home (both channels).
    pub sdram_wait: Distribution,
}

/// Per-directed-link NoC load.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkHeat {
    /// Link id (topology numbering).
    pub link: usize,
    /// Human-readable label ("inject n3", "r2 dim1", ...).
    pub label: String,
    /// Cycles the link was reserved for serialization.
    pub busy: u64,
    /// Messages that crossed the link.
    pub msgs: u64,
    /// Payload+header bytes that crossed the link.
    pub bytes: u64,
    /// LLP retransmissions attributed to the link.
    pub retx: u64,
}

/// The spatial-attribution section of [`RunStats`]: classified hot lines
/// (when the per-line tracker was enabled), the home-node heatmap, and
/// the link utilization matrix (always populated on multi-node runs).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpatialStats {
    /// Whether the per-line tracker was enabled for this run.
    pub enabled: bool,
    /// Execution cycles (denominator for occupancy/utilization).
    pub elapsed: u64,
    /// Total events the line trackers observed.
    pub tracked_events: u64,
    /// Classified hot lines, heaviest first.
    pub hot_lines: Vec<HotLine>,
    /// Per-home-node heat, in node order.
    pub homes: Vec<HomeHeat>,
    /// Per-directed-link load, link-id order, zero-traffic links omitted.
    pub links: Vec<LinkHeat>,
}

impl SpatialStats {
    /// The home node with the highest protocol occupancy (ties toward the
    /// lowest node id).
    pub fn peak_home(&self) -> Option<&HomeHeat> {
        self.homes
            .iter()
            .max_by_key(|h| (h.occupancy_cycles, std::cmp::Reverse(h.node)))
    }

    /// The busiest link (ties toward the lowest link id).
    pub fn peak_link(&self) -> Option<&LinkHeat> {
        self.links
            .iter()
            .max_by_key(|l| (l.busy, std::cmp::Reverse(l.link)))
    }

    /// Occupancy fraction of one home.
    pub fn home_occ(&self, h: &HomeHeat) -> f64 {
        h.occupancy_cycles as f64 / self.elapsed.max(1) as f64
    }

    /// Busy-cycle fraction of one link.
    pub fn link_util(&self, l: &LinkHeat) -> f64 {
        l.busy as f64 / self.elapsed.max(1) as f64
    }

    /// Peak home occupancy fraction (0 with no homes).
    pub fn peak_home_occ(&self) -> f64 {
        self.peak_home().map(|h| self.home_occ(h)).unwrap_or(0.0)
    }

    /// Peak link utilization fraction (0 with no links).
    pub fn peak_link_util(&self) -> f64 {
        self.peak_link().map(|l| self.link_util(l)).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtp_types::{NodeId, Region, SplitMix64};
    use std::collections::HashMap;

    fn line(raw: u64) -> LineAddr {
        Addr::new(NodeId(0), Region::AppData, raw * L2_LINE).line()
    }

    // ------------------- Space-Saving vs exact oracle -------------------

    #[test]
    fn space_saving_matches_exact_oracle_on_seeded_streams() {
        for seed in [0x5eed_0001u64, 0xdead_beef, 0x0b5e_55ed] {
            let mut rng = SplitMix64::new(seed);
            let cap = 16usize;
            let mut tr = LineTracker::new(cap);
            let mut exact: HashMap<u64, u64> = HashMap::new();
            let n = 20_000u64;
            for _ in 0..n {
                // Skewed stream: a few heavy lines over a long tail.
                let key = if rng.below(100) < 60 {
                    rng.below(4)
                } else {
                    4 + rng.below(400)
                };
                let l = line(key);
                tr.touch(l);
                *exact.entry(l.raw()).or_default() += 1;
            }
            assert_eq!(tr.total(), n);
            let bound = n / cap as u64;
            for e in tr.sorted() {
                let truth = exact[&e.line.raw()];
                assert!(e.weight >= truth, "weight must over-estimate");
                assert!(
                    e.weight - e.err <= truth,
                    "weight {} - err {} exceeds true count {}",
                    e.weight,
                    e.err,
                    truth
                );
                assert!(e.err <= bound, "err {} above n/k bound {}", e.err, bound);
            }
            // Every true heavy hitter must be tracked.
            for (&k, &c) in &exact {
                if c > bound {
                    assert!(
                        tr.get(LineAddr(k)).is_some(),
                        "heavy hitter {k:#x} (count {c}) evicted"
                    );
                }
            }
        }
    }

    #[test]
    fn tracker_order_is_deterministic() {
        let build = |seed: u64| {
            let mut rng = SplitMix64::new(seed);
            let mut tr = LineTracker::new(8);
            for _ in 0..5_000 {
                tr.touch(line(rng.below(64)));
            }
            tr.sorted()
        };
        let a = build(42);
        let b = build(42);
        assert_eq!(a, b, "same stream must produce an identical summary");
        // Ties break toward the lower line address.
        let mut tr = LineTracker::new(4);
        for k in [3u64, 1, 2, 0] {
            tr.touch(line(k));
        }
        let order: Vec<u64> = tr.sorted().iter().map(|e| e.line.raw()).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
    }

    #[test]
    fn merge_keeps_over_estimate_and_determinism() {
        let mut rng = SplitMix64::new(7);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        let mut parts: Vec<LineTracker> = Vec::new();
        for _ in 0..4 {
            let mut tr = LineTracker::new(8);
            for _ in 0..2_000 {
                let key = if rng.below(10) < 6 {
                    rng.below(3)
                } else {
                    3 + rng.below(100)
                };
                tr.touch(line(key));
                *exact.entry(line(key).raw()).or_default() += 1;
            }
            parts.push(tr);
        }
        let mut merged = LineTracker::new(8);
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged.total(), 8_000);
        for e in merged.sorted() {
            let truth = exact.get(&e.line.raw()).copied().unwrap_or(0);
            assert!(
                e.weight >= truth,
                "merged weight must stay an over-estimate"
            );
        }
        // Merging again in the same order reproduces the same summary.
        let mut again = LineTracker::new(8);
        for p in &parts {
            again.merge(p);
        }
        assert_eq!(merged.sorted(), again.sorted());
    }

    // ------------------------- classifier scripts -------------------------

    /// Drive the home-side signature exactly as the directory would for a
    /// migratory line: each node in turn reads then upgrades the line.
    #[test]
    fn classifier_labels_migratory_script() {
        let mut c = LineCounters::default();
        let mut owner: Option<usize> = None;
        for round in 0..6 {
            let node = round % 3;
            let prev = match owner {
                None => PrevState::Unowned,
                Some(o) => PrevState::Exclusive(o),
            };
            record_home(&mut c, node, HomeReq::Read, prev, 2);
            if owner.is_some() {
                c.interventions += 1;
                c.interventions_rx += 1;
            }
            record_home(&mut c, node, HomeReq::Upgrade, PrevState::Shared(2), 0);
            c.invals_sent += 1;
            c.invals_rx += 1;
            owner = Some(node);
        }
        assert!(c.writer_changes >= 2);
        assert_eq!(classify(&c), SharingClass::Migratory);
    }

    /// Producer node 0 writes; consumers 1..4 read it back each round.
    #[test]
    fn classifier_labels_producer_consumer_script() {
        let mut c = LineCounters::default();
        record_home(&mut c, 0, HomeReq::Write, PrevState::Unowned, 0);
        for _round in 0..4 {
            for consumer in 1..4 {
                record_home(
                    &mut c,
                    consumer,
                    HomeReq::Read,
                    PrevState::Exclusive(0),
                    consumer as u32 + 1,
                );
                c.interventions += 1;
            }
            record_home(&mut c, 0, HomeReq::Upgrade, PrevState::Shared(4), 0);
            c.invals_sent += 3;
        }
        assert_eq!(c.writer_changes, 0);
        assert!(c.read_after_write >= 2);
        assert_eq!(classify(&c), SharingClass::ProducerConsumer);
    }

    /// Two nodes write disjoint sub-blocks of one line; the coherence
    /// traffic is real but no byte is truly shared.
    #[test]
    fn classifier_labels_false_sharing_script() {
        // Node 1's requester-side view: writes sub-block 0.
        let a = LineCounters {
            misses: 8,
            write_mask: 0b0001,
            writer_mask: node_bit(1),
            toucher_mask: node_bit(1),
            invals_rx: 4,
            ..Default::default()
        };
        // Node 2's requester-side view: writes sub-block 3.
        let b = LineCounters {
            misses: 8,
            write_mask: 0b1000,
            writer_mask: node_bit(2),
            toucher_mask: node_bit(2),
            invals_rx: 4,
            ..Default::default()
        };
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.multi_write_mask, 0);
        assert_eq!(merged.write_mask, 0b1001);
        assert_eq!(classify(&merged), SharingClass::FalseSharingSuspect);
        // If both nodes had written the same sub-block, it is true sharing:
        let mut b2 = b;
        b2.write_mask = 0b0001;
        let mut truly = a;
        truly.merge(&b2);
        assert_ne!(classify(&truly), SharingClass::FalseSharingSuspect);
    }

    #[test]
    fn classifier_labels_read_mostly_and_private() {
        let mut c = LineCounters::default();
        for node in 0..4 {
            record_home(
                &mut c,
                node,
                HomeReq::Read,
                PrevState::Shared(node as u32),
                4,
            );
        }
        assert_eq!(classify(&c), SharingClass::ReadMostly);
        let mut p = LineCounters::default();
        record_home(&mut p, 2, HomeReq::Write, PrevState::Unowned, 0);
        p.misses = 5;
        assert_eq!(classify(&p), SharingClass::Private);
    }

    // --------------------------- spatial stats ---------------------------

    #[test]
    fn peak_home_and_link_selection() {
        let home = |node: usize, occ: u64| HomeHeat {
            node,
            handlers: 10,
            occupancy_cycles: occ,
            nacks: 0,
            queue_wait: Distribution::new(),
            sdram_wait: Distribution::new(),
        };
        let link = |id: usize, busy: u64| LinkHeat {
            link: id,
            label: format!("l{id}"),
            busy,
            msgs: 1,
            bytes: 64,
            retx: 0,
        };
        let s = SpatialStats {
            enabled: true,
            elapsed: 1_000,
            tracked_events: 0,
            hot_lines: Vec::new(),
            homes: vec![home(0, 100), home(1, 400), home(2, 400)],
            links: vec![link(0, 50), link(3, 250), link(5, 250)],
        };
        // Ties resolve toward the lowest id.
        assert_eq!(s.peak_home().unwrap().node, 1);
        assert_eq!(s.peak_link().unwrap().link, 3);
        assert!((s.peak_home_occ() - 0.4).abs() < 1e-12);
        assert!((s.peak_link_util() - 0.25).abs() < 1e-12);
        let empty = SpatialStats::default();
        assert_eq!(empty.peak_home_occ(), 0.0);
        assert_eq!(empty.peak_link_util(), 0.0);
    }

    #[test]
    fn sub_block_bits_cover_the_line() {
        assert_eq!(SUB_BLOCKS, 16);
        let a = Addr::new(NodeId(0), Region::AppData, 0);
        assert_eq!(sub_block_bit(a), 1);
        let b = Addr::new(NodeId(0), Region::AppData, L2_LINE - 1);
        assert_eq!(sub_block_bit(b), 1 << 15);
    }

    #[test]
    fn class_labels_round_trip() {
        for c in [
            SharingClass::Private,
            SharingClass::ReadMostly,
            SharingClass::Migratory,
            SharingClass::ProducerConsumer,
            SharingClass::Contended,
            SharingClass::FalseSharingSuspect,
            SharingClass::Mixed,
        ] {
            assert_eq!(SharingClass::from_str_label(c.as_str()), Some(c));
        }
        assert_eq!(SharingClass::from_str_label("bogus"), None);
    }
}
