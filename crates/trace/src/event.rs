//! The trace event taxonomy: categories, label enums and the [`Event`] type.
//!
//! Events are plain `Copy` records of scalar fields so that constructing one
//! is cheap and recording one never allocates on the simulator's hot path.
//! Label enums ([`MsgLabel`], [`HandlerClass`], [`DirClass`], …) mirror the
//! richer enums of the simulator crates; each crate provides its own
//! conversion so this crate depends only on `smtp-types`.

use smtp_types::{Ctx, Cycle, LineAddr, NodeId, SpanId};
use std::fmt;

/// Trace categories; each owns one bit of the [`Tracer`](crate::Tracer)
/// enable mask.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum Category {
    /// SMT pipeline: protocol-thread context events (send/ldctxt graduation).
    Pipeline = 0,
    /// Cache hierarchy: misses, MSHR lifetime, fills, writebacks.
    Cache = 1,
    /// Coherence protocol: handler dispatch/completion, directory
    /// transitions, deferred requests.
    Protocol = 2,
    /// Interconnect: message injects and delivers per virtual network.
    Network = 3,
    /// SDRAM accesses (application data and directory/protocol traffic).
    Sdram = 4,
    /// Synchronization: lock acquire/release, barrier arrival/completion.
    Sync = 5,
    /// Fault injection and recovery: link faults and retransmissions, ECC
    /// errors, stall windows, watchdog escalation.
    Fault = 6,
}

/// Number of [`Category`] variants.
pub const NUM_CATEGORIES: usize = 7;

impl Category {
    /// Mask with every category enabled.
    pub const ALL: u32 = (1 << NUM_CATEGORIES as u32) - 1;

    /// This category's bit in the enable mask.
    #[inline(always)]
    pub fn bit(self) -> u32 {
        1 << self as u32
    }

    /// Lower-case name used in JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            Category::Pipeline => "pipeline",
            Category::Cache => "cache",
            Category::Protocol => "protocol",
            Category::Network => "network",
            Category::Sdram => "sdram",
            Category::Sync => "sync",
            Category::Fault => "fault",
        }
    }
}

/// What happened to a physical packet at a faulty link (mirrors the
/// injection dimensions of `smtp_types::faults::LinkFaults`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkFaultClass {
    /// The packet vanished in flight.
    Drop,
    /// The payload was corrupted; the receiver's CRC check discarded it.
    Corrupt,
    /// The router emitted a duplicate copy.
    Duplicate,
    /// The packet was delayed in flight.
    Delay,
}

impl LinkFaultClass {
    /// Stable name used in trace output.
    pub fn name(self) -> &'static str {
        match self {
            LinkFaultClass::Drop => "drop",
            LinkFaultClass::Corrupt => "corrupt",
            LinkFaultClass::Duplicate => "duplicate",
            LinkFaultClass::Delay => "delay",
        }
    }
}

/// Which unit a stall-window fault froze.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StallClass {
    /// Memory-controller dispatch queues stopped popping.
    DispatchQueue,
    /// The protocol thread was starved of dispatch slots.
    Starvation,
    /// A single handler's dispatch was held back.
    HandlerDelay,
}

impl StallClass {
    /// Stable name used in trace output.
    pub fn name(self) -> &'static str {
        match self {
            StallClass::DispatchQueue => "dispatch_queue",
            StallClass::Starvation => "starvation",
            StallClass::HandlerDelay => "handler_delay",
        }
    }
}

/// Coherence message label (mirrors `smtp_noc::MsgKind`, payload-free).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MsgLabel {
    /// Read-shared request.
    GetS,
    /// Read-exclusive request.
    GetX,
    /// Upgrade (write to a Shared copy) request.
    Upgrade,
    /// Owner writeback.
    Put,
    /// Shared intervention to the owner.
    IntervShared,
    /// Exclusive intervention to the owner.
    IntervExcl,
    /// Invalidation to a sharer.
    Inval,
    /// Shared data reply.
    DataShared,
    /// Exclusive data reply.
    DataExcl,
    /// Ownership-only reply to an `Upgrade`.
    UpgradeAck,
    /// Invalidation acknowledgement.
    AckInv,
    /// Writeback acknowledgement.
    WbAck,
    /// Sharing writeback completing a shared intervention.
    SharingWb,
    /// Transfer acknowledgement completing an exclusive intervention.
    TransferAck,
}

impl MsgLabel {
    /// Stable name used in trace output.
    pub fn name(self) -> &'static str {
        match self {
            MsgLabel::GetS => "GetS",
            MsgLabel::GetX => "GetX",
            MsgLabel::Upgrade => "Upgrade",
            MsgLabel::Put => "Put",
            MsgLabel::IntervShared => "IntervShared",
            MsgLabel::IntervExcl => "IntervExcl",
            MsgLabel::Inval => "Inval",
            MsgLabel::DataShared => "DataShared",
            MsgLabel::DataExcl => "DataExcl",
            MsgLabel::UpgradeAck => "UpgradeAck",
            MsgLabel::AckInv => "AckInv",
            MsgLabel::WbAck => "WbAck",
            MsgLabel::SharingWb => "SharingWb",
            MsgLabel::TransferAck => "TransferAck",
        }
    }
}

/// Kind of cache miss (mirrors `smtp_cache::MissKind` plus fetch classes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MissClass {
    /// Load miss (`GetS`).
    Read,
    /// Store miss without a copy (`GetX`).
    Write,
    /// Store upgrade of a Shared copy (`Upgrade`).
    Upgrade,
    /// Instruction-fetch miss.
    Ifetch,
    /// Software prefetch.
    Prefetch,
}

impl MissClass {
    /// Stable name used in trace output.
    pub fn name(self) -> &'static str {
        match self {
            MissClass::Read => "read",
            MissClass::Write => "write",
            MissClass::Upgrade => "upgrade",
            MissClass::Ifetch => "ifetch",
            MissClass::Prefetch => "prefetch",
        }
    }
}

/// What a data reply granted (mirrors `smtp_cache::Grant`, payload-free).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GrantClass {
    /// Shared data.
    Shared,
    /// Exclusive data (eager-exclusive).
    Excl,
    /// Ownership without data (`UpgradeAck`).
    UpgradeAck,
}

impl GrantClass {
    /// Stable name used in trace output.
    pub fn name(self) -> &'static str {
        match self {
            GrantClass::Shared => "shared",
            GrantClass::Excl => "excl",
            GrantClass::UpgradeAck => "upgrade_ack",
        }
    }
}

/// Protocol handler class (mirrors `smtp_protocol::HandlerKind`,
/// payload-free).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HandlerClass {
    /// GetS on an unowned line.
    GetSUnowned,
    /// GetS on a shared line.
    GetSShared,
    /// GetS on an exclusive line.
    GetSExcl,
    /// GetX on an unowned line.
    GetXUnowned,
    /// GetX/Upgrade on a shared line.
    GetXShared,
    /// GetX on an exclusive line.
    GetXExcl,
    /// Owner writeback.
    Put,
    /// Stale writeback that raced with an intervention.
    PutStale,
    /// Sharing-writeback completion.
    SharingWb,
    /// Transfer-ack completion.
    TransferAck,
}

impl HandlerClass {
    /// Stable name used in trace output.
    pub fn name(self) -> &'static str {
        match self {
            HandlerClass::GetSUnowned => "GetSUnowned",
            HandlerClass::GetSShared => "GetSShared",
            HandlerClass::GetSExcl => "GetSExcl",
            HandlerClass::GetXUnowned => "GetXUnowned",
            HandlerClass::GetXShared => "GetXShared",
            HandlerClass::GetXExcl => "GetXExcl",
            HandlerClass::Put => "Put",
            HandlerClass::PutStale => "PutStale",
            HandlerClass::SharingWb => "SharingWb",
            HandlerClass::TransferAck => "TransferAck",
        }
    }
}

/// Directory state class (mirrors `smtp_protocol::DirState`, payload-free).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DirClass {
    /// No cached copies.
    Unowned,
    /// Read-only copies.
    Shared,
    /// Single owner.
    Exclusive,
    /// Shared intervention in flight.
    BusyShared,
    /// Exclusive intervention in flight.
    BusyExcl,
}

impl DirClass {
    /// Stable name used in trace output.
    pub fn name(self) -> &'static str {
        match self {
            DirClass::Unowned => "Unowned",
            DirClass::Shared => "Shared",
            DirClass::Exclusive => "Exclusive",
            DirClass::BusyShared => "BusyShared",
            DirClass::BusyExcl => "BusyExcl",
        }
    }
}

/// One trace event. All payloads are `Copy` scalars; the emitting cycle is
/// carried separately by the sink API so events themselves stay small.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Event {
    // --- Cache ---------------------------------------------------------
    /// An access missed in the L2 and allocated an MSHR; the coherence
    /// transaction for `line` begins here.
    MshrAlloc {
        /// Requesting node.
        node: NodeId,
        /// Missing line.
        line: LineAddr,
        /// Miss class.
        miss: MissClass,
        /// Causal span allocated to this transaction (the span root).
        span: SpanId,
    },
    /// The MSHR retired (data filled *and* all invalidation acks
    /// collected); the transaction for `line` is complete.
    MshrFree {
        /// Requesting node.
        node: NodeId,
        /// Line whose transaction completed.
        line: LineAddr,
        /// Causal span of the completed transaction.
        span: SpanId,
    },
    /// A data/ownership reply filled the cache hierarchy.
    Fill {
        /// Requesting node.
        node: NodeId,
        /// Filled line.
        line: LineAddr,
        /// What was granted.
        grant: GrantClass,
        /// Causal span of the filling transaction.
        span: SpanId,
    },
    /// An L2 victim was pushed to the writeback buffer.
    Writeback {
        /// Evicting node.
        node: NodeId,
        /// Victim line.
        line: LineAddr,
        /// Dirty (sends `Put`) vs clean replacement hint.
        dirty: bool,
        /// Causal span of the transaction whose fill evicted the victim.
        span: SpanId,
    },

    // --- Protocol ------------------------------------------------------
    /// A coherence handler started at the home/requesting node.
    HandlerDispatch {
        /// Node running the handler.
        node: NodeId,
        /// Line being handled.
        line: LineAddr,
        /// Handler class.
        handler: HandlerClass,
        /// Triggering message.
        msg: MsgLabel,
        /// Node the triggering message came from.
        src: NodeId,
        /// Per-node dispatch sequence number (matches `RunStats::handlers`).
        seq: u64,
        /// Causal span of the triggering message's transaction.
        span: SpanId,
    },
    /// A coherence handler finished (protocol-thread `ldctxt` graduated, or
    /// the embedded engine's analytic run completed).
    HandlerComplete {
        /// Node that ran the handler.
        node: NodeId,
        /// Line that was handled.
        line: LineAddr,
        /// Handler class.
        handler: HandlerClass,
        /// Per-node dispatch sequence number of the matching dispatch.
        seq: u64,
        /// Causal span of the handled transaction.
        span: SpanId,
    },
    /// The directory committed a state transition for a line.
    DirTransition {
        /// Home node.
        node: NodeId,
        /// Line.
        line: LineAddr,
        /// State before.
        from: DirClass,
        /// State after.
        to: DirClass,
        /// Causal span of the message that drove the transition.
        span: SpanId,
    },
    /// A request hit a busy directory entry and was queued for replay.
    DirDefer {
        /// Home node.
        node: NodeId,
        /// Busy line.
        line: LineAddr,
        /// Deferred message.
        msg: MsgLabel,
        /// Causal span of the deferred message's transaction.
        span: SpanId,
    },

    // --- Network -------------------------------------------------------
    /// A message entered the interconnect.
    NetInject {
        /// Sender.
        src: NodeId,
        /// Destination.
        dst: NodeId,
        /// Subject line.
        line: LineAddr,
        /// Message label.
        msg: MsgLabel,
        /// Virtual network index.
        vnet: u8,
        /// Cycle the message will arrive at `dst`.
        deliver_at: Cycle,
        /// Causal span of the message's transaction.
        span: SpanId,
    },
    /// A message left the interconnect at its destination.
    NetDeliver {
        /// Sender.
        src: NodeId,
        /// Destination.
        dst: NodeId,
        /// Subject line.
        line: LineAddr,
        /// Message label.
        msg: MsgLabel,
        /// Virtual network index.
        vnet: u8,
        /// Causal span of the message's transaction.
        span: SpanId,
    },
    /// A message whose source and destination coincide was short-circuited
    /// through the local delivery queue without entering the network.
    LocalMsg {
        /// Node.
        node: NodeId,
        /// Subject line.
        line: LineAddr,
        /// Message label.
        msg: MsgLabel,
        /// Causal span of the message's transaction.
        span: SpanId,
    },

    // --- SDRAM ---------------------------------------------------------
    /// An SDRAM read (line fill or directory/protocol data).
    SdramRead {
        /// Node whose memory was read.
        node: NodeId,
        /// Directory/protocol traffic (vs application data).
        protocol: bool,
        /// Cycle the data is available.
        ready_at: Cycle,
        /// Causal span of the transaction the access serves (NONE for
        /// accesses not tied to a miss transaction).
        span: SpanId,
    },
    /// An SDRAM write.
    SdramWrite {
        /// Node whose memory was written.
        node: NodeId,
        /// Directory/protocol traffic (vs application data).
        protocol: bool,
        /// Causal span of the transaction the access serves.
        span: SpanId,
    },

    // --- Pipeline ------------------------------------------------------
    /// A protocol-thread `send` graduated from the SMT pipeline.
    PipeSend {
        /// Node.
        node: NodeId,
        /// Graduating context.
        ctx: Ctx,
    },
    /// A protocol-thread `ldctxt` graduated, ending the handler.
    PipeLdctxt {
        /// Node.
        node: NodeId,
        /// Graduating context.
        ctx: Ctx,
    },

    // --- Sync ----------------------------------------------------------
    /// A lock test&set attempt won.
    LockAcquire {
        /// Node.
        node: NodeId,
        /// Acquiring context.
        ctx: Ctx,
        /// Lock identifier.
        lock: u32,
    },
    /// A lock test&set attempt lost (the thread returns to spinning).
    LockFail {
        /// Node.
        node: NodeId,
        /// Attempting context.
        ctx: Ctx,
        /// Lock identifier.
        lock: u32,
    },
    /// A held lock was released.
    LockRelease {
        /// Node.
        node: NodeId,
        /// Releasing context.
        ctx: Ctx,
        /// Lock identifier.
        lock: u32,
    },
    /// A thread arrived at a tree-barrier group and must spin.
    BarrierArrive {
        /// Node.
        node: NodeId,
        /// Arriving context.
        ctx: Ctx,
        /// Barrier identifier.
        bar: u32,
    },
    /// A thread completed a tree-barrier group (last arrival; propagates
    /// up or starts the release cascade). One event per episode per group.
    BarrierComplete {
        /// Node.
        node: NodeId,
        /// Completing context.
        ctx: Ctx,
        /// Barrier identifier.
        bar: u32,
    },

    // --- Fault / recovery ----------------------------------------------
    /// An injected fault hit a physical packet on a link.
    LinkFault {
        /// Sender.
        src: NodeId,
        /// Destination.
        dst: NodeId,
        /// Subject line.
        line: LineAddr,
        /// Message label.
        msg: MsgLabel,
        /// Virtual network index.
        vnet: u8,
        /// What the fault did to the packet.
        fault: LinkFaultClass,
    },
    /// The link-level retry layer retransmitted an unacknowledged packet.
    LinkRetransmit {
        /// Sender.
        src: NodeId,
        /// Destination.
        dst: NodeId,
        /// Virtual network index.
        vnet: u8,
        /// Channel sequence number of the retransmitted packet.
        seq: u64,
        /// Retransmission attempt count for this packet (1-based).
        attempt: u32,
        /// Causal span of the buffered message being retransmitted
        /// (retransmits reuse the original span — no new allocation).
        span: SpanId,
    },
    /// An SDRAM read hit an injected ECC error.
    EccFault {
        /// Node whose memory was read.
        node: NodeId,
        /// Multi-bit (uncorrectable) vs corrected single-bit error.
        uncorrectable: bool,
        /// Directory/protocol traffic (vs application data).
        protocol: bool,
    },
    /// An injected stall window opened.
    StallWindow {
        /// Afflicted node.
        node: NodeId,
        /// Which unit froze.
        kind: StallClass,
        /// Cycle the window closes.
        until: Cycle,
    },
    /// The forward-progress watchdog observed a stagnant machine and
    /// escalated; level 1 is the first warning, higher levels precede a
    /// structured `RunError`.
    WatchdogWarn {
        /// Escalation level (1-based).
        level: u8,
        /// Cycles since the watchdog last saw progress.
        stalled_for: Cycle,
    },
}

impl Event {
    /// The category this event belongs to.
    pub fn category(&self) -> Category {
        match self {
            Event::MshrAlloc { .. }
            | Event::MshrFree { .. }
            | Event::Fill { .. }
            | Event::Writeback { .. } => Category::Cache,
            Event::HandlerDispatch { .. }
            | Event::HandlerComplete { .. }
            | Event::DirTransition { .. }
            | Event::DirDefer { .. } => Category::Protocol,
            Event::NetInject { .. } | Event::NetDeliver { .. } | Event::LocalMsg { .. } => {
                Category::Network
            }
            Event::SdramRead { .. } | Event::SdramWrite { .. } => Category::Sdram,
            Event::PipeSend { .. } | Event::PipeLdctxt { .. } => Category::Pipeline,
            Event::LockAcquire { .. }
            | Event::LockFail { .. }
            | Event::LockRelease { .. }
            | Event::BarrierArrive { .. }
            | Event::BarrierComplete { .. } => Category::Sync,
            Event::LinkFault { .. }
            | Event::LinkRetransmit { .. }
            | Event::EccFault { .. }
            | Event::StallWindow { .. }
            | Event::WatchdogWarn { .. } => Category::Fault,
        }
    }

    /// Snake-case event name used in trace output.
    pub fn name(&self) -> &'static str {
        match self {
            Event::MshrAlloc { .. } => "mshr_alloc",
            Event::MshrFree { .. } => "mshr_free",
            Event::Fill { .. } => "fill",
            Event::Writeback { .. } => "writeback",
            Event::HandlerDispatch { .. } => "handler_dispatch",
            Event::HandlerComplete { .. } => "handler_complete",
            Event::DirTransition { .. } => "dir_transition",
            Event::DirDefer { .. } => "dir_defer",
            Event::NetInject { .. } => "net_inject",
            Event::NetDeliver { .. } => "net_deliver",
            Event::LocalMsg { .. } => "local_msg",
            Event::SdramRead { .. } => "sdram_read",
            Event::SdramWrite { .. } => "sdram_write",
            Event::PipeSend { .. } => "pipe_send",
            Event::PipeLdctxt { .. } => "pipe_ldctxt",
            Event::LockAcquire { .. } => "lock_acquire",
            Event::LockFail { .. } => "lock_fail",
            Event::LockRelease { .. } => "lock_release",
            Event::BarrierArrive { .. } => "barrier_arrive",
            Event::BarrierComplete { .. } => "barrier_complete",
            Event::LinkFault { .. } => "link_fault",
            Event::LinkRetransmit { .. } => "link_retransmit",
            Event::EccFault { .. } => "ecc_fault",
            Event::StallWindow { .. } => "stall_window",
            Event::WatchdogWarn { .. } => "watchdog_warn",
        }
    }

    /// The node the event is attributed to (destination for network
    /// delivers, sender for injects).
    pub fn node(&self) -> NodeId {
        match *self {
            Event::MshrAlloc { node, .. }
            | Event::MshrFree { node, .. }
            | Event::Fill { node, .. }
            | Event::Writeback { node, .. }
            | Event::HandlerDispatch { node, .. }
            | Event::HandlerComplete { node, .. }
            | Event::DirTransition { node, .. }
            | Event::DirDefer { node, .. }
            | Event::LocalMsg { node, .. }
            | Event::SdramRead { node, .. }
            | Event::SdramWrite { node, .. }
            | Event::PipeSend { node, .. }
            | Event::PipeLdctxt { node, .. }
            | Event::LockAcquire { node, .. }
            | Event::LockFail { node, .. }
            | Event::LockRelease { node, .. }
            | Event::BarrierArrive { node, .. }
            | Event::BarrierComplete { node, .. }
            | Event::EccFault { node, .. }
            | Event::StallWindow { node, .. } => node,
            Event::NetInject { src, .. } => src,
            Event::NetDeliver { dst, .. } => dst,
            Event::LinkFault { src, .. } | Event::LinkRetransmit { src, .. } => src,
            // The watchdog speaks for the whole machine.
            Event::WatchdogWarn { .. } => NodeId(0),
        }
    }

    /// The cache line the event concerns, when it concerns one.
    pub fn line(&self) -> Option<LineAddr> {
        match *self {
            Event::MshrAlloc { line, .. }
            | Event::MshrFree { line, .. }
            | Event::Fill { line, .. }
            | Event::Writeback { line, .. }
            | Event::HandlerDispatch { line, .. }
            | Event::HandlerComplete { line, .. }
            | Event::DirTransition { line, .. }
            | Event::DirDefer { line, .. }
            | Event::NetInject { line, .. }
            | Event::NetDeliver { line, .. }
            | Event::LocalMsg { line, .. }
            | Event::LinkFault { line, .. } => Some(line),
            _ => None,
        }
    }

    /// The causal span the event belongs to ([`SpanId::NONE`] for events
    /// outside any transaction — sync, pipeline, fault-injection noise).
    pub fn span(&self) -> SpanId {
        match *self {
            Event::MshrAlloc { span, .. }
            | Event::MshrFree { span, .. }
            | Event::Fill { span, .. }
            | Event::Writeback { span, .. }
            | Event::HandlerDispatch { span, .. }
            | Event::HandlerComplete { span, .. }
            | Event::DirTransition { span, .. }
            | Event::DirDefer { span, .. }
            | Event::NetInject { span, .. }
            | Event::NetDeliver { span, .. }
            | Event::LocalMsg { span, .. }
            | Event::SdramRead { span, .. }
            | Event::SdramWrite { span, .. }
            | Event::LinkRetransmit { span, .. } => span,
            _ => SpanId::NONE,
        }
    }

    /// Append this event as one JSON line (newline-terminated) to `out`.
    ///
    /// The encoding is hand-rolled and fully deterministic: fixed key
    /// order, no floats, no maps — two identical runs produce
    /// byte-identical streams.
    pub fn write_jsonl(&self, now: Cycle, out: &mut String) {
        use fmt::Write;
        let _ = write!(
            out,
            "{{\"t\":{},\"cat\":\"{}\",\"ev\":\"{}\"",
            now,
            self.category().name(),
            self.name()
        );
        match *self {
            Event::MshrAlloc {
                node, line, miss, ..
            } => {
                let _ = write!(
                    out,
                    ",\"node\":{},\"line\":\"{:#x}\",\"miss\":\"{}\"",
                    node.0,
                    line.raw(),
                    miss.name()
                );
            }
            Event::MshrFree { node, line, .. } => {
                let _ = write!(out, ",\"node\":{},\"line\":\"{:#x}\"", node.0, line.raw());
            }
            Event::Fill {
                node, line, grant, ..
            } => {
                let _ = write!(
                    out,
                    ",\"node\":{},\"line\":\"{:#x}\",\"grant\":\"{}\"",
                    node.0,
                    line.raw(),
                    grant.name()
                );
            }
            Event::Writeback {
                node, line, dirty, ..
            } => {
                let _ = write!(
                    out,
                    ",\"node\":{},\"line\":\"{:#x}\",\"dirty\":{}",
                    node.0,
                    line.raw(),
                    dirty
                );
            }
            Event::HandlerDispatch {
                node,
                line,
                handler,
                msg,
                src,
                seq,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"node\":{},\"line\":\"{:#x}\",\"handler\":\"{}\",\"msg\":\"{}\",\"src\":{},\"seq\":{}",
                    node.0,
                    line.raw(),
                    handler.name(),
                    msg.name(),
                    src.0,
                    seq
                );
            }
            Event::HandlerComplete {
                node,
                line,
                handler,
                seq,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"node\":{},\"line\":\"{:#x}\",\"handler\":\"{}\",\"seq\":{}",
                    node.0,
                    line.raw(),
                    handler.name(),
                    seq
                );
            }
            Event::DirTransition {
                node,
                line,
                from,
                to,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"node\":{},\"line\":\"{:#x}\",\"from\":\"{}\",\"to\":\"{}\"",
                    node.0,
                    line.raw(),
                    from.name(),
                    to.name()
                );
            }
            Event::DirDefer {
                node, line, msg, ..
            } => {
                let _ = write!(
                    out,
                    ",\"node\":{},\"line\":\"{:#x}\",\"msg\":\"{}\"",
                    node.0,
                    line.raw(),
                    msg.name()
                );
            }
            Event::NetInject {
                src,
                dst,
                line,
                msg,
                vnet,
                deliver_at,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"src\":{},\"dst\":{},\"line\":\"{:#x}\",\"msg\":\"{}\",\"vn\":{},\"deliver_at\":{}",
                    src.0,
                    dst.0,
                    line.raw(),
                    msg.name(),
                    vnet,
                    deliver_at
                );
            }
            Event::NetDeliver {
                src,
                dst,
                line,
                msg,
                vnet,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"src\":{},\"dst\":{},\"line\":\"{:#x}\",\"msg\":\"{}\",\"vn\":{}",
                    src.0,
                    dst.0,
                    line.raw(),
                    msg.name(),
                    vnet
                );
            }
            Event::LocalMsg {
                node, line, msg, ..
            } => {
                let _ = write!(
                    out,
                    ",\"node\":{},\"line\":\"{:#x}\",\"msg\":\"{}\"",
                    node.0,
                    line.raw(),
                    msg.name()
                );
            }
            Event::SdramRead {
                node,
                protocol,
                ready_at,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"node\":{},\"protocol\":{},\"ready_at\":{}",
                    node.0, protocol, ready_at
                );
            }
            Event::SdramWrite { node, protocol, .. } => {
                let _ = write!(out, ",\"node\":{},\"protocol\":{}", node.0, protocol);
            }
            Event::PipeSend { node, ctx } | Event::PipeLdctxt { node, ctx } => {
                let _ = write!(out, ",\"node\":{},\"ctx\":{}", node.0, ctx.0);
            }
            Event::LockAcquire { node, ctx, lock }
            | Event::LockFail { node, ctx, lock }
            | Event::LockRelease { node, ctx, lock } => {
                let _ = write!(
                    out,
                    ",\"node\":{},\"ctx\":{},\"lock\":{}",
                    node.0, ctx.0, lock
                );
            }
            Event::BarrierArrive { node, ctx, bar } | Event::BarrierComplete { node, ctx, bar } => {
                let _ = write!(
                    out,
                    ",\"node\":{},\"ctx\":{},\"bar\":{}",
                    node.0, ctx.0, bar
                );
            }
            Event::LinkFault {
                src,
                dst,
                line,
                msg,
                vnet,
                fault,
            } => {
                let _ = write!(
                    out,
                    ",\"src\":{},\"dst\":{},\"line\":\"{:#x}\",\"msg\":\"{}\",\"vn\":{},\"fault\":\"{}\"",
                    src.0,
                    dst.0,
                    line.raw(),
                    msg.name(),
                    vnet,
                    fault.name()
                );
            }
            Event::LinkRetransmit {
                src,
                dst,
                vnet,
                seq,
                attempt,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"src\":{},\"dst\":{},\"vn\":{},\"seq\":{},\"attempt\":{}",
                    src.0, dst.0, vnet, seq, attempt
                );
            }
            Event::EccFault {
                node,
                uncorrectable,
                protocol,
            } => {
                let _ = write!(
                    out,
                    ",\"node\":{},\"uncorrectable\":{},\"protocol\":{}",
                    node.0, uncorrectable, protocol
                );
            }
            Event::StallWindow { node, kind, until } => {
                let _ = write!(
                    out,
                    ",\"node\":{},\"kind\":\"{}\",\"until\":{}",
                    node.0,
                    kind.name(),
                    until
                );
            }
            Event::WatchdogWarn { level, stalled_for } => {
                let _ = write!(out, ",\"level\":{level},\"stalled_for\":{stalled_for}");
            }
        }
        let span = self.span();
        if span.is_some() {
            let _ = write!(out, ",\"span\":{}", span.raw());
        }
        out.push_str("}\n");
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Event::HandlerDispatch {
                node,
                line,
                handler,
                msg,
                src,
                seq,
                ..
            } => write!(
                f,
                "n{} dispatch #{} {} on {} from n{} line {:#x}",
                node.0,
                seq,
                handler.name(),
                msg.name(),
                src.0,
                line.raw()
            ),
            Event::HandlerComplete {
                node,
                line,
                handler,
                seq,
                ..
            } => write!(
                f,
                "n{} complete #{} {} line {:#x}",
                node.0,
                seq,
                handler.name(),
                line.raw()
            ),
            Event::NetInject {
                src,
                dst,
                line,
                msg,
                vnet,
                deliver_at,
                ..
            } => write!(
                f,
                "n{}->n{} inject {} vn{} line {:#x} (arrives {})",
                src.0,
                dst.0,
                msg.name(),
                vnet,
                line.raw(),
                deliver_at
            ),
            Event::NetDeliver {
                src,
                dst,
                line,
                msg,
                vnet,
                ..
            } => write!(
                f,
                "n{}->n{} deliver {} vn{} line {:#x}",
                src.0,
                dst.0,
                msg.name(),
                vnet,
                line.raw()
            ),
            Event::DirTransition {
                node,
                line,
                from,
                to,
                ..
            } => write!(
                f,
                "n{} dir {:#x} {} -> {}",
                node.0,
                line.raw(),
                from.name(),
                to.name()
            ),
            Event::LinkFault {
                src,
                dst,
                line,
                msg,
                vnet,
                fault,
            } => write!(
                f,
                "n{}->n{} link fault {} on {} vn{} line {:#x}",
                src.0,
                dst.0,
                fault.name(),
                msg.name(),
                vnet,
                line.raw()
            ),
            Event::LinkRetransmit {
                src,
                dst,
                vnet,
                seq,
                attempt,
                ..
            } => write!(
                f,
                "n{}->n{} retransmit vn{} seq {} (attempt {})",
                src.0, dst.0, vnet, seq, attempt
            ),
            Event::StallWindow { node, kind, until } => {
                write!(f, "n{} {} stall until {}", node.0, kind.name(), until)
            }
            Event::WatchdogWarn { level, stalled_for } => write!(
                f,
                "watchdog warning level {level}: no progress for {stalled_for} cycles"
            ),
            _ => {
                write!(f, "n{} {}", self.node().0, self.name())?;
                if let Some(line) = self.line() {
                    write!(f, " line {:#x}", line.raw())?;
                }
                Ok(())
            }
        }?;
        let span = self.span();
        if span.is_some() {
            write!(f, " [{span}]")?;
        }
        Ok(())
    }
}
