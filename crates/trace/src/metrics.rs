//! Interval-sampled metrics: a cycle-indexed time-series registry.
//!
//! `System` registers a fixed set of named columns (per-node IPC, protocol
//! occupancy, MSHR and queue depths, per-VN network utilization) and pushes
//! one row of samples every `interval` cycles. The result exports as CSV or
//! as a JSON object for plotting.

use smtp_types::Cycle;
use std::fmt::Write as _;

/// Format one sample for CSV/JSON export. Integral values print without a
/// fraction; everything else uses Rust's shortest round-trip `Debug`
/// formatting, which is locale-independent and parses back to the exact
/// same `f64` (the old fixed `:.4` precision silently truncated).
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:?}")
    }
}

/// A fixed-column, cycle-indexed time-series.
pub struct IntervalSampler {
    interval: Cycle,
    next_due: Cycle,
    columns: Vec<String>,
    rows: Vec<(Cycle, Vec<f64>)>,
}

impl IntervalSampler {
    /// A sampler recording the named `columns` every `interval` cycles
    /// (`interval` must be non-zero).
    pub fn new(interval: Cycle, columns: Vec<String>) -> IntervalSampler {
        assert!(interval > 0, "sampling interval must be non-zero");
        IntervalSampler {
            interval,
            next_due: interval,
            columns,
            rows: Vec::new(),
        }
    }

    /// The sampling interval in cycles.
    pub fn interval(&self) -> Cycle {
        self.interval
    }

    /// Whether a sample is due at cycle `now`.
    pub fn due(&self, now: Cycle) -> bool {
        now >= self.next_due
    }

    /// The next cycle at which a sample becomes due (used by the idle-skip
    /// engine to avoid jumping past a scheduled sampler tick).
    pub fn next_due(&self) -> Cycle {
        self.next_due
    }

    /// Record one row of samples taken at cycle `now`; `values` must match
    /// the registered columns.
    pub fn record(&mut self, now: Cycle, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "sample row width must match registered columns"
        );
        self.rows.push((now, values));
        while self.next_due <= now {
            self.next_due += self.interval;
        }
    }

    /// Registered column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Recorded rows, oldest first.
    pub fn rows(&self) -> &[(Cycle, Vec<f64>)] {
        &self.rows
    }

    /// Export as CSV with a `cycle` column followed by the registered
    /// columns.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cycle");
        for c in &self.columns {
            let _ = write!(out, ",{c}");
        }
        out.push('\n');
        for (cycle, row) in &self.rows {
            let _ = write!(out, "{cycle}");
            for v in row {
                let _ = write!(out, ",{}", fmt_value(*v));
            }
            out.push('\n');
        }
        out
    }

    /// Export as a JSON object: `{"interval":N,"columns":[...],"rows":[[cycle,v0,...],...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"interval\":{},\"columns\":[", self.interval);
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{c}\"");
        }
        out.push_str("],\"rows\":[");
        for (i, (cycle, row)) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{cycle}");
            for v in row {
                let _ = write!(out, ",{}", fmt_value(*v));
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_follows_interval() {
        let mut s = IntervalSampler::new(100, vec!["a".into()]);
        assert!(!s.due(99));
        assert!(s.due(100));
        s.record(100, vec![1.0]);
        assert!(!s.due(150));
        assert!(s.due(200));
    }

    #[test]
    fn csv_and_json_round_values() {
        let mut s = IntervalSampler::new(10, vec!["ipc".into(), "occ".into()]);
        s.record(10, vec![1.5, 3.0]);
        let csv = s.to_csv();
        assert_eq!(csv.lines().next(), Some("cycle,ipc,occ"));
        assert_eq!(csv.lines().nth(1), Some("10,1.5,3"));
        let json = s.to_json();
        assert!(json.starts_with("{\"interval\":10,\"columns\":[\"ipc\",\"occ\"]"));
        assert!(json.contains("[10,1.5,3]"));
    }

    #[test]
    fn csv_values_parse_back_exactly() {
        // Values a fixed 4-digit precision would truncate or mangle.
        let values = vec![
            1.0 / 3.0,
            0.1 + 0.2,
            123456.789012345,
            -7.625e-5,
            f64::MAX / 2.0,
            42.0,
        ];
        let cols = (0..values.len()).map(|i| format!("c{i}")).collect();
        let mut s = IntervalSampler::new(10, cols);
        s.record(10, values.clone());
        let csv = s.to_csv();
        let row = csv.lines().nth(1).expect("one data row");
        let parsed: Vec<f64> = row
            .split(',')
            .skip(1) // cycle column
            .map(|cell| cell.parse::<f64>().expect("every cell parses"))
            .collect();
        assert_eq!(
            parsed, values,
            "CSV cells must round-trip to the exact recorded f64s"
        );
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_checked() {
        let mut s = IntervalSampler::new(10, vec!["a".into(), "b".into()]);
        s.record(10, vec![1.0]);
    }
}
