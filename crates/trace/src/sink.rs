//! Built-in trace sinks: in-memory capture, JSONL streaming, and Chrome
//! trace-event (Perfetto-loadable) export.

use crate::event::Event;
use smtp_types::{Cycle, SpanId};
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard};

/// A consumer of trace events.
///
/// Sinks receive every event that passes the [`Tracer`](crate::Tracer)
/// category mask, in emission order. `flush` finalizes any on-disk format
/// and must be idempotent. Sinks must be `Send` because tracer state is
/// shared with the parallel engine's worker threads (workers never call
/// sinks directly — captured events are replayed at epoch barriers — but
/// the shared sink registry has to cross the thread boundary).
pub trait TraceSink: Send {
    /// Record one event emitted at cycle `now`.
    fn record(&mut self, now: Cycle, ev: &Event);

    /// Finalize output (close JSON arrays, flush buffers). Idempotent.
    fn flush(&mut self) {}
}

// ---------------------------------------------------------------------------
// MemorySink
// ---------------------------------------------------------------------------

/// A cloneable, thread-safe event store shared between a [`MemorySink`]
/// and the code inspecting it.
#[derive(Clone, Default)]
pub struct SharedEvents {
    store: Arc<Mutex<Vec<(Cycle, Event)>>>,
}

impl SharedEvents {
    /// Lock and view the recorded events.
    pub fn borrow(&self) -> MutexGuard<'_, Vec<(Cycle, Event)>> {
        self.store.lock().unwrap()
    }
}

/// Captures events into a shared `Vec` for tests and programmatic analysis.
///
/// ```ignore
/// let store = MemorySink::shared();
/// tracer.add_sink(Box::new(MemorySink::attach(&store)));
/// // ... run ...
/// for (cycle, event) in store.borrow().iter() { ... }
/// ```
pub struct MemorySink {
    store: SharedEvents,
}

impl MemorySink {
    /// A fresh shared event store.
    pub fn shared() -> SharedEvents {
        SharedEvents::default()
    }

    /// A sink recording into `store`.
    pub fn attach(store: &SharedEvents) -> MemorySink {
        MemorySink {
            store: store.clone(),
        }
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, now: Cycle, ev: &Event) {
        self.store.borrow().push((now, *ev));
    }
}

// ---------------------------------------------------------------------------
// SharedBuf
// ---------------------------------------------------------------------------

/// An `io::Write` target backed by a shared byte vector, so text sinks can
/// write "to a file" that tests then inspect byte-for-byte.
#[derive(Clone, Default)]
pub struct SharedBuf {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuf {
    /// A fresh, empty shared buffer.
    pub fn new() -> SharedBuf {
        SharedBuf::default()
    }

    /// The accumulated bytes.
    pub fn contents(&self) -> Vec<u8> {
        self.buf.lock().unwrap().clone()
    }

    /// The accumulated bytes as UTF-8 (trace output is always ASCII).
    pub fn to_string_lossy(&self) -> String {
        String::from_utf8_lossy(&self.buf.lock().unwrap()).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.lock().unwrap().extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// JsonlSink
// ---------------------------------------------------------------------------

/// Streams one JSON object per line per event (see [`Event::write_jsonl`]).
///
/// The encoding is deterministic: identically-seeded runs produce
/// byte-identical streams.
pub struct JsonlSink {
    out: Box<dyn Write + Send>,
    line: String,
}

impl JsonlSink {
    /// A sink writing to `out` (a file, a [`SharedBuf`], …).
    pub fn new(out: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            out,
            line: String::with_capacity(160),
        }
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, now: Cycle, ev: &Event) {
        self.line.clear();
        ev.write_jsonl(now, &mut self.line);
        let _ = self.out.write_all(self.line.as_bytes());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlSink {
    /// Flush on drop so a panicking run (deadlock diagnostics) still
    /// leaves a readable, line-complete JSONL stream behind.
    fn drop(&mut self) {
        TraceSink::flush(self);
    }
}

// ---------------------------------------------------------------------------
// ChromeTraceSink
// ---------------------------------------------------------------------------

/// Writes the Chrome trace-event JSON array format, loadable in Perfetto
/// (<https://ui.perfetto.dev>) or `chrome://tracing`.
///
/// Mapping:
/// * each node is a *process* (`pid` = node index) with named threads:
///   tid 0 "app pipeline", tid 1 "protocol thread", tid 2 "network",
///   tid 3 "sdram";
/// * protocol handlers appear as duration slices (`X`) on the node's
///   protocol-thread track, from dispatch to completion;
/// * each coherence transaction appears as an *async* span keyed by its
///   line address — opened by `mshr_alloc`, annotated by network, directory
///   and fill instants, closed by `mshr_free` — so a remote miss renders as
///   connected events spanning requester, network and home node;
/// * each span-carrying network hop additionally emits a *flow* event
///   (`ph` `s`/`t`/`f`, id = the transaction's [`SpanId`]) bound to a
///   one-cycle slice on the network track, so Perfetto draws the causal
///   chain of a transaction as connected arcs across node tracks;
/// * everything else becomes a thread-scoped instant.
///
/// One simulated cycle is exported as one microsecond.
pub struct ChromeTraceSink {
    out: Box<dyn Write + Send>,
    first: bool,
    finished: bool,
    last_ts: Cycle,
    /// Open handler slices: (node, seq) -> (dispatch cycle, name, detail).
    open_handlers: HashMap<(u16, u64), (Cycle, &'static str, String)>,
    /// Spans whose flow chain has been opened with a `ph:"s"` event.
    flows_open: HashSet<u64>,
    /// Spans whose flow chain has been finalized with `ph:"f"`. Trailing
    /// events (home-side closeout after an early data reply, victim
    /// writebacks) can carry a finalized span; they keep their slices but
    /// must not restart the flow chain.
    flows_done: HashSet<u64>,
}

impl ChromeTraceSink {
    /// A sink writing a trace for `nodes` nodes to `out`.
    pub fn new(out: Box<dyn Write + Send>, nodes: usize) -> ChromeTraceSink {
        let mut sink = ChromeTraceSink {
            out,
            first: true,
            finished: false,
            last_ts: 0,
            open_handlers: HashMap::new(),
            flows_open: HashSet::new(),
            flows_done: HashSet::new(),
        };
        let _ = sink.out.write_all(b"[\n");
        for n in 0..nodes {
            sink.raw(&format!(
                "{{\"ph\":\"M\",\"pid\":{n},\"name\":\"process_name\",\"args\":{{\"name\":\"node{n}\"}}}}"
            ));
            for (tid, tname) in [
                (0, "app pipeline"),
                (1, "protocol thread"),
                (2, "network"),
                (3, "sdram"),
            ] {
                sink.raw(&format!(
                    "{{\"ph\":\"M\",\"pid\":{n},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{tname}\"}}}}"
                ));
            }
        }
        sink
    }

    fn raw(&mut self, json_obj: &str) {
        if self.first {
            self.first = false;
        } else {
            let _ = self.out.write_all(b",\n");
        }
        let _ = self.out.write_all(json_obj.as_bytes());
    }

    fn instant(&mut self, name: &str, pid: u16, tid: u8, ts: Cycle, args: &str) {
        self.raw(&format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{name}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"args\":{{{args}}}}}"
        ));
    }

    /// Async-span phase `ph` ("b" begin / "n" instant / "e" end) on the
    /// transaction identified by `line`.
    fn async_phase(&mut self, ph: char, name: &str, pid: u16, ts: Cycle, line: u64, args: &str) {
        self.raw(&format!(
            "{{\"ph\":\"{ph}\",\"cat\":\"txn\",\"id\":\"{line:#x}\",\"name\":\"{name}\",\"pid\":{pid},\"tid\":0,\"ts\":{ts},\"args\":{{{args}}}}}"
        ));
    }

    /// One hop of a span's flow chain: a one-cycle slice on `(pid, tid)`
    /// (flows must bind to an enclosing slice) plus the flow event itself —
    /// `ph:"s"` on the span's first hop, `ph:"t"` after, `ph:"f"` when
    /// `last`. Perfetto renders the chain as arcs connecting the slices.
    #[allow(clippy::too_many_arguments)]
    fn flow_hop(
        &mut self,
        span: SpanId,
        last: bool,
        name: &str,
        pid: u16,
        tid: u8,
        ts: Cycle,
        args: &str,
    ) {
        let id = span.raw();
        self.raw(&format!(
            "{{\"ph\":\"X\",\"name\":\"{name}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":1,\"args\":{{\"span\":\"{span}\"{}{args}}}}}",
            if args.is_empty() { "" } else { "," }
        ));
        if self.flows_done.contains(&id) {
            return;
        }
        if last {
            self.flows_done.insert(id);
        }
        let ph = if last {
            self.flows_open.remove(&id);
            'f'
        } else if self.flows_open.insert(id) {
            's'
        } else {
            't'
        };
        let bp = if ph == 'f' { ",\"bp\":\"e\"" } else { "" };
        self.raw(&format!(
            "{{\"ph\":\"{ph}\",\"cat\":\"span\",\"id\":{id},\"name\":\"span\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}{bp}}}"
        ));
    }
}

impl TraceSink for ChromeTraceSink {
    fn record(&mut self, now: Cycle, ev: &Event) {
        self.last_ts = self.last_ts.max(now);
        let node = ev.node().0;
        match *ev {
            Event::MshrAlloc {
                line, miss, span, ..
            } => {
                let raw = line.raw();
                self.async_phase(
                    'b',
                    "txn",
                    node,
                    now,
                    raw,
                    &format!("\"line\":\"{raw:#x}\",\"miss\":\"{}\"", miss.name()),
                );
                if span.is_some() {
                    self.flow_hop(
                        span,
                        false,
                        "mshr_alloc",
                        node,
                        0,
                        now,
                        &format!("\"miss\":\"{}\"", miss.name()),
                    );
                }
            }
            Event::MshrFree { line, span, .. } => {
                self.async_phase('e', "txn", node, now, line.raw(), "");
                if span.is_some() {
                    self.flow_hop(span, true, "mshr_free", node, 0, now, "");
                }
            }
            Event::Fill { line, grant, .. } => {
                let raw = line.raw();
                self.async_phase(
                    'n',
                    "fill",
                    node,
                    now,
                    raw,
                    &format!("\"grant\":\"{}\"", grant.name()),
                );
            }
            Event::Writeback { line, dirty, .. } => {
                self.instant(
                    "writeback",
                    node,
                    0,
                    now,
                    &format!("\"line\":\"{:#x}\",\"dirty\":{dirty}", line.raw()),
                );
            }
            Event::HandlerDispatch {
                line,
                handler,
                msg,
                src,
                seq,
                ..
            } => {
                let detail = format!(
                    "\"line\":\"{:#x}\",\"msg\":\"{}\",\"src\":{},\"seq\":{seq}",
                    line.raw(),
                    msg.name(),
                    src.0
                );
                self.async_phase(
                    'n',
                    handler.name(),
                    node,
                    now,
                    line.raw(),
                    &format!("\"seq\":{seq}"),
                );
                self.open_handlers
                    .insert((node, seq), (now, handler.name(), detail));
            }
            Event::HandlerComplete { seq, handler, .. } => {
                let (start, name, detail) = self.open_handlers.remove(&(node, seq)).unwrap_or((
                    now,
                    handler.name(),
                    String::new(),
                ));
                let dur = now.saturating_sub(start);
                self.raw(&format!(
                    "{{\"ph\":\"X\",\"name\":\"{name}\",\"pid\":{node},\"tid\":1,\"ts\":{start},\"dur\":{dur},\"args\":{{{detail}}}}}"
                ));
            }
            Event::DirTransition { line, from, to, .. } => {
                let raw = line.raw();
                self.async_phase(
                    'n',
                    "dir",
                    node,
                    now,
                    raw,
                    &format!("\"from\":\"{}\",\"to\":\"{}\"", from.name(), to.name()),
                );
            }
            Event::DirDefer { line, msg, .. } => {
                self.instant(
                    "dir_defer",
                    node,
                    1,
                    now,
                    &format!("\"line\":\"{:#x}\",\"msg\":\"{}\"", line.raw(), msg.name()),
                );
            }
            Event::NetInject {
                src,
                dst,
                line,
                msg,
                vnet,
                span,
                ..
            } => {
                let raw = line.raw();
                self.async_phase(
                    'n',
                    msg.name(),
                    src.0,
                    now,
                    raw,
                    &format!("\"dst\":{},\"vn\":{vnet},\"dir\":\"inject\"", dst.0),
                );
                if span.is_some() {
                    self.flow_hop(
                        span,
                        false,
                        msg.name(),
                        src.0,
                        2,
                        now,
                        &format!("\"dst\":{},\"vn\":{vnet}", dst.0),
                    );
                }
            }
            Event::NetDeliver {
                src,
                dst,
                line,
                msg,
                vnet,
                span,
            } => {
                let raw = line.raw();
                self.async_phase(
                    'n',
                    msg.name(),
                    dst.0,
                    now,
                    raw,
                    &format!("\"src\":{},\"vn\":{vnet},\"dir\":\"deliver\"", src.0),
                );
                if span.is_some() {
                    self.flow_hop(
                        span,
                        false,
                        msg.name(),
                        dst.0,
                        2,
                        now,
                        &format!("\"src\":{},\"vn\":{vnet}", src.0),
                    );
                }
            }
            Event::LocalMsg { line, msg, .. } => {
                self.instant(
                    msg.name(),
                    node,
                    2,
                    now,
                    &format!("\"line\":\"{:#x}\",\"local\":true", line.raw()),
                );
            }
            Event::SdramRead {
                protocol, ready_at, ..
            } => {
                self.instant(
                    "sdram_read",
                    node,
                    3,
                    now,
                    &format!("\"protocol\":{protocol},\"ready_at\":{ready_at}"),
                );
            }
            Event::SdramWrite { protocol, .. } => {
                self.instant(
                    "sdram_write",
                    node,
                    3,
                    now,
                    &format!("\"protocol\":{protocol}"),
                );
            }
            Event::PipeSend { ctx, .. } => {
                self.instant("pipe_send", node, 1, now, &format!("\"ctx\":{}", ctx.0));
            }
            Event::PipeLdctxt { ctx, .. } => {
                self.instant("pipe_ldctxt", node, 1, now, &format!("\"ctx\":{}", ctx.0));
            }
            Event::LockAcquire { ctx, lock, .. } => {
                self.instant(
                    "lock_acquire",
                    node,
                    0,
                    now,
                    &format!("\"ctx\":{},\"lock\":{lock}", ctx.0),
                );
            }
            Event::LockFail { ctx, lock, .. } => {
                self.instant(
                    "lock_fail",
                    node,
                    0,
                    now,
                    &format!("\"ctx\":{},\"lock\":{lock}", ctx.0),
                );
            }
            Event::LockRelease { ctx, lock, .. } => {
                self.instant(
                    "lock_release",
                    node,
                    0,
                    now,
                    &format!("\"ctx\":{},\"lock\":{lock}", ctx.0),
                );
            }
            Event::BarrierArrive { ctx, bar, .. } => {
                self.instant(
                    "barrier_arrive",
                    node,
                    0,
                    now,
                    &format!("\"ctx\":{},\"bar\":{bar}", ctx.0),
                );
            }
            Event::BarrierComplete { ctx, bar, .. } => {
                self.instant(
                    "barrier_complete",
                    node,
                    0,
                    now,
                    &format!("\"ctx\":{},\"bar\":{bar}", ctx.0),
                );
            }
            Event::LinkFault {
                dst,
                line,
                msg,
                vnet,
                fault,
                ..
            } => {
                self.instant(
                    "link_fault",
                    node,
                    2,
                    now,
                    &format!(
                        "\"dst\":{},\"line\":\"{:#x}\",\"msg\":\"{}\",\"vn\":{vnet},\"fault\":\"{}\"",
                        dst.0,
                        line.raw(),
                        msg.name(),
                        fault.name()
                    ),
                );
            }
            Event::LinkRetransmit {
                dst,
                vnet,
                seq,
                attempt,
                ..
            } => {
                self.instant(
                    "link_retransmit",
                    node,
                    2,
                    now,
                    &format!(
                        "\"dst\":{},\"vn\":{vnet},\"seq\":{seq},\"attempt\":{attempt}",
                        dst.0
                    ),
                );
            }
            Event::EccFault {
                uncorrectable,
                protocol,
                ..
            } => {
                self.instant(
                    "ecc_fault",
                    node,
                    3,
                    now,
                    &format!("\"uncorrectable\":{uncorrectable},\"protocol\":{protocol}"),
                );
            }
            Event::StallWindow { kind, until, .. } => {
                self.instant(
                    "stall_window",
                    node,
                    1,
                    now,
                    &format!("\"kind\":\"{}\",\"until\":{until}", kind.name()),
                );
            }
            Event::WatchdogWarn { level, stalled_for } => {
                self.instant(
                    "watchdog_warn",
                    node,
                    0,
                    now,
                    &format!("\"level\":{level},\"stalled_for\":{stalled_for}"),
                );
            }
        }
    }

    fn flush(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        // Close any handler slice that never saw its completion so the
        // trace still loads.
        let mut open: Vec<_> = self.open_handlers.drain().collect();
        open.sort_by_key(|((node, seq), _)| (*node, *seq));
        let last = self.last_ts;
        for ((node, _), (start, name, detail)) in open {
            let dur = last.saturating_sub(start);
            self.raw(&format!(
                "{{\"ph\":\"X\",\"name\":\"{name} (unfinished)\",\"pid\":{node},\"tid\":1,\"ts\":{start},\"dur\":{dur},\"args\":{{{detail}}}}}"
            ));
        }
        let _ = self.out.write_all(b"\n]\n");
        let _ = self.out.flush();
    }
}

impl Drop for ChromeTraceSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{GrantClass, MissClass};
    use smtp_types::{LineAddr, NodeId, SpanId};

    #[test]
    fn jsonl_is_one_object_per_line() {
        let buf = SharedBuf::new();
        let mut sink = JsonlSink::new(Box::new(buf.clone()));
        sink.record(
            5,
            &Event::MshrAlloc {
                node: NodeId(1),
                line: LineAddr(0x100),
                miss: MissClass::Read,
                span: SpanId::new(NodeId(1), 1),
            },
        );
        sink.record(
            9,
            &Event::Fill {
                node: NodeId(1),
                line: LineAddr(0x100),
                grant: GrantClass::Shared,
                span: SpanId::new(NodeId(1), 1),
            },
        );
        sink.flush();
        let text = buf.to_string_lossy();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"t\":5,\"cat\":\"cache\",\"ev\":\"mshr_alloc\""));
        assert!(lines[1].contains("\"grant\":\"shared\""));
    }

    #[test]
    fn chrome_trace_is_balanced_json_array() {
        let buf = SharedBuf::new();
        let mut sink = ChromeTraceSink::new(Box::new(buf.clone()), 2);
        sink.record(
            1,
            &Event::MshrAlloc {
                node: NodeId(0),
                line: LineAddr(0x80),
                miss: MissClass::Write,
                span: SpanId::new(NodeId(0), 1),
            },
        );
        sink.record(
            4,
            &Event::MshrFree {
                node: NodeId(0),
                line: LineAddr(0x80),
                span: SpanId::new(NodeId(0), 1),
            },
        );
        sink.flush();
        sink.flush(); // idempotent
        let text = buf.to_string_lossy();
        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        // Every node got process metadata; the async span opens and closes.
        assert!(text.contains("\"name\":\"node0\""));
        assert!(text.contains("\"name\":\"node1\""));
        assert!(text.contains("\"ph\":\"b\""));
        assert!(text.contains("\"ph\":\"e\""));
        // Brace balance is a cheap well-formedness proxy without a parser.
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
    }
}
