//! Per-node cache hierarchy: L1 I/D, unified L2, MSHRs, protocol bypass
//! buffers and the writeback buffer.
//!
//! Geometry follows paper Table 2: 32 KB / 64 B / 2-way L1I, 32 KB / 32 B /
//! 2-way L1D, 2 MB / 128 B / 8-way unified L2 (all LRU), 16 MSHRs plus one
//! for retiring stores (plus one reserved for the protocol thread under
//! SMTp), and 16-line fully-associative bypass buffers on L1I, L1D and L2
//! used by the protocol thread to escape index conflicts with in-flight
//! application misses (paper §2.2).
//!
//! The hierarchy is *inclusive*: every valid L1 line is covered by a valid
//! L2 line, and L2 evictions/invalidations back-invalidate the L1s.
//! Coherence operates at L2-line granularity ([`smtp_types::L2_LINE`]);
//! the directory protocol drives the node-facing methods of
//! [`MemHierarchy`] while the pipeline drives the CPU-facing ones.

pub mod bypass;
pub mod events;
pub mod hierarchy;
pub mod mshr;
pub mod setassoc;
pub mod tlb;
pub mod wb;

pub use bypass::BypassBuffer;
pub use events::{AccessOutcome, Grant, IntervResult, InvalResult, MemEvent, MissKind};
pub use hierarchy::{CacheStats, MemHierarchy};
pub use mshr::{MshrFile, WaitTag};
pub use setassoc::{Cache, LineState};
pub use tlb::Tlb;
pub use wb::WritebackBuffer;
