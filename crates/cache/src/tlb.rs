//! Translation lookaside buffers (paper Table 2: 128-entry, fully
//! associative, LRU, 4 KB pages).
//!
//! Application threads translate every instruction and data access; the
//! protocol thread's code and data live in *unmapped* physical memory and
//! never touch the TLBs (paper §2.1) — one of SMTp's design points, since
//! the protocol thread must not perturb application translations.

use smtp_types::Addr;

/// A fully-associative, LRU TLB.
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (page number, lru stamp)
    capacity: usize,
    page_shift: u32,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// A TLB of `capacity` entries over `page_bytes`-sized pages.
    ///
    /// # Panics
    ///
    /// Panics unless `page_bytes` is a power of two.
    pub fn new(capacity: usize, page_bytes: u64) -> Tlb {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            page_shift: page_bytes.trailing_zeros(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Translate an access; returns `true` on hit. Misses install the page
    /// (the refill penalty is charged by the caller).
    pub fn access(&mut self, addr: Addr) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let page = addr.raw() >> self.page_shift;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == page) {
            e.1 = clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((page, clock));
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtp_types::{NodeId, Region};

    fn a(off: u64) -> Addr {
        Addr::new(NodeId(0), Region::AppData, off)
    }

    #[test]
    fn same_page_hits_after_first_access() {
        let mut t = Tlb::new(4, 4096);
        assert!(!t.access(a(0x1000)));
        assert!(t.access(a(0x1FFF)));
        assert!(!t.access(a(0x2000)));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut t = Tlb::new(2, 4096);
        t.access(a(0x0000)); // page 0
        t.access(a(0x1000)); // page 1
        t.access(a(0x0000)); // touch page 0 => page 1 is LRU
        t.access(a(0x2000)); // evicts page 1
        assert!(t.access(a(0x0000)), "page 0 must survive");
        assert!(!t.access(a(0x1000)), "page 1 must have been evicted");
    }

    #[test]
    fn distinct_homes_are_distinct_pages() {
        let mut t = Tlb::new(8, 4096);
        t.access(Addr::new(NodeId(0), Region::AppData, 0x5000));
        assert!(!t.access(Addr::new(NodeId(1), Region::AppData, 0x5000)));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_page_size_panics() {
        Tlb::new(4, 1000);
    }
}
