//! Writeback buffer: evicted Exclusive/Modified lines awaiting `WbAck`.
//!
//! Keeping the evicted line until the home acknowledges the `Put` lets the
//! node serve interventions that race with its own eviction, which is what
//! makes the home-serialized protocol free of data loss (DESIGN.md §2).

use smtp_types::{LineAddr, SpanId};

/// The per-node writeback buffer.
#[derive(Clone, Debug, Default)]
pub struct WritebackBuffer {
    entries: Vec<(LineAddr, bool, SpanId)>,
    peak: usize,
}

impl WritebackBuffer {
    /// An empty buffer.
    pub fn new() -> WritebackBuffer {
        WritebackBuffer::default()
    }

    /// Insert an evicted line (`dirty` = carries data); `span` is the
    /// causal span of the transaction whose fill forced the eviction.
    ///
    /// # Panics
    ///
    /// Panics if the line is already buffered — the cache cannot evict a
    /// line it does not hold.
    pub fn insert(&mut self, line: LineAddr, dirty: bool, span: SpanId) {
        assert!(
            !self.contains(line),
            "line {line:?} evicted twice without WbAck"
        );
        self.entries.push((line, dirty, span));
        self.peak = self.peak.max(self.entries.len());
    }

    /// Whether the line is awaiting its writeback ack.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.iter().any(|&(l, _, _)| l == line)
    }

    /// Whether the buffered line was dirty.
    pub fn dirty(&self, line: LineAddr) -> Option<bool> {
        self.entries
            .iter()
            .find(|&&(l, _, _)| l == line)
            .map(|&(_, d, _)| d)
    }

    /// Span of the transaction that evicted the buffered line.
    pub fn span(&self, line: LineAddr) -> Option<SpanId> {
        self.entries
            .iter()
            .find(|&&(l, _, _)| l == line)
            .map(|&(_, _, s)| s)
    }

    /// Drop the entry once the home's `WbAck` arrives.
    ///
    /// # Panics
    ///
    /// Panics if the line is not buffered — a stray `WbAck` is a protocol
    /// bug.
    pub fn remove(&mut self, line: LineAddr) -> bool {
        let pos = self
            .entries
            .iter()
            .position(|&(l, _, _)| l == line)
            .unwrap_or_else(|| panic!("WbAck for unbuffered line {line:?}"));
        self.entries.swap_remove(pos).1
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// High-water mark (statistic).
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtp_types::{Addr, NodeId, Region};

    fn line(n: u64) -> LineAddr {
        Addr::new(NodeId(1), Region::AppData, n * 128).line()
    }

    #[test]
    fn insert_query_remove() {
        let mut wb = WritebackBuffer::new();
        assert!(wb.is_empty());
        let s = SpanId::new(NodeId(1), 7);
        wb.insert(line(1), true, s);
        wb.insert(line(2), false, SpanId::NONE);
        assert!(wb.contains(line(1)));
        assert_eq!(wb.dirty(line(1)), Some(true));
        assert_eq!(wb.dirty(line(2)), Some(false));
        assert_eq!(wb.dirty(line(3)), None);
        assert_eq!(wb.span(line(1)), Some(s));
        assert_eq!(wb.span(line(3)), None);
        assert!(wb.remove(line(1)));
        assert!(!wb.contains(line(1)));
        assert_eq!(wb.len(), 1);
        assert_eq!(wb.peak(), 2);
    }

    #[test]
    #[should_panic(expected = "evicted twice")]
    fn double_insert_panics() {
        let mut wb = WritebackBuffer::new();
        wb.insert(line(1), true, SpanId::NONE);
        wb.insert(line(1), false, SpanId::NONE);
    }

    #[test]
    #[should_panic(expected = "unbuffered")]
    fn stray_ack_panics() {
        let mut wb = WritebackBuffer::new();
        wb.remove(line(9));
    }
}
