//! The per-node memory hierarchy: L1I + L1D + unified L2, MSHRs, bypass
//! buffers and writeback buffer, with the CPU-facing and coherence-facing
//! operations the rest of the node drives.

use crate::bypass::BypassBuffer;
use crate::events::{AccessOutcome, Grant, IntervResult, InvalResult, MemEvent, MissKind};
use crate::mshr::{Deferred, MshrClass, MshrFile, WaitTag};
use crate::setassoc::{Cache, LineState};
use crate::tlb::Tlb;
use crate::wb::WritebackBuffer;
use smtp_trace::spatial::{node_bit, sub_block_bit};
use smtp_trace::{Category, Event, GrantClass, LineTracker, MissClass, Tracer};
use smtp_types::{
    Addr, Ctx, Cycle, Distribution, LineAddr, NodeId, PhaseBoundary, PhaseProfiler, PipelineParams,
    Region, SpanAlloc, SpanId, TxnClass,
};
use std::collections::VecDeque;

/// Hit/miss statistics per cache level, split between application and
/// protocol accesses (the paper's §2.3 cache-pollution analysis needs the
/// split).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// L1D hits by application accesses.
    pub l1d_app_hits: u64,
    /// L1D misses by application accesses.
    pub l1d_app_misses: u64,
    /// L1D hits by protocol accesses.
    pub l1d_prot_hits: u64,
    /// L1D misses by protocol accesses.
    pub l1d_prot_misses: u64,
    /// L1I hits (all contexts).
    pub l1i_hits: u64,
    /// L1I misses (all contexts).
    pub l1i_misses: u64,
    /// L2 hits by application accesses.
    pub l2_app_hits: u64,
    /// L2 misses by application accesses (coherence requests issued).
    pub l2_app_misses: u64,
    /// L2 hits by protocol accesses.
    pub l2_prot_hits: u64,
    /// L2 misses by protocol accesses (direct SDRAM fetches).
    pub l2_prot_misses: u64,
    /// Writebacks of application lines (Put messages).
    pub app_writebacks: u64,
    /// Local writebacks of dirty directory/protocol lines.
    pub dir_writebacks: u64,
    /// Prefetches dropped (MSHR pressure or already resident/in flight).
    pub prefetch_drops: u64,
    /// Prefetches issued to the memory system.
    pub prefetch_issued: u64,
    /// Upgrade requests issued.
    pub upgrades: u64,
    /// DTLB misses (application accesses only; the protocol thread is
    /// unmapped).
    pub dtlb_misses: u64,
    /// ITLB misses.
    pub itlb_misses: u64,
    /// End-to-end latency of application misses, MSHR allocation to free
    /// (data plus all invalidation acks).
    pub miss_latency: Distribution,
}

/// The node's cache hierarchy.
#[derive(Clone, Debug)]
pub struct MemHierarchy {
    node: NodeId,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    byp_i: BypassBuffer,
    byp_d: BypassBuffer,
    byp_l2: BypassBuffer,
    mshrs: MshrFile,
    wb: WritebackBuffer,
    events: VecDeque<MemEvent>,
    itlb: Tlb,
    dtlb: Tlb,
    tlb_miss_cycles: Cycle,
    perfect_protocol: bool,
    l1_hit: Cycle,
    l2_hit: Cycle,
    stats: CacheStats,
    tracer: Tracer,
    profiler: PhaseProfiler,
    spans: SpanAlloc,
    /// Requester-side per-line tracker (misses, sub-block access masks,
    /// coherence receipts); `None` (zero overhead) unless spatial
    /// attribution is enabled.
    spatial: Option<Box<LineTracker>>,
}

impl MemHierarchy {
    /// Build the hierarchy for `node` from pipeline parameters; `smtp`
    /// enables the reserved protocol MSHR and the bypass buffers.
    pub fn new(node: NodeId, p: &PipelineParams, smtp: bool) -> MemHierarchy {
        let byp = if smtp { p.bypass_lines } else { 0 };
        MemHierarchy {
            node,
            l1i: Cache::new(&p.l1i),
            l1d: Cache::new(&p.l1d),
            l2: Cache::new(&p.l2),
            byp_i: BypassBuffer::new(byp.max(1), p.l1i.line),
            byp_d: BypassBuffer::new(byp.max(1), p.l1d.line),
            byp_l2: BypassBuffer::new(byp.max(1), p.l2.line),
            mshrs: MshrFile::new(p.mshrs, smtp),
            wb: WritebackBuffer::new(),
            events: VecDeque::new(),
            itlb: Tlb::new(p.tlb_entries, p.page_bytes),
            dtlb: Tlb::new(p.tlb_entries, p.page_bytes),
            tlb_miss_cycles: p.tlb_miss_cycles,
            perfect_protocol: smtp && p.perfect_protocol_caches,
            l1_hit: p.l1d.hit_cycles,
            l2_hit: p.l2.hit_cycles,
            stats: CacheStats::default(),
            tracer: Tracer::disabled(),
            profiler: PhaseProfiler::disabled(),
            spans: SpanAlloc::new(node),
            spatial: None,
        }
    }

    /// Arm the requester-side per-line tracker with the given Space-Saving
    /// capacity.
    pub fn enable_spatial(&mut self, cap: usize) {
        self.spatial = Some(Box::new(LineTracker::new(cap)));
    }

    /// The requester-side line tracker, if spatial attribution is enabled.
    pub fn spatial(&self) -> Option<&LineTracker> {
        self.spatial.as_deref()
    }

    /// Fold one coherence-visible application miss into the requester-side
    /// tracker: which sub-block of the line this node read or wrote, and
    /// whether it asked for write permission.
    fn spatial_miss(&mut self, addr: Addr, kind: MissKind) {
        let Some(sp) = &mut self.spatial else { return };
        let c = sp.touch(addr.line());
        c.misses += 1;
        c.toucher_mask |= node_bit(self.node.idx());
        match kind {
            MissKind::Read => c.read_mask |= sub_block_bit(addr),
            MissKind::Write | MissKind::Upgrade => {
                c.write_mask |= sub_block_bit(addr);
                c.writer_mask |= node_bit(self.node.idx());
            }
        }
    }

    /// Attach the system tracer (events: `mshr_alloc`, `mshr_free`, `fill`,
    /// `writeback`).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attach the latency-phase profiler. Application data misses open a
    /// transaction at MSHR allocation and close it at the free.
    pub fn set_profiler(&mut self, profiler: PhaseProfiler) {
        self.profiler = profiler;
    }

    /// Open a phase-accounting transaction for an application miss.
    fn profile_start(&self, line: LineAddr, class: TxnClass, now: Cycle) {
        if self.profiler.is_enabled() {
            let remote = line.home() != self.node;
            self.profiler.start(self.node, line, class, remote, now);
        }
    }

    /// Emit an `mshr_alloc` trace event (the start of a transaction, and
    /// the root of the transaction's causal span tree).
    fn trace_alloc(&self, line: LineAddr, miss: MissClass, span: SpanId, now: Cycle) {
        let node = self.node;
        self.tracer.emit(Category::Cache, now, || Event::MshrAlloc {
            node,
            line,
            miss,
            span,
        });
    }

    /// Draw a fresh causal span for a new root transaction. Spans are
    /// allocated per node in deterministic (program) order, so the parallel
    /// engine assigns the same ids as the serial one.
    fn next_span(&mut self) -> SpanId {
        self.spans.next()
    }

    /// The node this hierarchy belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Pop the next pending event.
    pub fn pop_event(&mut self) -> Option<MemEvent> {
        self.events.pop_front()
    }

    /// Whether any in-flight application miss conflicts with the L2 set of
    /// `line` (bypass-allocation condition).
    fn l2_conflict(&self, line: LineAddr) -> bool {
        let set = self.l2.set_index(line.into());
        let l2 = &self.l2;
        self.mshrs.app_conflict(set, |l| l2.set_index(l.into()))
    }

    fn l1d_conflict(&self, addr: Addr) -> bool {
        let set = self.l1d.set_index(addr);
        let l1d = &self.l1d;
        self.mshrs.app_conflict(set, |l| l1d.set_index(l.into()))
    }

    fn l1i_conflict(&self, addr: Addr) -> bool {
        let set = self.l1i.set_index(addr);
        let l1i = &self.l1i;
        self.mshrs.app_conflict(set, |l| l1i.set_index(l.into()))
    }

    /// Back-invalidate all L1 lines covered by an L2 line, merging dirty
    /// bits; returns whether any L1 copy was dirty.
    fn back_inval_l1(&mut self, line: LineAddr) -> bool {
        let mut dirty = false;
        let base = line.raw();
        let l1d_line = self.l1d.line_size();
        let mut off = 0;
        while off < smtp_types::L2_LINE {
            let a = Addr(base + off);
            if let Some(st) = self.l1d.invalidate(a) {
                dirty |= st.is_dirty();
            }
            if let Some(st) = self.byp_d.invalidate(a) {
                dirty |= st.is_dirty();
            }
            off += l1d_line;
        }
        let l1i_line = self.l1i.line_size();
        let mut off = 0;
        while off < smtp_types::L2_LINE {
            let a = Addr(base + off);
            self.l1i.invalidate(a);
            self.byp_i.invalidate(a);
            off += l1i_line;
        }
        dirty
    }

    /// Downgrade L1 copies of a line to clean; returns whether any was dirty.
    fn downgrade_l1(&mut self, line: LineAddr) -> bool {
        let mut dirty = false;
        let base = line.raw();
        let step = self.l1d.line_size();
        let mut off = 0;
        while off < smtp_types::L2_LINE {
            let a = Addr(base + off);
            if let Some(st) = self.l1d.probe(a) {
                dirty |= st.is_dirty();
                self.l1d.set_state(a, LineState::Shared);
            }
            if let Some(st) = self.byp_d.probe(a) {
                dirty |= st.is_dirty();
                self.byp_d.set_state(a, LineState::Shared);
            }
            off += step;
        }
        dirty
    }

    /// Handle an evicted L2/bypass-L2 victim. `span` is the causal span of
    /// the filling transaction whose install forced the eviction — the
    /// writeback is a consequence of that transaction.
    fn handle_l2_victim(&mut self, victim: Addr, state: LineState, span: SpanId, now: Cycle) {
        let line = victim.line();
        let l1_dirty = self.back_inval_l1(line);
        let dirty = state.is_dirty() || l1_dirty;
        let node = self.node;
        match line.region() {
            Region::AppData => match state {
                LineState::Shared => {
                    // Silent eviction; the directory will over-invalidate.
                    debug_assert!(!l1_dirty, "dirty L1 under Shared L2 line");
                }
                LineState::Exclusive | LineState::Modified => {
                    self.wb.insert(line, dirty, span);
                    self.stats.app_writebacks += 1;
                    self.tracer.emit(Category::Cache, now, || Event::Writeback {
                        node,
                        line,
                        dirty,
                        span,
                    });
                    self.events
                        .push_back(MemEvent::Writeback { line, dirty, span });
                }
            },
            _ => {
                // Directory / protocol-code lines are node-local.
                if dirty {
                    self.stats.dir_writebacks += 1;
                    self.tracer.emit(Category::Cache, now, || Event::Writeback {
                        node,
                        line,
                        dirty,
                        span,
                    });
                    self.events
                        .push_back(MemEvent::Writeback { line, dirty, span });
                }
            }
        }
    }

    /// Install a line into the L2 (or the L2 bypass buffer for conflicting
    /// protocol lines), handling the victim. `span` is the installing
    /// transaction's causal span (inherited by any writeback it forces).
    fn l2_install(
        &mut self,
        line: LineAddr,
        state: LineState,
        is_protocol: bool,
        span: SpanId,
        now: Cycle,
    ) {
        if is_protocol && self.l2_conflict(line) {
            if let Some((v, st)) = self.byp_l2.insert(line.into(), state) {
                self.handle_l2_victim(v, st, span, now);
            }
            return;
        }
        let mshrs = self.mshrs.clone_lines();
        let victim = self
            .l2
            .insert_avoiding(line.into(), state, |a| !mshrs.contains(&a.line()));
        if let Some((v, st)) = victim {
            self.handle_l2_victim(v, st, span, now);
        }
    }

    /// Install an L1D line.
    fn l1d_install(&mut self, addr: Addr, state: LineState, is_protocol: bool) {
        if is_protocol && self.l1d_conflict(addr) {
            if let Some((v, st)) = self.byp_d.insert(self.l1d.line_base(addr), state) {
                if st.is_dirty() {
                    self.merge_dirty_l1(v);
                }
            }
            return;
        }
        if let Some((v, st)) = self.l1d.insert(self.l1d.line_base(addr), state) {
            if st.is_dirty() {
                self.merge_dirty_l1(v);
            }
        }
    }

    /// Write a dirty evicted L1 line back into its backing L2/bypass line.
    fn merge_dirty_l1(&mut self, victim: Addr) {
        let line: Addr = victim.line().into();
        if self.l2.probe(line).is_some() {
            self.l2.set_state(line, LineState::Modified);
        } else if self.byp_l2.probe(line).is_some() {
            self.byp_l2.set_state(line, LineState::Modified);
        } else {
            debug_assert!(
                false,
                "inclusion violated: dirty L1 victim {victim:?} has no L2 line"
            );
        }
    }

    fn l1i_install(&mut self, addr: Addr, is_protocol: bool) {
        if is_protocol && self.l1i_conflict(addr) {
            self.byp_i
                .insert(self.l1i.line_base(addr), LineState::Shared);
            return;
        }
        self.l1i.insert(self.l1i.line_base(addr), LineState::Shared);
    }

    // ------------------------- CPU-facing API -------------------------

    /// Translate an application data access; returns the added refill
    /// penalty (0 on a DTLB hit). Unmapped (protocol) addresses skip the
    /// TLB entirely (paper §2.1).
    fn dtlb_penalty(&mut self, addr: Addr) -> Cycle {
        if addr.is_unmapped() || self.dtlb.access(addr) {
            0
        } else {
            self.stats.dtlb_misses += 1;
            self.tlb_miss_cycles
        }
    }

    /// Issue a load; `tag` identifies the pipeline entry to wake on a miss.
    pub fn load(&mut self, tag: u32, addr: Addr, now: Cycle, is_protocol: bool) -> AccessOutcome {
        if is_protocol && self.perfect_protocol {
            // §2.3 experiment: separate perfect protocol data cache.
            self.stats.l1d_prot_hits += 1;
            return AccessOutcome::Ready(now + self.l1_hit);
        }
        let now = now
            + if is_protocol {
                0
            } else {
                self.dtlb_penalty(addr)
            };
        // L1D (and bypass, for protocol accesses).
        let l1 = self
            .l1d
            .lookup(addr)
            .or_else(|| is_protocol.then(|| self.byp_d.lookup(addr)).flatten());
        if l1.is_some() {
            if is_protocol {
                self.stats.l1d_prot_hits += 1;
            } else {
                self.stats.l1d_app_hits += 1;
            }
            return AccessOutcome::Ready(now + self.l1_hit);
        }
        if is_protocol {
            self.stats.l1d_prot_misses += 1;
        } else {
            self.stats.l1d_app_misses += 1;
        }
        let line = addr.line();
        // L2.
        let l2 = self.l2.lookup(line.into()).or_else(|| {
            is_protocol
                .then(|| self.byp_l2.lookup(line.into()))
                .flatten()
        });
        if l2.is_some() {
            if is_protocol {
                self.stats.l2_prot_hits += 1;
            } else {
                self.stats.l2_app_hits += 1;
            }
            self.l1d_install(addr, LineState::Shared, is_protocol);
            return AccessOutcome::Ready(now + self.l2_hit);
        }
        if is_protocol {
            self.stats.l2_prot_misses += 1;
        } else {
            self.stats.l2_app_misses += 1;
        }
        if self.wb.contains(line) {
            return AccessOutcome::Blocked;
        }
        if let Some(i) = self.mshrs.find(line) {
            self.mshrs
                .get_mut(i)
                .waiting
                .push(WaitTag::Load { tag, addr });
            return AccessOutcome::Pending;
        }
        let class = if is_protocol {
            MshrClass::Protocol
        } else {
            MshrClass::AppLoad
        };
        if !self.mshrs.can_alloc(class) {
            return AccessOutcome::Blocked;
        }
        let span = self.next_span();
        match self
            .mshrs
            .alloc(line, MissKind::Read, class, false, now, span)
        {
            Ok(i) => {
                self.mshrs
                    .get_mut(i)
                    .waiting
                    .push(WaitTag::Load { tag, addr });
                self.trace_alloc(line, MissClass::Read, span, now);
                if !is_protocol {
                    self.spatial_miss(addr, MissKind::Read);
                }
                self.events.push_back(if is_protocol {
                    MemEvent::ProtocolFetch { line, span }
                } else {
                    self.profile_start(line, TxnClass::Read, now);
                    MemEvent::AppMiss {
                        line,
                        kind: MissKind::Read,
                        span,
                    }
                });
                AccessOutcome::Pending
            }
            Err(()) => AccessOutcome::Blocked,
        }
    }

    /// Fetch an instruction bundle starting at `addr` for context `ctx`.
    pub fn ifetch(&mut self, ctx: Ctx, addr: Addr, now: Cycle, is_protocol: bool) -> AccessOutcome {
        if is_protocol && self.perfect_protocol {
            self.stats.l1i_hits += 1;
            return AccessOutcome::Ready(now + self.l1_hit);
        }
        let now = if is_protocol || addr.is_unmapped() || self.itlb.access(addr) {
            now
        } else {
            self.stats.itlb_misses += 1;
            now + self.tlb_miss_cycles
        };
        let l1 = self
            .l1i
            .lookup(addr)
            .or_else(|| is_protocol.then(|| self.byp_i.lookup(addr)).flatten());
        if l1.is_some() {
            self.stats.l1i_hits += 1;
            return AccessOutcome::Ready(now + self.l1_hit);
        }
        self.stats.l1i_misses += 1;
        let line = addr.line();
        let l2 = self.l2.lookup(line.into()).or_else(|| {
            is_protocol
                .then(|| self.byp_l2.lookup(line.into()))
                .flatten()
        });
        if l2.is_some() {
            self.l1i_install(addr, is_protocol);
            return AccessOutcome::Ready(now + self.l2_hit);
        }
        if self.wb.contains(line) {
            return AccessOutcome::Blocked;
        }
        if let Some(i) = self.mshrs.find(line) {
            let already = self
                .mshrs
                .get(i)
                .waiting
                .iter()
                .any(|w| matches!(w, WaitTag::IFetch { ctx: c, .. } if *c == ctx));
            if !already {
                self.mshrs
                    .get_mut(i)
                    .waiting
                    .push(WaitTag::IFetch { ctx, addr });
            }
            return AccessOutcome::Pending;
        }
        let class = if is_protocol {
            MshrClass::Protocol
        } else {
            MshrClass::AppLoad
        };
        if !self.mshrs.can_alloc(class) {
            return AccessOutcome::Blocked;
        }
        let span = self.next_span();
        match self
            .mshrs
            .alloc(line, MissKind::Read, class, false, now, span)
        {
            Ok(i) => {
                self.mshrs
                    .get_mut(i)
                    .waiting
                    .push(WaitTag::IFetch { ctx, addr });
                self.trace_alloc(line, MissClass::Ifetch, span, now);
                self.events.push_back(if is_protocol {
                    MemEvent::ProtocolFetch { line, span }
                } else {
                    MemEvent::CodeFetch { line, span }
                });
                AccessOutcome::Pending
            }
            Err(()) => AccessOutcome::Blocked,
        }
    }

    /// Retire a store from the store buffer into the cache. `Ready` means
    /// the store performed. `Pending` means the store *joined* the line's
    /// in-flight miss: a [`MemEvent::StoreDone`] will fire at the fill —
    /// with `performed` when the fill grants write permission (the store's
    /// data is then in the line before any deferred intervention can steal
    /// it), or without when only read permission arrived (retry: an
    /// upgrade will be issued). On `Blocked` retry next cycle.
    pub fn store_retire(
        &mut self,
        tag: u32,
        addr: Addr,
        now: Cycle,
        is_protocol: bool,
    ) -> AccessOutcome {
        if is_protocol && self.perfect_protocol {
            self.stats.l1d_prot_hits += 1;
            return AccessOutcome::Ready(now + self.l1_hit);
        }
        let now = now
            + if is_protocol {
                0
            } else {
                self.dtlb_penalty(addr)
            };
        let line = addr.line();
        if self.wb.contains(line) {
            return AccessOutcome::Blocked;
        }
        let l1 = self
            .l1d
            .lookup(addr)
            .or_else(|| is_protocol.then(|| self.byp_d.lookup(addr)).flatten());
        if let Some(st) = l1 {
            if st.is_dirty() {
                if is_protocol {
                    self.stats.l1d_prot_hits += 1;
                } else {
                    self.stats.l1d_app_hits += 1;
                }
                return AccessOutcome::Ready(now + self.l1_hit);
            }
            // Clean L1 copy: need L2 write permission.
            let l2 = self.l2.probe(line.into()).or_else(|| {
                is_protocol
                    .then(|| self.byp_l2.probe(line.into()))
                    .flatten()
            });
            match l2 {
                Some(s) if s.is_writable() => {
                    self.set_l2_state(line, LineState::Modified, is_protocol);
                    self.set_l1d_state(addr, LineState::Modified, is_protocol);
                    if is_protocol {
                        self.stats.l1d_prot_hits += 1;
                    } else {
                        self.stats.l1d_app_hits += 1;
                    }
                    return AccessOutcome::Ready(now + self.l1_hit);
                }
                Some(_) => return self.issue_upgrade(tag, addr, line, is_protocol, now),
                None => {
                    debug_assert!(
                        false,
                        "inclusion violated: L1 copy of {addr:?} has no L2 line"
                    );
                    return AccessOutcome::Blocked;
                }
            }
        }
        // L1 miss.
        if is_protocol {
            self.stats.l1d_prot_misses += 1;
        } else {
            self.stats.l1d_app_misses += 1;
        }
        let l2 = self.l2.lookup(line.into()).or_else(|| {
            is_protocol
                .then(|| self.byp_l2.lookup(line.into()))
                .flatten()
        });
        match l2 {
            Some(s) if s.is_writable() => {
                if is_protocol {
                    self.stats.l2_prot_hits += 1;
                } else {
                    self.stats.l2_app_hits += 1;
                }
                self.set_l2_state(line, LineState::Modified, is_protocol);
                self.l1d_install(addr, LineState::Modified, is_protocol);
                AccessOutcome::Ready(now + self.l2_hit)
            }
            Some(_) => self.issue_upgrade(tag, addr, line, is_protocol, now),
            None => {
                if is_protocol {
                    self.stats.l2_prot_misses += 1;
                } else {
                    self.stats.l2_app_misses += 1;
                }
                if let Some(i) = self.mshrs.find(line) {
                    self.mshrs
                        .get_mut(i)
                        .waiting
                        .push(WaitTag::Store { tag, addr });
                    return AccessOutcome::Pending;
                }
                let class = if is_protocol {
                    MshrClass::Protocol
                } else {
                    MshrClass::AppStore
                };
                if !self.mshrs.can_alloc(class) {
                    return AccessOutcome::Blocked;
                }
                let span = self.next_span();
                match self
                    .mshrs
                    .alloc(line, MissKind::Write, class, false, now, span)
                {
                    Ok(i) => {
                        self.mshrs
                            .get_mut(i)
                            .waiting
                            .push(WaitTag::Store { tag, addr });
                        self.trace_alloc(line, MissClass::Write, span, now);
                        if !is_protocol {
                            self.spatial_miss(addr, MissKind::Write);
                        }
                        self.events.push_back(if is_protocol {
                            MemEvent::ProtocolFetch { line, span }
                        } else {
                            self.profile_start(line, TxnClass::ReadExclusive, now);
                            MemEvent::AppMiss {
                                line,
                                kind: MissKind::Write,
                                span,
                            }
                        });
                        AccessOutcome::Pending
                    }
                    Err(()) => AccessOutcome::Blocked,
                }
            }
        }
    }

    fn issue_upgrade(
        &mut self,
        tag: u32,
        addr: Addr,
        line: LineAddr,
        is_protocol: bool,
        now: Cycle,
    ) -> AccessOutcome {
        debug_assert!(!is_protocol, "directory lines are never Shared");
        if let Some(i) = self.mshrs.find(line) {
            self.mshrs
                .get_mut(i)
                .waiting
                .push(WaitTag::Store { tag, addr });
            return AccessOutcome::Pending;
        }
        if !self.mshrs.can_alloc(MshrClass::AppStore) {
            return AccessOutcome::Blocked;
        }
        let span = self.next_span();
        match self.mshrs.alloc(
            line,
            MissKind::Upgrade,
            MshrClass::AppStore,
            false,
            now,
            span,
        ) {
            Ok(i) => {
                self.mshrs
                    .get_mut(i)
                    .waiting
                    .push(WaitTag::Store { tag, addr });
                self.stats.upgrades += 1;
                self.trace_alloc(line, MissClass::Upgrade, span, now);
                self.spatial_miss(addr, MissKind::Upgrade);
                self.profile_start(line, TxnClass::ReadExclusive, now);
                self.events.push_back(MemEvent::AppMiss {
                    line,
                    kind: MissKind::Upgrade,
                    span,
                });
                AccessOutcome::Pending
            }
            Err(()) => AccessOutcome::Blocked,
        }
    }

    fn set_l2_state(&mut self, line: LineAddr, st: LineState, is_protocol: bool) {
        if !self.l2.set_state(line.into(), st) && is_protocol {
            self.byp_l2.set_state(line.into(), st);
        }
    }

    fn set_l1d_state(&mut self, addr: Addr, st: LineState, is_protocol: bool) {
        if !self.l1d.set_state(addr, st) && is_protocol {
            self.byp_d.set_state(addr, st);
        }
    }

    /// Issue a software prefetch (non-binding: dropped under pressure).
    pub fn prefetch(&mut self, addr: Addr, exclusive: bool, now: Cycle) {
        let line = addr.line();
        if self.wb.contains(line) || self.mshrs.find(line).is_some() {
            self.stats.prefetch_drops += 1;
            return;
        }
        match self.l2.probe(line.into()) {
            Some(st) if st.is_writable() || !exclusive => {
                self.stats.prefetch_drops += 1;
            }
            Some(_) => {
                // Shared copy, exclusive prefetch: upgrade.
                if !self.mshrs.can_alloc(MshrClass::AppLoad) {
                    self.stats.prefetch_drops += 1;
                    return;
                }
                let span = self.next_span();
                if self
                    .mshrs
                    .alloc(line, MissKind::Upgrade, MshrClass::AppLoad, true, now, span)
                    .is_ok()
                {
                    self.stats.prefetch_issued += 1;
                    self.stats.upgrades += 1;
                    self.trace_alloc(line, MissClass::Prefetch, span, now);
                    self.spatial_miss(addr, MissKind::Upgrade);
                    self.profile_start(line, TxnClass::ReadExclusive, now);
                    self.events.push_back(MemEvent::AppMiss {
                        line,
                        kind: MissKind::Upgrade,
                        span,
                    });
                } else {
                    self.stats.prefetch_drops += 1;
                }
            }
            None => {
                let kind = if exclusive {
                    MissKind::Write
                } else {
                    MissKind::Read
                };
                if !self.mshrs.can_alloc(MshrClass::AppLoad) {
                    self.stats.prefetch_drops += 1;
                    return;
                }
                let span = self.next_span();
                if self
                    .mshrs
                    .alloc(line, kind, MshrClass::AppLoad, true, now, span)
                    .is_ok()
                {
                    self.stats.prefetch_issued += 1;
                    self.trace_alloc(line, MissClass::Prefetch, span, now);
                    self.spatial_miss(addr, kind);
                    let class = if exclusive {
                        TxnClass::ReadExclusive
                    } else {
                        TxnClass::Read
                    };
                    self.profile_start(line, class, now);
                    self.events
                        .push_back(MemEvent::AppMiss { line, kind, span });
                } else {
                    self.stats.prefetch_drops += 1;
                }
            }
        }
    }

    // ----------------------- coherence-facing API -----------------------

    /// Deliver the data / ownership grant for an outstanding miss.
    ///
    /// # Panics
    ///
    /// Panics if no MSHR tracks `line` — a fill without a miss is a
    /// protocol bug.
    pub fn fill(&mut self, line: LineAddr, grant: Grant, now: Cycle) {
        let idx = self
            .mshrs
            .find(line)
            .unwrap_or_else(|| panic!("fill without MSHR for {line:?}"));
        let (kind, is_protocol, span) = {
            let m = self.mshrs.get(idx);
            (m.kind, m.is_protocol, m.span)
        };
        {
            let node = self.node;
            let grant_class = match grant {
                Grant::Shared => GrantClass::Shared,
                Grant::Excl { .. } => GrantClass::Excl,
                Grant::UpgradeAck { .. } => GrantClass::UpgradeAck,
            };
            self.tracer.emit(Category::Cache, now, || Event::Fill {
                node,
                line,
                grant: grant_class,
                span,
            });
        }
        let acks = match grant {
            Grant::Shared => {
                self.l2_install(line, LineState::Shared, is_protocol, span, now);
                0
            }
            Grant::Excl { acks } => {
                let st = if matches!(kind, MissKind::Write | MissKind::Upgrade) {
                    LineState::Modified
                } else {
                    LineState::Exclusive
                };
                self.l2_install(line, st, is_protocol, span, now);
                acks
            }
            Grant::UpgradeAck { acks } => {
                debug_assert_eq!(kind, MissKind::Upgrade);
                let present = self.l2.set_state(line.into(), LineState::Modified);
                debug_assert!(
                    present,
                    "UpgradeAck for {line:?} but the Shared copy is gone"
                );
                acks
            }
        };
        // Wake waiting consumers. Joined stores are performed *here*, at
        // fill time, when write permission arrived — before the deferred
        // coherence work below can take the line away (forward-progress
        // guarantee; see `store_retire`).
        let write_granted = !matches!(grant, Grant::Shared);
        let waiting = std::mem::take(&mut self.mshrs.get_mut(idx).waiting);
        for w in waiting {
            match w {
                WaitTag::Load { tag, addr } => {
                    self.l1d_install(addr, LineState::Shared, is_protocol);
                    self.events
                        .push_back(MemEvent::LoadDone { tag, at: now + 2 });
                }
                WaitTag::Store { tag, addr } => {
                    if write_granted {
                        self.set_l2_state(line, LineState::Modified, is_protocol);
                        self.l1d_install(addr, LineState::Modified, is_protocol);
                    }
                    self.events.push_back(MemEvent::StoreDone {
                        tag,
                        at: now + 2,
                        performed: write_granted,
                    });
                }
                WaitTag::IFetch { ctx, addr } => {
                    self.l1i_install(addr, is_protocol);
                    self.events
                        .push_back(MemEvent::IFetchDone { ctx, at: now + 2 });
                }
            }
        }
        {
            let m = self.mshrs.get_mut(idx);
            m.data_done = true;
            m.acks_pending += acks as i32;
            debug_assert!(m.acks_pending >= 0, "more acks than expected for {line:?}");
        }
        if !is_protocol {
            self.profiler
                .stamp(self.node, line, PhaseBoundary::Filled, now);
        }
        if self.mshrs.get(idx).complete() {
            self.finish_mshr(idx, now);
        }
    }

    /// An invalidation acknowledgement arrived for our pending exclusive
    /// transaction.
    pub fn ack_arrived(&mut self, line: LineAddr, now: Cycle) {
        let idx = self
            .mshrs
            .find(line)
            .unwrap_or_else(|| panic!("AckInv without MSHR for {line:?}"));
        {
            let m = self.mshrs.get_mut(idx);
            m.acks_pending -= 1;
            debug_assert!(
                !m.data_done || m.acks_pending >= 0,
                "more AckInv than the reply promised for {line:?}"
            );
        }
        if self.mshrs.get(idx).complete() {
            self.finish_mshr(idx, now);
        }
    }

    fn finish_mshr(&mut self, idx: usize, now: Cycle) {
        let m = self.mshrs.free(idx);
        let node = self.node;
        let line = m.line;
        let span = m.span;
        self.tracer.emit(Category::Cache, now, || Event::MshrFree {
            node,
            line,
            span,
        });
        if !m.is_protocol {
            self.stats
                .miss_latency
                .record(now.saturating_sub(m.alloc_at));
            self.profiler.close(self.node, line, now);
        }
        match m.deferred {
            None => {}
            Some(Deferred::Inval { requester, span }) => {
                self.invalidate_copies(m.line);
                self.events.push_back(MemEvent::DeferredInvalAck {
                    line: m.line,
                    requester,
                    span,
                });
            }
            Some(Deferred::IntervShared { requester, span }) => {
                let dirty = self.downgrade_line(m.line);
                self.events.push_back(MemEvent::DeferredIntervShared {
                    line: m.line,
                    requester,
                    dirty,
                    span,
                });
            }
            Some(Deferred::IntervExcl { requester, span }) => {
                let dirty = self.invalidate_copies(m.line);
                self.events.push_back(MemEvent::DeferredIntervExcl {
                    line: m.line,
                    requester,
                    dirty,
                    span,
                });
            }
        }
    }

    /// Destroy all cached copies of a line; returns whether any was dirty.
    fn invalidate_copies(&mut self, line: LineAddr) -> bool {
        let mut dirty = self.back_inval_l1(line);
        if let Some(st) = self.l2.invalidate(line.into()) {
            dirty |= st.is_dirty();
        }
        dirty
    }

    /// Downgrade a line (and its L1 copies) to Shared; returns whether data
    /// was dirty.
    fn downgrade_line(&mut self, line: LineAddr) -> bool {
        let mut dirty = self.downgrade_l1(line);
        if let Some(st) = self.l2.probe(line.into()) {
            dirty |= st.is_dirty();
            self.l2.set_state(line.into(), LineState::Shared);
        }
        dirty
    }

    /// Handle an incoming invalidation for a (supposedly) Shared copy.
    /// `span` is the invalidating (remote) transaction's causal span.
    pub fn inval(&mut self, line: LineAddr, requester: NodeId, span: SpanId) -> InvalResult {
        if let Some(sp) = &mut self.spatial {
            sp.touch(line).invals_rx += 1;
        }
        if let Some(idx) = self.mshrs.find(line) {
            let m = self.mshrs.get_mut(idx);
            if m.kind == MissKind::Read && !m.data_done {
                debug_assert!(
                    m.deferred.is_none(),
                    "two coherence ops deferred on {line:?}"
                );
                m.deferred = Some(Deferred::Inval { requester, span });
                return InvalResult::Deferred;
            }
            // Pending write/upgrade: the home processed the conflicting
            // request first; our Shared copy (if any) dies now and the home
            // will answer our request with data.
        }
        self.invalidate_copies(line);
        InvalResult::AckNow
    }

    /// Handle an incoming shared intervention (home believes we own `line`).
    /// `span` is the intervening transaction's causal span.
    pub fn interv_shared(
        &mut self,
        line: LineAddr,
        requester: NodeId,
        span: SpanId,
    ) -> IntervResult {
        if let Some(sp) = &mut self.spatial {
            sp.touch(line).interventions_rx += 1;
        }
        if let Some(idx) = self.mshrs.find(line) {
            let m = self.mshrs.get_mut(idx);
            debug_assert!(m.deferred.is_none());
            m.deferred = Some(Deferred::IntervShared { requester, span });
            return IntervResult::Deferred;
        }
        if self.l2.probe(line.into()).is_some() {
            let dirty = self.downgrade_line(line);
            return IntervResult::FromCache { dirty };
        }
        if let Some(dirty) = self.wb.dirty(line) {
            return IntervResult::FromWb { dirty };
        }
        panic!(
            "shared intervention for absent line {line:?} at {:?}",
            self.node
        );
    }

    /// Handle an incoming exclusive intervention. `span` is the intervening
    /// transaction's causal span.
    pub fn interv_excl(&mut self, line: LineAddr, requester: NodeId, span: SpanId) -> IntervResult {
        if let Some(sp) = &mut self.spatial {
            sp.touch(line).interventions_rx += 1;
        }
        if let Some(idx) = self.mshrs.find(line) {
            let m = self.mshrs.get_mut(idx);
            debug_assert!(m.deferred.is_none());
            m.deferred = Some(Deferred::IntervExcl { requester, span });
            return IntervResult::Deferred;
        }
        if self.l2.probe(line.into()).is_some() {
            let dirty = self.invalidate_copies(line);
            return IntervResult::FromCache { dirty };
        }
        if let Some(dirty) = self.wb.dirty(line) {
            return IntervResult::FromWb { dirty };
        }
        panic!(
            "exclusive intervention for absent line {line:?} at {:?}",
            self.node
        );
    }

    /// Home acknowledged our `Put`; release the writeback buffer entry.
    pub fn wb_acked(&mut self, line: LineAddr) {
        self.wb.remove(line);
    }

    /// Causal span of the in-flight miss tracking `line` (`None` when no
    /// MSHR tracks it). Lets the node stamp reply-network traffic for a
    /// transaction it did not originate the message for.
    pub fn miss_span(&self, line: LineAddr) -> Option<SpanId> {
        self.mshrs.find(line).map(|i| self.mshrs.get(i).span)
    }

    /// Causal span of the transaction whose fill evicted `line` into the
    /// writeback buffer.
    pub fn wb_span(&self, line: LineAddr) -> Option<SpanId> {
        self.wb.span(line)
    }

    /// Number of MSHRs in use (resource statistic).
    pub fn mshrs_used(&self) -> usize {
        self.mshrs.used()
    }

    /// Whether the MSHR class for an application load could allocate.
    pub fn can_alloc_app_load(&self) -> bool {
        self.mshrs.can_alloc(MshrClass::AppLoad)
    }

    /// Writeback-buffer peak occupancy (statistic).
    pub fn wb_peak(&self) -> usize {
        self.wb.peak()
    }

    /// Human-readable state of one line across the hierarchy (deadlock
    /// diagnostics).
    /// Non-mutating probe of this node's L2-level copy of `line` (L2 or
    /// bypass buffer) — the coherence sanitizer's view of what the node
    /// holds. `None` means no cached copy.
    pub fn line_state(&self, line: LineAddr) -> Option<LineState> {
        self.l2
            .probe(line.into())
            .or_else(|| self.byp_l2.probe(line.into()))
    }

    pub fn debug_line(&self, line: LineAddr) -> String {
        let l2 = self.l2.probe(line.into());
        let byp = self.byp_l2.probe(line.into());
        let wb = self.wb.dirty(line);
        let mshr = self.mshrs.find(line).map(|i| {
            let m = self.mshrs.get(i);
            format!(
                "kind={:?} prot={} data={} acks={} deferred={:?} waiting={}",
                m.kind,
                m.is_protocol,
                m.data_done,
                m.acks_pending,
                m.deferred,
                m.waiting.len()
            )
        });
        format!("l2={l2:?} byp={byp:?} wb={wb:?} mshr={mshr:?}")
    }

    /// Total bypass-buffer allocations (statistic).
    pub fn bypass_allocations(&self) -> u64 {
        self.byp_i.allocations() + self.byp_d.allocations() + self.byp_l2.allocations()
    }
}

impl MshrFile {
    /// Snapshot of all tracked lines (used to pin them during eviction).
    fn clone_lines(&self) -> Vec<LineAddr> {
        self.iter().map(|m| m.line).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtp_types::PipelineParams;

    fn hier(smtp: bool) -> MemHierarchy {
        MemHierarchy::new(NodeId(0), &PipelineParams::default(), smtp)
    }

    fn addr(off: u64) -> Addr {
        Addr::new(NodeId(0), Region::AppData, off)
    }

    fn remote(off: u64) -> Addr {
        Addr::new(NodeId(1), Region::AppData, off)
    }

    #[test]
    fn load_miss_then_fill_then_hit() {
        let mut h = hier(false);
        assert_eq!(h.load(1, addr(0x1000), 0, false), AccessOutcome::Pending);
        assert!(matches!(
            h.pop_event(),
            Some(MemEvent::AppMiss {
                line,
                kind: MissKind::Read,
                span,
            }) if line == addr(0x1000).line() && span.is_some()
        ));
        h.fill(addr(0x1000).line(), Grant::Shared, 100);
        assert_eq!(h.pop_event(), Some(MemEvent::LoadDone { tag: 1, at: 102 }));
        // Now both L1 and L2 hold it.
        assert_eq!(
            h.load(2, addr(0x1000), 200, false),
            AccessOutcome::Ready(201)
        );
        // A different word of the same L2 line but different L1 line: L2 hit.
        assert_eq!(
            h.load(3, addr(0x1040), 300, false),
            AccessOutcome::Ready(309)
        );
    }

    #[test]
    fn secondary_miss_merges_into_mshr() {
        let mut h = hier(false);
        assert_eq!(h.load(1, addr(0x2000), 0, false), AccessOutcome::Pending);
        assert_eq!(h.load(2, addr(0x2008), 0, false), AccessOutcome::Pending);
        // Only one request event.
        assert!(matches!(h.pop_event(), Some(MemEvent::AppMiss { .. })));
        assert_eq!(h.pop_event(), None);
        h.fill(addr(0x2000).line(), Grant::Shared, 50);
        let mut tags = Vec::new();
        while let Some(MemEvent::LoadDone { tag, .. }) = h.pop_event() {
            tags.push(tag);
        }
        assert_eq!(tags, vec![1, 2]);
    }

    #[test]
    fn store_miss_requests_exclusive() {
        let mut h = hier(false);
        assert_eq!(
            h.store_retire(0, addr(0x3000), 0, false),
            AccessOutcome::Pending
        );
        assert!(matches!(
            h.pop_event(),
            Some(MemEvent::AppMiss {
                line,
                kind: MissKind::Write,
                ..
            }) if line == addr(0x3000).line()
        ));
        h.fill(addr(0x3000).line(), Grant::Excl { acks: 0 }, 10);
        // Store retries and performs.
        assert!(matches!(
            h.store_retire(0, addr(0x3000), 20, false),
            AccessOutcome::Ready(_)
        ));
    }

    #[test]
    fn store_to_shared_line_upgrades() {
        let mut h = hier(false);
        h.load(1, addr(0x4000), 0, false);
        h.pop_event();
        h.fill(addr(0x4000).line(), Grant::Shared, 10);
        h.pop_event();
        assert_eq!(
            h.store_retire(0, addr(0x4000), 20, false),
            AccessOutcome::Pending
        );
        assert!(matches!(
            h.pop_event(),
            Some(MemEvent::AppMiss {
                line,
                kind: MissKind::Upgrade,
                ..
            }) if line == addr(0x4000).line()
        ));
        h.fill(addr(0x4000).line(), Grant::UpgradeAck { acks: 0 }, 30);
        assert!(matches!(
            h.store_retire(0, addr(0x4000), 40, false),
            AccessOutcome::Ready(_)
        ));
    }

    #[test]
    fn eager_exclusive_usable_before_acks() {
        let mut h = hier(false);
        h.store_retire(0, remote(0x100), 0, false);
        h.pop_event();
        h.fill(remote(0x100).line(), Grant::Excl { acks: 2 }, 10);
        // Line usable immediately (eager-exclusive).
        assert!(matches!(
            h.store_retire(0, remote(0x100), 20, false),
            AccessOutcome::Ready(_)
        ));
        // MSHR still occupied until acks arrive.
        assert_eq!(h.mshrs_used(), 1);
        h.ack_arrived(remote(0x100).line(), 20);
        assert_eq!(h.mshrs_used(), 1);
        h.ack_arrived(remote(0x100).line(), 20);
        assert_eq!(h.mshrs_used(), 0);
    }

    #[test]
    fn inval_of_absent_line_acks_immediately() {
        let mut h = hier(false);
        assert_eq!(
            h.inval(remote(0x500).line(), NodeId(2), SpanId::NONE),
            InvalResult::AckNow
        );
    }

    #[test]
    fn inval_during_pending_read_is_deferred() {
        let mut h = hier(false);
        h.load(9, remote(0x600), 0, false);
        h.pop_event();
        let inv_span = SpanId::new(NodeId(3), 77);
        assert_eq!(
            h.inval(remote(0x600).line(), NodeId(3), inv_span),
            InvalResult::Deferred
        );
        h.fill(remote(0x600).line(), Grant::Shared, 10);
        // The load wakes, then the deferred inval fires with the remote
        // requester's span.
        assert!(matches!(
            h.pop_event(),
            Some(MemEvent::LoadDone { tag: 9, .. })
        ));
        assert!(matches!(
            h.pop_event(),
            Some(MemEvent::DeferredInvalAck {
                line,
                requester: NodeId(3),
                span,
            }) if line == remote(0x600).line() && span == inv_span
        ));
        // The copy is gone.
        assert_eq!(h.load(10, remote(0x600), 20, false), AccessOutcome::Pending);
    }

    #[test]
    fn intervention_served_from_cache() {
        let mut h = hier(false);
        h.store_retire(0, remote(0x700), 0, false);
        h.pop_event();
        h.fill(remote(0x700).line(), Grant::Excl { acks: 0 }, 10);
        h.store_retire(0, remote(0x700), 20, false); // dirty it
        let r = h.interv_shared(remote(0x700).line(), NodeId(2), SpanId::NONE);
        assert_eq!(r, IntervResult::FromCache { dirty: true });
        // Downgraded: a subsequent store must upgrade.
        assert_eq!(
            h.store_retire(0, remote(0x700), 30, false),
            AccessOutcome::Pending
        );
    }

    #[test]
    fn intervention_during_pending_miss_is_deferred() {
        let mut h = hier(false);
        h.store_retire(0, remote(0x800), 0, false);
        h.pop_event();
        h.fill(remote(0x800).line(), Grant::Excl { acks: 1 }, 10);
        // Acks outstanding: intervention must wait for transaction end.
        let r = h.interv_excl(remote(0x800).line(), NodeId(2), SpanId::NONE);
        assert_eq!(r, IntervResult::Deferred);
        h.ack_arrived(remote(0x800).line(), 30);
        let ev = loop {
            match h.pop_event() {
                Some(MemEvent::StoreDone { performed, .. }) => assert!(performed),
                other => break other,
            }
        };
        assert!(matches!(
            ev,
            Some(MemEvent::DeferredIntervExcl {
                requester: NodeId(2),
                ..
            })
        ));
        // Copy invalidated by the deferred intervention.
        assert_eq!(h.load(1, remote(0x800), 50, false), AccessOutcome::Pending);
    }

    #[test]
    #[should_panic(expected = "absent line")]
    fn intervention_for_absent_line_panics() {
        let mut h = hier(false);
        h.interv_shared(remote(0x900).line(), NodeId(2), SpanId::NONE);
    }

    #[test]
    fn writeback_buffer_blocks_reaccess_until_ack() {
        let mut h = hier(false);
        // Fill many Exclusive lines mapping to one L2 set to force eviction.
        // L2: 2048 sets * 128B = stride 256 KiB for same set.
        let stride = 2048 * 128;
        for i in 0..9u64 {
            let a = addr(0x100 + i * stride);
            h.store_retire(0, a, 0, false);
            h.pop_event();
            h.fill(a.line(), Grant::Excl { acks: 0 }, 10);
        }
        // One eviction must have happened (skip StoreDone wake-ups).
        let line = loop {
            match h.pop_event() {
                Some(MemEvent::Writeback { line, dirty, .. }) => {
                    // Write-kind fills install Modified: dirty victim.
                    assert!(dirty);
                    break line;
                }
                Some(MemEvent::StoreDone { performed, .. }) => assert!(performed),
                Some(MemEvent::AppMiss { .. }) => {}
                other => panic!("expected writeback, got {other:?}"),
            }
        };
        // Re-access while in WB buffer: blocked.
        assert_eq!(h.load(1, line.into(), 50, false), AccessOutcome::Blocked);
        h.wb_acked(line);
        assert_eq!(h.load(1, line.into(), 60, false), AccessOutcome::Pending);
    }

    #[test]
    fn protocol_miss_bypasses_local_miss_interface() {
        let mut h = hier(true);
        let dir = addr(0x1000).line().directory_entry();
        assert_eq!(h.load(1, dir, 0, true), AccessOutcome::Pending);
        assert!(matches!(
            h.pop_event(),
            Some(MemEvent::ProtocolFetch { line, span })
                if line == dir.line() && span.is_some()
        ));
    }

    #[test]
    fn protocol_conflict_allocates_bypass_line() {
        let mut h = hier(true);
        // App miss in flight.
        let app = addr(0x8000);
        h.load(1, app, 0, false);
        h.pop_event();
        // Protocol line mapping to the same L2 set: L2 2048 sets × 128B.
        let dir_off = app.line().raw() % (2048 * 128);
        let dir = Addr::new(NodeId(0), Region::Directory, dir_off);
        assert_eq!(h.load(2, dir, 0, true), AccessOutcome::Pending);
        h.pop_event();
        let before = h.bypass_allocations();
        h.fill(dir.line(), Grant::Excl { acks: 0 }, 10);
        assert!(h.bypass_allocations() > before, "bypass buffer not used");
        // Still hits afterwards (cache and bypass searched in parallel).
        assert!(matches!(h.load(3, dir, 50, true), AccessOutcome::Ready(_)));
    }

    #[test]
    fn ifetch_miss_and_fill() {
        let mut h = hier(false);
        let pc = addr(0x10_0000);
        assert_eq!(h.ifetch(Ctx(0), pc, 0, false), AccessOutcome::Pending);
        assert!(matches!(
            h.pop_event(),
            Some(MemEvent::CodeFetch { line, .. }) if line == pc.line()
        ));
        h.fill(pc.line(), Grant::Shared, 30);
        assert!(matches!(
            h.pop_event(),
            Some(MemEvent::IFetchDone {
                ctx: Ctx(0),
                at: 32
            })
        ));
        assert!(matches!(
            h.ifetch(Ctx(0), pc, 40, false),
            AccessOutcome::Ready(41)
        ));
    }

    #[test]
    fn mshr_exhaustion_blocks() {
        let mut h = hier(false);
        for i in 0..16u64 {
            assert_eq!(
                h.load(i as u32, addr(0x100_000 + i * 128), 0, false),
                AccessOutcome::Pending
            );
        }
        assert_eq!(
            h.load(99, addr(0x200_000), 0, false),
            AccessOutcome::Blocked
        );
        // The retiring-store entry is still available to stores.
        assert_eq!(
            h.store_retire(0, addr(0x201_000), 0, false),
            AccessOutcome::Pending
        );
    }
}
