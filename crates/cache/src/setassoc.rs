//! Generic set-associative cache with true-LRU replacement.

use smtp_types::{Addr, CacheParams};

/// Coherence/validity state of a cached line.
///
/// The unified L2 uses all three states (MESI minus a separate E/M
/// distinction on fill: eager-exclusive replies install `Exclusive` and the
/// first store promotes to `Modified`). The write-back L1s use `Shared`
/// for clean and `Modified` for dirty lines.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LineState {
    /// Readable copy; other caches may also hold it.
    Shared,
    /// Sole copy, clean with respect to memory.
    Exclusive,
    /// Sole copy, dirty.
    Modified,
}

impl LineState {
    /// Whether the line may be written without a coherence upgrade.
    #[inline]
    pub fn is_writable(self) -> bool {
        !matches!(self, LineState::Shared)
    }

    /// Whether an eviction must write data back.
    #[inline]
    pub fn is_dirty(self) -> bool {
        matches!(self, LineState::Modified)
    }
}

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u64,
    state: LineState,
    lru: u64,
    valid: bool,
}

const INVALID_WAY: Way = Way {
    tag: 0,
    state: LineState::Shared,
    lru: 0,
    valid: false,
};

/// A set-associative, true-LRU, write-back cache directory (tags + state
/// only; the simulator never stores data).
#[derive(Clone, Debug)]
pub struct Cache {
    ways: u32,
    sets: u64,
    line: u64,
    data: Vec<Way>,
    clock: u64,
}

impl Cache {
    /// Build a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics unless line size and set count are powers of two.
    pub fn new(p: &CacheParams) -> Cache {
        let sets = p.sets();
        assert!(p.line.is_power_of_two(), "line size must be a power of two");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            ways: p.ways,
            sets,
            line: p.line,
            data: vec![INVALID_WAY; (sets * p.ways as u64) as usize],
            clock: 0,
        }
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line
    }

    /// The set index an address maps to.
    #[inline]
    pub fn set_index(&self, addr: Addr) -> u64 {
        (addr.raw() / self.line) & (self.sets - 1)
    }

    #[inline]
    fn tag_of(&self, addr: Addr) -> u64 {
        addr.raw() / self.line
    }

    #[inline]
    fn set_range(&self, addr: Addr) -> std::ops::Range<usize> {
        let s = self.set_index(addr) as usize * self.ways as usize;
        s..s + self.ways as usize
    }

    /// Address of the first byte of the line holding `addr`.
    #[inline]
    pub fn line_base(&self, addr: Addr) -> Addr {
        Addr(addr.raw() & !(self.line - 1))
    }

    /// Look up `addr` without touching LRU state.
    pub fn probe(&self, addr: Addr) -> Option<LineState> {
        let tag = self.tag_of(addr);
        self.data[self.set_range(addr)]
            .iter()
            .find(|w| w.valid && w.tag == tag)
            .map(|w| w.state)
    }

    /// Look up `addr`, updating LRU on a hit.
    pub fn lookup(&mut self, addr: Addr) -> Option<LineState> {
        self.clock += 1;
        let clock = self.clock;
        let tag = self.tag_of(addr);
        let range = self.set_range(addr);
        self.data[range]
            .iter_mut()
            .find(|w| w.valid && w.tag == tag)
            .map(|w| {
                w.lru = clock;
                w.state
            })
    }

    /// Change the state of a resident line; returns `false` if not present.
    pub fn set_state(&mut self, addr: Addr, state: LineState) -> bool {
        let tag = self.tag_of(addr);
        let range = self.set_range(addr);
        if let Some(w) = self.data[range]
            .iter_mut()
            .find(|w| w.valid && w.tag == tag)
        {
            w.state = state;
            true
        } else {
            false
        }
    }

    /// Insert a line, evicting the LRU victim of the set if necessary.
    /// Returns the evicted `(line_base_addr, state)` if a valid line was
    /// displaced.
    pub fn insert(&mut self, addr: Addr, state: LineState) -> Option<(Addr, LineState)> {
        self.clock += 1;
        let clock = self.clock;
        let tag = self.tag_of(addr);
        let line = self.line;
        let range = self.set_range(addr);
        let set = &mut self.data[range];
        // Re-insert over an existing copy.
        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.state = state;
            w.lru = clock;
            return None;
        }
        // Prefer an invalid way.
        if let Some(w) = set.iter_mut().find(|w| !w.valid) {
            *w = Way {
                tag,
                state,
                lru: clock,
                valid: true,
            };
            return None;
        }
        // Evict true-LRU.
        let victim = set
            .iter_mut()
            .min_by_key(|w| w.lru)
            .expect("associativity >= 1");
        let evicted = (Addr(victim.tag * line), victim.state);
        *victim = Way {
            tag,
            state,
            lru: clock,
            valid: true,
        };
        Some(evicted)
    }

    /// Insert a line, choosing the LRU victim among lines for which
    /// `evictable` returns `true`. Used by the L2: lines with an active
    /// MSHR (e.g. a pending Upgrade) must not be displaced, since their
    /// in-flight transaction assumes the data stays resident.
    ///
    /// # Panics
    ///
    /// Panics if every way of the set is pinned — structurally impossible
    /// with 8-way sets and per-line transactions, and always a bug.
    pub fn insert_avoiding(
        &mut self,
        addr: Addr,
        state: LineState,
        mut evictable: impl FnMut(Addr) -> bool,
    ) -> Option<(Addr, LineState)> {
        self.clock += 1;
        let clock = self.clock;
        let tag = self.tag_of(addr);
        let line = self.line;
        let range = self.set_range(addr);
        let set = &mut self.data[range];
        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.state = state;
            w.lru = clock;
            return None;
        }
        if let Some(w) = set.iter_mut().find(|w| !w.valid) {
            *w = Way {
                tag,
                state,
                lru: clock,
                valid: true,
            };
            return None;
        }
        let victim = set
            .iter_mut()
            .filter(|w| evictable(Addr(w.tag * line)))
            .min_by_key(|w| w.lru)
            .expect("every way of the set is pinned by an in-flight miss");
        let evicted = (Addr(victim.tag * line), victim.state);
        *victim = Way {
            tag,
            state,
            lru: clock,
            valid: true,
        };
        Some(evicted)
    }

    /// Invalidate a line; returns its prior state if it was present.
    pub fn invalidate(&mut self, addr: Addr) -> Option<LineState> {
        let tag = self.tag_of(addr);
        let range = self.set_range(addr);
        self.data[range]
            .iter_mut()
            .find(|w| w.valid && w.tag == tag)
            .map(|w| {
                w.valid = false;
                w.state
            })
    }

    /// Number of valid lines currently resident (test/debug helper).
    pub fn occupancy(&self) -> usize {
        self.data.iter().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtp_types::{CacheParams, SplitMix64};

    fn tiny() -> Cache {
        // 2 sets, 2 ways, 32-byte lines.
        Cache::new(&CacheParams {
            capacity: 128,
            line: 32,
            ways: 2,
            hit_cycles: 1,
        })
    }

    fn a(x: u64) -> Addr {
        Addr(x)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.lookup(a(0x100)), None);
        assert_eq!(c.insert(a(0x100), LineState::Shared), None);
        assert_eq!(c.lookup(a(0x100)), Some(LineState::Shared));
        assert_eq!(c.lookup(a(0x11f)), Some(LineState::Shared)); // same line
        assert_eq!(c.lookup(a(0x120)), None); // next line
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to set 0 (line 32B, 2 sets => set = bit 5).
        let (x, y, z) = (a(0x000), a(0x080), a(0x100));
        c.insert(x, LineState::Shared);
        c.insert(y, LineState::Shared);
        c.lookup(x); // make y the LRU
        let evicted = c.insert(z, LineState::Modified).expect("must evict");
        assert_eq!(evicted.0, a(0x080));
        assert_eq!(c.probe(x), Some(LineState::Shared));
        assert_eq!(c.probe(z), Some(LineState::Modified));
        assert_eq!(c.probe(y), None);
    }

    #[test]
    fn dirty_eviction_reports_state() {
        let mut c = tiny();
        c.insert(a(0x000), LineState::Modified);
        c.insert(a(0x080), LineState::Shared);
        let (victim, st) = c.insert(a(0x100), LineState::Shared).unwrap();
        assert_eq!(victim, a(0x000));
        assert!(st.is_dirty());
    }

    #[test]
    fn reinsert_updates_state_without_eviction() {
        let mut c = tiny();
        c.insert(a(0x40), LineState::Shared);
        assert_eq!(c.insert(a(0x40), LineState::Modified), None);
        assert_eq!(c.probe(a(0x40)), Some(LineState::Modified));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.insert(a(0x40), LineState::Exclusive);
        assert_eq!(c.invalidate(a(0x40)), Some(LineState::Exclusive));
        assert_eq!(c.invalidate(a(0x40)), None);
        assert_eq!(c.probe(a(0x40)), None);
    }

    #[test]
    fn set_state_on_resident_line() {
        let mut c = tiny();
        c.insert(a(0x40), LineState::Shared);
        assert!(c.set_state(a(0x40), LineState::Modified));
        assert!(!c.set_state(a(0xABC0), LineState::Shared));
        assert_eq!(c.probe(a(0x40)), Some(LineState::Modified));
    }

    #[test]
    fn line_base_masks_offset() {
        let c = tiny();
        assert_eq!(c.line_base(a(0x47)), a(0x40));
        assert_eq!(c.line_base(a(0x40)), a(0x40));
    }

    #[test]
    fn writability_rules() {
        assert!(!LineState::Shared.is_writable());
        assert!(LineState::Exclusive.is_writable());
        assert!(LineState::Modified.is_writable());
        assert!(!LineState::Exclusive.is_dirty());
    }

    /// Occupancy never exceeds capacity and a just-inserted line is
    /// always resident (deterministic random sweep).
    #[test]
    fn occupancy_bounded() {
        let mut rng = SplitMix64::new(0x5E7A);
        for _case in 0..64 {
            let mut c = tiny();
            let n = rng.range(1, 200);
            for _ in 0..n {
                let addr = a(rng.below(0x2000) & !31);
                c.insert(addr, LineState::Shared);
                assert!(c.probe(addr).is_some());
                assert!(c.occupancy() <= 4);
            }
        }
    }

    /// A hit line survives until evicted by set pressure: with a working
    /// set no larger than one set's associativity, nothing is ever
    /// evicted (deterministic random sweep).
    #[test]
    fn no_eviction_within_associativity() {
        let mut rng = SplitMix64::new(0xA550C);
        for _case in 0..64 {
            let mut c = tiny();
            let n = rng.range(1, 50);
            for _ in 0..n {
                // Two distinct lines both in set 0.
                let addr = a(rng.below(2) * 0x80);
                let evicted = c.insert(addr, LineState::Shared);
                assert!(evicted.is_none());
            }
        }
    }
}
