//! Fully-associative protocol bypass buffers (paper §2.2).
//!
//! When a protocol-thread miss maps to a cache set with an in-flight
//! application miss, delaying the protocol access could deadlock (the
//! application miss may be waiting on the very handler performing the
//! protocol access). Instead the line is placed in a small fully
//! associative bypass buffer searched in parallel with the cache. The
//! buffer is sized to the MSHR count — the pathological worst case.

use crate::setassoc::{Cache, LineState};
use smtp_types::{Addr, CacheParams};

/// A fully-associative, LRU, line-granularity bypass buffer.
#[derive(Clone, Debug)]
pub struct BypassBuffer {
    inner: Cache,
    allocations: u64,
}

impl BypassBuffer {
    /// A buffer of `lines` lines of `line_size` bytes.
    pub fn new(lines: usize, line_size: u64) -> BypassBuffer {
        BypassBuffer {
            inner: Cache::new(&CacheParams {
                capacity: lines as u64 * line_size,
                line: line_size,
                ways: lines as u32,
                hit_cycles: 1,
            }),
            allocations: 0,
        }
    }

    /// Look up a line, updating LRU.
    pub fn lookup(&mut self, addr: Addr) -> Option<LineState> {
        self.inner.lookup(addr)
    }

    /// Look up without LRU update.
    pub fn probe(&self, addr: Addr) -> Option<LineState> {
        self.inner.probe(addr)
    }

    /// Change the state of a resident line.
    pub fn set_state(&mut self, addr: Addr, st: LineState) -> bool {
        self.inner.set_state(addr, st)
    }

    /// Insert a line, returning the evicted victim if any.
    ///
    /// Bypass lines hold directory/protocol data, which is node-local, so a
    /// dirty victim simply needs a local SDRAM writeback.
    pub fn insert(&mut self, addr: Addr, st: LineState) -> Option<(Addr, LineState)> {
        self.allocations += 1;
        self.inner.insert(addr, st)
    }

    /// Invalidate a line.
    pub fn invalidate(&mut self, addr: Addr) -> Option<LineState> {
        self.inner.invalidate(addr)
    }

    /// Lines currently held.
    pub fn occupancy(&self) -> usize {
        self.inner.occupancy()
    }

    /// Total allocations performed (statistic).
    pub fn allocations(&self) -> u64 {
        self.allocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_conflicting_lines_without_indexing() {
        let mut b = BypassBuffer::new(4, 128);
        // Lines that would all map to the same set of a real cache.
        for i in 0..4u64 {
            assert!(b.insert(Addr(i * 0x10000), LineState::Modified).is_none());
        }
        assert_eq!(b.occupancy(), 4);
        for i in 0..4u64 {
            assert_eq!(b.probe(Addr(i * 0x10000)), Some(LineState::Modified));
        }
    }

    #[test]
    fn lru_eviction_when_full() {
        let mut b = BypassBuffer::new(2, 128);
        b.insert(Addr(0x0), LineState::Shared);
        b.insert(Addr(0x1000), LineState::Shared);
        b.lookup(Addr(0x0));
        let v = b.insert(Addr(0x2000), LineState::Shared).unwrap();
        assert_eq!(v.0, Addr(0x1000));
        assert_eq!(b.allocations(), 3);
    }

    #[test]
    fn invalidate_and_set_state() {
        let mut b = BypassBuffer::new(2, 128);
        b.insert(Addr(0x80), LineState::Shared);
        assert!(b.set_state(Addr(0x80), LineState::Modified));
        assert_eq!(b.invalidate(Addr(0x80)), Some(LineState::Modified));
        assert_eq!(b.occupancy(), 0);
    }
}
