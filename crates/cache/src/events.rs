//! Events and outcomes exchanged between the cache hierarchy, the pipeline
//! and the node's coherence logic.

use smtp_types::{Ctx, Cycle, LineAddr, NodeId, SpanId};

/// How an L2 miss should be presented to the home node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MissKind {
    /// Read miss → `GetS`.
    Read,
    /// Write miss without a cached copy → `GetX`.
    Write,
    /// Write upgrade of a Shared copy → `Upgrade`.
    Upgrade,
}

/// Outcome of a CPU-side cache access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessOutcome {
    /// Hit: the result is available at the given cycle.
    Ready(Cycle),
    /// Miss: an MSHR tracks the access; completion will be signalled via a
    /// [`MemEvent::LoadDone`] / [`MemEvent::IFetchDone`] (loads/fetches) or
    /// by retrying (stores).
    Pending,
    /// Structurally blocked (MSHR file full for this requester class, or
    /// the line sits in the writeback buffer awaiting its ack). Retry.
    Blocked,
}

/// What the home granted on a fill.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Grant {
    /// Shared data.
    Shared,
    /// Exclusive data (eager-exclusive: usable immediately, `acks`
    /// invalidation acknowledgements still outstanding).
    Excl {
        /// Outstanding invalidation acks.
        acks: u16,
    },
    /// Ownership without data in response to an `Upgrade`.
    UpgradeAck {
        /// Outstanding invalidation acks.
        acks: u16,
    },
}

/// Response of the hierarchy to an incoming intervention.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IntervResult {
    /// Served from the cache; `dirty` says whether the data was modified.
    FromCache {
        /// Line was dirty with respect to memory.
        dirty: bool,
    },
    /// Served from the writeback buffer (the line raced with an eviction).
    FromWb {
        /// Line was dirty with respect to memory.
        dirty: bool,
    },
    /// The line has an incomplete MSHR; the intervention was attached to it
    /// and a `Deferred…` [`MemEvent`] will fire when the miss completes.
    Deferred,
}

/// Response of the hierarchy to an incoming invalidation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InvalResult {
    /// Copy destroyed (or was already absent): acknowledge now.
    AckNow,
    /// Pending read miss: the invalidation is applied right after the fill;
    /// a [`MemEvent::DeferredInvalAck`] will fire.
    Deferred,
}

/// Events emitted by the hierarchy for the node (coherence requests,
/// SDRAM traffic) and the pipeline (completion wake-ups) to consume.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemEvent {
    /// Application L2 miss: the node must issue the request to the line's
    /// home (Local Miss Interface if home is this node, network otherwise).
    AppMiss {
        /// Missing line.
        line: LineAddr,
        /// Request flavour.
        kind: MissKind,
        /// Causal span allocated to the miss.
        span: SpanId,
    },
    /// Protocol-thread L2 miss: fetch directly from local SDRAM over the
    /// dedicated 64-bit protocol bus, bypassing the Local Miss Interface
    /// (paper §2.1).
    ProtocolFetch {
        /// Missing line (directory or protocol-code region).
        line: LineAddr,
        /// Causal span allocated to the fetch.
        span: SpanId,
    },
    /// Application instruction-code L2 miss: fetched from local SDRAM
    /// without coherence (code is read-only and replicated per node).
    CodeFetch {
        /// Missing line.
        line: LineAddr,
        /// Causal span allocated to the fetch.
        span: SpanId,
    },
    /// A dirty or exclusive line left the L2; for application lines the
    /// node sends `Put` to the home and the line sits in the writeback
    /// buffer until `WbAck`; directory lines are written to local SDRAM.
    Writeback {
        /// Evicted line.
        line: LineAddr,
        /// Whether data travels with the writeback.
        dirty: bool,
        /// Causal span of the transaction whose fill evicted the line.
        span: SpanId,
    },
    /// A load that missed earlier has its value at cycle `at`.
    LoadDone {
        /// Pipeline tag passed to `load`.
        tag: u32,
        /// Cycle the value is usable.
        at: Cycle,
    },
    /// A store that joined an in-flight miss resolved. With `performed`
    /// the line arrived writable and the store's data is in it (stores are
    /// performed *at fill*, before any deferred intervention can steal the
    /// line — the classic window-of-vulnerability guarantee). Without, the
    /// fill granted only read permission and the store must retry (it will
    /// issue an upgrade).
    StoreDone {
        /// Pipeline tag passed to `store_retire`.
        tag: u32,
        /// Cycle the store performed (or may retry).
        at: Cycle,
        /// Whether the store's effect is complete.
        performed: bool,
    },
    /// An instruction fetch that missed earlier completes at cycle `at`.
    IFetchDone {
        /// Fetching context.
        ctx: Ctx,
        /// Cycle the fetch bundle is usable.
        at: Cycle,
    },
    /// A deferred invalidation has been applied; ack `requester`.
    DeferredInvalAck {
        /// Line invalidated.
        line: LineAddr,
        /// Node collecting the acks.
        requester: NodeId,
        /// Span of the invalidating transaction.
        span: SpanId,
    },
    /// A deferred shared intervention completed: send data to `requester`
    /// and a sharing writeback to home.
    DeferredIntervShared {
        /// Line downgraded.
        line: LineAddr,
        /// GetS requester.
        requester: NodeId,
        /// Whether our copy was dirty.
        dirty: bool,
        /// Span of the intervening transaction.
        span: SpanId,
    },
    /// A deferred exclusive intervention completed: forward exclusive data
    /// to `requester` and a transfer ack to home.
    DeferredIntervExcl {
        /// Line transferred.
        line: LineAddr,
        /// GetX requester (new owner).
        requester: NodeId,
        /// Whether our copy was dirty.
        dirty: bool,
        /// Span of the intervening transaction.
        span: SpanId,
    },
}
