//! Miss status holding registers.
//!
//! Paper Table 2: 16 MSHRs plus one dedicated to retiring stores; the SMTp
//! model reserves one more for the protocol thread (deadlock avoidance,
//! paper §2.2). Reservation is implemented as the paper describes it: the
//! reserved instances are *usable only by* the privileged requester class,
//! i.e. application loads may fill at most `16` entries, application stores
//! `16 + 1`, and the protocol thread all of them.

use crate::events::MissKind;
use smtp_types::{Addr, Ctx, Cycle, LineAddr, NodeId, SpanId};

/// Who is waiting on an MSHR.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WaitTag {
    /// A load in the pipeline, identified by its pipeline tag; `addr` is
    /// the exact access address (used to install the right L1 line).
    Load {
        /// Pipeline tag to wake.
        tag: u32,
        /// Access address.
        addr: Addr,
    },
    /// An instruction fetch for a context.
    IFetch {
        /// Fetching context.
        ctx: Ctx,
        /// Fetch address.
        addr: Addr,
    },
    /// A store joined the miss; it is performed at fill time if the fill
    /// grants write permission.
    Store {
        /// Pipeline tag to notify.
        tag: u32,
        /// Store address.
        addr: Addr,
    },
}

/// A coherence action deferred until the in-flight miss completes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Deferred {
    /// Invalidate after fill; ack `requester`.
    Inval {
        /// Ack collector.
        requester: NodeId,
        /// Span of the invalidating transaction (the remote requester's).
        span: SpanId,
    },
    /// Downgrade after fill (shared intervention).
    IntervShared {
        /// GetS requester.
        requester: NodeId,
        /// Span of the intervening transaction.
        span: SpanId,
    },
    /// Invalidate-and-forward after fill (exclusive intervention).
    IntervExcl {
        /// GetX requester.
        requester: NodeId,
        /// Span of the intervening transaction.
        span: SpanId,
    },
}

/// Requester class, for reservation accounting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MshrClass {
    /// Application load / prefetch.
    AppLoad,
    /// Application retiring store.
    AppStore,
    /// Protocol thread access (SMTp only).
    Protocol,
}

/// One in-flight miss.
#[derive(Clone, Debug)]
pub struct Mshr {
    /// Missing line (coherence granularity).
    pub line: LineAddr,
    /// Request flavour sent to the home.
    pub kind: MissKind,
    /// Whether the protocol thread owns this miss.
    pub is_protocol: bool,
    /// Whether this miss was initiated by a software prefetch.
    pub is_prefetch: bool,
    /// Consumers to wake on fill.
    pub waiting: Vec<WaitTag>,
    /// Invalidation-ack balance: incremented by the expected count when
    /// the data/ownership reply arrives, decremented per `AckInv`. May go
    /// transiently negative — acks and the reply travel the reply network
    /// from different senders and can arrive in either order.
    pub acks_pending: i32,
    /// Data has arrived (line installed and usable).
    pub data_done: bool,
    /// Coherence action to run at completion.
    pub deferred: Option<Deferred>,
    /// Cycle this entry was allocated — the miss latency is measured from
    /// here to the free.
    pub alloc_at: Cycle,
    /// Causal span of this transaction; every message and event the miss
    /// generates carries it.
    pub span: SpanId,
}

impl Mshr {
    /// Whether the transaction has fully completed (data and all acks).
    /// Only meaningful once the reply has arrived: before that the balance
    /// may be zero or negative while acks race ahead of the reply.
    pub fn complete(&self) -> bool {
        self.data_done && self.acks_pending == 0
    }
}

/// The MSHR file with class-based reservations.
#[derive(Clone, Debug)]
pub struct MshrFile {
    entries: Vec<Option<Mshr>>,
    /// Entries the application *load* class may occupy.
    app_load_limit: usize,
    /// Entries the application store class may occupy.
    app_store_limit: usize,
}

impl MshrFile {
    /// Build a file of `base` app entries, one extra retiring-store entry,
    /// and one reserved protocol entry when `smtp` is set.
    pub fn new(base: usize, smtp: bool) -> MshrFile {
        let total = base + 1 + usize::from(smtp);
        MshrFile {
            entries: vec![None; total],
            app_load_limit: base,
            app_store_limit: base + 1,
        }
    }

    /// Total capacity (including reserved entries).
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of entries in use.
    pub fn used(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Find the entry index tracking `line`.
    pub fn find(&self, line: LineAddr) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.as_ref().is_some_and(|m| m.line == line))
    }

    /// Access an entry.
    pub fn get(&self, idx: usize) -> &Mshr {
        self.entries[idx].as_ref().expect("free MSHR slot accessed")
    }

    /// Access an entry mutably.
    pub fn get_mut(&mut self, idx: usize) -> &mut Mshr {
        self.entries[idx].as_mut().expect("free MSHR slot accessed")
    }

    /// Whether `class` may allocate a new entry right now.
    pub fn can_alloc(&self, class: MshrClass) -> bool {
        let used = self.used();
        match class {
            MshrClass::AppLoad => used < self.app_load_limit,
            MshrClass::AppStore => used < self.app_store_limit,
            MshrClass::Protocol => used < self.entries.len(),
        }
    }

    /// Allocate an entry for a miss; `Err(())` when the class's share is
    /// exhausted.
    #[allow(clippy::result_unit_err)]
    pub fn alloc(
        &mut self,
        line: LineAddr,
        kind: MissKind,
        class: MshrClass,
        is_prefetch: bool,
        now: Cycle,
        span: SpanId,
    ) -> Result<usize, ()> {
        debug_assert!(self.find(line).is_none(), "duplicate MSHR for {line:?}");
        if !self.can_alloc(class) {
            return Err(());
        }
        let slot = self
            .entries
            .iter()
            .position(|e| e.is_none())
            .expect("can_alloc checked");
        self.entries[slot] = Some(Mshr {
            line,
            kind,
            is_protocol: class == MshrClass::Protocol,
            is_prefetch,
            waiting: Vec::new(),
            acks_pending: 0,
            data_done: false,
            deferred: None,
            alloc_at: now,
            span,
        });
        Ok(slot)
    }

    /// Free an entry, returning its contents.
    pub fn free(&mut self, idx: usize) -> Mshr {
        self.entries[idx].take().expect("double free of MSHR")
    }

    /// Iterate over live entries.
    pub fn iter(&self) -> impl Iterator<Item = &Mshr> {
        self.entries.iter().filter_map(|e| e.as_ref())
    }

    /// Whether any in-flight *application* miss maps to the given set of a
    /// cache with `set_of` as its index function — the bypass-buffer
    /// allocation condition of paper §2.2.
    pub fn app_conflict(&self, set: u64, set_of: impl Fn(LineAddr) -> u64) -> bool {
        self.iter().any(|m| !m.is_protocol && set_of(m.line) == set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtp_types::{Addr, Region};

    fn line(n: u64) -> LineAddr {
        Addr::new(NodeId(0), Region::AppData, n * 128).line()
    }

    #[test]
    fn reservation_ladder() {
        let mut f = MshrFile::new(2, true); // 2 app + 1 store + 1 protocol
        assert_eq!(f.capacity(), 4);
        assert!(f
            .alloc(
                line(0),
                MissKind::Read,
                MshrClass::AppLoad,
                false,
                0,
                SpanId::NONE
            )
            .is_ok());
        assert!(f
            .alloc(
                line(1),
                MissKind::Read,
                MshrClass::AppLoad,
                false,
                0,
                SpanId::NONE
            )
            .is_ok());
        // App loads exhausted their share.
        assert!(f
            .alloc(
                line(2),
                MissKind::Read,
                MshrClass::AppLoad,
                false,
                0,
                SpanId::NONE
            )
            .is_err());
        // Stores can still take the retiring-store entry.
        assert!(f
            .alloc(
                line(2),
                MissKind::Write,
                MshrClass::AppStore,
                false,
                0,
                SpanId::NONE
            )
            .is_ok());
        assert!(f
            .alloc(
                line(3),
                MissKind::Write,
                MshrClass::AppStore,
                false,
                0,
                SpanId::NONE
            )
            .is_err());
        // Protocol can always take the reserved entry.
        assert!(f
            .alloc(
                line(3),
                MissKind::Read,
                MshrClass::Protocol,
                false,
                0,
                SpanId::NONE
            )
            .is_ok());
        assert_eq!(f.used(), 4);
    }

    #[test]
    fn non_smtp_has_no_protocol_reserve() {
        let f = MshrFile::new(16, false);
        assert_eq!(f.capacity(), 17);
    }

    #[test]
    fn find_and_free() {
        let mut f = MshrFile::new(4, false);
        let i = f
            .alloc(
                line(7),
                MissKind::Write,
                MshrClass::AppLoad,
                false,
                0,
                SpanId::NONE,
            )
            .unwrap();
        assert_eq!(f.find(line(7)), Some(i));
        assert_eq!(f.find(line(8)), None);
        f.get_mut(i).waiting.push(WaitTag::Load {
            tag: 42,
            addr: Addr::new(NodeId(0), Region::AppData, 7 * 128),
        });
        let m = f.free(i);
        assert_eq!(m.waiting.len(), 1);
        assert_eq!(f.find(line(7)), None);
        assert_eq!(f.used(), 0);
    }

    #[test]
    fn completion_requires_data_and_acks() {
        let mut f = MshrFile::new(4, false);
        let i = f
            .alloc(
                line(1),
                MissKind::Write,
                MshrClass::AppLoad,
                false,
                0,
                SpanId::NONE,
            )
            .unwrap();
        assert!(!f.get(i).complete());
        f.get_mut(i).data_done = true;
        f.get_mut(i).acks_pending = 2;
        assert!(!f.get(i).complete());
        f.get_mut(i).acks_pending = 0;
        assert!(f.get(i).complete());
    }

    #[test]
    fn conflict_detection_ignores_protocol_misses() {
        let mut f = MshrFile::new(4, true);
        f.alloc(
            line(5),
            MissKind::Read,
            MshrClass::Protocol,
            false,
            0,
            SpanId::NONE,
        )
        .unwrap();
        let set_of = |l: LineAddr| (l.raw() / 128) % 8;
        assert!(!f.app_conflict(5, set_of));
        f.alloc(
            line(13),
            MissKind::Read,
            MshrClass::AppLoad,
            false,
            0,
            SpanId::NONE,
        )
        .unwrap(); // 13 % 8 == 5
        assert!(f.app_conflict(5, set_of));
        assert!(!f.app_conflict(6, set_of));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut f = MshrFile::new(4, false);
        let i = f
            .alloc(
                line(0),
                MissKind::Read,
                MshrClass::AppLoad,
                false,
                0,
                SpanId::NONE,
            )
            .unwrap();
        f.free(i);
        f.free(i);
    }
}
