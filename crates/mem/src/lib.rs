//! Memory-controller building blocks: SDRAM timing, the directory data
//! cache, the embedded dual-issue protocol engine of the non-SMTp machine
//! models, and bounded message queues.
//!
//! Parameters follow paper Table 3 (80 ns SDRAM access, 3.2 GB/s bandwidth,
//! 16-entry queues) and Table 4 (directory data cache sizes per machine
//! model; protocol engine clock = memory-controller clock).
//!
//! The node assembly in `smtp-core` wires these together with the cache
//! hierarchy, the network interface and — depending on the machine model —
//! either the [`ProtocolEngine`] here or the SMT protocol thread in
//! `smtp-pipeline`.

pub mod dircache;
pub mod engine;
pub mod queue;
pub mod sdram;

pub use dircache::DirCache;
pub use engine::{EngineRun, ProtocolEngine};
pub use queue::{BoundedQueue, TimedQueue};
pub use sdram::Sdram;
