//! SDRAM channel timing model.
//!
//! 80 ns access latency and 3.2 GB/s bandwidth (paper Table 3). Each node's
//! SDRAM exposes two logical channels: the main channel used for
//! application data (cache-line fills, writebacks, directory entries read
//! by the protocol engine) and — under SMTp — a second channel modeling the
//! dedicated 64-bit protocol bus so protocol refills proceed in parallel
//! with application transfers (paper §2.1).

use smtp_trace::{Category, Event, Tracer};
use smtp_types::faults::SITE_ECC;
use smtp_types::{
    Cycle, Distribution, EccFaults, FaultConfig, FaultStream, NodeId, SpanId, L2_LINE,
};

/// One SDRAM channel: a bandwidth-limited pipe with fixed access latency.
/// `wait` is the distribution of bank-queue delays — cycles an access
/// spends waiting for the channel before its transfer begins.
#[derive(Clone, Debug, Default)]
struct Channel {
    next_free: Cycle,
    busy_cycles: u64,
    wait: Distribution,
}

/// Armed ECC fault-injection state (reads only: ECC detection happens on
/// the read path of a real controller).
#[derive(Clone, Debug)]
struct EccState {
    stream: FaultStream,
    cfg: EccFaults,
    corrected: u64,
    uncorrected: u64,
    first_uncorrectable: Option<(Cycle, bool)>,
}

/// The per-node SDRAM.
#[derive(Clone, Debug)]
pub struct Sdram {
    access: u64,
    per_line: u64,
    main: Channel,
    protocol: Channel,
    reads: u64,
    writes: u64,
    node: NodeId,
    tracer: Tracer,
    /// ECC fault injection; `None` (the default) costs one branch per read.
    ecc: Option<Box<EccState>>,
}

impl Sdram {
    /// Build from CPU-cycle-converted parameters: `access_cycles` is the
    /// 80 ns access time, `per_line_cycles` the line-transfer occupancy
    /// (line size / 3.2 GB/s).
    pub fn new(access_cycles: u64, per_line_cycles: u64) -> Sdram {
        Sdram {
            access: access_cycles,
            per_line: per_line_cycles.max(1),
            main: Channel::default(),
            protocol: Channel::default(),
            reads: 0,
            writes: 0,
            node: NodeId(0),
            tracer: Tracer::disabled(),
            ecc: None,
        }
    }

    /// Arm ECC fault injection for this node's memory. A no-op unless
    /// `faults` is enabled with a non-zero ECC rate.
    pub fn set_faults(&mut self, faults: &FaultConfig, node: NodeId) {
        if !faults.enabled || !faults.ecc.any() {
            return;
        }
        self.ecc = Some(Box::new(EccState {
            stream: faults.stream(SITE_ECC ^ u64::from(node.0)),
            cfg: faults.ecc,
            corrected: 0,
            uncorrected: 0,
            first_uncorrectable: None,
        }));
    }

    /// Roll the ECC dice for one read: a corrected single-bit error adds
    /// the correction penalty; an uncorrectable error is recorded for the
    /// watchdog and poisons the returned data (timing unchanged).
    #[cold]
    fn ecc_roll(&mut self, now: Cycle, ready: Cycle, protocol: bool) -> Cycle {
        let ecc = self.ecc.as_mut().expect("ecc armed");
        let node = self.node;
        if ecc.stream.fires(ecc.cfg.uncorrectable_per_million) {
            ecc.uncorrected += 1;
            if ecc.first_uncorrectable.is_none() {
                ecc.first_uncorrectable = Some((now, protocol));
            }
            self.tracer.emit(Category::Fault, now, || Event::EccFault {
                node,
                uncorrectable: true,
                protocol,
            });
            ready
        } else if ecc.stream.fires(ecc.cfg.correctable_per_million) {
            ecc.corrected += 1;
            self.tracer.emit(Category::Fault, now, || Event::EccFault {
                node,
                uncorrectable: false,
                protocol,
            });
            ready + ecc.cfg.correction_cycles
        } else {
            ready
        }
    }

    /// Reads with a corrected single-bit error.
    pub fn ecc_corrected(&self) -> u64 {
        self.ecc.as_ref().map_or(0, |e| e.corrected)
    }

    /// Reads with an uncorrectable multi-bit error.
    pub fn ecc_uncorrectable(&self) -> u64 {
        self.ecc.as_ref().map_or(0, |e| e.uncorrected)
    }

    /// First uncorrectable error, if any: `(cycle, protocol_channel)`.
    pub fn first_uncorrectable(&self) -> Option<(Cycle, bool)> {
        self.ecc.as_ref().and_then(|e| e.first_uncorrectable)
    }

    /// Attach the system tracer (events: `sdram_read`, `sdram_write`),
    /// labelling events with the owning node.
    pub fn set_tracer(&mut self, node: NodeId, tracer: Tracer) {
        self.node = node;
        self.tracer = tracer;
    }

    /// Convenience constructor from ns-domain parameters.
    pub fn from_ns(cpu_ghz: f64, access_ns: f64, bw_gbps: f64) -> Sdram {
        let access = (access_ns * cpu_ghz).ceil() as u64;
        let per_line = (L2_LINE as f64 / bw_gbps * cpu_ghz).ceil() as u64;
        Sdram::new(access, per_line)
    }

    fn schedule(ch: &mut Channel, now: Cycle, occupancy: u64, latency: u64) -> Cycle {
        let start = now.max(ch.next_free);
        ch.wait.record(start - now);
        ch.next_free = start + occupancy;
        ch.busy_cycles += occupancy;
        start + latency
    }

    /// Read a line on the main channel; returns the data-ready cycle.
    /// `span` is the causal span of the transaction the read serves.
    pub fn read(&mut self, now: Cycle, span: SpanId) -> Cycle {
        self.reads += 1;
        let mut ready = Self::schedule(&mut self.main, now, self.per_line, self.access);
        if self.ecc.is_some() {
            ready = self.ecc_roll(now, ready, false);
        }
        let node = self.node;
        self.tracer.emit(Category::Sdram, now, || Event::SdramRead {
            node,
            protocol: false,
            ready_at: ready,
            span,
        });
        ready
    }

    /// Write a line on the main channel (bandwidth only; completion time is
    /// when the channel accepts it).
    pub fn write(&mut self, now: Cycle, span: SpanId) -> Cycle {
        self.writes += 1;
        let node = self.node;
        self.tracer
            .emit(Category::Sdram, now, || Event::SdramWrite {
                node,
                protocol: false,
                span,
            });
        Self::schedule(&mut self.main, now, self.per_line, 0)
    }

    /// Read a line on the dedicated protocol channel.
    pub fn read_protocol(&mut self, now: Cycle, span: SpanId) -> Cycle {
        self.reads += 1;
        let mut ready = Self::schedule(&mut self.protocol, now, self.per_line, self.access);
        if self.ecc.is_some() {
            ready = self.ecc_roll(now, ready, true);
        }
        let node = self.node;
        self.tracer.emit(Category::Sdram, now, || Event::SdramRead {
            node,
            protocol: true,
            ready_at: ready,
            span,
        });
        ready
    }

    /// Write a line on the protocol channel.
    pub fn write_protocol(&mut self, now: Cycle, span: SpanId) -> Cycle {
        self.writes += 1;
        let node = self.node;
        self.tracer
            .emit(Category::Sdram, now, || Event::SdramWrite {
                node,
                protocol: true,
                span,
            });
        Self::schedule(&mut self.protocol, now, self.per_line, 0)
    }

    /// Access latency in cycles (for analytic models).
    pub fn access_cycles(&self) -> u64 {
        self.access
    }

    /// Total reads served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total writes served.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Busy cycles on the main channel (bandwidth utilization statistic).
    pub fn main_busy_cycles(&self) -> u64 {
        self.main.busy_cycles
    }

    /// Distribution of bank-queue waits on the main channel.
    pub fn main_queue_wait(&self) -> &Distribution {
        &self.main.wait
    }

    /// Distribution of bank-queue waits on the protocol channel.
    pub fn protocol_queue_wait(&self) -> &Distribution {
        &self.protocol.wait
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_matches_table3_at_2ghz() {
        let mut s = Sdram::from_ns(2.0, 80.0, 3.2);
        // 80 ns at 2 GHz = 160 cycles; 128 B / 3.2 GB/s = 40 ns = 80 cycles.
        assert_eq!(s.read(0, SpanId::NONE), 160);
        assert_eq!(s.access_cycles(), 160);
        // Second back-to-back read starts after the first transfer clears.
        assert_eq!(s.read(0, SpanId::NONE), 80 + 160);
    }

    #[test]
    fn bandwidth_limits_throughput() {
        let mut s = Sdram::from_ns(2.0, 80.0, 3.2);
        let mut last = 0;
        for _ in 0..10 {
            last = s.read(0, SpanId::NONE);
        }
        // 10 reads serialize at 80 cycles each; latency pipelined.
        assert_eq!(last, 9 * 80 + 160);
        assert_eq!(s.reads(), 10);
        assert_eq!(s.main_busy_cycles(), 800);
    }

    #[test]
    fn protocol_channel_is_independent() {
        let mut s = Sdram::from_ns(2.0, 80.0, 3.2);
        for _ in 0..5 {
            s.read(0, SpanId::NONE);
        }
        // The protocol channel sees no contention from the main channel.
        assert_eq!(s.read_protocol(0, SpanId::NONE), 160);
    }

    #[test]
    fn writes_occupy_but_do_not_wait() {
        let mut s = Sdram::from_ns(2.0, 80.0, 3.2);
        let t = s.write(100, SpanId::NONE);
        assert_eq!(t, 100);
        // Next read waits for the write's bandwidth slot.
        assert_eq!(s.read(100, SpanId::NONE), 100 + 80 + 160);
        assert_eq!(s.writes(), 1);
    }

    #[test]
    fn idle_channel_resets_to_now() {
        let mut s = Sdram::from_ns(2.0, 80.0, 3.2);
        s.read(0, SpanId::NONE);
        // Long idle gap: next access starts immediately at `now`.
        assert_eq!(s.read(10_000, SpanId::NONE), 10_160);
    }

    #[test]
    fn ecc_faults_add_latency_and_are_recorded() {
        let mut s = Sdram::from_ns(2.0, 80.0, 3.2);
        let mut cfg = FaultConfig::chaos(11);
        cfg.ecc.correctable_per_million = 1_000_000; // every read
        cfg.ecc.uncorrectable_per_million = 0;
        cfg.ecc.correction_cycles = 24;
        s.set_faults(&cfg, NodeId(2));
        assert_eq!(s.read(0, SpanId::NONE), 160 + 24);
        assert_eq!(s.ecc_corrected(), 1);
        assert_eq!(s.ecc_uncorrectable(), 0);
        assert!(s.first_uncorrectable().is_none());
    }

    #[test]
    fn uncorrectable_errors_poison_without_latency() {
        let mut s = Sdram::from_ns(2.0, 80.0, 3.2);
        let mut cfg = FaultConfig::chaos(12);
        cfg.ecc.correctable_per_million = 0;
        cfg.ecc.uncorrectable_per_million = 1_000_000;
        s.set_faults(&cfg, NodeId(0));
        assert_eq!(s.read(7, SpanId::NONE), 7 + 160);
        assert_eq!(s.read_protocol(9, SpanId::NONE), 9 + 160);
        assert_eq!(s.ecc_uncorrectable(), 2);
        assert_eq!(s.first_uncorrectable(), Some((7, false)));
    }

    #[test]
    fn disabled_faults_leave_timing_untouched() {
        let mut s = Sdram::from_ns(2.0, 80.0, 3.2);
        s.set_faults(&FaultConfig::default(), NodeId(0));
        assert_eq!(s.read(0, SpanId::NONE), 160);
        assert_eq!(s.ecc_corrected(), 0);
    }

    #[test]
    fn queue_wait_is_recorded_per_channel() {
        let mut s = Sdram::from_ns(2.0, 80.0, 3.2);
        s.read(0, SpanId::NONE); // starts immediately: wait 0
        s.read(0, SpanId::NONE); // waits for the first transfer: wait 80
        s.read_protocol(0, SpanId::NONE); // independent channel: wait 0
        assert_eq!(s.main_queue_wait().count(), 2);
        assert_eq!(s.main_queue_wait().max(), 80);
        assert_eq!(s.main_queue_wait().min(), 0);
        assert_eq!(s.protocol_queue_wait().count(), 1);
        assert_eq!(s.protocol_queue_wait().max(), 0);
    }
}
