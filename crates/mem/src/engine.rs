//! The embedded dual-issue protocol processor of the non-SMTp models.
//!
//! A MAGIC/FLASH-style programmable engine (paper §3): dual-issue,
//! in-order, running at the memory-controller clock, with a 32 KB
//! direct-mapped protocol instruction cache and a directory data cache
//! (capacity per machine model, Table 4). It executes exactly the same
//! handler timing programs as the SMTp protocol thread
//! ([`smtp_protocol::handler_program`]) — one source of truth for handler
//! cost in both backends.
//!
//! Because the engine is in-order with deterministic latencies, a handler's
//! execution is computed analytically at dispatch: the walk yields the
//! finish time and the cycle at which every `send` issues.

use crate::dircache::DirCache;
use smtp_cache::{Cache, LineState};
use smtp_isa::{Inst, Op};
use smtp_protocol::pc_to_addr;
use smtp_types::{CacheParams, Cycle, NodeId};

/// Result of running one handler on the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineRun {
    /// CPU cycle at which the engine becomes free again.
    pub finish: Cycle,
    /// `(cpu_cycle, msg_idx)` for every `send` executed, in program order.
    pub sends: Vec<(Cycle, usize)>,
}

/// The protocol engine.
#[derive(Clone, Debug)]
pub struct ProtocolEngine {
    divisor: u64,
    dir_miss_mc: u64,
    dircache: DirCache,
    icache: Cache,
    busy_until: Cycle,
    active_cycles: u64,
    handlers: u64,
}

impl ProtocolEngine {
    /// Build an engine clocked at `cpu_clock / divisor` whose directory
    /// cache misses cost `dir_miss_cycles` CPU cycles (the SDRAM access).
    pub fn new(divisor: u64, dir_miss_cycles: u64, dircache: DirCache, icache_bytes: u64) -> Self {
        ProtocolEngine {
            divisor: divisor.max(1),
            dir_miss_mc: dir_miss_cycles.div_ceil(divisor.max(1)).max(1),
            dircache,
            icache: Cache::new(&CacheParams {
                capacity: icache_bytes,
                line: 64,
                ways: 1,
                hit_cycles: 1,
            }),
            busy_until: 0,
            active_cycles: 0,
            handlers: 0,
        }
    }

    /// Whether the engine can accept a handler at `now`.
    pub fn idle(&self, now: Cycle) -> bool {
        now >= self.busy_until
    }

    /// CPU cycle at which the engine frees up.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Execute a handler program dispatched at `now` (must be idle).
    ///
    /// # Panics
    ///
    /// Panics if the engine is still busy — the dispatch logic must check
    /// [`ProtocolEngine::idle`] first.
    pub fn run_handler(&mut self, home: NodeId, prog: &[Inst], now: Cycle) -> EngineRun {
        assert!(self.idle(now), "protocol engine dispatched while busy");
        self.handlers += 1;
        let d = self.divisor;
        // Instruction-cache check: one access per code line of the program.
        let mut t_mc = now.div_ceil(d);
        let mut last_line = u64::MAX;
        for i in prog {
            let a = pc_to_addr(home, i.pc);
            let line = a.raw() / 64;
            if line != last_line {
                last_line = line;
                if self.icache.lookup(a).is_none() {
                    self.icache.insert(a, LineState::Shared);
                    t_mc += self.dir_miss_mc; // code refill from memory
                }
            }
        }
        // Dual-issue in-order walk.
        let mut sends = Vec::new();
        let mut slot = 0u32;
        let bump = |t_mc: &mut Cycle, slot: &mut u32| {
            *slot += 1;
            if *slot == 2 {
                *slot = 0;
                *t_mc += 1;
            }
        };
        for i in prog {
            match i.op {
                Op::PLoad { addr } | Op::PStore { addr } => {
                    // Memory ops issue alone and block the pipe.
                    if slot != 0 {
                        slot = 0;
                        t_mc += 1;
                    }
                    t_mc += if self.dircache.access(addr) {
                        1
                    } else {
                        self.dir_miss_mc
                    };
                }
                Op::Send { msg_idx } => {
                    sends.push((t_mc * d, msg_idx as usize));
                    bump(&mut t_mc, &mut slot);
                }
                Op::Switch | Op::Ldctxt => {
                    bump(&mut t_mc, &mut slot);
                }
                _ => bump(&mut t_mc, &mut slot),
            }
        }
        if slot != 0 {
            t_mc += 1;
        }
        let finish = t_mc * d;
        self.active_cycles += finish.saturating_sub(now);
        self.busy_until = finish;
        EngineRun { finish, sends }
    }

    /// Handlers executed.
    pub fn handlers(&self) -> u64 {
        self.handlers
    }

    /// CPU cycles during which the engine was busy (protocol occupancy,
    /// paper Table 7).
    pub fn active_cycles(&self) -> u64 {
        self.active_cycles
    }

    /// Directory data cache statistics.
    pub fn dircache(&self) -> &DirCache {
        &self.dircache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtp_noc::{Msg, MsgKind};
    use smtp_protocol::DirState;
    use smtp_protocol::{handler_program, must_apply};
    use smtp_types::{Addr, Region, SharerSet};

    const HOME: NodeId = NodeId(0);

    fn line() -> smtp_types::LineAddr {
        Addr::new(HOME, Region::AppData, 0x4000).line()
    }

    fn engine(divisor: u64) -> ProtocolEngine {
        ProtocolEngine::new(divisor, 160, DirCache::perfect(), 32 * 1024)
    }

    fn gets_program() -> Vec<Inst> {
        let m = Msg::new(MsgKind::GetS, line(), NodeId(1), HOME);
        let t = must_apply(HOME, &DirState::Unowned, &m);
        handler_program(HOME, line(), &t)
    }

    #[test]
    fn short_handler_runs_in_few_mc_cycles() {
        let mut e = engine(2);
        let prog = gets_program();
        let run = e.run_handler(HOME, &prog, 0);
        // First run pays an icache cold miss; re-run from a clean start.
        let mut e2 = engine(2);
        e2.run_handler(HOME, &prog, 0);
        let warm = e2.run_handler(HOME, &prog, 1000);
        // ~7 instructions dual-issued with two 1-cycle memory ops: well
        // under 10 MC cycles = 20 CPU cycles at divisor 2.
        assert!(
            warm.finish - 1000 <= 20,
            "warm handler took {} cycles",
            warm.finish - 1000
        );
        assert_eq!(run.sends.len(), 1);
        assert!(e2.idle(warm.finish));
        assert!(!e2.idle(warm.finish - 1));
    }

    #[test]
    fn slower_clock_scales_cost() {
        let prog = gets_program();
        let mut fast = engine(1);
        let mut slow = engine(5);
        fast.run_handler(HOME, &prog, 0);
        slow.run_handler(HOME, &prog, 0);
        let f = {
            let r = fast.run_handler(HOME, &prog, 1000);
            r.finish - 1000
        };
        let s = {
            let r = slow.run_handler(HOME, &prog, 1000);
            r.finish - 1000
        };
        assert!(s >= 4 * f, "divisor-5 engine not ~5x slower: {s} vs {f}");
    }

    #[test]
    fn inval_fanout_sends_are_spread_in_time() {
        let sharers: SharerSet = (1..=4).map(|i| NodeId(i as u16)).collect();
        let m = Msg::new(MsgKind::GetX, line(), NodeId(5), HOME);
        let t = must_apply(HOME, &DirState::Shared(sharers), &m);
        let prog = handler_program(HOME, line(), &t);
        let mut e = engine(2);
        let run = e.run_handler(HOME, &prog, 0);
        assert_eq!(run.sends.len(), 5); // 4 invals + data reply
                                        // Send order respected and strictly non-decreasing in time.
        for w in run.sends.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn dircache_misses_slow_the_handler() {
        let prog = gets_program();
        let mut perfect = engine(2);
        perfect.run_handler(HOME, &prog, 0);
        let warm = {
            let r = perfect.run_handler(HOME, &prog, 1000);
            r.finish - 1000
        };
        // A 64 KB DM cache cold-misses on the first directory access.
        let mut cold = ProtocolEngine::new(2, 160, DirCache::direct_mapped(64, 64), 32 * 1024);
        cold.run_handler(HOME, &prog, 0);
        // Different directory entry => cold dir miss even with warm icache.
        let other = Addr::new(HOME, Region::AppData, 0x9_0000).line();
        let m = Msg::new(MsgKind::GetS, other, NodeId(1), HOME);
        let t = must_apply(HOME, &DirState::Unowned, &m);
        let p2 = handler_program(HOME, other, &t);
        let r = cold.run_handler(HOME, &p2, 1000);
        assert!(r.finish - 1000 > warm + 100, "dir miss not charged");
        assert!(cold.dircache().misses() >= 1);
    }

    #[test]
    #[should_panic(expected = "while busy")]
    fn dispatch_while_busy_panics() {
        let mut e = engine(2);
        let prog = gets_program();
        e.run_handler(HOME, &prog, 0);
        e.run_handler(HOME, &prog, 0);
    }

    #[test]
    fn occupancy_accumulates() {
        let mut e = engine(2);
        let prog = gets_program();
        let r1 = e.run_handler(HOME, &prog, 0);
        let r2 = e.run_handler(HOME, &prog, r1.finish + 100);
        assert_eq!(e.handlers(), 2);
        assert_eq!(
            e.active_cycles(),
            r1.finish + (r2.finish - (r1.finish + 100))
        );
    }
}
