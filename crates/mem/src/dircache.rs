//! Directory data cache of the embedded protocol engine.
//!
//! The non-SMTp machine models give their protocol processor a
//! direct-mapped cache over the directory entries (512 KB in `Base` and
//! `Int512KB`, 64 KB in `Int64KB`, perfect in `IntPerfect` — paper
//! Table 4). Under SMTp there is no directory cache: directory entries
//! travel through the shared L1D/L2 instead.

use smtp_cache::Cache;
use smtp_types::{Addr, CacheParams};

/// The directory data cache: direct-mapped, or perfect.
#[derive(Clone, Debug)]
pub struct DirCache {
    inner: Option<Cache>,
    hits: u64,
    misses: u64,
}

impl DirCache {
    /// A direct-mapped cache of `capacity_kb` kilobytes with `line`-byte
    /// lines.
    pub fn direct_mapped(capacity_kb: u32, line: u64) -> DirCache {
        DirCache {
            inner: Some(Cache::new(&CacheParams {
                capacity: capacity_kb as u64 * 1024,
                line,
                ways: 1,
                hit_cycles: 1,
            })),
            hits: 0,
            misses: 0,
        }
    }

    /// A perfect directory cache (always hits).
    pub fn perfect() -> DirCache {
        DirCache {
            inner: None,
            hits: 0,
            misses: 0,
        }
    }

    /// Access a directory entry; returns `true` on hit. A miss installs the
    /// line (the SDRAM fetch latency is charged by the caller).
    pub fn access(&mut self, addr: Addr) -> bool {
        let Some(cache) = &mut self.inner else {
            self.hits += 1;
            return true;
        };
        if cache.lookup(addr).is_some() {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            cache.insert(addr, smtp_cache::LineState::Modified);
            false
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in [0, 1] (1.0 when no accesses yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtp_types::{NodeId, Region};

    fn dir(off: u64) -> Addr {
        Addr::new(NodeId(0), Region::Directory, off)
    }

    #[test]
    fn perfect_always_hits() {
        let mut c = DirCache::perfect();
        for i in 0..1000 {
            assert!(c.access(dir(i * 8)));
        }
        assert_eq!(c.misses(), 0);
        assert_eq!(c.hit_rate(), 1.0);
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = DirCache::direct_mapped(64, 64);
        // 64 KB DM, 64 B lines => 1024 lines; stride 64 KB conflicts.
        assert!(!c.access(dir(0)));
        assert!(c.access(dir(0)));
        assert!(!c.access(dir(64 * 1024))); // evicts line 0
        assert!(!c.access(dir(0))); // conflict miss
        assert_eq!(c.misses(), 3);
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn large_cache_captures_working_set() {
        let mut c = DirCache::direct_mapped(512, 64);
        for i in 0..4096u64 {
            c.access(dir(i * 8));
        }
        let cold = c.misses();
        for i in 0..4096u64 {
            assert!(c.access(dir(i * 8)));
        }
        assert_eq!(c.misses(), cold, "no capacity misses in 512 KB");
        assert!(c.hit_rate() > 0.9);
    }
}
