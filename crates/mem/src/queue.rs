//! Bounded FIFO queues with occupancy statistics (Local Miss Interface,
//! network-interface queues, SDRAM queue — paper Table 3), plus the
//! timestamped [`TimedQueue`] used where per-item waiting time feeds the
//! latency-decomposition profiler.

use smtp_types::{Cycle, Distribution, FaultWindows};
use std::collections::VecDeque;

/// A bounded FIFO with occupancy statistics.
#[derive(Clone, Debug)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    peak: usize,
    rejected: u64,
    total: u64,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            items: VecDeque::with_capacity(capacity.min(64)),
            capacity,
            peak: 0,
            rejected: 0,
            total: 0,
        }
    }

    /// Try to enqueue; returns the item back if the queue is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            self.rejected += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.total += 1;
        self.peak = self.peak.max(self.items.len());
        Ok(())
    }

    /// Enqueue at the *front* (for replayed pending requests that must stay
    /// ahead of new traffic); front pushes ignore the capacity bound so a
    /// replay can never be lost.
    pub fn push_front(&mut self, item: T) {
        self.items.push_front(item);
        self.total += 1;
        self.peak = self.peak.max(self.items.len());
    }

    /// Dequeue the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peek at the oldest item.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// High-water mark.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Push attempts rejected because the queue was full.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Total items ever accepted.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// An unbounded FIFO that timestamps every item on entry and records how
/// long it waited when dequeued — the dispatch-queue-wait phase of the
/// latency decomposition. Items become visible only once their entry time
/// has been reached, which models queues whose contents are scheduled to
/// arrive at a future cycle (bus and network-interface delivery).
#[derive(Clone, Debug, Default)]
pub struct TimedQueue<T> {
    items: VecDeque<(Cycle, T)>,
    peak: usize,
    total: u64,
    wait: Distribution,
    /// Injected stall windows; `None` (the default) costs one branch per
    /// `pop_due`.
    stall: Option<Box<FaultWindows>>,
}

impl<T> TimedQueue<T> {
    /// An empty queue.
    pub fn new() -> TimedQueue<T> {
        TimedQueue {
            items: VecDeque::new(),
            peak: 0,
            total: 0,
            wait: Distribution::new(),
            stall: None,
        }
    }

    /// Arm seeded stall-window fault injection: while a window is open,
    /// [`TimedQueue::pop_due`] refuses to dequeue (the queue's consumer
    /// freezes), modeling transient memory-controller dispatch stalls.
    pub fn set_stall(&mut self, windows: FaultWindows) {
        self.stall = Some(Box::new(windows));
    }

    /// Stall windows opened so far.
    pub fn stall_windows(&self) -> u64 {
        self.stall.as_ref().map_or(0, |w| w.opened())
    }

    /// Snapshot of the stall-window generator (RNG position, open window,
    /// counters) for engines that must rewind speculative idle ticks.
    pub fn stall_state(&self) -> Option<FaultWindows> {
        self.stall.as_deref().cloned()
    }

    /// Restore a snapshot taken by [`TimedQueue::stall_state`].
    pub fn restore_stall(&mut self, state: Option<FaultWindows>) {
        self.stall = state.map(Box::new);
    }

    /// End cycle of a stall window opened since the last call, if any
    /// (lets the owner emit one trace event per window).
    pub fn stall_opened(&mut self) -> Option<Cycle> {
        self.stall.as_mut().and_then(|w| w.take_newly_opened())
    }

    /// Enqueue an item that becomes ready at cycle `at`.
    pub fn push(&mut self, at: Cycle, item: T) {
        self.items.push_back((at, item));
        self.total += 1;
        self.peak = self.peak.max(self.items.len());
    }

    /// Whether the oldest item is ready at `now`.
    pub fn is_ready(&self, now: Cycle) -> bool {
        self.items.front().is_some_and(|&(at, _)| at <= now)
    }

    /// Dequeue the oldest item if it is ready, recording its queue wait.
    /// Returns `None` while an injected stall window is open.
    pub fn pop_due(&mut self, now: Cycle) -> Option<T> {
        if let Some(w) = self.stall.as_deref_mut() {
            if w.stalled(now) {
                return None;
            }
        }
        if !self.is_ready(now) {
            return None;
        }
        let (at, item) = self.items.pop_front().expect("is_ready checked");
        self.wait.record(now.saturating_sub(at));
        Some(item)
    }

    /// Ready time of the oldest item, if any. Dequeue order is FIFO, so
    /// this is the earliest cycle at which [`TimedQueue::pop_due`] can
    /// succeed — the bound the idle-skip engine uses to plan how far a
    /// quiescent consumer may jump.
    pub fn next_due(&self) -> Option<Cycle> {
        self.items.front().map(|&(at, _)| at)
    }

    /// Items currently queued (ready or not).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// High-water mark.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Total items ever enqueued.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Distribution of per-item waiting times (ready time to dequeue).
    pub fn wait(&self) -> &Distribution {
        &self.wait
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.front(), Some(&1));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_enforced() {
        let mut q = BoundedQueue::new(2);
        q.push('a').unwrap();
        q.push('b').unwrap();
        assert!(q.is_full());
        assert_eq!(q.push('c'), Err('c'));
        assert_eq!(q.rejected(), 1);
        q.pop();
        assert!(q.push('c').is_ok());
    }

    #[test]
    fn front_push_bypasses_bound_for_replays() {
        let mut q = BoundedQueue::new(1);
        q.push(10).unwrap();
        q.push_front(5);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(5));
        assert_eq!(q.pop(), Some(10));
    }

    #[test]
    fn stats_track_peak_and_total() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        q.pop();
        q.push(9).unwrap();
        assert_eq!(q.peak(), 5);
        assert_eq!(q.total(), 6);
    }

    #[test]
    fn timed_queue_respects_ready_time() {
        let mut q = TimedQueue::new();
        q.push(10, 'a');
        q.push(12, 'b');
        assert!(!q.is_ready(9));
        assert_eq!(q.pop_due(9), None);
        assert_eq!(q.pop_due(10), Some('a'));
        // 'b' is not ready yet even though the queue is non-empty.
        assert_eq!(q.pop_due(11), None);
        assert_eq!(q.pop_due(20), Some('b'));
        assert!(q.is_empty());
    }

    #[test]
    fn stall_window_freezes_pop_due() {
        use smtp_types::{FaultConfig, StallFaults};
        let mut cfg = FaultConfig::chaos(3);
        cfg.dispatch_stall = StallFaults {
            window_per_million: 1_000_000, // every check opens a window
            window_cycles: 30,
            check_every: 64,
        };
        let mut q = TimedQueue::new();
        q.set_stall(FaultWindows::new(
            cfg.stream(smtp_types::faults::SITE_DISPATCH),
            &cfg.dispatch_stall,
        ));
        q.push(0, 'a');
        // The first check (cycle 0) opens a 30-cycle window.
        assert_eq!(q.pop_due(0), None);
        assert_eq!(q.stall_windows(), 1);
        let until = q.stall_opened().expect("window opened");
        assert_eq!(until, 30);
        assert_eq!(q.stall_opened(), None); // reported once
        assert_eq!(q.pop_due(20), None); // still inside the window
                                         // Past the window, before the next check (cycle 64): dequeues.
        assert_eq!(q.pop_due(40), Some('a'));
    }

    #[test]
    fn timed_queue_records_waits() {
        let mut q = TimedQueue::new();
        q.push(0, 1);
        q.push(0, 2);
        q.push(5, 3);
        assert_eq!(q.peak(), 3);
        q.pop_due(4); // waited 4
        q.pop_due(10); // waited 10
        q.pop_due(11); // waited 6
        assert_eq!(q.total(), 3);
        assert_eq!(q.wait().count(), 3);
        assert_eq!(q.wait().sum(), 20);
        assert_eq!(q.wait().max(), 10);
    }
}
