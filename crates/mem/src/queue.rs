//! Bounded FIFO queues with occupancy statistics (Local Miss Interface,
//! network-interface queues, SDRAM queue — paper Table 3).

use std::collections::VecDeque;

/// A bounded FIFO with occupancy statistics.
#[derive(Clone, Debug)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    peak: usize,
    rejected: u64,
    total: u64,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            items: VecDeque::with_capacity(capacity.min(64)),
            capacity,
            peak: 0,
            rejected: 0,
            total: 0,
        }
    }

    /// Try to enqueue; returns the item back if the queue is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            self.rejected += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.total += 1;
        self.peak = self.peak.max(self.items.len());
        Ok(())
    }

    /// Enqueue at the *front* (for replayed pending requests that must stay
    /// ahead of new traffic); front pushes ignore the capacity bound so a
    /// replay can never be lost.
    pub fn push_front(&mut self, item: T) {
        self.items.push_front(item);
        self.total += 1;
        self.peak = self.peak.max(self.items.len());
    }

    /// Dequeue the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peek at the oldest item.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// High-water mark.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Push attempts rejected because the queue was full.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Total items ever accepted.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.front(), Some(&1));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_enforced() {
        let mut q = BoundedQueue::new(2);
        q.push('a').unwrap();
        q.push('b').unwrap();
        assert!(q.is_full());
        assert_eq!(q.push('c'), Err('c'));
        assert_eq!(q.rejected(), 1);
        q.pop();
        assert!(q.push('c').is_ok());
    }

    #[test]
    fn front_push_bypasses_bound_for_replays() {
        let mut q = BoundedQueue::new(1);
        q.push(10).unwrap();
        q.push_front(5);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(5));
        assert_eq!(q.pop(), Some(10));
    }

    #[test]
    fn stats_track_peak_and_total() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        q.pop();
        q.push(9).unwrap();
        assert_eq!(q.peak(), 5);
        assert_eq!(q.total(), 6);
    }
}
