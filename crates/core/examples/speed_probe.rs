use smtp_core::{run_experiment, ExperimentConfig};
use smtp_types::MachineModel;
use smtp_workloads::AppKind;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.12);
    let nodes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let ways: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);
    let max: u64 = args
        .get(4)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000_000);
    let mut e = ExperimentConfig::new(MachineModel::SMTp, AppKind::Fft, nodes, ways);
    e.scale = scale;
    e.max_cycles = max;
    let t = Instant::now();
    let r = run_experiment(&e);
    let dt = t.elapsed().as_secs_f64();
    println!(
        "cycles={} insts={} prot={} handlers={} wall={:.2}s {:.2}Mcyc/s",
        r.cycles,
        r.app_instructions,
        r.protocol_instructions,
        r.handlers,
        dt,
        r.cycles as f64 / dt / 1e6
    );
}
