use smtp_core::{run_experiment, ExperimentConfig};
use smtp_types::MachineModel;
use smtp_workloads::AppKind;
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    for app in AppKind::ALL {
        for model in [MachineModel::SMTp, MachineModel::Base] {
            let mut e = ExperimentConfig::new(model, app, 4, 2);
            e.scale = scale;
            e.max_cycles = 400_000_000;
            let t = Instant::now();
            let r = run_experiment(&e);
            println!(
                "{:6} {:5}: cycles={:>9} insts={:>9} prot={:>7} handlers={:>7} memstall={:.2} occ={:.3} wall={:.1}s",
                app.name(), model.label(), r.cycles, r.app_instructions, r.protocol_instructions,
                r.handlers, r.memory_stall_frac(), r.protocol_occupancy_peak, t.elapsed().as_secs_f64()
            );
        }
    }
}
