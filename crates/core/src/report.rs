//! Paper-style run reports: Table 7 protocol occupancy, Fig. 5/7 per-thread
//! time breakdowns, and latency percentile / phase-decomposition tables,
//! rendered as aligned text, Markdown, or JSON.
//!
//! The JSON output is hand-rolled (the workspace has no serialization
//! dependency) and deterministic: identical [`RunStats`] produce
//! byte-identical output.

use crate::json::{JsonError, JsonValue};
use crate::stats::{RunStats, ThreadTime};
use smtp_trace::{HostProfile, SpatialStats, HOST_PHASE_NAMES, NUM_PATH_CATS, PATH_CAT_NAMES};
use smtp_types::{Distribution, Histogram, CLASS_NAMES, NUM_PHASES, PHASE_NAMES};

/// Percentiles every latency table reports.
const PERCENTILES: [f64; 5] = [50.0, 90.0, 95.0, 99.0, 100.0];

/// Version of the report JSON schema. Bump whenever keys are added or
/// change meaning so downstream consumers can detect the shape instead of
/// breaking on unknown keys. Version 2 added `schema_version` itself, the
/// optional `host_profile` section and `workers`. Version 3 added
/// `remote_miss`, the merged remote read / read-exclusive latency
/// histogram (so archive consumers need not re-merge per-class summaries,
/// which is impossible from percentiles alone). Version 4 added the
/// `spatial` section: classified hot lines, the per-home-node heatmap and
/// the per-link NoC utilization matrix.
pub const REPORT_SCHEMA_VERSION: u32 = 4;

/// Oldest report schema [`ParsedReport::from_json`] accepts.
pub const MIN_REPORT_SCHEMA_VERSION: u32 = 2;

/// A formatted view over one run's [`RunStats`].
///
/// ```no_run
/// # let stats: smtp_core::RunStats = unimplemented!();
/// let report = smtp_core::Report::new(&stats);
/// println!("{}", report.text());
/// ```
#[derive(Debug)]
pub struct Report<'a> {
    stats: &'a RunStats,
    host: Option<&'a HostProfile>,
}

impl<'a> Report<'a> {
    /// Build a report over `stats`.
    pub fn new(stats: &'a RunStats) -> Report<'a> {
        Report { stats, host: None }
    }

    /// Build a report over `stats` plus the run's host-side engine profile
    /// ([`crate::System::host_profile`]): all renderings gain a "Host
    /// engine profile" section attributing the simulator's own wall-clock.
    pub fn with_host_profile(stats: &'a RunStats, host: &'a HostProfile) -> Report<'a> {
        Report {
            stats,
            host: Some(host),
        }
    }

    /// Render as aligned plain text (terminal).
    pub fn text(&self) -> String {
        self.render(Style::Text)
    }

    /// Render as Markdown tables.
    pub fn markdown(&self) -> String {
        self.render(Style::Markdown)
    }

    /// One-screen run summary. Alongside the machine-wide occupancy
    /// numbers it surfaces the *spatial* peaks — which home node and which
    /// NoC link are saturating — so single-node hot spots are not hidden
    /// behind the mean.
    pub fn summary(&self) -> String {
        let s = self.stats;
        let sp = &s.spatial;
        let mut out = String::new();
        out.push_str(&format!(
            "{:?} {} x{} ({}-way): {} cycles, IPC {:.3}, {} handlers\n",
            s.model,
            s.app,
            s.nodes,
            s.ways,
            s.cycles,
            s.ipc(),
            s.handlers
        ));
        out.push_str(&format!(
            "memory stall {:.1}% | protocol occupancy mean {:.1}% / peak {:.1}%",
            100.0 * s.memory_stall_frac(),
            100.0 * s.protocol_occupancy_mean,
            100.0 * s.protocol_occupancy_peak,
        ));
        match sp.peak_home() {
            Some(h) => out.push_str(&format!(
                " | hottest home n{}: {:.1}% occ, {} handlers, {} nacks\n",
                h.node,
                100.0 * sp.home_occ(h),
                h.handlers,
                h.nacks
            )),
            None => out.push('\n'),
        }
        if let Some(l) = sp.peak_link() {
            out.push_str(&format!(
                "network: {} msgs, mean latency {:.1} cyc | hottest link {}: {:.1}% util, {} msgs",
                s.network.messages,
                s.network.mean_latency(),
                l.label,
                100.0 * sp.link_util(l),
                l.msgs
            ));
            if l.retx > 0 {
                out.push_str(&format!(", {} retx", l.retx));
            }
            out.push('\n');
        }
        if sp.enabled {
            match sp.hot_lines.first() {
                Some(h) => out.push_str(&format!(
                    "hottest line {:#x} (home n{}): {} ({}±{} events, {} reads / {} writes)\n",
                    h.line,
                    h.home,
                    h.class.as_str(),
                    h.weight,
                    h.err,
                    h.c.reads,
                    h.c.writes
                )),
                None => out.push_str("no tracked lines\n"),
            }
        }
        if !s.miss_latency.is_empty() {
            out.push_str(&format!(
                "L2 miss latency mean {:.1} / p95 {} cycles ({} misses)\n",
                s.miss_latency.mean(),
                s.miss_latency.percentile(95.0),
                s.miss_latency.count()
            ));
        }
        out
    }

    fn render(&self, style: Style) -> String {
        let s = self.stats;
        let mut out = String::new();
        style.heading(&mut out, 1, &format!("{:?} {} run report", s.model, s.app));
        out.push('\n');

        // -- Header --------------------------------------------------------
        style.table(
            &mut out,
            &["parameter", "value"],
            &[
                vec!["nodes".into(), s.nodes.to_string()],
                vec!["app threads / node".into(), s.ways.to_string()],
                vec!["cycles".into(), s.cycles.to_string()],
                vec!["app instructions".into(), s.app_instructions.to_string()],
                vec![
                    "protocol instructions".into(),
                    s.protocol_instructions.to_string(),
                ],
                vec!["IPC (app, machine)".into(), format!("{:.3}", s.ipc())],
                vec!["handlers".into(), s.handlers.to_string()],
                vec!["lock acquires".into(), s.lock_acquires.to_string()],
                vec!["barrier episodes".into(), s.barrier_episodes.to_string()],
            ],
        );

        // -- Table 7: protocol occupancy ------------------------------------
        style.heading(&mut out, 2, "Protocol occupancy (Table 7)");
        style.table(
            &mut out,
            &["metric", "value"],
            &[
                vec![
                    "occupancy mean".into(),
                    format!("{:.1}%", 100.0 * s.protocol_occupancy_mean),
                ],
                vec![
                    "occupancy peak node".into(),
                    format!("{:.1}%", 100.0 * s.protocol_occupancy_peak),
                ],
                vec![
                    "dispatch queue wait".into(),
                    format!(
                        "mean {:.1} / p95 {} cycles ({} msgs)",
                        s.dispatch_queue_wait.mean(),
                        s.dispatch_queue_wait.percentile(95.0),
                        s.dispatch_queue_wait.count()
                    ),
                ],
                vec![
                    "SDRAM queue wait".into(),
                    format!(
                        "mean {:.1} / p95 {} cycles ({} reqs)",
                        s.sdram_queue_wait.mean(),
                        s.sdram_queue_wait.percentile(95.0),
                        s.sdram_queue_wait.count()
                    ),
                ],
            ],
        );

        let occ = &s.handler_occupancy;
        if occ.total() > 0 {
            style.heading(&mut out, 2, "Handlers by kind");
            let rows: Vec<Vec<String>> = occ
                .iter_nonzero()
                .map(|(name, count, d)| {
                    vec![
                        name.into(),
                        count.to_string(),
                        format!("{:.1}", d.mean()),
                        d.percentile(95.0).to_string(),
                        d.max().to_string(),
                    ]
                })
                .collect();
            style.table(
                &mut out,
                &["handler", "count", "mean cyc", "p95", "max"],
                &rows,
            );
        }

        // -- Fig. 5/7: per-thread time breakdown ----------------------------
        style.heading(&mut out, 2, "Per-thread time breakdown (Fig. 5/7)");
        let rows: Vec<Vec<String>> = s
            .thread_time
            .iter()
            .map(|t| {
                let mut row = vec![format!("n{}c{}", t.node, t.ctx)];
                let cyc = t.cycles.max(1) as f64;
                for v in [t.busy, t.memory, t.sync, t.squash, t.fetch_starved, t.other] {
                    row.push(format!("{:.1}%", 100.0 * v as f64 / cyc));
                }
                if style == Style::Text {
                    row.push(bar(t));
                }
                row
            })
            .collect();
        let mut cols = vec![
            "thread", "busy", "memory", "sync", "squash", "starved", "other",
        ];
        if style == Style::Text {
            cols.push("");
        }
        style.table(&mut out, &cols, &rows);
        if style == Style::Text {
            out.push_str("  bar: #=busy m=memory s=sync q=squash .=starved o=other\n");
        }

        // -- Miss latency percentiles ---------------------------------------
        style.heading(&mut out, 2, "L2 miss latency by class (cycles)");
        let mut rows: Vec<Vec<String>> = Vec::new();
        for (i, name) in CLASS_NAMES.iter().enumerate() {
            let h = &s.latency.end_to_end[i];
            if h.is_empty() {
                continue;
            }
            rows.push(hist_row(name, h));
        }
        if !s.miss_latency.is_empty() {
            rows.push(hist_row(
                "all (MSHR alloc→free)",
                s.miss_latency.histogram(),
            ));
        }
        if rows.is_empty() {
            style.para(&mut out, "no profiled misses");
        } else {
            style.table(
                &mut out,
                &["class", "count", "mean", "p50", "p90", "p95", "p99", "max"],
                &rows,
            );
        }

        // -- Remote miss phase decomposition --------------------------------
        style.heading(&mut out, 2, "Remote miss phase decomposition");
        let remote_e2e: f64 = s.latency.phases_remote.iter().map(|d| d.mean()).sum();
        if remote_e2e > 0.0 {
            let rows: Vec<Vec<String>> = (0..NUM_PHASES)
                .filter(|&i| !s.latency.phases_remote[i].is_empty())
                .map(|i| {
                    let d = &s.latency.phases_remote[i];
                    vec![
                        PHASE_NAMES[i].into(),
                        format!("{:.1}", d.mean()),
                        format!("{:.1}%", 100.0 * d.mean() / remote_e2e),
                        d.percentile(95.0).to_string(),
                    ]
                })
                .collect();
            style.table(&mut out, &["phase", "mean cyc", "share", "p95"], &rows);
            style.para(
                &mut out,
                &format!("mean remote end-to-end: {remote_e2e:.1} cycles"),
            );
        } else {
            style.para(&mut out, "no remote misses profiled");
        }

        // -- Critical path over causal spans --------------------------------
        let cp = &s.critical_path;
        if cp.spans > 0 {
            style.heading(&mut out, 2, "Critical path (causal spans)");
            let total = cp.total_cycles.max(1);
            let rows: Vec<Vec<String>> = (0..NUM_PATH_CATS)
                .filter(|&i| cp.cycles[i] > 0)
                .map(|i| {
                    vec![
                        PATH_CAT_NAMES[i].into(),
                        cp.cycles[i].to_string(),
                        format!("{:.1}%", 100.0 * cp.cycles[i] as f64 / total as f64),
                    ]
                })
                .collect();
            style.table(&mut out, &["category", "cycles", "share"], &rows);
            style.para(
                &mut out,
                &format!(
                    "{} spans, {} total critical-path cycles ({:.1} mean)",
                    cp.spans,
                    cp.total_cycles,
                    cp.total_cycles as f64 / cp.spans as f64
                ),
            );
        }

        // -- Network --------------------------------------------------------
        if s.nodes > 1 {
            style.heading(&mut out, 2, "Network latency by virtual network");
            let names = ["request", "intervention", "reply", "io"];
            let rows: Vec<Vec<String>> = names
                .iter()
                .zip(&s.vnet_latency)
                .filter(|(_, d)| !d.is_empty())
                .map(|(name, d)| {
                    vec![
                        (*name).into(),
                        d.count().to_string(),
                        format!("{:.1}", d.mean()),
                        d.percentile(95.0).to_string(),
                        d.max().to_string(),
                    ]
                })
                .collect();
            style.table(&mut out, &["vnet", "msgs", "mean cyc", "p95", "max"], &rows);
        }

        // -- Spatial hot spots ----------------------------------------------
        let sp = &s.spatial;
        if sp.enabled || !sp.links.is_empty() {
            style.heading(&mut out, 2, "Hot spots");
            if sp.enabled {
                if sp.hot_lines.is_empty() {
                    style.para(&mut out, "no tracked lines");
                } else {
                    let rows: Vec<Vec<String>> = sp
                        .hot_lines
                        .iter()
                        .take(10)
                        .map(|h| {
                            vec![
                                format!("{:#x}", h.line),
                                h.home.to_string(),
                                h.class.as_str().into(),
                                format!("{}±{}", h.weight, h.err),
                                h.c.reads.to_string(),
                                h.c.writes.to_string(),
                                h.c.invals_sent.to_string(),
                                h.c.interventions.to_string(),
                                h.c.nacks.to_string(),
                            ]
                        })
                        .collect();
                    style.table(
                        &mut out,
                        &[
                            "line", "home", "class", "events", "reads", "writes", "invals",
                            "interv", "nacks",
                        ],
                        &rows,
                    );
                    style.para(&mut out, &format!("{} tracked events", sp.tracked_events));
                }
            }
            let mut homes: Vec<_> = sp.homes.iter().collect();
            homes.sort_by_key(|h| (std::cmp::Reverse(h.occupancy_cycles), h.node));
            let rows: Vec<Vec<String>> = homes
                .iter()
                .take(5)
                .map(|h| {
                    vec![
                        format!("n{}", h.node),
                        format!("{:.1}%", 100.0 * sp.home_occ(h)),
                        h.handlers.to_string(),
                        h.nacks.to_string(),
                        format!("{:.1}", h.queue_wait.mean()),
                        format!("{:.1}", h.sdram_wait.mean()),
                    ]
                })
                .collect();
            if !rows.is_empty() {
                style.table(
                    &mut out,
                    &["home", "occ", "handlers", "nacks", "queue", "sdram"],
                    &rows,
                );
            }
            let mut links: Vec<_> = sp.links.iter().collect();
            links.sort_by_key(|l| (std::cmp::Reverse(l.busy), l.link));
            let rows: Vec<Vec<String>> = links
                .iter()
                .take(5)
                .map(|l| {
                    vec![
                        l.label.clone(),
                        format!("{:.1}%", 100.0 * sp.link_util(l)),
                        l.msgs.to_string(),
                        l.bytes.to_string(),
                        l.retx.to_string(),
                    ]
                })
                .collect();
            if !rows.is_empty() {
                style.table(&mut out, &["link", "util", "msgs", "bytes", "retx"], &rows);
            }
        }

        // -- Host engine profile --------------------------------------------
        if let Some(h) = self.host {
            style.heading(&mut out, 2, "Host engine profile");
            style.table(
                &mut out,
                &["metric", "value"],
                &[
                    vec!["engine".into(), h.engine.clone()],
                    vec!["workers".into(), h.workers.to_string()],
                    vec!["epochs".into(), h.epochs.to_string()],
                    vec![
                        "wall clock".into(),
                        format!("{:.1} ms", h.wall_ns as f64 / 1e6),
                    ],
                    vec![
                        "sim cycles / s".into(),
                        format!("{:.2}M", h.sim_cycles_per_sec() / 1e6),
                    ],
                    vec![
                        "barrier wait".into(),
                        format!("{:.1}%", 100.0 * h.barrier_wait_frac()),
                    ],
                    vec![
                        "imbalance (max/mean)".into(),
                        format!("{:.2}", h.imbalance_ratio()),
                    ],
                    vec![
                        "skip efficiency".into(),
                        format!("{:.1}%", 100.0 * h.skip_efficiency()),
                    ],
                ],
            );
            let rows: Vec<Vec<String>> = h
                .lanes
                .iter()
                .map(|l| {
                    let total = l.total_ns.max(1) as f64;
                    let mut row = vec![l.name.clone(), format!("{:.1}", l.total_ns as f64 / 1e6)];
                    row.extend(
                        l.phase_ns
                            .iter()
                            .map(|&ns| format!("{:.1}%", 100.0 * ns as f64 / total)),
                    );
                    row
                })
                .collect();
            let mut cols = vec!["lane", "ms"];
            cols.extend(HOST_PHASE_NAMES);
            style.table(&mut out, &cols, &rows);
        }
        out
    }

    /// Render as a JSON object (deterministic field order).
    pub fn json(&self) -> String {
        let s = self.stats;
        let mut j = JsonObj::new();
        j.num("schema_version", REPORT_SCHEMA_VERSION as f64);
        j.str("model", &format!("{:?}", s.model));
        j.str("app", &s.app.to_string());
        j.num("nodes", s.nodes as f64);
        j.num("ways", s.ways as f64);
        match s.workers {
            Some(w) => j.num("workers", w as f64),
            None => j.raw("workers", "null"),
        }
        j.num("cycles", s.cycles as f64);
        j.num("app_instructions", s.app_instructions as f64);
        j.num("protocol_instructions", s.protocol_instructions as f64);
        j.num("ipc", s.ipc());
        j.num("handlers", s.handlers as f64);
        j.num("protocol_occupancy_mean", s.protocol_occupancy_mean);
        j.num("protocol_occupancy_peak", s.protocol_occupancy_peak);
        j.raw("dispatch_queue_wait", &dist_json(&s.dispatch_queue_wait));
        j.raw("sdram_queue_wait", &dist_json(&s.sdram_queue_wait));

        let handler_rows: Vec<String> = s
            .handler_occupancy
            .iter_nonzero()
            .map(|(name, count, d)| {
                let mut h = JsonObj::new();
                h.str("kind", name);
                h.num("count", count as f64);
                h.raw("occupancy", &dist_json(d));
                h.finish()
            })
            .collect();
        j.raw("handlers_by_kind", &json_array(&handler_rows));

        let thread_rows: Vec<String> = s.thread_time.iter().map(thread_json).collect();
        j.raw("thread_time", &json_array(&thread_rows));

        let class_rows: Vec<String> = CLASS_NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let mut c = JsonObj::new();
                c.str("class", name);
                c.raw("latency", &hist_json(&s.latency.end_to_end[i]));
                c.finish()
            })
            .collect();
        j.raw("miss_latency_by_class", &json_array(&class_rows));
        j.raw("miss_latency", &dist_json(&s.miss_latency));
        // Classes 2/3 are remote read / remote read-exclusive; the merged
        // histogram is what BENCH_report rows and the archive consume.
        let mut remote = s.latency.end_to_end[2].clone();
        remote.merge(&s.latency.end_to_end[3]);
        j.raw("remote_miss", &hist_json(&remote));

        let phase_rows: Vec<String> = (0..NUM_PHASES)
            .map(|i| {
                let mut p = JsonObj::new();
                p.str("phase", PHASE_NAMES[i]);
                p.raw("all", &dist_json(&s.latency.phases[i]));
                p.raw("remote", &dist_json(&s.latency.phases_remote[i]));
                p.finish()
            })
            .collect();
        j.raw("phases", &json_array(&phase_rows));

        let vnet_rows: Vec<String> = s.vnet_latency.iter().map(dist_json).collect();
        j.raw("vnet_latency", &json_array(&vnet_rows));

        let mut cp = JsonObj::new();
        cp.num("spans", s.critical_path.spans as f64);
        cp.num("total_cycles", s.critical_path.total_cycles as f64);
        for (i, name) in PATH_CAT_NAMES.iter().enumerate() {
            cp.num(&name.replace(' ', "_"), s.critical_path.cycles[i] as f64);
        }
        j.raw("critical_path", &cp.finish());

        j.raw("spatial", &spatial_json(&s.spatial));

        match self.host {
            Some(h) => j.raw("host_profile", &h.to_json()),
            None => j.raw("host_profile", "null"),
        }
        j.finish()
    }
}

/// The spatial hot-spot section as a standalone JSON object — the body of
/// a report's `spatial` key, also written on its own as `hotspots.json` by
/// the quickstart example's `--hotspots` flag.
pub fn spatial_json(sp: &SpatialStats) -> String {
    let mut spat = JsonObj::new();
    spat.raw("enabled", if sp.enabled { "true" } else { "false" });
    spat.num("tracked_events", sp.tracked_events as f64);
    let line_rows: Vec<String> = sp
        .hot_lines
        .iter()
        .map(|h| {
            let mut l = JsonObj::new();
            l.num("line", h.line as f64);
            l.num("home", h.home as f64);
            l.num("weight", h.weight as f64);
            l.num("err", h.err as f64);
            l.str("class", h.class.as_str());
            l.num("reads", h.c.reads as f64);
            l.num("writes", h.c.writes as f64);
            l.num("upgrades", h.c.upgrades as f64);
            l.num("writebacks", h.c.writebacks as f64);
            l.num("invals_sent", h.c.invals_sent as f64);
            l.num("interventions", h.c.interventions as f64);
            l.num("nacks", h.c.nacks as f64);
            l.num("misses", h.c.misses as f64);
            l.num("invals_rx", h.c.invals_rx as f64);
            l.num("interventions_rx", h.c.interventions_rx as f64);
            l.num("peak_sharers", h.c.peak_sharers as f64);
            l.finish()
        })
        .collect();
    spat.raw("hot_lines", &json_array(&line_rows));
    let home_rows: Vec<String> = sp
        .homes
        .iter()
        .map(|h| {
            let mut o = JsonObj::new();
            o.num("node", h.node as f64);
            o.num("handlers", h.handlers as f64);
            o.num("occ_cycles", h.occupancy_cycles as f64);
            o.num("occupancy", sp.home_occ(h));
            o.num("nacks", h.nacks as f64);
            o.raw("queue_wait", &dist_json(&h.queue_wait));
            o.raw("sdram_wait", &dist_json(&h.sdram_wait));
            o.finish()
        })
        .collect();
    spat.raw("homes", &json_array(&home_rows));
    let link_rows: Vec<String> = sp
        .links
        .iter()
        .map(|l| {
            let mut o = JsonObj::new();
            o.num("link", l.link as f64);
            o.str("label", &l.label);
            o.num("busy", l.busy as f64);
            o.num("util", sp.link_util(l));
            o.num("msgs", l.msgs as f64);
            o.num("bytes", l.bytes as f64);
            o.num("retx", l.retx as f64);
            o.finish()
        })
        .collect();
    spat.raw("links", &json_array(&link_rows));
    match sp.peak_home() {
        Some(h) => spat.num("home_occ_peak_node", h.node as f64),
        None => spat.raw("home_occ_peak_node", "null"),
    }
    spat.num("home_occ_peak", sp.peak_home_occ());
    match sp.peak_link() {
        Some(l) => spat.str("link_util_peak_label", &l.label),
        None => spat.raw("link_util_peak_label", "null"),
    }
    spat.num("link_util_peak", sp.peak_link_util());
    spat.finish()
}

/// ASCII stacked bar for one thread's breakdown (30 chars wide).
fn bar(t: &ThreadTime) -> String {
    const WIDTH: u64 = 30;
    let parts = [t.busy, t.memory, t.sync, t.squash, t.fetch_starved, t.other];
    let glyphs = ['#', 'm', 's', 'q', '.', 'o'];
    let total: u64 = parts.iter().sum::<u64>().max(1);
    let mut out = String::with_capacity(WIDTH as usize);
    for (v, g) in parts.iter().zip(glyphs) {
        for _ in 0..(v * WIDTH / total) {
            out.push(g);
        }
    }
    while (out.len() as u64) < WIDTH {
        out.push(' ');
    }
    out
}

fn hist_row(name: &str, h: &Histogram) -> Vec<String> {
    vec![
        name.into(),
        h.count().to_string(),
        format!("{:.1}", h.mean()),
        h.percentile(50.0).to_string(),
        h.percentile(90.0).to_string(),
        h.percentile(95.0).to_string(),
        h.percentile(99.0).to_string(),
        h.max().to_string(),
    ]
}

/// Output style shared by the text and Markdown renderers.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Style {
    Text,
    Markdown,
}

impl Style {
    fn heading(self, out: &mut String, level: usize, title: &str) {
        match self {
            Style::Text => out.push_str(&format!(
                "\n{} {title}\n",
                if level == 1 { "==" } else { "--" }
            )),
            Style::Markdown => out.push_str(&format!("\n{} {title}\n\n", "#".repeat(level))),
        }
    }

    fn para(self, out: &mut String, text: &str) {
        out.push_str(&format!("  {text}\n"));
    }

    fn table(self, out: &mut String, cols: &[&str], rows: &[Vec<String>]) {
        match self {
            Style::Text => {
                // Column widths over header + body.
                let mut w: Vec<usize> = cols.iter().map(|c| c.len()).collect();
                for r in rows {
                    for (i, cell) in r.iter().enumerate() {
                        w[i] = w[i].max(cell.len());
                    }
                }
                let line = |out: &mut String, cells: &[String]| {
                    out.push_str("  ");
                    for (i, cell) in cells.iter().enumerate() {
                        // First column left-aligned, the rest right-aligned.
                        if i == 0 {
                            out.push_str(&format!("{cell:<width$}  ", width = w[i]));
                        } else {
                            out.push_str(&format!("{cell:>width$}  ", width = w[i]));
                        }
                    }
                    while out.ends_with(' ') {
                        out.pop();
                    }
                    out.push('\n');
                };
                line(out, &cols.iter().map(|c| c.to_string()).collect::<Vec<_>>());
                for r in rows {
                    line(out, r);
                }
            }
            Style::Markdown => {
                out.push_str(&format!("| {} |\n", cols.join(" | ")));
                out.push_str(&format!("|{}\n", "---|".repeat(cols.len())));
                for r in rows {
                    out.push_str(&format!("| {} |\n", r.join(" | ")));
                }
            }
        }
    }
}

// -- Hand-rolled JSON helpers ----------------------------------------------

/// Builder for one JSON object; keys appear in insertion order.
struct JsonObj {
    body: String,
}

impl JsonObj {
    fn new() -> JsonObj {
        JsonObj {
            body: String::new(),
        }
    }

    fn key(&mut self, k: &str) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        self.body.push_str(&format!("\"{k}\":"));
    }

    fn str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.body.push('"');
        for c in v.chars() {
            match c {
                '"' => self.body.push_str("\\\""),
                '\\' => self.body.push_str("\\\\"),
                c if (c as u32) < 0x20 => self.body.push_str(&format!("\\u{:04x}", c as u32)),
                c => self.body.push(c),
            }
        }
        self.body.push('"');
    }

    fn num(&mut self, k: &str, v: f64) {
        self.key(k);
        self.body.push_str(&fmt_num(v));
    }

    fn raw(&mut self, k: &str, v: &str) {
        self.key(k);
        self.body.push_str(v);
    }

    fn finish(self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// Format a finite number: integers without a fraction, everything else
/// with enough digits to round-trip the table values.
fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        "0".to_string()
    } else if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

fn json_array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

fn dist_json(d: &Distribution) -> String {
    let mut j = JsonObj::new();
    j.num("count", d.count() as f64);
    j.num("mean", d.mean());
    j.num("stddev", d.stddev());
    j.num("min", d.min() as f64);
    for p in PERCENTILES {
        j.num(&format!("p{}", p as u64), d.percentile(p) as f64);
    }
    j.finish()
}

fn hist_json(h: &Histogram) -> String {
    let mut j = JsonObj::new();
    j.num("count", h.count() as f64);
    j.num("mean", h.mean());
    j.num("min", h.min() as f64);
    for p in PERCENTILES {
        j.num(&format!("p{}", p as u64), h.percentile(p) as f64);
    }
    j.finish()
}

// -- Report parse-back ------------------------------------------------------

/// Percentile summary of one serialized histogram/distribution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParsedHist {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: u64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// Largest sample (p100).
    pub max: u64,
}

impl ParsedHist {
    fn from_json(v: &JsonValue) -> Result<ParsedHist, JsonError> {
        Ok(ParsedHist {
            count: req_u64(v, "count")?,
            mean: req_f64(v, "mean")?,
            min: req_u64(v, "min")?,
            p50: req_u64(v, "p50")?,
            p95: req_u64(v, "p95")?,
            max: req_u64(v, "p100")?,
        })
    }
}

/// One latency phase's mean/count, for the full and remote-only
/// populations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParsedPhase {
    /// Phase name (one of [`PHASE_NAMES`]).
    pub phase: String,
    /// Sample count over all profiled transactions.
    pub all_count: u64,
    /// Mean cycles over all profiled transactions.
    pub all_mean: f64,
    /// Sample count over remote transactions.
    pub remote_count: u64,
    /// Mean cycles over remote transactions.
    pub remote_mean: f64,
}

/// Critical-path attribution parsed back from a report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParsedCriticalPath {
    /// Closed spans the breakdown covers.
    pub spans: u64,
    /// Total critical-path cycles.
    pub total_cycles: u64,
    /// Per-category cycles, in [`PATH_CAT_NAMES`] order.
    pub cycles: Vec<(String, u64)>,
}

/// Host-side engine metrics parsed back from a report's `host_profile`
/// section (wall-clock quantities — *not* guest state; diffs compare them
/// against a noise band, never exactly).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParsedHostProfile {
    /// `"serial"` or `"parallel"`.
    pub engine: String,
    /// Worker threads the run used.
    pub workers: u64,
    /// Epochs executed.
    pub epochs: u64,
    /// Simulated cycles the run advanced.
    pub sim_cycles: u64,
    /// Engine wall-clock in nanoseconds.
    pub wall_ns: u64,
    /// Simulated cycles per wall-clock second.
    pub sim_cycles_per_sec: f64,
    /// Fraction of worker wall-clock spent at epoch barriers.
    pub barrier_wait_frac: f64,
    /// Mean per-epoch tick imbalance across workers (`max/mean`).
    pub imbalance_ratio: f64,
    /// Fraction of node-cycles skipped as provably idle.
    pub skip_efficiency: f64,
}

/// One classified hot line parsed back from a report's `spatial` section.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParsedHotLine {
    /// Raw line address.
    pub line: u64,
    /// Home node of the line.
    pub home: u64,
    /// Estimated tracked-event count.
    pub weight: u64,
    /// Over-estimation bound.
    pub err: u64,
    /// Classifier label ("migratory", "contended", ...).
    pub class: String,
    /// GetS handled at the home.
    pub reads: u64,
    /// GetX + Upgrade handled at the home.
    pub writes: u64,
    /// Invalidations the home sent.
    pub invals_sent: u64,
    /// Interventions the home sent.
    pub interventions: u64,
    /// Requests deferred while the line was busy.
    pub nacks: u64,
}

/// One home node's heat parsed back from a report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParsedHomeHeat {
    /// The home node.
    pub node: u64,
    /// Handlers dispatched there.
    pub handlers: u64,
    /// Cycles its protocol engine / thread was active.
    pub occ_cycles: u64,
    /// Requests it deferred.
    pub nacks: u64,
}

/// One directed link's load parsed back from a report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParsedLinkHeat {
    /// Link id.
    pub link: u64,
    /// Topology label ("n0->r0", "r2->r3.d0", ...).
    pub label: String,
    /// Serialization-busy cycles.
    pub busy: u64,
    /// Messages that crossed the link.
    pub msgs: u64,
    /// Bytes that crossed the link.
    pub bytes: u64,
    /// LLP retransmissions over the link.
    pub retx: u64,
}

/// The spatial hot-spot section parsed back from a report (`None` for
/// schema ≤ 3 documents, which predate it). Every field except the
/// derived `*_peak` fractions is exact guest state: two runs of the same
/// configuration must agree on all of it bit-for-bit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParsedSpatial {
    /// Whether the per-line tracker was armed.
    pub enabled: bool,
    /// Total events the line trackers observed.
    pub tracked_events: u64,
    /// Classified hot lines, heaviest first.
    pub hot_lines: Vec<ParsedHotLine>,
    /// Per-home heat, node order.
    pub homes: Vec<ParsedHomeHeat>,
    /// Per-link load, link-id order.
    pub links: Vec<ParsedLinkHeat>,
    /// Node with the peak protocol occupancy (`None` on a 0-node report).
    pub home_occ_peak_node: Option<u64>,
    /// Peak home occupancy fraction.
    pub home_occ_peak: f64,
    /// Label of the busiest link, if any traffic flowed.
    pub link_util_peak_label: Option<String>,
    /// Peak link busy fraction.
    pub link_util_peak: f64,
}

impl ParsedSpatial {
    fn from_json(v: &JsonValue) -> Result<ParsedSpatial, JsonError> {
        let enabled = v
            .req("enabled")?
            .as_bool()
            .ok_or_else(|| JsonError::new_at("\"enabled\" is not a boolean", 0))?;
        let hot_lines = v
            .req("hot_lines")?
            .as_arr()
            .ok_or_else(|| JsonError::new_at("\"hot_lines\" is not an array", 0))?
            .iter()
            .map(|h| {
                Ok(ParsedHotLine {
                    line: req_u64(h, "line")?,
                    home: req_u64(h, "home")?,
                    weight: req_u64(h, "weight")?,
                    err: req_u64(h, "err")?,
                    class: req_str(h, "class")?,
                    reads: req_u64(h, "reads")?,
                    writes: req_u64(h, "writes")?,
                    invals_sent: req_u64(h, "invals_sent")?,
                    interventions: req_u64(h, "interventions")?,
                    nacks: req_u64(h, "nacks")?,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let homes = v
            .req("homes")?
            .as_arr()
            .ok_or_else(|| JsonError::new_at("\"homes\" is not an array", 0))?
            .iter()
            .map(|h| {
                Ok(ParsedHomeHeat {
                    node: req_u64(h, "node")?,
                    handlers: req_u64(h, "handlers")?,
                    occ_cycles: req_u64(h, "occ_cycles")?,
                    nacks: req_u64(h, "nacks")?,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let links = v
            .req("links")?
            .as_arr()
            .ok_or_else(|| JsonError::new_at("\"links\" is not an array", 0))?
            .iter()
            .map(|l| {
                Ok(ParsedLinkHeat {
                    link: req_u64(l, "link")?,
                    label: req_str(l, "label")?,
                    busy: req_u64(l, "busy")?,
                    msgs: req_u64(l, "msgs")?,
                    bytes: req_u64(l, "bytes")?,
                    retx: req_u64(l, "retx")?,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let home_occ_peak_node = match v.req("home_occ_peak_node")? {
            JsonValue::Null => None,
            n => Some(n.as_u64().ok_or_else(|| {
                JsonError::new_at("\"home_occ_peak_node\" is not an integer or null", 0)
            })?),
        };
        let link_util_peak_label = match v.req("link_util_peak_label")? {
            JsonValue::Null => None,
            s => Some(
                s.as_str()
                    .ok_or_else(|| {
                        JsonError::new_at("\"link_util_peak_label\" is not a string or null", 0)
                    })?
                    .to_string(),
            ),
        };
        Ok(ParsedSpatial {
            enabled,
            tracked_events: req_u64(v, "tracked_events")?,
            hot_lines,
            homes,
            links,
            home_occ_peak_node,
            home_occ_peak: req_f64(v, "home_occ_peak")?,
            link_util_peak_label,
            link_util_peak: req_f64(v, "link_util_peak")?,
        })
    }
}

/// One per-context stall-taxonomy row parsed back from a report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParsedThreadTime {
    /// Node the context lives on.
    pub node: u64,
    /// Context index within the node.
    pub ctx: u64,
    /// The six Fig. 5/7 buckets: busy, memory, sync, squash,
    /// fetch-starved, other (cycles).
    pub buckets: [u64; 6],
    /// Total cycles the pipeline ran.
    pub cycles: u64,
}

/// A run report loaded back from its [`Report::json`] serialization — the
/// substrate the cross-run archive and the report-diff engine operate on.
///
/// Guest metrics (cycles, instruction counts, latency decomposition,
/// critical path, stall taxonomy) are deterministic simulator outputs:
/// two runs of the same configuration must agree on them *exactly*, and
/// any drift is a determinism regression. The optional
/// [`ParsedHostProfile`] carries wall-clock quantities that legitimately
/// vary run to run.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedReport {
    /// Schema version of the source document.
    pub schema_version: u64,
    /// Machine model label.
    pub model: String,
    /// Application name.
    pub app: String,
    /// Machine size.
    pub nodes: u64,
    /// Application threads per node.
    pub ways: u64,
    /// Pinned worker count (host-side; `None` when unpinned).
    pub workers: Option<u64>,
    /// Parallel execution time in cycles.
    pub cycles: u64,
    /// Committed application instructions.
    pub app_instructions: u64,
    /// Committed protocol-thread instructions.
    pub protocol_instructions: u64,
    /// Application IPC as serialized (4 decimal places).
    pub ipc: f64,
    /// Coherence handlers executed.
    pub handlers: u64,
    /// Mean per-node protocol occupancy.
    pub protocol_occupancy_mean: f64,
    /// Peak per-node protocol occupancy.
    pub protocol_occupancy_peak: f64,
    /// End-to-end miss latency (MSHR alloc→free).
    pub miss_latency: ParsedHist,
    /// Merged remote read/read-exclusive latency (`None` for schema-2
    /// documents, which predate the key).
    pub remote_miss: Option<ParsedHist>,
    /// The 8-phase latency decomposition.
    pub phases: Vec<ParsedPhase>,
    /// Per-context stall taxonomy (Fig. 5/7).
    pub thread_time: Vec<ParsedThreadTime>,
    /// Critical-path attribution over causal spans.
    pub critical_path: ParsedCriticalPath,
    /// Host engine profile, when the run had telemetry on.
    pub host: Option<ParsedHostProfile>,
    /// Spatial hot-spot section (`None` for schema ≤ 3 documents, which
    /// predate it).
    pub spatial: Option<ParsedSpatial>,
    /// The full parsed document, for consumers needing more than the
    /// extracted fields.
    pub raw: JsonValue,
}

fn req_u64(v: &JsonValue, key: &str) -> Result<u64, JsonError> {
    v.req(key)?
        .as_u64()
        .ok_or_else(|| JsonError::new_at(format!("{key:?} is not a non-negative integer"), 0))
}

fn req_f64(v: &JsonValue, key: &str) -> Result<f64, JsonError> {
    v.req(key)?
        .as_f64()
        .ok_or_else(|| JsonError::new_at(format!("{key:?} is not a number"), 0))
}

fn req_str(v: &JsonValue, key: &str) -> Result<String, JsonError> {
    Ok(v.req(key)?
        .as_str()
        .ok_or_else(|| JsonError::new_at(format!("{key:?} is not a string"), 0))?
        .to_string())
}

impl ParsedReport {
    /// Parse one [`Report::json`] document back into its key metrics.
    pub fn from_json(text: &str) -> Result<ParsedReport, JsonError> {
        let raw = crate::json::parse(text)?;
        let schema_version = req_u64(&raw, "schema_version")?;
        if schema_version < MIN_REPORT_SCHEMA_VERSION as u64
            || schema_version > REPORT_SCHEMA_VERSION as u64
        {
            return Err(JsonError::new_at(
                format!(
                    "unsupported report schema {schema_version} (reader handles \
                     {MIN_REPORT_SCHEMA_VERSION}..={REPORT_SCHEMA_VERSION})"
                ),
                0,
            ));
        }
        let workers = match raw.req("workers")? {
            JsonValue::Null => None,
            v => Some(
                v.as_u64()
                    .ok_or_else(|| JsonError::new_at("\"workers\" is not an integer or null", 0))?,
            ),
        };
        let phases = raw
            .req("phases")?
            .as_arr()
            .ok_or_else(|| JsonError::new_at("\"phases\" is not an array", 0))?
            .iter()
            .map(|p| {
                let all = p.req("all")?;
                let remote = p.req("remote")?;
                Ok(ParsedPhase {
                    phase: req_str(p, "phase")?,
                    all_count: req_u64(all, "count")?,
                    all_mean: req_f64(all, "mean")?,
                    remote_count: req_u64(remote, "count")?,
                    remote_mean: req_f64(remote, "mean")?,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let thread_time = raw
            .req("thread_time")?
            .as_arr()
            .ok_or_else(|| JsonError::new_at("\"thread_time\" is not an array", 0))?
            .iter()
            .map(|t| {
                Ok(ParsedThreadTime {
                    node: req_u64(t, "node")?,
                    ctx: req_u64(t, "ctx")?,
                    buckets: [
                        req_u64(t, "busy")?,
                        req_u64(t, "memory")?,
                        req_u64(t, "sync")?,
                        req_u64(t, "squash")?,
                        req_u64(t, "fetch_starved")?,
                        req_u64(t, "other")?,
                    ],
                    cycles: req_u64(t, "cycles")?,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let cp = raw.req("critical_path")?;
        let critical_path = ParsedCriticalPath {
            spans: req_u64(cp, "spans")?,
            total_cycles: req_u64(cp, "total_cycles")?,
            cycles: PATH_CAT_NAMES
                .iter()
                .map(|name| {
                    let key = name.replace(' ', "_");
                    Ok((name.to_string(), req_u64(cp, &key)?))
                })
                .collect::<Result<Vec<_>, JsonError>>()?,
        };
        let host = match raw.req("host_profile")? {
            JsonValue::Null => None,
            h => Some(ParsedHostProfile {
                engine: req_str(h, "engine")?,
                workers: req_u64(h, "workers")?,
                epochs: req_u64(h, "epochs")?,
                sim_cycles: req_u64(h, "sim_cycles")?,
                wall_ns: req_u64(h, "wall_ns")?,
                sim_cycles_per_sec: req_f64(h, "sim_cycles_per_sec")?,
                barrier_wait_frac: req_f64(h, "barrier_wait_frac")?,
                imbalance_ratio: req_f64(h, "imbalance_ratio")?,
                skip_efficiency: req_f64(h, "skip_efficiency")?,
            }),
        };
        Ok(ParsedReport {
            schema_version,
            model: req_str(&raw, "model")?,
            app: req_str(&raw, "app")?,
            nodes: req_u64(&raw, "nodes")?,
            ways: req_u64(&raw, "ways")?,
            workers,
            cycles: req_u64(&raw, "cycles")?,
            app_instructions: req_u64(&raw, "app_instructions")?,
            protocol_instructions: req_u64(&raw, "protocol_instructions")?,
            ipc: req_f64(&raw, "ipc")?,
            handlers: req_u64(&raw, "handlers")?,
            protocol_occupancy_mean: req_f64(&raw, "protocol_occupancy_mean")?,
            protocol_occupancy_peak: req_f64(&raw, "protocol_occupancy_peak")?,
            miss_latency: ParsedHist::from_json(raw.req("miss_latency")?)?,
            remote_miss: match raw.get("remote_miss") {
                Some(v) => Some(ParsedHist::from_json(v)?),
                None => None,
            },
            phases,
            thread_time,
            critical_path,
            host,
            spatial: match raw.get("spatial") {
                Some(v) => Some(ParsedSpatial::from_json(v)?),
                None => None,
            },
            raw,
        })
    }

    /// Aggregate stall taxonomy: the six Fig. 5/7 buckets summed over all
    /// contexts (busy, memory, sync, squash, fetch-starved, other).
    pub fn stall_totals(&self) -> [u64; 6] {
        let mut out = [0u64; 6];
        for t in &self.thread_time {
            for (o, b) in out.iter_mut().zip(t.buckets) {
                *o += b;
            }
        }
        out
    }
}

fn thread_json(t: &ThreadTime) -> String {
    let mut j = JsonObj::new();
    j.num("node", t.node as f64);
    j.num("ctx", t.ctx as f64);
    j.num("busy", t.busy as f64);
    j.num("memory", t.memory as f64);
    j.num("sync", t.sync as f64);
    j.num("squash", t.squash as f64);
    j.num("fetch_starved", t.fetch_starved as f64);
    j.num("other", t.other as f64);
    j.num("cycles", t.cycles as f64);
    j.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> RunStats {
        let cfg = smtp_types::SystemConfig::new(smtp_types::MachineModel::SMTp, 1, 1);
        let mut sys = crate::System::new(cfg, smtp_workloads::AppKind::Fft, 0.05);
        sys.run(2_000_000).expect("run must complete")
    }

    #[test]
    fn all_formats_render_nonempty() {
        let s = stats();
        let r = Report::new(&s);
        let text = r.text();
        assert!(text.contains("Protocol occupancy"));
        assert!(text.contains("Per-thread time breakdown"));
        let md = r.markdown();
        assert!(md.contains("| parameter | value |"));
        let json = r.json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"miss_latency\""));
    }

    #[test]
    fn json_is_structurally_valid() {
        let s = stats();
        let json = Report::new(&s).json();
        // Brace/bracket balance and quote parity outside strings — a cheap
        // structural check that catches missing commas and truncation.
        let (mut depth, mut brackets, mut in_str, mut esc) = (0i64, 0i64, false, false);
        for c in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' if !in_str => depth += 1,
                '}' if !in_str => depth -= 1,
                '[' if !in_str => brackets += 1,
                ']' if !in_str => brackets -= 1,
                _ => {}
            }
            assert!(depth >= 0 && brackets >= 0);
        }
        assert_eq!(depth, 0);
        assert_eq!(brackets, 0);
        assert!(!in_str);
    }

    #[test]
    fn deterministic_output() {
        let a = stats();
        let b = stats();
        assert_eq!(Report::new(&a).json(), Report::new(&b).json());
        assert_eq!(Report::new(&a).text(), Report::new(&b).text());
    }

    #[test]
    fn schema_version_and_host_profile_section() {
        let s = stats();
        let without = Report::new(&s).json();
        assert!(without.starts_with(&format!("{{\"schema_version\":{REPORT_SCHEMA_VERSION},")));
        assert!(without.contains("\"host_profile\":null"));

        let cfg = smtp_types::SystemConfig::new(smtp_types::MachineModel::SMTp, 1, 1);
        let mut sys = crate::System::new(cfg, smtp_workloads::AppKind::Fft, 0.05);
        sys.enable_host_telemetry();
        let stats = sys.run(2_000_000).expect("run must complete");
        let prof = sys.take_host_profile().expect("telemetry was on");
        let r = Report::with_host_profile(&stats, &prof);
        assert!(r.text().contains("Host engine profile"));
        assert!(r.markdown().contains("Host engine profile"));
        let json = r.json();
        assert!(json.contains("\"host_profile\":{\"engine\":\"serial\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    fn spatial_stats() -> RunStats {
        let cfg = smtp_types::SystemConfig::new(smtp_types::MachineModel::SMTp, 4, 2);
        let mut sys = crate::System::new(cfg, smtp_workloads::AppKind::Fft, 0.05);
        sys.enable_spatial(32);
        sys.run(20_000_000).expect("run must complete")
    }

    #[test]
    fn spatial_section_renders_and_parses_back() {
        let s = spatial_stats();
        assert!(s.spatial.enabled);
        assert!(!s.spatial.hot_lines.is_empty(), "FFT must touch lines");
        assert!(!s.spatial.links.is_empty(), "4-node run must use the NoC");
        let r = Report::new(&s);
        let text = r.text();
        assert!(text.contains("Hot spots"));
        assert!(text.contains("tracked events"));
        let json = r.json();
        assert!(json.contains("\"spatial\":{\"enabled\":true"));

        let p = ParsedReport::from_json(&json).expect("own JSON must parse");
        let sp = p.spatial.expect("schema v4 report carries spatial");
        assert!(sp.enabled);
        assert_eq!(sp.hot_lines.len(), s.spatial.hot_lines.len());
        assert_eq!(sp.homes.len(), 4);
        assert_eq!(sp.links.len(), s.spatial.links.len());
        let hl = &sp.hot_lines[0];
        let exp = &s.spatial.hot_lines[0];
        assert_eq!(hl.line, exp.line);
        assert_eq!(hl.home, exp.home as u64);
        assert_eq!(hl.weight, exp.weight);
        assert_eq!(hl.class, exp.class.as_str());
        assert_eq!(
            sp.home_occ_peak_node,
            s.spatial.peak_home().map(|h| h.node as u64)
        );
        assert_eq!(
            sp.link_util_peak_label,
            s.spatial.peak_link().map(|l| l.label.clone())
        );
    }

    #[test]
    fn summary_surfaces_spatial_peaks() {
        let s = spatial_stats();
        let sum = Report::new(&s).summary();
        assert!(sum.contains("hottest home n"));
        assert!(sum.contains("hottest link"));
        assert!(sum.contains("hottest line 0x"));
        // One screen, not a full report.
        assert!(sum.lines().count() <= 8, "summary must stay short:\n{sum}");
    }

    #[test]
    fn parser_tolerates_reports_predating_spatial() {
        // A schema-3 document has no "spatial" key; the reader must return
        // None rather than erroring, mirroring the remote_miss tolerance.
        let s = stats();
        let json = Report::new(&s).json();
        let v3 = json
            .replacen(
                &format!("\"schema_version\":{REPORT_SCHEMA_VERSION}"),
                "\"schema_version\":3",
                1,
            )
            .replace(&spatial_json_slice(&json), "");
        let p = ParsedReport::from_json(&v3).expect("legacy document must parse");
        assert_eq!(p.schema_version, 3);
        assert!(p.spatial.is_none());
    }

    /// The exact `,"spatial":{...}` byte range of a report JSON document,
    /// found by brace matching so the legacy-tolerance test can excise it.
    fn spatial_json_slice(json: &str) -> String {
        let start = json.find(",\"spatial\":{").expect("section present");
        let mut depth = 0usize;
        for (i, c) in json[start..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return json[start..=start + i].to_string();
                    }
                }
                _ => {}
            }
        }
        panic!("unbalanced spatial object");
    }
}
