//! Structured run failures: what used to be a watchdog `panic!` is now a
//! [`RunError`] carrying a machine-state [`Diagnosis`], so callers can
//! report, retry with a different seed, or assert on the failure class.

use smtp_types::{Cycle, FaultSummary};

/// Why a run failed to complete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunErrorKind {
    /// No component made forward progress across consecutive watchdog
    /// checks (or the cycle budget ran out before quiescence).
    Deadlock,
    /// Protocol/network activity kept churning but no application
    /// instruction committed for an extended period.
    Livelock,
    /// The machine hit a fault it cannot mask: an uncorrectable ECC error
    /// or a violated coherence invariant.
    UnrecoverableFault,
}

impl RunErrorKind {
    /// Short lowercase label.
    pub fn name(self) -> &'static str {
        match self {
            RunErrorKind::Deadlock => "deadlock",
            RunErrorKind::Livelock => "livelock",
            RunErrorKind::UnrecoverableFault => "unrecoverable-fault",
        }
    }
}

/// Machine-state evidence gathered when a run fails: enough to diagnose
/// the stall without re-running under a tracer.
#[derive(Clone, Debug, Default)]
pub struct Diagnosis {
    /// Per-node progress lines (pipeline state, queue depths).
    pub nodes: Vec<String>,
    /// Busy directory lines with every node's view of the line.
    pub busy_lines: Vec<String>,
    /// Oldest still-open miss transactions and where each is stuck.
    pub stuck_transactions: Vec<String>,
    /// Rendered span trees of still-open transactions (only populated when
    /// the run had causal-span analysis enabled): the full causal trail —
    /// messages, handlers, SDRAM accesses — each wedged transaction
    /// completed before it stopped making progress.
    pub open_spans: Vec<String>,
    /// Most recent trace events from the diagnostics ring.
    pub recent_events: Vec<String>,
    /// Injected-fault and recovery counters at failure time.
    pub faults: FaultSummary,
}

impl Diagnosis {
    /// Whether any evidence was captured.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
            && self.busy_lines.is_empty()
            && self.stuck_transactions.is_empty()
            && self.recent_events.is_empty()
    }
}

impl std::fmt::Display for Diagnosis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for line in &self.nodes {
            writeln!(f, "  {line}")?;
        }
        for line in &self.busy_lines {
            writeln!(f, "  {line}")?;
        }
        if !self.stuck_transactions.is_empty() {
            writeln!(f, "  open transactions:")?;
            for line in &self.stuck_transactions {
                writeln!(f, "    {line}")?;
            }
        }
        if !self.open_spans.is_empty() {
            writeln!(f, "  open span trees:")?;
            for tree in &self.open_spans {
                for line in tree.lines() {
                    writeln!(f, "    {line}")?;
                }
            }
        }
        if self.faults.any() {
            writeln!(f, "  fault counters: {:?}", self.faults)?;
        }
        if !self.recent_events.is_empty() {
            writeln!(f, "  last {} trace events:", self.recent_events.len())?;
            for line in &self.recent_events {
                writeln!(f, "    {line}")?;
            }
        }
        Ok(())
    }
}

/// A failed run: the failure class, when it was detected, a one-line
/// summary, and the gathered machine-state evidence.
#[derive(Clone, Debug)]
pub struct RunError {
    /// Failure class.
    pub kind: RunErrorKind,
    /// Cycle at which the failure was detected.
    pub cycle: Cycle,
    /// One-line human-readable summary.
    pub message: String,
    /// Machine-state evidence (boxed: the error travels through every
    /// `Result` in the run path, the evidence is only read on failure).
    pub diagnosis: Box<Diagnosis>,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} at cycle {}: {}",
            self.kind.name(),
            self.cycle,
            self.message
        )?;
        write!(f, "{}", self.diagnosis)
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_kind_cycle_and_evidence() {
        let err = RunError {
            kind: RunErrorKind::Deadlock,
            cycle: 12_345,
            message: "no forward progress for 32768 cycles".to_string(),
            diagnosis: Box::new(Diagnosis {
                nodes: vec!["NodeId(0): finished=false".to_string()],
                busy_lines: vec!["busy LineAddr(0x80) BusyExcl".to_string()],
                stuck_transactions: vec!["line 0x80 stuck at ReqSent".to_string()],
                open_spans: vec!["span S0.1 line 0x80".to_string()],
                recent_events: vec!["{\"ev\":\"net_inject\"}".to_string()],
                faults: FaultSummary::default(),
            }),
        };
        let s = err.to_string();
        assert!(s.contains("deadlock at cycle 12345"));
        assert!(s.contains("no forward progress"));
        assert!(s.contains("busy LineAddr"));
        assert!(s.contains("stuck at ReqSent"));
        assert!(s.contains("span S0.1"));
        assert!(s.contains("net_inject"));
    }

    #[test]
    fn kind_names() {
        assert_eq!(RunErrorKind::Deadlock.name(), "deadlock");
        assert_eq!(RunErrorKind::Livelock.name(), "livelock");
        assert_eq!(
            RunErrorKind::UnrecoverableFault.name(),
            "unrecoverable-fault"
        );
    }
}
