//! The SMTp system simulator: node assembly for the five machine models of
//! paper Table 4, the global cycle loop, and the experiment harness that
//! regenerates every table and figure of the paper's evaluation.
//!
//! A [`Node`] wires together one SMT pipeline, its cache hierarchy, the
//! directory for lines homed at the node, the SDRAM, the network
//! interface, and — depending on the [`smtp_types::MachineModel`] — either
//! an embedded dual-issue protocol engine (`Base`, `Int*`) or the
//! [`node::DispatchUnit`] that feeds coherence handlers to the SMT
//! **protocol thread** (`SMTp`).
//!
//! A [`System`] owns the nodes, the interconnect and the global
//! synchronization manager and advances everything on a single CPU-cycle
//! clock until the application completes.

pub mod engine;
pub mod error;
pub mod experiment;
pub mod json;
pub mod node;
pub mod report;
pub mod stats;
pub mod system;

pub use engine::{EngineKind, EngineTuning};
pub use error::{Diagnosis, RunError, RunErrorKind};
pub use experiment::{build_system, run_experiment, try_run_experiment, ExperimentConfig};
pub use json::{JsonError, JsonValue};
pub use node::Node;
pub use report::{
    spatial_json, ParsedCriticalPath, ParsedHist, ParsedHomeHeat, ParsedHostProfile, ParsedHotLine,
    ParsedLinkHeat, ParsedPhase, ParsedReport, ParsedSpatial, ParsedThreadTime, Report,
    MIN_REPORT_SCHEMA_VERSION, REPORT_SCHEMA_VERSION,
};
pub use stats::{RunStats, ThreadTime};
pub use system::System;
