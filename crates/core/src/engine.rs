//! Execution engines: how the machine's cycle loop is driven.
//!
//! Two interchangeable backends produce bit-identical results:
//!
//! * [`EngineKind::Serial`] — the reference loop in
//!   [`System::run`](crate::System::run): every node ticked in index order,
//!   one cycle at a time. Simple, and the oracle the parallel engine is
//!   tested against.
//! * [`EngineKind::Parallel`] — the epoch engine in this module. Nodes are
//!   partitioned across worker threads and advanced independently for
//!   *epochs* of `lookahead` cycles, where the lookahead is the minimum
//!   cross-node message latency ([`smtp_noc::Network::min_latency`]):
//!   within one epoch no message injected by any node can arrive at
//!   another, so node interactions are confined to epoch barriers where
//!   the coordinator replays message injections and pre-distributes the
//!   next epoch's arrivals.
//!
//! Determinism is preserved by three mechanisms:
//!
//! 1. **Capture/replay of observability streams.** Trace events and
//!    profiler operations emitted on worker threads are captured into
//!    thread-local buffers tagged with their serial position
//!    ([`smtp_types::capture::CapturePoint`]) and replayed by the
//!    coordinator in a stable merge at each barrier, recreating the serial
//!    engine's exact stream.
//! 2. **A position-gated synchronization fabric.** The shared
//!    [`SyncManager`] is order-sensitive (barrier arrivals, flag stores),
//!    so workers publish their current `(cycle, node)` position and a sync
//!    operation waits until every other worker has advanced past it —
//!    imposing the serial engine's lexicographic order on the fabric
//!    without locking nodes to each other the rest of the time. Each
//!    worker always advances the lowest-positioned node it owns, so the
//!    globally lowest operation can never be waiting on a higher one.
//! 3. **Epoch cuts on every schedule the serial loop observes.** Epochs
//!    end at watchdog multiples, invariant-check multiples, metrics-sample
//!    cycles and `max_cycles`, so every check runs at the same cycle, on
//!    the same machine state, in the same order as the serial loop.
//!
//! The engine also skips provably idle cycles: after each tick a node
//! reports a conservative bound ([`Node::next_activity`]) below which
//! every tick would be a pure stall tick, and the worker jumps straight to
//! the bound (clamped to the next scheduled delivery and the epoch end),
//! bulk-applying the skipped bookkeeping. Fault-armed nodes never skip,
//! and the cut schedule above keeps watchdog, invariant and sampler ticks
//! exact.

use crate::error::{RunError, RunErrorKind};
use crate::node::Node;
use crate::stats::RunStats;
use crate::system::{coherence_violation, System, WATCHDOG_INTERVAL};
use smtp_isa::{SyncCond, SyncEnv, SyncOp, SyncOutcome};
use smtp_noc::Msg;
use smtp_trace::{
    take_captured_events, CapturedEvent, HostPhase, HostProfile, LaneProfile, PhaseTimer,
};
use smtp_types::capture::{self, lane_inject, lane_tick, LANE_DELIVER};
use smtp_types::{take_captured_prof_ops, CapturePoint, Ctx, Cycle, Histogram, NodeId, ProfOp};
use smtp_workloads::SyncManager;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

/// Which execution engine drives the cycle loop. Both produce bit-identical
/// statistics, trace streams and fault-injection behavior; the choice is
/// purely about wall-clock speed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineKind {
    /// The reference loop: one cycle at a time, nodes in index order.
    #[default]
    Serial,
    /// The epoch engine: nodes partitioned across worker threads,
    /// synchronized at lookahead barriers, with idle-cycle skipping.
    Parallel,
}

impl std::str::FromStr for EngineKind {
    type Err = String;
    fn from_str(s: &str) -> Result<EngineKind, String> {
        match s {
            "serial" => Ok(EngineKind::Serial),
            "parallel" => Ok(EngineKind::Parallel),
            other => Err(format!("unknown engine {other:?} (serial|parallel)")),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineKind::Serial => write!(f, "serial"),
            EngineKind::Parallel => write!(f, "parallel"),
        }
    }
}

/// Bits reserved for the node index in a packed worker position.
const NODE_BITS: u32 = 12;

/// Pack a `(cycle, node)` position into one atomic word, ordered like the
/// serial engine's lexicographic `(cycle, node index)` tick order.
fn pack(cycle: Cycle, node: usize) -> u64 {
    (cycle << NODE_BITS) | node as u64
}

/// Next multiple of `m` strictly greater than `x`.
fn next_multiple(x: Cycle, m: Cycle) -> Cycle {
    (x / m + 1) * m
}

/// The shared synchronization fabric plus per-worker position words.
struct Gate {
    positions: Vec<AtomicU64>,
    sync: Mutex<SyncManager>,
}

/// One worker's view of the gate for the node it is currently ticking.
/// Implements [`SyncEnv`] by waiting until every other worker has advanced
/// past this position, then forwarding to the real manager — which applies
/// synchronization operations in exactly the serial engine's order.
struct GateRef<'a> {
    gate: &'a Gate,
    me: usize,
    pos: u64,
}

impl GateRef<'_> {
    fn wait_turn(&self) {
        let mut spins = 0u32;
        loop {
            let blocked = self
                .gate
                .positions
                .iter()
                .enumerate()
                .any(|(i, p)| i != self.me && p.load(Ordering::Acquire) <= self.pos);
            if !blocked {
                return;
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

impl SyncEnv for GateRef<'_> {
    fn poll(&mut self, node: NodeId, ctx: Ctx, cond: SyncCond) -> bool {
        self.wait_turn();
        self.gate.sync.lock().unwrap().poll(node, ctx, cond)
    }

    fn sync_store(&mut self, node: NodeId, ctx: Ctx, op: SyncOp) -> SyncOutcome {
        self.wait_turn();
        self.gate.sync.lock().unwrap().sync_store(node, ctx, op)
    }
}

/// The coordinator's instructions for the next epoch.
#[derive(Clone, Copy)]
struct WindowPlan {
    start: Cycle,
    end: Cycle,
    stop: bool,
}

/// One recorded outbox message: node `node` pushed message `slot` of its
/// tick at `cycle`, asking for injection at `at`.
struct InjectRec {
    cycle: Cycle,
    node: usize,
    slot: u32,
    at: Cycle,
    msg: Msg,
}

/// Everything the workers hand the coordinator at an epoch barrier.
struct Harvest {
    events: Vec<CapturedEvent>,
    prof: Vec<(CapturePoint, ProfOp)>,
    injects: Vec<InjectRec>,
    /// Per node: first cycle X such that the node has been quiescent from
    /// the end of tick `X-1` onward (`None` while active).
    quiet_since: Vec<Option<Cycle>>,
    /// Per node: first cycle at whose tick-end the application threads had
    /// all finished.
    finished_at: Vec<Option<Cycle>>,
    /// Structured failure recorded mid-epoch (1-node machine emitting a
    /// network message), with the serial cycle it would surface at.
    error: Option<(Cycle, String)>,
    /// Per worker, for the epoch just finished: `(node ticks executed,
    /// node-cycles idle-skipped, tick-phase nanoseconds)`. The tick
    /// nanoseconds are zero when host telemetry is off; the counters are
    /// always maintained (two integer adds per event).
    wstats: Vec<(u64, u64, u64)>,
}

/// A per-node delivery: `(arrival cycle, capture slot, message)`.
type Delivery = (Cycle, u32, Msg);

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    me: usize,
    lo: usize,
    hi: usize,
    cells: &[Mutex<Node>],
    gate: &Gate,
    plan: &Mutex<WindowPlan>,
    inboxes: &[Mutex<VecDeque<Delivery>>],
    harvest: &Mutex<Harvest>,
    barrier: &Barrier,
    single_node: bool,
    telem: bool,
    lanes_out: &Mutex<Vec<(usize, LaneProfile)>>,
) {
    capture::begin((0, 0, 0));
    let count = hi - lo;
    // Host telemetry: a handful of clock stamps per *epoch*, so the
    // per-tick hot path is untouched. The opening barrier wait is the
    // "departure" wait (blocked on the coordinator publishing the next
    // window), the closing one the "arrival" wait (blocked on sibling
    // stragglers); gate spin-waits happen mid-tick and are charged to
    // the tick phase.
    let mut timer = telem.then(|| PhaseTimer::new(HostPhase::BarrierDepart));
    // Freeze bound from the last real tick (0 = none): lets a node stay
    // frozen across epoch barriers instead of re-ticking every epoch.
    let mut hints: Vec<Cycle> = vec![0; count];
    let mut inbox: Vec<VecDeque<Delivery>> = (0..count).map(|_| VecDeque::new()).collect();
    let mut quiet: Vec<Option<Cycle>> = vec![None; count];
    let mut finished: Vec<Option<Cycle>> = vec![None; count];
    let mut injects: Vec<InjectRec> = Vec::new();
    let mut scratch: Vec<(Cycle, Msg)> = Vec::new();
    let mut heap: BinaryHeap<Reverse<(Cycle, usize)>> = BinaryHeap::new();
    loop {
        barrier.wait();
        let p = *plan.lock().unwrap();
        if p.stop {
            break;
        }
        if let Some(t) = &mut timer {
            t.switch(HostPhase::Tick);
        }
        let mut ticks: u64 = 0;
        let mut skipped: u64 = 0;
        // Pull this epoch's pre-distributed deliveries and pin the owned
        // nodes for the whole window: nothing else touches them until the
        // closing barrier, so locking once here keeps the per-tick loop
        // free of lock traffic.
        let mut guards: Vec<_> = (lo..hi).map(|g| cells[g].lock().unwrap()).collect();
        for g in lo..hi {
            inbox[g - lo].append(&mut inboxes[g].lock().unwrap());
        }
        // Seed the schedule, extending freeze certificates across the
        // barrier: a node frozen past the epoch start skips straight to
        // its bound (clamped to its first delivery and the epoch end).
        heap.clear();
        for g in lo..hi {
            let i = g - lo;
            let mut at = p.start;
            let node = &mut *guards[i];
            // The previous epoch's retraction window has passed.
            node.clear_fault_snapshots();
            if hints[i] > at {
                let cap = hints[i]
                    .min(p.end)
                    .min(inbox[i].front().map_or(Cycle::MAX, |d| d.0));
                if cap > at {
                    node.skip_idle(at, cap);
                    skipped += cap - at;
                    at = cap;
                }
            }
            heap.push(Reverse((at, g)));
        }
        // Advance the lowest-positioned owned node until the epoch ends.
        let mut failed = false;
        while let Some(&Reverse((c, g))) = heap.peek() {
            if c >= p.end || failed {
                break;
            }
            heap.pop();
            let i = g - lo;
            gate.positions[me].store(pack(c, g), Ordering::Release);
            let node = &mut *guards[i];
            // Deliveries for this cycle, at their serial positions.
            while inbox[i].front().is_some_and(|d| d.0 == c) {
                let (cycle, slot, msg) = inbox[i].pop_front().expect("peeked");
                capture::set_point((cycle, LANE_DELIVER, slot));
                node.receive(msg, cycle);
            }
            debug_assert!(
                inbox[i].front().is_none_or(|d| d.0 > c),
                "missed a scheduled delivery"
            );
            capture::set_point((c, lane_tick(g), 0));
            let mut env = GateRef {
                gate,
                me,
                pos: pack(c, g),
            };
            node.tick(c, &mut env);
            ticks += 1;
            node.drain_outbox(&mut scratch);
            if single_node && !scratch.is_empty() {
                // No network to inject into: surface the serial engine's
                // structured failure and freeze the machine at this tick.
                scratch.clear();
                let id = node.id();
                harvest.lock().unwrap().error.get_or_insert_with(|| {
                    (
                        c + 1,
                        format!(
                            "network message emitted on a 1-node machine by {id:?} at cycle {c}"
                        ),
                    )
                });
                failed = true;
            } else {
                for (k, (at, msg)) in scratch.drain(..).enumerate() {
                    injects.push(InjectRec {
                        cycle: c,
                        node: g,
                        slot: k as u32,
                        at,
                        msg,
                    });
                }
            }
            if node.quiescent() {
                if quiet[i].is_none() {
                    quiet[i] = Some(c + 1);
                }
                // This tick may later turn out to lie past the machine's
                // exact quiescence point; snapshot the fault streams so a
                // retraction can rewind their draws too.
                node.snapshot_faults(c + 1);
            } else {
                quiet[i] = None;
            }
            if finished[i].is_none() && node.app_finished() {
                finished[i] = Some(c);
            }
            // Idle-cycle skipping: jump past provably pure stall ticks.
            hints[i] = 0;
            let mut next = c + 1;
            if !failed {
                if let Some(b) = node.next_activity(c) {
                    hints[i] = b;
                    let cap = b
                        .min(p.end)
                        .min(inbox[i].front().map_or(Cycle::MAX, |d| d.0));
                    if cap > next {
                        node.skip_idle(next, cap);
                        skipped += cap - next;
                        next = cap;
                    }
                }
            }
            heap.push(Reverse((next, g)));
        }
        drop(guards);
        gate.positions[me].store(pack(p.end, 0), Ordering::Release);
        let tick_ns = match &mut timer {
            Some(t) => {
                t.switch(HostPhase::Merge);
                t.epoch_phase_ns(HostPhase::Tick)
            }
            None => 0,
        };
        {
            let mut h = harvest.lock().unwrap();
            h.events.extend(take_captured_events());
            h.prof.extend(take_captured_prof_ops());
            h.injects.append(&mut injects);
            h.quiet_since[lo..hi].copy_from_slice(&quiet);
            h.finished_at[lo..hi].copy_from_slice(&finished);
            h.wstats[me] = (ticks, skipped, tick_ns);
        }
        if let Some(t) = &mut timer {
            t.switch(HostPhase::BarrierArrive);
        }
        barrier.wait();
        if let Some(t) = &mut timer {
            t.switch(HostPhase::BarrierDepart);
            t.end_epoch();
        }
    }
    capture::end();
    if let Some(t) = timer {
        lanes_out
            .lock()
            .unwrap()
            .push((me, t.finish(&format!("w{me}"))));
    }
}

/// Contiguous chunk of the node range owned by worker `w` of `workers`.
fn chunk(w: usize, workers: usize, n: usize) -> (usize, usize) {
    let base = n / workers;
    let rem = n % workers;
    let lo = w * base + w.min(rem);
    let hi = lo + base + usize::from(w < rem);
    (lo, hi)
}

/// Run the machine to completion on the parallel epoch engine. Produces
/// results bit-identical to [`System::run`] for the same seed and
/// configuration; see the module docs for how.
pub(crate) fn run_parallel(sys: &mut System, max_cycles: Cycle) -> Result<RunStats, RunError> {
    let n = sys.nodes.len();
    if n > (1usize << NODE_BITS) {
        // Positions pack the node index into 12 bits; fall back rather
        // than mis-order the synchronization fabric.
        return sys.run_with(max_cycles, EngineKind::Serial);
    }
    if sys.quiesced() {
        sys.tracer.flush();
        return Ok(sys.collect());
    }
    let lookahead = sys
        .network
        .as_ref()
        .map_or(WATCHDOG_INTERVAL, |net| net.min_latency().max(1));
    // Worker count: pinned by the configuration, or the host's available
    // parallelism; never more workers than nodes. A host-side knob only —
    // results are bit-identical for any count.
    let workers = sys
        .cfg
        .workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .clamp(1, n);
    let single_node = sys.network.is_none();
    let telem = sys.telemetry;
    sys.host_profile = None;
    let mut coord = telem.then(|| PhaseTimer::new(HostPhase::Other));
    let lanes_out: Mutex<Vec<(usize, LaneProfile)>> = Mutex::new(Vec::new());
    let start_now = sys.now;
    let mut epochs: u64 = 0;
    let mut epoch_cycles = Histogram::new();
    let mut barrier_msgs = Histogram::new();
    let mut imbalance_x1000 = Histogram::new();
    let mut ticked_cycles: u64 = 0;
    let mut skipped_cycles: u64 = 0;
    // Heartbeat bookkeeping: cumulative per-worker tick nanoseconds, so a
    // beat can report utilization over the interval since the last beat.
    let mut hb_cum_tick: Vec<u64> = vec![0; workers];
    let mut hb_last_tick: Vec<u64> = vec![0; workers];
    let mut hb_last_wall = Instant::now();
    if let Some(hb) = &mut sys.heartbeat {
        hb.start(start_now);
    }

    // Take the machine apart: nodes behind per-node locks for the workers,
    // the synchronization fabric behind the position gate.
    let cells: Vec<Mutex<Node>> = std::mem::take(&mut sys.nodes)
        .into_iter()
        .map(Mutex::new)
        .collect();
    let placeholder = SyncManager::new(sys.cfg.total_app_threads());
    let gate = Gate {
        positions: (0..workers)
            .map(|_| AtomicU64::new(pack(sys.now, 0)))
            .collect(),
        sync: Mutex::new(std::mem::replace(&mut sys.sync, placeholder)),
    };
    let plan = Mutex::new(WindowPlan {
        start: sys.now,
        end: sys.now,
        stop: false,
    });
    let inboxes: Vec<Mutex<VecDeque<Delivery>>> =
        (0..n).map(|_| Mutex::new(VecDeque::new())).collect();
    let harvest = Mutex::new(Harvest {
        events: Vec::new(),
        prof: Vec::new(),
        injects: Vec::new(),
        quiet_since: vec![None; n],
        finished_at: vec![None; n],
        error: None,
        wstats: vec![(0, 0, 0); workers],
    });
    let barrier = Barrier::new(workers + 1);

    let mut metrics = sys.metrics.take();
    let mut wd = sys.watchdog;
    let mut app_done_at = sys.app_done_at;
    // Exact-quiescence trackers (see the Q computation at the barrier).
    let mut finished_at: Vec<Option<Cycle>> = vec![None; n];
    let mut quiet_since: Vec<Option<Cycle>> = vec![None; n];
    let mut net_empty_from: Cycle = sys.now;
    // Observability captured during the pre-pass belongs to the *next*
    // epoch's cycles; held here until that epoch's barrier merge.
    let mut held_events: Vec<CapturedEvent> = Vec::new();
    let mut held_prof: Vec<(CapturePoint, ProfOp)> = Vec::new();

    let outcome: Result<Cycle, (RunErrorKind, String, Cycle)> = std::thread::scope(|s| {
        for w in 0..workers {
            let (lo, hi) = chunk(w, workers, n);
            let cells = &cells;
            let gate = &gate;
            let plan = &plan;
            let inboxes = &inboxes;
            let harvest = &harvest;
            let barrier = &barrier;
            let lanes_out = &lanes_out;
            s.spawn(move || {
                worker_loop(
                    w,
                    lo,
                    hi,
                    cells,
                    gate,
                    plan,
                    inboxes,
                    harvest,
                    barrier,
                    single_node,
                    telem,
                    lanes_out,
                )
            });
        }

        let mut e_start = sys.now;
        let outcome = loop {
            // Cut the epoch on every schedule the serial loop observes.
            let mut e_end = e_start.saturating_add(lookahead);
            e_end = e_end.min(next_multiple(e_start, WATCHDOG_INTERVAL));
            if let Some(every) = sys.invariant_every {
                e_end = e_end.min(next_multiple(e_start, every));
            }
            if let Some(m) = &metrics {
                e_end = e_end.min(m.sampler.next_due() + 1);
            }
            e_end = e_end.min(max_cycles).max(e_start + 1);
            // Pre-pass: every arrival in this epoch is already in flight
            // (lookahead), so pop and pre-distribute them now, capturing
            // the network's own events at their serial positions.
            if let Some(t) = &mut coord {
                t.switch(HostPhase::Exchange);
            }
            if let Some(net) = &mut sys.network {
                capture::begin((0, 0, 0));
                while let Some(a) = net.next_arrival() {
                    if a >= e_end {
                        break;
                    }
                    let mut k = 0u32;
                    loop {
                        capture::set_point((a, LANE_DELIVER, 2 * k));
                        let Some(msg) = net.pop_arrived(a) else { break };
                        inboxes[msg.dst.idx()]
                            .lock()
                            .unwrap()
                            .push_back((a, 2 * k + 1, msg));
                        net_empty_from = net_empty_from.max(a + 1);
                        k += 1;
                    }
                }
                capture::end();
                held_events.extend(take_captured_events());
                held_prof.extend(take_captured_prof_ops());
            }
            *plan.lock().unwrap() = WindowPlan {
                start: e_start,
                end: e_end,
                stop: false,
            };
            if let Some(t) = &mut coord {
                t.switch(HostPhase::BarrierDepart);
            }
            barrier.wait(); // epoch starts
            if let Some(t) = &mut coord {
                t.switch(HostPhase::BarrierArrive);
            }
            barrier.wait(); // epoch done
            if let Some(t) = &mut coord {
                t.switch(HostPhase::Merge);
            }
            let (mut events, mut prof, mut injects, failure);
            {
                let mut h = harvest.lock().unwrap();
                events = std::mem::take(&mut h.events);
                prof = std::mem::take(&mut h.prof);
                injects = std::mem::take(&mut h.injects);
                for g in 0..n {
                    quiet_since[g] = h.quiet_since[g];
                    if finished_at[g].is_none() {
                        finished_at[g] = h.finished_at[g];
                    }
                }
                failure = h.error.take();
                // Per-epoch counters: epoch length, barrier traffic, work
                // done vs. skipped, and the owned-node tick imbalance
                // across workers.
                epochs += 1;
                epoch_cycles.record(e_end - e_start);
                barrier_msgs.record(injects.len() as u64);
                let mut tick_sum = 0u64;
                let mut tick_max = 0u64;
                for (cum, &(t, sk, ns)) in hb_cum_tick.iter_mut().zip(&h.wstats) {
                    ticked_cycles += t;
                    skipped_cycles += sk;
                    *cum += ns;
                    tick_sum += t;
                    tick_max = tick_max.max(t);
                }
                if workers > 1 && tick_sum > 0 {
                    let mean = tick_sum as f64 / workers as f64;
                    imbalance_x1000.record((tick_max as f64 * 1000.0 / mean) as u64);
                }
            }
            // Replay this epoch's injections in serial order.
            injects.sort_by_key(|r| (r.cycle, r.node, r.slot));
            if let Some(t) = &mut coord {
                t.switch(HostPhase::InjectReplay);
            }
            if let Some(net) = &mut sys.network {
                capture::begin((0, 0, 0));
                for r in injects.drain(..) {
                    capture::set_point((r.cycle, lane_inject(r.node), r.slot));
                    net.inject(r.at.max(r.cycle), r.msg);
                }
                capture::end();
                events.extend(take_captured_events());
                prof.extend(take_captured_prof_ops());
            }
            if let Some(t) = &mut coord {
                t.switch(HostPhase::Quiescence);
            }
            if app_done_at.is_none() && finished_at.iter().all(|f| f.is_some()) {
                app_done_at = finished_at.iter().map(|f| f.expect("checked")).max();
            }
            // Exact serial exit cycle Q, if this epoch reached quiescence:
            // the first loop-top cycle at which the application is done,
            // every node is quiescent and nothing is in flight.
            let in_flight = sys.network.as_ref().map_or(0, |net| net.in_flight_count());
            let q_cycle = match app_done_at {
                Some(done) if in_flight == 0 && quiet_since.iter().all(|q| q.is_some()) => {
                    let mq = quiet_since
                        .iter()
                        .map(|q| q.expect("checked"))
                        .max()
                        .expect("at least one node");
                    Some((done + 1).max(mq).max(net_empty_from).max(e_start))
                }
                _ => None,
            };
            // Merge every capture stream into the serial order and replay.
            // Ticks at or past Q are about to be retracted (the serial
            // loop never ran them), so their events are dropped.
            if let Some(t) = &mut coord {
                t.switch(HostPhase::CaptureReplay);
            }
            events.append(&mut held_events);
            prof.append(&mut held_prof);
            if let Some(q) = q_cycle.filter(|&q| q < e_end && failure.is_none()) {
                events.retain(|e| e.0 .0 < q);
                prof.retain(|o| o.0 .0 < q);
            }
            events.sort_by_key(|e| e.0);
            prof.sort_by_key(|o| o.0);
            sys.tracer.replay_captured(&events);
            sys.profiler.replay_captured(&prof);
            if let Some((cycle, msg)) = failure {
                break Err((RunErrorKind::UnrecoverableFault, msg, cycle));
            }
            if let Some(q) = q_cycle {
                if q < e_end {
                    // The serial loop would have exited at Q, before the
                    // ticks Q..e_end — all idle ticks on a quiescent
                    // machine — and before any end-of-epoch check. Roll
                    // the overshoot back.
                    if let Some(t) = &mut coord {
                        t.switch(HostPhase::Quiescence);
                    }
                    for cell in &cells {
                        cell.lock().unwrap().retract_idle(q, e_end);
                    }
                    break Ok(q);
                }
            }
            // End-of-epoch checks, in exact serial order and on the exact
            // serial state (every node has now reached e_end).
            if let Some(t) = &mut coord {
                t.switch(HostPhase::Checks);
            }
            {
                let guards: Vec<_> = cells.iter().map(|c| c.lock().unwrap()).collect();
                let view: Vec<&Node> = guards.iter().map(|g| &**g).collect();
                if let Some(m) = &mut metrics {
                    m.sample(sys.cfg.app_threads, &view, sys.network.as_ref(), e_end - 1);
                }
                if e_end.is_multiple_of(WATCHDOG_INTERVAL) {
                    if let Some((kind, msg)) = wd.check(
                        &view,
                        sys.network.as_ref(),
                        app_done_at.is_some(),
                        &sys.tracer,
                        e_end,
                    ) {
                        break Err((kind, msg, e_end));
                    }
                }
                if let Some(every) = sys.invariant_every {
                    if e_end.is_multiple_of(every) {
                        if let Some(msg) = coherence_violation(&view) {
                            break Err((RunErrorKind::UnrecoverableFault, msg, e_end));
                        }
                    }
                }
            }
            if e_end >= max_cycles {
                break Err((
                    RunErrorKind::Deadlock,
                    format!(
                        "{:?} {} x{} ({}-way) did not quiesce in {max_cycles} cycles",
                        sys.cfg.model, sys.app, sys.cfg.nodes, sys.cfg.app_threads
                    ),
                    e_end,
                ));
            }
            if q_cycle == Some(e_end) {
                break Ok(e_end);
            }
            if let Some(t) = &mut coord {
                t.switch(HostPhase::Other);
                t.end_epoch();
            }
            if sys.heartbeat.as_ref().is_some_and(|hb| hb.due(e_end)) {
                // Per-worker utilization over the interval since the last
                // beat: tick nanoseconds against coordinator wall-clock.
                let now_wall = Instant::now();
                let dt_ns = now_wall.duration_since(hb_last_wall).as_nanos().max(1) as f64;
                let util: Vec<f64> = (0..workers)
                    .map(|w| (hb_cum_tick[w] - hb_last_tick[w]) as f64 / dt_ns)
                    .collect();
                hb_last_tick.copy_from_slice(&hb_cum_tick);
                hb_last_wall = now_wall;
                let hb = sys.heartbeat.as_mut().expect("dueness checked");
                hb.emit(e_end, "parallel", workers, epochs, &util);
            }
            e_start = e_end;
        };
        *plan.lock().unwrap() = WindowPlan {
            start: 0,
            end: 0,
            stop: true,
        };
        barrier.wait();
        outcome
    });

    // Reassemble the machine.
    sys.nodes = cells
        .into_iter()
        .map(|m| m.into_inner().expect("worker panicked holding a node"))
        .collect();
    sys.sync = gate.sync.into_inner().expect("sync lock poisoned");
    sys.metrics = metrics;
    sys.watchdog = wd;
    sys.app_done_at = app_done_at;
    sys.quiet_nodes = sys.nodes.iter().filter(|n| n.quiescent()).count();
    sys.finished_nodes = sys.nodes.iter().filter(|n| n.app_finished()).count();
    if let Some(t) = coord {
        let end_now = match &outcome {
            Ok(q) => *q,
            Err((_, _, cycle)) => *cycle,
        };
        let mut lanes = vec![t.finish("coord")];
        let mut wl = lanes_out.into_inner().expect("lanes lock poisoned");
        wl.sort_by_key(|&(w, _)| w);
        lanes.extend(wl.into_iter().map(|(_, l)| l));
        sys.host_profile = Some(HostProfile {
            engine: "parallel".to_string(),
            workers,
            epochs,
            lookahead,
            sim_cycles: end_now.saturating_sub(start_now),
            wall_ns: lanes[0].total_ns,
            lanes,
            epoch_cycles,
            barrier_msgs,
            imbalance_x1000,
            ticked_cycles,
            skipped_cycles,
        });
    }
    match outcome {
        Ok(q) => {
            sys.now = q;
            sys.tracer.flush();
            Ok(sys.collect())
        }
        Err((kind, msg, cycle)) => {
            sys.now = cycle;
            sys.tracer.flush();
            Err(sys.run_error(kind, msg))
        }
    }
}
