//! Execution engines: how the machine's cycle loop is driven.
//!
//! Two interchangeable backends produce bit-identical results:
//!
//! * [`EngineKind::Serial`] — the reference loop in
//!   [`System::run`](crate::System::run): every node ticked in index order,
//!   one cycle at a time. Simple, and the oracle the parallel engine is
//!   tested against.
//! * [`EngineKind::Parallel`] — the epoch engine in this module. Nodes are
//!   partitioned across worker threads and advanced independently for
//!   *epochs* bounded so that within one epoch no message injected by any
//!   node can arrive at another; node interactions are confined to epoch
//!   barriers where the coordinator replays message injections and
//!   pre-distributes the next epoch's arrivals.
//!
//! The epoch bound starts from the static minimum cross-node message
//! latency ([`smtp_noc::Network::min_latency`]) and, with
//! [`EngineTuning::adaptive_epochs`] (the default), extends it using what
//! the previous epoch *observed*: every node's freeze certificate
//! ([`Node::next_activity`]) proves the node performs only pure stall
//! ticks — no message injection, no sync-fabric traffic — before its wake
//! bound, and the network knows its next scheduled arrival. No node can
//! therefore inject before `inj_min = max(e_start, min(earliest wake,
//! next arrival))`, and the epoch may safely run to `inj_min +
//! min_latency`. Any node without a certificate (including every node of
//! a fault-armed machine, where certificates are never issued) collapses
//! the bound back to the conservative static one.
//!
//! Determinism is preserved by three mechanisms:
//!
//! 1. **Capture/replay of observability streams.** Trace events and
//!    profiler operations emitted on worker threads are captured into
//!    thread-local buffers tagged with their serial position
//!    ([`smtp_types::capture::CapturePoint`]) and replayed by the
//!    coordinator in a stable merge, recreating the serial engine's exact
//!    stream. Workers park their batches in per-worker harvest slots (no
//!    shared-lock convoy at the barrier), and the coordinator replays an
//!    epoch's merged batch *while the workers tick the next epoch* —
//!    stream reconstruction is double-buffered off the barrier's critical
//!    path, except at cycles where a watchdog check (which reads and
//!    writes the trace stream) must observe it, where the replay stays
//!    synchronous.
//! 2. **A position-gated synchronization fabric.** The shared
//!    [`SyncManager`] is order-sensitive (barrier arrivals, flag stores),
//!    so workers publish their current `(cycle, node)` position and a sync
//!    operation waits until every other worker has advanced past it —
//!    imposing the serial engine's lexicographic order on the fabric
//!    without locking nodes to each other the rest of the time. Each
//!    worker always advances the lowest-positioned node it owns, so the
//!    globally lowest operation can never be waiting on a higher one.
//! 3. **Epoch cuts on every schedule the serial loop observes.** Epochs
//!    end at watchdog multiples, invariant-check multiples, metrics-sample
//!    cycles and `max_cycles`, so every check runs at the same cycle, on
//!    the same machine state, in the same order as the serial loop.
//!
//! The engine also skips provably idle cycles: after each tick a node
//! reports a conservative bound ([`Node::next_activity`]) below which
//! every tick would be a pure stall tick, and the worker jumps straight to
//! the bound (clamped to the next scheduled delivery and the epoch end),
//! bulk-applying the skipped bookkeeping. Fault-armed nodes never skip,
//! and the cut schedule above keeps watchdog, invariant and sampler ticks
//! exact.
//!
//! Partitions are contiguous node ranges delimited by fence posts carried
//! in each epoch's [`WindowPlan`]. With [`EngineTuning::rebalance_every`]
//! nonzero (the default), the coordinator accumulates per-node tick
//! counts and, when the per-worker tick imbalance over a window exceeds
//! [`EngineTuning::rebalance_threshold`], recomputes the fences by a
//! prefix-sum split of the observed per-node load. Ownership moves only
//! at barriers; the cross-epoch per-node state a worker needs (freeze
//! bounds, quiescence and app-finish marks) lives in a shared per-node
//! table written back at every barrier, so a node's state follows it to
//! its new owner. Guest results are bit-identical for every partition:
//! the gate order and the capture positions are partition-independent.

use crate::error::{RunError, RunErrorKind};
use crate::node::Node;
use crate::stats::RunStats;
use crate::system::{coherence_violation, System, WATCHDOG_INTERVAL};
use smtp_isa::{SyncCond, SyncEnv, SyncOp, SyncOutcome};
use smtp_noc::Msg;
use smtp_trace::{
    take_captured_events, CapturedEvent, HostPhase, HostProfile, LaneProfile, PhaseTimer, Tracer,
};
use smtp_types::capture::{self, lane_inject, lane_tick, LANE_DELIVER};
use smtp_types::{
    take_captured_prof_ops, CapturePoint, Ctx, Cycle, Histogram, NodeId, PhaseProfiler, ProfOp,
};
use smtp_workloads::SyncManager;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

/// Which execution engine drives the cycle loop. Both produce bit-identical
/// statistics, trace streams and fault-injection behavior; the choice is
/// purely about wall-clock speed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineKind {
    /// The reference loop: one cycle at a time, nodes in index order.
    #[default]
    Serial,
    /// The epoch engine: nodes partitioned across worker threads,
    /// synchronized at lookahead barriers, with idle-cycle skipping.
    Parallel,
}

impl std::str::FromStr for EngineKind {
    type Err = String;
    fn from_str(s: &str) -> Result<EngineKind, String> {
        match s {
            "serial" => Ok(EngineKind::Serial),
            "parallel" => Ok(EngineKind::Parallel),
            other => Err(format!("unknown engine {other:?} (serial|parallel)")),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineKind::Serial => write!(f, "serial"),
            EngineKind::Parallel => write!(f, "parallel"),
        }
    }
}

/// Host-side tuning knobs for the parallel epoch engine. Strictly a
/// wall-clock matter: guest-visible results are bit-identical for every
/// setting (enforced by the `engine_equivalence` grid).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineTuning {
    /// Extend epochs past the static minimum-latency bound using the
    /// previous epoch's freeze certificates and the network's next
    /// scheduled arrival (see the module docs). Falls back to the static
    /// bound whenever any node lacks a certificate.
    pub adaptive_epochs: bool,
    /// Consider repartitioning nodes across workers every this many
    /// epochs (`0` = never). The partition actually moves only when the
    /// observed per-worker tick imbalance over the window exceeds
    /// [`EngineTuning::rebalance_threshold`].
    pub rebalance_every: u64,
    /// Max/mean per-worker tick ratio above which a due rebalance fires.
    pub rebalance_threshold: f64,
}

impl Default for EngineTuning {
    fn default() -> EngineTuning {
        EngineTuning {
            adaptive_epochs: true,
            rebalance_every: 32,
            rebalance_threshold: 1.1,
        }
    }
}

impl EngineTuning {
    /// The conservative configuration: static epoch bound, fixed
    /// partition. The parallel engine behaved this way before tuning
    /// existed; useful as a differential baseline.
    pub fn conservative() -> EngineTuning {
        EngineTuning {
            adaptive_epochs: false,
            rebalance_every: 0,
            rebalance_threshold: f64::INFINITY,
        }
    }
}

/// Bits reserved for the node index in a packed worker position.
const NODE_BITS: u32 = 12;

/// Pack a `(cycle, node)` position into one atomic word, ordered like the
/// serial engine's lexicographic `(cycle, node index)` tick order.
fn pack(cycle: Cycle, node: usize) -> u64 {
    (cycle << NODE_BITS) | node as u64
}

/// Next multiple of `m` strictly greater than `x`.
fn next_multiple(x: Cycle, m: Cycle) -> Cycle {
    (x / m + 1) * m
}

/// The shared synchronization fabric plus per-worker position words.
struct Gate {
    positions: Vec<AtomicU64>,
    sync: Mutex<SyncManager>,
}

/// One worker's view of the gate for the node it is currently ticking.
/// Implements [`SyncEnv`] by waiting until every other worker has advanced
/// past this position, then forwarding to the real manager — which applies
/// synchronization operations in exactly the serial engine's order.
struct GateRef<'a> {
    gate: &'a Gate,
    me: usize,
    pos: u64,
}

impl GateRef<'_> {
    fn wait_turn(&self) {
        let mut spins = 0u32;
        loop {
            let blocked = self
                .gate
                .positions
                .iter()
                .enumerate()
                .any(|(i, p)| i != self.me && p.load(Ordering::Acquire) <= self.pos);
            if !blocked {
                return;
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

impl SyncEnv for GateRef<'_> {
    fn poll(&mut self, node: NodeId, ctx: Ctx, cond: SyncCond) -> bool {
        self.wait_turn();
        self.gate.sync.lock().unwrap().poll(node, ctx, cond)
    }

    fn sync_store(&mut self, node: NodeId, ctx: Ctx, op: SyncOp) -> SyncOutcome {
        self.wait_turn();
        self.gate.sync.lock().unwrap().sync_store(node, ctx, op)
    }
}

/// The coordinator's instructions for the next epoch, including the
/// partition fence posts: worker `w` owns nodes `fence[w]..fence[w + 1]`
/// for this epoch. Fences only move between epochs (rebalancing).
struct WindowPlan {
    start: Cycle,
    end: Cycle,
    stop: bool,
    fence: Vec<usize>,
}

/// One recorded outbox message: node `node` pushed message `slot` of its
/// tick at `cycle`, asking for injection at `at`.
struct InjectRec {
    cycle: Cycle,
    node: usize,
    slot: u32,
    at: Cycle,
    msg: Msg,
}

/// Per-node engine state shared across epochs and workers. Workers read
/// their owned slice at the opening barrier and write it back at the
/// closing one, so rebalancing can hand a node — state and all — to a
/// different worker between epochs.
struct SharedState {
    /// Per node: first cycle X such that the node has been quiescent from
    /// the end of tick `X-1` onward (`None` while active).
    quiet_since: Vec<Option<Cycle>>,
    /// Per node: first cycle at whose tick-end the application threads had
    /// all finished.
    finished_at: Vec<Option<Cycle>>,
    /// Per node: freeze bound from the last real tick (0 = none): the
    /// node provably performs only pure stall ticks before this cycle.
    /// Lets a node stay frozen across epoch barriers, and feeds the
    /// adaptive epoch bound.
    wake: Vec<Cycle>,
    /// Per node: ticks executed in the epoch just finished (rebalancing
    /// load signal).
    node_ticks: Vec<u64>,
    /// Structured failure recorded mid-epoch (1-node machine emitting a
    /// network message), with the serial cycle it would surface at.
    error: Option<(Cycle, String)>,
    /// Per worker, for the epoch just finished: `(node ticks executed,
    /// node-cycles idle-skipped, tick-phase nanoseconds)`. The tick
    /// nanoseconds are zero when host telemetry is off; the counters are
    /// always maintained (two integer adds per event).
    wstats: Vec<(u64, u64, u64)>,
}

/// One worker's per-epoch batch of captured observability streams and
/// outbox messages. Each worker owns one slot, so parking a batch at the
/// barrier never contends with sibling workers.
#[derive(Default)]
struct WorkerHarvest {
    events: Vec<CapturedEvent>,
    prof: Vec<(CapturePoint, ProfOp)>,
    injects: Vec<InjectRec>,
}

/// A per-node delivery: `(arrival cycle, capture slot, message)`.
type Delivery = (Cycle, u32, Msg);

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    me: usize,
    n: usize,
    cells: &[Mutex<Node>],
    gate: &Gate,
    plan: &Mutex<WindowPlan>,
    inboxes: &[Mutex<VecDeque<Delivery>>],
    state: &Mutex<SharedState>,
    slot: &Mutex<WorkerHarvest>,
    barrier: &Barrier,
    single_node: bool,
    telem: bool,
    lanes_out: &Mutex<Vec<(usize, LaneProfile)>>,
) {
    capture::begin((0, 0, 0));
    // Host telemetry: a handful of clock stamps per *epoch*, so the
    // per-tick hot path is untouched. The opening barrier wait is the
    // "departure" wait (blocked on the coordinator publishing the next
    // window), the closing one the "arrival" wait (blocked on sibling
    // stragglers); gate spin-waits happen mid-tick and are charged to
    // the tick phase.
    let mut timer = telem.then(|| PhaseTimer::new(HostPhase::BarrierDepart));
    // Worker-local per-node scratch, indexed by global node id; only the
    // currently owned slice is live (refreshed from the shared state each
    // epoch, since rebalancing may have moved nodes between workers).
    let mut hints: Vec<Cycle> = vec![0; n];
    let mut inbox: Vec<VecDeque<Delivery>> = (0..n).map(|_| VecDeque::new()).collect();
    let mut quiet: Vec<Option<Cycle>> = vec![None; n];
    let mut finished: Vec<Option<Cycle>> = vec![None; n];
    let mut node_ticks: Vec<u64> = vec![0; n];
    let mut injects: Vec<InjectRec> = Vec::new();
    let mut scratch: Vec<(Cycle, Msg)> = Vec::new();
    let mut heap: BinaryHeap<Reverse<(Cycle, usize)>> = BinaryHeap::new();
    loop {
        barrier.wait();
        let (p, lo, hi) = {
            let pl = plan.lock().unwrap();
            ((pl.start, pl.end, pl.stop), pl.fence[me], pl.fence[me + 1])
        };
        let (p_start, p_end, p_stop) = p;
        if p_stop {
            break;
        }
        if let Some(t) = &mut timer {
            t.switch(HostPhase::Tick);
        }
        let mut ticks: u64 = 0;
        let mut skipped: u64 = 0;
        // Refresh cross-epoch node state for the owned range (ownership
        // may have moved since this worker last saw these nodes), pull
        // this epoch's pre-distributed deliveries, and pin the owned
        // nodes for the whole window: nothing else touches them until the
        // closing barrier, so locking once here keeps the per-tick loop
        // free of lock traffic.
        {
            let st = state.lock().unwrap();
            for g in lo..hi {
                hints[g] = st.wake[g];
                quiet[g] = st.quiet_since[g];
                finished[g] = st.finished_at[g];
                node_ticks[g] = 0;
            }
        }
        let mut guards: Vec<_> = (lo..hi).map(|g| cells[g].lock().unwrap()).collect();
        for g in lo..hi {
            inbox[g].append(&mut inboxes[g].lock().unwrap());
        }
        // Seed the schedule, extending freeze certificates across the
        // barrier: a node frozen past the epoch start skips straight to
        // its bound (clamped to its first delivery and the epoch end).
        heap.clear();
        for g in lo..hi {
            let mut at = p_start;
            let node = &mut *guards[g - lo];
            // The previous epoch's retraction window has passed.
            node.clear_fault_snapshots();
            if hints[g] > at {
                let cap = hints[g]
                    .min(p_end)
                    .min(inbox[g].front().map_or(Cycle::MAX, |d| d.0));
                if cap > at {
                    node.skip_idle(at, cap);
                    skipped += cap - at;
                    at = cap;
                }
            }
            heap.push(Reverse((at, g)));
        }
        // Advance the lowest-positioned owned node until the epoch ends.
        let mut failed = false;
        while let Some(&Reverse((c, g))) = heap.peek() {
            if c >= p_end || failed {
                break;
            }
            heap.pop();
            gate.positions[me].store(pack(c, g), Ordering::Release);
            let node = &mut *guards[g - lo];
            // Deliveries for this cycle, at their serial positions.
            while inbox[g].front().is_some_and(|d| d.0 == c) {
                let (cycle, slot_no, msg) = inbox[g].pop_front().expect("peeked");
                capture::set_point((cycle, LANE_DELIVER, slot_no));
                node.receive(msg, cycle);
            }
            debug_assert!(
                inbox[g].front().is_none_or(|d| d.0 > c),
                "missed a scheduled delivery"
            );
            capture::set_point((c, lane_tick(g), 0));
            let mut env = GateRef {
                gate,
                me,
                pos: pack(c, g),
            };
            node.tick(c, &mut env);
            ticks += 1;
            node_ticks[g] += 1;
            node.drain_outbox(&mut scratch);
            if single_node && !scratch.is_empty() {
                // No network to inject into: surface the serial engine's
                // structured failure and freeze the machine at this tick.
                scratch.clear();
                let id = node.id();
                state.lock().unwrap().error.get_or_insert_with(|| {
                    (
                        c + 1,
                        format!(
                            "network message emitted on a 1-node machine by {id:?} at cycle {c}"
                        ),
                    )
                });
                failed = true;
            } else {
                for (k, (at, msg)) in scratch.drain(..).enumerate() {
                    injects.push(InjectRec {
                        cycle: c,
                        node: g,
                        slot: k as u32,
                        at,
                        msg,
                    });
                }
            }
            if node.quiescent() {
                if quiet[g].is_none() {
                    quiet[g] = Some(c + 1);
                }
                // This tick may later turn out to lie past the machine's
                // exact quiescence point; snapshot the fault streams so a
                // retraction can rewind their draws too.
                node.snapshot_faults(c + 1);
            } else {
                quiet[g] = None;
            }
            if finished[g].is_none() && node.app_finished() {
                finished[g] = Some(c);
            }
            // Idle-cycle skipping: jump past provably pure stall ticks.
            hints[g] = 0;
            let mut next = c + 1;
            if !failed {
                if let Some(b) = node.next_activity(c) {
                    hints[g] = b;
                    let cap = b
                        .min(p_end)
                        .min(inbox[g].front().map_or(Cycle::MAX, |d| d.0));
                    if cap > next {
                        node.skip_idle(next, cap);
                        skipped += cap - next;
                        next = cap;
                    }
                }
            }
            heap.push(Reverse((next, g)));
        }
        drop(guards);
        gate.positions[me].store(pack(p_end, 0), Ordering::Release);
        let tick_ns = match &mut timer {
            Some(t) => {
                t.switch(HostPhase::Merge);
                t.epoch_phase_ns(HostPhase::Tick)
            }
            None => 0,
        };
        // Park the batch: node state into the shared table (tiny copies),
        // the bulky capture streams into this worker's own slot.
        {
            let mut st = state.lock().unwrap();
            st.wake[lo..hi].copy_from_slice(&hints[lo..hi]);
            st.quiet_since[lo..hi].copy_from_slice(&quiet[lo..hi]);
            st.finished_at[lo..hi].copy_from_slice(&finished[lo..hi]);
            st.node_ticks[lo..hi].copy_from_slice(&node_ticks[lo..hi]);
            st.wstats[me] = (ticks, skipped, tick_ns);
        }
        {
            let mut sl = slot.lock().unwrap();
            sl.events.extend(take_captured_events());
            sl.prof.extend(take_captured_prof_ops());
            sl.injects.append(&mut injects);
        }
        if let Some(t) = &mut timer {
            t.switch(HostPhase::BarrierArrive);
        }
        barrier.wait();
        if let Some(t) = &mut timer {
            t.switch(HostPhase::BarrierDepart);
            t.end_epoch();
        }
    }
    capture::end();
    if let Some(t) = timer {
        lanes_out
            .lock()
            .unwrap()
            .push((me, t.finish(&format!("w{me}"))));
    }
}

/// Contiguous chunk of the node range owned by worker `w` of `workers`.
fn chunk(w: usize, workers: usize, n: usize) -> (usize, usize) {
    let base = n / workers;
    let rem = n % workers;
    let lo = w * base + w.min(rem);
    let hi = lo + base + usize::from(w < rem);
    (lo, hi)
}

/// Fence posts splitting `load` (per-node weights) into `workers`
/// contiguous runs of near-equal total weight, each at least one node:
/// worker `w` gets `fence[w]..fence[w + 1]`.
fn balanced_fence(load: &[u64], workers: usize) -> Vec<usize> {
    let n = load.len();
    let total: u64 = load.iter().sum();
    let mut fence = Vec::with_capacity(workers + 1);
    fence.push(0);
    let mut acc = 0u64;
    let mut g = 0usize;
    for w in 1..workers {
        let target = total as f64 * w as f64 / workers as f64;
        // Leave at least one node for every remaining worker.
        let hi_max = n - (workers - w);
        let hi_min = fence[w - 1] + 1;
        // Take nodes while the running prefix stays within this worker's
        // share — inclusively, so a prefix landing exactly on the target
        // cuts *after* the node that reached it (an even split stays even).
        while g < hi_max && (g < hi_min || ((acc + load[g]) as f64) <= target) {
            acc += load[g];
            g += 1;
        }
        fence.push(g);
    }
    fence.push(n);
    fence
}

/// Sort and replay a batch of captured trace/profiler streams into the
/// serial-order sinks, optionally dropping everything at or past `cut`
/// (positions the serial loop never reached). Leaves the buffers empty.
fn replay_streams(
    events: &mut Vec<CapturedEvent>,
    prof: &mut Vec<(CapturePoint, ProfOp)>,
    cut: Option<Cycle>,
    tracer: &Tracer,
    profiler: &PhaseProfiler,
) {
    if let Some(q) = cut {
        events.retain(|e| e.0 .0 < q);
        prof.retain(|o| o.0 .0 < q);
    }
    events.sort_by_key(|e| e.0);
    prof.sort_by_key(|o| o.0);
    tracer.replay_captured(events);
    profiler.replay_captured(prof);
    events.clear();
    prof.clear();
}

/// Run the machine to completion on the parallel epoch engine. Produces
/// results bit-identical to [`System::run`] for the same seed and
/// configuration; see the module docs for how.
pub(crate) fn run_parallel(sys: &mut System, max_cycles: Cycle) -> Result<RunStats, RunError> {
    let n = sys.nodes.len();
    if n > (1usize << NODE_BITS) {
        // Positions pack the node index into 12 bits; fall back rather
        // than mis-order the synchronization fabric.
        return sys.run_with(max_cycles, EngineKind::Serial);
    }
    if sys.quiesced() {
        if let Some(hb) = &mut sys.heartbeat {
            // Even a no-op run leaves its start and end liveness records.
            hb.start(sys.now);
            hb.emit(sys.now, "parallel", 0, 0, &[]);
            hb.emit(sys.now, "parallel", 0, 0, &[]);
        }
        sys.tracer.flush();
        return Ok(sys.collect());
    }
    let lookahead = sys
        .network
        .as_ref()
        .map_or(WATCHDOG_INTERVAL, |net| net.min_latency().max(1));
    // Worker count: pinned by the configuration, or the host's available
    // parallelism; never more workers than nodes (a pinned count larger
    // than the node count clamps rather than spawning empty partitions,
    // and `SystemConfig::validate` rejects zero). A host-side knob only —
    // results are bit-identical for any count.
    let workers = sys
        .cfg
        .workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .clamp(1, n);
    let tuning = sys.tuning;
    let single_node = sys.network.is_none();
    let telem = sys.telemetry;
    sys.host_profile = None;
    let mut coord = telem.then(|| PhaseTimer::new(HostPhase::Other));
    let lanes_out: Mutex<Vec<(usize, LaneProfile)>> = Mutex::new(Vec::new());
    let start_now = sys.now;
    let mut epochs: u64 = 0;
    let mut epoch_cycles = Histogram::new();
    let mut barrier_msgs = Histogram::new();
    let mut imbalance_x1000 = Histogram::new();
    let mut ticked_cycles: u64 = 0;
    let mut skipped_cycles: u64 = 0;
    // Heartbeat bookkeeping: cumulative per-worker tick nanoseconds, so a
    // beat can report utilization over the interval since the last beat.
    let mut hb_cum_tick: Vec<u64> = vec![0; workers];
    let mut hb_last_tick: Vec<u64> = vec![0; workers];
    let mut hb_last_wall = Instant::now();
    if let Some(hb) = &mut sys.heartbeat {
        hb.start(start_now);
        // Initial liveness record at the run start, so even a run shorter
        // than one heartbeat interval leaves a line-complete log.
        hb.emit(start_now, "parallel", workers, 0, &vec![0.0; workers]);
    }

    // Take the machine apart: nodes behind per-node locks for the workers,
    // the synchronization fabric behind the position gate.
    let cells: Vec<Mutex<Node>> = std::mem::take(&mut sys.nodes)
        .into_iter()
        .map(Mutex::new)
        .collect();
    let placeholder = SyncManager::new(sys.cfg.total_app_threads());
    let gate = Gate {
        positions: (0..workers)
            .map(|_| AtomicU64::new(pack(sys.now, 0)))
            .collect(),
        sync: Mutex::new(std::mem::replace(&mut sys.sync, placeholder)),
    };
    let init_fence: Vec<usize> = (0..workers)
        .map(|w| chunk(w, workers, n).0)
        .chain([n])
        .collect();
    let plan = Mutex::new(WindowPlan {
        start: sys.now,
        end: sys.now,
        stop: false,
        fence: init_fence.clone(),
    });
    let inboxes: Vec<Mutex<VecDeque<Delivery>>> =
        (0..n).map(|_| Mutex::new(VecDeque::new())).collect();
    let state = Mutex::new(SharedState {
        quiet_since: vec![None; n],
        finished_at: vec![None; n],
        wake: vec![0; n],
        node_ticks: vec![0; n],
        error: None,
        wstats: vec![(0, 0, 0); workers],
    });
    let slots: Vec<Mutex<WorkerHarvest>> = (0..workers)
        .map(|_| Mutex::new(WorkerHarvest::default()))
        .collect();
    let barrier = Barrier::new(workers + 1);

    let mut metrics = sys.metrics.take();
    let mut wd = sys.watchdog;
    let mut app_done_at = sys.app_done_at;
    // Exact-quiescence trackers (see the Q computation at the barrier).
    let mut finished_at: Vec<Option<Cycle>> = vec![None; n];
    let mut quiet_since: Vec<Option<Cycle>> = vec![None; n];
    let mut net_empty_from: Cycle = sys.now;
    // Coordinator-side copy of the per-node freeze bounds harvested at the
    // last barrier; feeds the adaptive epoch bound.
    let mut wake: Vec<Cycle> = vec![0; n];
    // Rebalancing bookkeeping: per-node and per-worker tick loads
    // accumulated over the current observation window.
    let mut fence = init_fence;
    let mut load: Vec<u64> = vec![0; n];
    let mut wload: Vec<u64> = vec![0; workers];
    let mut window_epochs: u64 = 0;
    let mut refence_due = false;
    let mut rebalances: u64 = 0;
    // Streams captured for an epoch but not yet replayed into the tracer
    // and profiler. Pre-pass captures land in `held_*` (they belong to the
    // epoch being planned); the merged batch accumulates in `pending_*`
    // and is normally replayed *while the workers tick the next epoch*.
    let mut held_events: Vec<CapturedEvent> = Vec::new();
    let mut held_prof: Vec<(CapturePoint, ProfOp)> = Vec::new();
    let mut pending_events: Vec<CapturedEvent> = Vec::new();
    let mut pending_prof: Vec<(CapturePoint, ProfOp)> = Vec::new();

    let outcome: Result<Cycle, (RunErrorKind, String, Cycle)> = std::thread::scope(|s| {
        for (w, slot) in slots.iter().enumerate() {
            let cells = &cells;
            let gate = &gate;
            let plan = &plan;
            let inboxes = &inboxes;
            let state = &state;
            let barrier = &barrier;
            let lanes_out = &lanes_out;
            s.spawn(move || {
                worker_loop(
                    w,
                    n,
                    cells,
                    gate,
                    plan,
                    inboxes,
                    state,
                    slot,
                    barrier,
                    single_node,
                    telem,
                    lanes_out,
                )
            });
        }

        let mut e_start = sys.now;
        let outcome = loop {
            // A due rebalance moves the fences before the next epoch is
            // published; ownership only ever changes at this point, while
            // every worker is parked at the opening barrier.
            if refence_due {
                refence_due = false;
                fence = balanced_fence(&load, workers);
                load.fill(0);
                rebalances += 1;
            }
            // Epoch bound: adaptive (from observed freeze certificates
            // and the next in-flight arrival) or static, then cut on
            // every schedule the serial loop observes.
            let mut e_end = if tuning.adaptive_epochs {
                // Earliest cycle any node could act: frozen nodes cannot
                // inject before their certified wake bound or their first
                // delivery, whichever is earlier; a node without a
                // certificate could act immediately.
                let mut wake_min = Cycle::MAX;
                for &w in &wake {
                    let eff = if w > e_start { w } else { e_start };
                    wake_min = wake_min.min(eff);
                    if wake_min == e_start {
                        break;
                    }
                }
                let arrival = sys
                    .network
                    .as_ref()
                    .and_then(|net| net.next_arrival())
                    .unwrap_or(Cycle::MAX);
                let inj_min = wake_min.min(arrival).max(e_start);
                inj_min.saturating_add(lookahead)
            } else {
                e_start.saturating_add(lookahead)
            };
            e_end = e_end.min(next_multiple(e_start, WATCHDOG_INTERVAL));
            if let Some(every) = sys.invariant_every {
                e_end = e_end.min(next_multiple(e_start, every));
            }
            if let Some(m) = &metrics {
                e_end = e_end.min(m.sampler.next_due() + 1);
            }
            e_end = e_end.min(max_cycles).max(e_start + 1);
            // Pre-pass: every arrival in this epoch is already in flight
            // (lookahead), so pop and pre-distribute them now, capturing
            // the network's own events at their serial positions.
            if let Some(t) = &mut coord {
                t.switch(HostPhase::Exchange);
            }
            if let Some(net) = &mut sys.network {
                capture::begin((0, 0, 0));
                while let Some(a) = net.next_arrival() {
                    if a >= e_end {
                        break;
                    }
                    let mut k = 0u32;
                    loop {
                        capture::set_point((a, LANE_DELIVER, 2 * k));
                        let Some(msg) = net.pop_arrived(a) else { break };
                        inboxes[msg.dst.idx()]
                            .lock()
                            .unwrap()
                            .push_back((a, 2 * k + 1, msg));
                        net_empty_from = net_empty_from.max(a + 1);
                        k += 1;
                    }
                }
                capture::end();
                held_events.extend(take_captured_events());
                held_prof.extend(take_captured_prof_ops());
            }
            {
                let mut pl = plan.lock().unwrap();
                pl.start = e_start;
                pl.end = e_end;
                pl.stop = false;
                pl.fence.clone_from(&fence);
            }
            if let Some(t) = &mut coord {
                t.switch(HostPhase::BarrierDepart);
            }
            barrier.wait(); // epoch starts
                            // Double-buffered stream reconstruction: replay the previous
                            // epoch's merged capture batch while the workers tick this
                            // epoch. (Empty when the previous epoch had to replay
                            // synchronously — watchdog cycles, quiescence, failures.)
            if !pending_events.is_empty() || !pending_prof.is_empty() {
                if let Some(t) = &mut coord {
                    t.switch(HostPhase::CaptureReplay);
                }
                replay_streams(
                    &mut pending_events,
                    &mut pending_prof,
                    None,
                    &sys.tracer,
                    &sys.profiler,
                );
            }
            if let Some(t) = &mut coord {
                t.switch(HostPhase::BarrierArrive);
            }
            barrier.wait(); // epoch done
            if let Some(t) = &mut coord {
                t.switch(HostPhase::Merge);
            }
            let mut injects: Vec<InjectRec> = Vec::new();
            let failure;
            {
                let mut st = state.lock().unwrap();
                for g in 0..n {
                    quiet_since[g] = st.quiet_since[g];
                    if finished_at[g].is_none() {
                        finished_at[g] = st.finished_at[g];
                    }
                    wake[g] = st.wake[g];
                    load[g] += st.node_ticks[g];
                }
                failure = st.error.take();
                // Per-epoch counters: epoch length, barrier traffic, work
                // done vs. skipped, and the owned-node tick imbalance
                // across workers.
                epochs += 1;
                epoch_cycles.record(e_end - e_start);
                let mut tick_sum = 0u64;
                let mut tick_max = 0u64;
                for (w, (cum, &(t, sk, ns))) in hb_cum_tick.iter_mut().zip(&st.wstats).enumerate() {
                    ticked_cycles += t;
                    skipped_cycles += sk;
                    *cum += ns;
                    tick_sum += t;
                    tick_max = tick_max.max(t);
                    wload[w] += t;
                }
                if workers > 1 && tick_sum > 0 {
                    let mean = tick_sum as f64 / workers as f64;
                    imbalance_x1000.record((tick_max as f64 * 1000.0 / mean) as u64);
                }
            }
            for sl in &slots {
                let mut sl = sl.lock().unwrap();
                pending_events.append(&mut sl.events);
                pending_prof.append(&mut sl.prof);
                injects.append(&mut sl.injects);
            }
            pending_events.append(&mut held_events);
            pending_prof.append(&mut held_prof);
            barrier_msgs.record(injects.len() as u64);
            // Schedule a repartition when a full observation window shows
            // a worker ticking disproportionately often.
            if workers > 1 && tuning.rebalance_every > 0 {
                window_epochs += 1;
                if window_epochs >= tuning.rebalance_every {
                    window_epochs = 0;
                    let sum: u64 = wload.iter().sum();
                    let max = wload.iter().copied().max().unwrap_or(0);
                    if sum > 0 {
                        let mean = sum as f64 / workers as f64;
                        refence_due = max as f64 > mean * tuning.rebalance_threshold;
                    }
                    if !refence_due {
                        load.fill(0);
                    }
                    wload.fill(0);
                }
            }
            // Replay this epoch's injections in serial order.
            injects.sort_by_key(|r| (r.cycle, r.node, r.slot));
            if let Some(t) = &mut coord {
                t.switch(HostPhase::InjectReplay);
            }
            if let Some(net) = &mut sys.network {
                capture::begin((0, 0, 0));
                for r in injects.drain(..) {
                    capture::set_point((r.cycle, lane_inject(r.node), r.slot));
                    net.inject(r.at.max(r.cycle), r.msg);
                }
                capture::end();
                pending_events.extend(take_captured_events());
                pending_prof.extend(take_captured_prof_ops());
            }
            if let Some(t) = &mut coord {
                t.switch(HostPhase::Quiescence);
            }
            if app_done_at.is_none() && finished_at.iter().all(|f| f.is_some()) {
                app_done_at = finished_at.iter().map(|f| f.expect("checked")).max();
            }
            // Exact serial exit cycle Q, if this epoch reached quiescence:
            // the first loop-top cycle at which the application is done,
            // every node is quiescent and nothing is in flight.
            let in_flight = sys.network.as_ref().map_or(0, |net| net.in_flight_count());
            let q_cycle = match app_done_at {
                Some(done) if in_flight == 0 && quiet_since.iter().all(|q| q.is_some()) => {
                    let mq = quiet_since
                        .iter()
                        .map(|q| q.expect("checked"))
                        .max()
                        .expect("at least one node");
                    Some((done + 1).max(mq).max(net_empty_from).max(e_start))
                }
                _ => None,
            };
            // Merge every capture stream into the serial order and replay
            // now when something downstream must observe it this epoch:
            // a watchdog check reads (and writes) the trace stream, an
            // invariant cycle or the run's end flushes it, and ticks at
            // or past Q are about to be retracted (the serial loop never
            // ran them), so their events are dropped. Otherwise the
            // replay is deferred into the next epoch's tick window.
            let ends_epoch_checked = e_end.is_multiple_of(WATCHDOG_INTERVAL)
                || sys
                    .invariant_every
                    .is_some_and(|every| e_end.is_multiple_of(every));
            if failure.is_some() || q_cycle.is_some() || ends_epoch_checked || e_end >= max_cycles {
                if let Some(t) = &mut coord {
                    t.switch(HostPhase::CaptureReplay);
                }
                let cut = q_cycle.filter(|&q| q < e_end && failure.is_none());
                replay_streams(
                    &mut pending_events,
                    &mut pending_prof,
                    cut,
                    &sys.tracer,
                    &sys.profiler,
                );
            }
            if let Some((cycle, msg)) = failure {
                break Err((RunErrorKind::UnrecoverableFault, msg, cycle));
            }
            if let Some(q) = q_cycle {
                if q < e_end {
                    // The serial loop would have exited at Q, before the
                    // ticks Q..e_end — all idle ticks on a quiescent
                    // machine — and before any end-of-epoch check. Roll
                    // the overshoot back.
                    if let Some(t) = &mut coord {
                        t.switch(HostPhase::Quiescence);
                    }
                    for cell in &cells {
                        cell.lock().unwrap().retract_idle(q, e_end);
                    }
                    break Ok(q);
                }
            }
            // End-of-epoch checks, in exact serial order and on the exact
            // serial state (every node has now reached e_end).
            if let Some(t) = &mut coord {
                t.switch(HostPhase::Checks);
            }
            {
                let guards: Vec<_> = cells.iter().map(|c| c.lock().unwrap()).collect();
                let view: Vec<&Node> = guards.iter().map(|g| &**g).collect();
                if let Some(m) = &mut metrics {
                    m.sample(sys.cfg.app_threads, &view, sys.network.as_ref(), e_end - 1);
                }
                if e_end.is_multiple_of(WATCHDOG_INTERVAL) {
                    if let Some((kind, msg)) = wd.check(
                        &view,
                        sys.network.as_ref(),
                        app_done_at.is_some(),
                        &sys.tracer,
                        e_end,
                    ) {
                        break Err((kind, msg, e_end));
                    }
                }
                if let Some(every) = sys.invariant_every {
                    if e_end.is_multiple_of(every) {
                        if let Some(msg) = coherence_violation(&view) {
                            break Err((RunErrorKind::UnrecoverableFault, msg, e_end));
                        }
                    }
                }
            }
            if e_end >= max_cycles {
                break Err((
                    RunErrorKind::Deadlock,
                    format!(
                        "{:?} {} x{} ({}-way) did not quiesce in {max_cycles} cycles",
                        sys.cfg.model, sys.app, sys.cfg.nodes, sys.cfg.app_threads
                    ),
                    e_end,
                ));
            }
            if q_cycle == Some(e_end) {
                break Ok(e_end);
            }
            if let Some(t) = &mut coord {
                t.switch(HostPhase::Other);
                t.end_epoch();
            }
            if sys.heartbeat.as_ref().is_some_and(|hb| hb.due(e_end)) {
                // Per-worker utilization over the interval since the last
                // beat: tick nanoseconds against coordinator wall-clock.
                let now_wall = Instant::now();
                let dt_ns = now_wall.duration_since(hb_last_wall).as_nanos().max(1) as f64;
                let util: Vec<f64> = (0..workers)
                    .map(|w| (hb_cum_tick[w] - hb_last_tick[w]) as f64 / dt_ns)
                    .collect();
                hb_last_tick.copy_from_slice(&hb_cum_tick);
                hb_last_wall = now_wall;
                let hb = sys.heartbeat.as_mut().expect("dueness checked");
                hb.emit(e_end, "parallel", workers, epochs, &util);
            }
            e_start = e_end;
        };
        {
            let mut pl = plan.lock().unwrap();
            pl.start = 0;
            pl.end = 0;
            pl.stop = true;
        }
        barrier.wait();
        outcome
    });
    debug_assert!(pending_events.is_empty() && pending_prof.is_empty());

    // Reassemble the machine.
    sys.nodes = cells
        .into_iter()
        .map(|m| m.into_inner().expect("worker panicked holding a node"))
        .collect();
    sys.sync = gate.sync.into_inner().expect("sync lock poisoned");
    sys.metrics = metrics;
    sys.watchdog = wd;
    sys.app_done_at = app_done_at;
    sys.quiet_nodes = sys.nodes.iter().filter(|n| n.quiescent()).count();
    sys.finished_nodes = sys.nodes.iter().filter(|n| n.app_finished()).count();
    let end_now = match &outcome {
        Ok(q) => *q,
        Err((_, _, cycle)) => *cycle,
    };
    if let Some(hb) = &mut sys.heartbeat {
        // Final liveness record at the run end, closing the log even when
        // the run never crossed a heartbeat interval.
        let now_wall = Instant::now();
        let dt_ns = now_wall.duration_since(hb_last_wall).as_nanos().max(1) as f64;
        let util: Vec<f64> = (0..workers)
            .map(|w| (hb_cum_tick[w] - hb_last_tick[w]) as f64 / dt_ns)
            .collect();
        hb.emit(end_now, "parallel", workers, epochs, &util);
    }
    if let Some(t) = coord {
        let mut lanes = vec![t.finish("coord")];
        let mut wl = lanes_out.into_inner().expect("lanes lock poisoned");
        wl.sort_by_key(|&(w, _)| w);
        lanes.extend(wl.into_iter().map(|(_, l)| l));
        let _ = rebalances; // reported via the imbalance histogram today
        sys.host_profile = Some(HostProfile {
            engine: "parallel".to_string(),
            workers,
            epochs,
            lookahead,
            sim_cycles: end_now.saturating_sub(start_now),
            wall_ns: lanes[0].total_ns,
            lanes,
            epoch_cycles,
            barrier_msgs,
            imbalance_x1000,
            ticked_cycles,
            skipped_cycles,
        });
    }
    match outcome {
        Ok(q) => {
            sys.now = q;
            sys.tracer.flush();
            Ok(sys.collect())
        }
        Err((kind, msg, cycle)) => {
            sys.now = cycle;
            sys.tracer.flush();
            Err(sys.run_error(kind, msg))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_fence_splits_by_weight() {
        // Heavy head: the first worker should get fewer nodes.
        let f = balanced_fence(&[100, 1, 1, 1, 1, 1, 1, 1], 2);
        assert_eq!(f, vec![0, 1, 8]);
        // Uniform load: near-even split.
        let f = balanced_fence(&[10; 8], 4);
        assert_eq!(f, vec![0, 2, 4, 6, 8]);
        // Zero load still yields non-empty partitions.
        let f = balanced_fence(&[0; 4], 4);
        assert_eq!(f, vec![0, 1, 2, 3, 4]);
        // More extreme skew than workers can fix: every partition keeps
        // at least one node.
        let f = balanced_fence(&[0, 0, 0, 1000], 4);
        assert_eq!(f.len(), 5);
        for w in 0..4 {
            assert!(f[w] < f[w + 1], "empty partition in {f:?}");
        }
    }

    #[test]
    fn chunk_covers_all_nodes() {
        for workers in 1..=8 {
            for n in workers..=32 {
                let mut covered = 0;
                for w in 0..workers {
                    let (lo, hi) = chunk(w, workers, n);
                    assert!(lo <= hi);
                    covered += hi - lo;
                }
                assert_eq!(covered, n);
            }
        }
    }

    /// Both engines lean on the same contract: once the machine reports
    /// quiescent, overshooting it by extra ticks and then retracting the
    /// idle bookkeeping ([`crate::node::Node::retract_idle`], exactly
    /// what the parallel engine does when an epoch runs past the exact
    /// quiescence point) leaves *nothing* observable behind. This holds
    /// the contract to account for the `sb_drain_app` hole (a finished
    /// thread's last stores still draining to L1d after `quiesced()`
    /// went true, each drain an un-retractable cache access), which
    /// surfaced as a 64-node stats divergence.
    #[test]
    #[ignore = "minutes in a debug build; CI runs it in release via the engine-scaling leg"]
    fn quiesced_machine_ticks_are_inert() {
        use crate::experiment::{build_system, ExperimentConfig};
        use smtp_types::MachineModel;
        use smtp_workloads::AppKind;

        let mut e = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Fft, 64, 2);
        e.scale = 0.02;
        let mut sys = build_system(&e);
        sys.run_with(e.max_cycles, EngineKind::Serial).unwrap();
        let snapshot = |sys: &crate::system::System| -> Vec<String> {
            sys.nodes
                .iter()
                .map(|n| format!("{:?} {:?}", n.mem.stats(), n.pipeline.stats()))
                .collect()
        };
        let before = snapshot(&sys);
        assert!(sys.nodes.iter().all(|n| n.quiescent()));
        let q = sys.now;
        for _ in 0..512 {
            sys.tick();
        }
        for cell in sys.nodes.iter_mut() {
            cell.retract_idle(q, q + 512);
        }
        let after = snapshot(&sys);
        for (g, (a, b)) in before.iter().zip(&after).enumerate() {
            assert_eq!(
                a, b,
                "node {g}: post-quiescence overshoot + retraction is not a no-op"
            );
        }
        assert!(sys.nodes.iter().all(|n| n.quiescent()));
    }
}
