//! The full-machine simulator: nodes + interconnect + global clock.

use crate::engine::{EngineKind, EngineTuning};
use crate::error::{Diagnosis, RunError, RunErrorKind};
use crate::node::Node;
use crate::stats::RunStats;
use smtp_noc::{Msg, Network};
use smtp_protocol::DirState;
use smtp_trace::{
    Category, CausalSpans, Event, Heartbeat, HostPhase, HostProfile, IntervalSampler, PhaseTimer,
    Tracer,
};
use smtp_types::Ctx;
use smtp_types::{Cycle, FaultSummary, Histogram, NodeId, PhaseProfiler, SystemConfig};
use smtp_workloads::{AppKind, SyncManager, ThreadGen, WorkloadCfg};

/// Cycles between forward-progress checks. The epoch engine cuts its
/// windows on this schedule, and the serial loop's gate is a divisibility
/// test — both assume (and the assertion below guarantees) a power of two,
/// so the hot-path test compiles to a mask.
pub(crate) const WATCHDOG_INTERVAL: Cycle = 8192;

// A silently wrong watchdog schedule is worse than a build break: the gate
// used to be a hand-written mask test that only works for powers of two.
const _: () = assert!(
    WATCHDOG_INTERVAL.is_power_of_two(),
    "WATCHDOG_INTERVAL must be a power of two"
);

/// Consecutive stagnant checks (no progress of any kind) before the run
/// fails as a deadlock.
const DEADLOCK_CHECKS: u64 = 4;

/// Consecutive checks with protocol/network churn but zero application
/// commits before the run fails as a livelock. Deliberately generous: a
/// healthy machine never goes half a million cycles without committing a
/// single application instruction anywhere.
const LIVELOCK_CHECKS: u64 = 64;

/// Forward-progress watchdog state. Pure observer: it reads counters the
/// simulation updates anyway, so a healthy run is bit-identical with or
/// without it.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Watchdog {
    /// (app instructions, protocol instructions + handlers, net messages)
    /// at the previous check.
    last_sig: (u64, u64, u64),
    /// Consecutive checks with a completely unchanged signature.
    stagnant: u64,
    /// Consecutive checks with no application commits (but other churn).
    app_stagnant: u64,
}

impl Watchdog {
    /// One watchdog check: escalate through warning trace events to a
    /// structured failure `(kind, message)`. Read-only on simulation state
    /// — a healthy run behaves identically with the watchdog present.
    /// Takes a node *view* rather than `&System` so both execution engines
    /// can drive it (the parallel engine holds its nodes behind locks).
    pub(crate) fn check(
        &mut self,
        nodes: &[&Node],
        network: Option<&Network>,
        app_done: bool,
        tracer: &Tracer,
        now: Cycle,
    ) -> Option<(RunErrorKind, String)> {
        // Unrecoverable injected faults surface immediately.
        for n in nodes {
            if let Some((cycle, protocol)) = n.first_uncorrectable() {
                let chan = if protocol { "protocol" } else { "main" };
                let id = n.id();
                return Some((
                    RunErrorKind::UnrecoverableFault,
                    format!("uncorrectable ECC error on {id:?} {chan} channel at cycle {cycle}"),
                ));
            }
        }
        let sig = progress_signature(nodes, network);
        if sig == self.last_sig {
            self.stagnant += 1;
            let stalled_for = self.stagnant * WATCHDOG_INTERVAL;
            let level = self.stagnant.min(u64::from(u8::MAX)) as u8;
            tracer.emit(Category::Fault, now, || Event::WatchdogWarn {
                level,
                stalled_for,
            });
            if self.stagnant >= DEADLOCK_CHECKS {
                return Some((
                    RunErrorKind::Deadlock,
                    format!("no forward progress for {stalled_for} cycles"),
                ));
            }
        } else {
            self.stagnant = 0;
        }
        // Livelock: the machine churns but the application never advances.
        if !app_done && sig.0 == self.last_sig.0 {
            self.app_stagnant += 1;
            if self.app_stagnant >= LIVELOCK_CHECKS {
                let stalled_for = self.app_stagnant * WATCHDOG_INTERVAL;
                return Some((
                    RunErrorKind::Livelock,
                    format!(
                        "protocol/network activity without an application commit for {stalled_for} cycles"
                    ),
                ));
            }
        } else {
            self.app_stagnant = 0;
        }
        self.last_sig = sig;
        None
    }
}

/// Machine-wide progress signature: anything moving shows up here.
pub(crate) fn progress_signature(nodes: &[&Node], network: Option<&Network>) -> (u64, u64, u64) {
    let mut app = 0;
    let mut prot = 0;
    for n in nodes {
        let p = n.pipeline.stats();
        app += p.committed_app();
        prot += p.committed_protocol() + n.stats.handlers;
    }
    let net = network.map_or(0, |n| n.stats().messages);
    (app, prot, net)
}

/// The online coherence sanitizer: sweep every materialized directory
/// entry in stable state and cross-check the caches. Busy lines are
/// mid-transaction and legitimately inconsistent, so they are skipped.
/// Returns the violation message, if any.
pub(crate) fn coherence_violation(nodes: &[&Node]) -> Option<String> {
    for home in nodes {
        for (line, state) in home.directory.entries() {
            if state.is_busy() {
                continue;
            }
            let mut holder: Option<NodeId> = None;
            for n in nodes {
                if n.mem.line_state(line).is_some_and(|s| s.is_writable()) {
                    if let Some(prev) = holder {
                        return Some(format!(
                            "coherence violation: {line:?} writable at both {prev:?} and {:?}",
                            n.id()
                        ));
                    }
                    holder = Some(n.id());
                }
            }
            if let Some(h) = holder {
                if state != DirState::Exclusive(h) {
                    return Some(format!(
                        "coherence violation: {line:?} writable at {h:?} but directory says {state:?}"
                    ));
                }
            }
        }
    }
    None
}

/// Injected-fault and recovery counters across a node view plus network.
pub(crate) fn fault_summary_of(nodes: &[&Node], network: Option<&Network>) -> FaultSummary {
    let mut s = network.map(|n| n.fault_counters()).unwrap_or_default();
    for n in nodes {
        s.merge(&n.fault_counters());
    }
    s
}

/// Interval-sampling state: the sampler plus the previous counter values
/// needed to turn cumulative statistics into per-interval rates.
pub(crate) struct MetricsState {
    pub(crate) sampler: IntervalSampler,
    prev_committed: Vec<u64>,
    prev_prot_active: Vec<u64>,
    prev_vnet: [u64; 4],
    /// Hot-spot drift columns armed: append per-interval peak home-node
    /// occupancy and peak link utilization to every sample.
    hotspots: bool,
    prev_occ: Vec<u64>,
    prev_link_busy: Vec<u64>,
}

impl MetricsState {
    /// Take one sample at `now` if due (no-op otherwise).
    pub(crate) fn sample(
        &mut self,
        app_threads: usize,
        nodes: &[&Node],
        network: Option<&Network>,
        now: Cycle,
    ) {
        if !self.sampler.due(now) {
            return;
        }
        let interval = self.sampler.interval() as f64;
        let mut values = Vec::with_capacity(4 * nodes.len() + 5);
        for (i, node) in nodes.iter().enumerate() {
            let s = node.pipeline.stats();
            let committed: u64 = s.committed[..app_threads].iter().sum();
            values.push((committed - self.prev_committed[i]) as f64 / interval);
            self.prev_committed[i] = committed;
            let active = s.protocol_active_cycles;
            values.push((active - self.prev_prot_active[i]) as f64 / interval);
            self.prev_prot_active[i] = active;
            values.push(node.mem.mshrs_used() as f64);
            values.push(node.protocol_queue_depth() as f64);
        }
        match network {
            Some(net) => {
                values.push(net.in_flight_count() as f64);
                let per_vnet = net.stats().per_vnet;
                for (prev, &cur) in self.prev_vnet.iter_mut().zip(per_vnet.iter()) {
                    values.push((cur - *prev) as f64 / interval);
                    *prev = cur;
                }
            }
            None => values.extend([0.0; 5]),
        }
        if self.hotspots {
            let mut occ_peak = 0.0f64;
            for (i, node) in nodes.iter().enumerate() {
                let occ = match &node.engine {
                    Some(e) => e.active_cycles(),
                    None => node.pipeline.stats().protocol_active_cycles,
                };
                occ_peak = occ_peak.max((occ - self.prev_occ[i]) as f64 / interval);
                self.prev_occ[i] = occ;
            }
            values.push(occ_peak);
            let mut link_peak = 0.0f64;
            if let Some(net) = network {
                let busy = net.link_busy();
                self.prev_link_busy.resize(busy.len(), 0);
                for (prev, &cur) in self.prev_link_busy.iter_mut().zip(busy.iter()) {
                    link_peak = link_peak.max((cur - *prev) as f64 / interval);
                    *prev = cur;
                }
            }
            values.push(link_peak);
        }
        self.sampler.record(now, values);
    }
}

/// A complete simulated DSM machine running one application.
///
/// Fields are crate-visible so the execution engines
/// ([`crate::engine`]) can take the machine apart (nodes onto worker
/// threads, synchronization fabric behind a gate) and reassemble it.
pub struct System {
    pub(crate) cfg: SystemConfig,
    pub(crate) app: AppKind,
    pub(crate) nodes: Vec<Node>,
    pub(crate) network: Option<Network>,
    pub(crate) sync: SyncManager,
    pub(crate) now: Cycle,
    pub(crate) app_done_at: Option<Cycle>,
    pub(crate) tracer: Tracer,
    pub(crate) profiler: PhaseProfiler,
    pub(crate) metrics: Option<MetricsState>,
    pub(crate) causal: Option<CausalSpans>,
    pub(crate) watchdog: Watchdog,
    /// Run the online coherence sanitizer every N cycles, if set.
    pub(crate) invariant_every: Option<Cycle>,
    /// Nodes whose cached [`Node::quiescent`] flag is set — makes the
    /// end-of-run test O(1) per cycle instead of an O(nodes) scan.
    pub(crate) quiet_nodes: usize,
    /// Nodes whose application threads have all finished (monotone).
    pub(crate) finished_nodes: usize,
    /// Reusable outbox drain buffer: the run loop used to allocate a fresh
    /// `Vec` per node per cycle via `Node::take_outbox`.
    pub(crate) outbox_scratch: Vec<(Cycle, Msg)>,
    /// Structured failure recorded mid-tick (e.g. a network message on a
    /// 1-node machine, which used to be an assert), surfaced by the run
    /// loop as a [`RunError`] with a full [`Diagnosis`].
    pub(crate) pending_error: Option<String>,
    /// Host-side telemetry enabled: the execution engines stamp a
    /// monotonic clock at run-loop phase transitions and leave a
    /// [`HostProfile`] behind. Strictly host-side — guest results are
    /// bit-identical either way.
    pub(crate) telemetry: bool,
    /// Live-run heartbeat emitter, if [`System::enable_heartbeat`] was
    /// called (implies telemetry).
    pub(crate) heartbeat: Option<Heartbeat>,
    /// The profile of the most recent telemetry-enabled run.
    pub(crate) host_profile: Option<HostProfile>,
    /// Host-side tuning knobs for the parallel epoch engine. Guest
    /// results are bit-identical for every setting.
    pub(crate) tuning: EngineTuning,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("model", &self.cfg.model)
            .field("nodes", &self.nodes.len())
            .field("app", &self.app)
            .field("now", &self.now)
            .finish()
    }
}

impl System {
    /// Build the machine described by `cfg`, loaded with `app` at the given
    /// workload scale.
    pub fn new(cfg: SystemConfig, app: AppKind, scale: f64) -> System {
        let wl = WorkloadCfg {
            nodes: cfg.nodes,
            app_threads: cfg.app_threads,
            scale,
            prefetch: true,
        };
        Self::with_workload(cfg, app, wl)
    }

    /// Build the machine with full workload-construction control.
    pub fn with_workload(cfg: SystemConfig, app: AppKind, wl: WorkloadCfg) -> System {
        cfg.validate();
        assert_eq!(wl.nodes, cfg.nodes);
        assert_eq!(wl.app_threads, cfg.app_threads);
        let nodes = (0..cfg.nodes)
            .map(|i| Node::new(NodeId(i as u16), &cfg, app, &wl))
            .collect();
        Self::assemble(cfg, app, nodes)
    }

    /// Build a machine running caller-provided workload generators — the
    /// public hook for custom [`smtp_workloads::Kernel`] implementations.
    /// `factory` is called once per (node, application context).
    pub fn with_threads(
        cfg: SystemConfig,
        mut factory: impl FnMut(NodeId, Ctx) -> ThreadGen,
    ) -> System {
        cfg.validate();
        let nodes = (0..cfg.nodes)
            .map(|i| {
                let id = NodeId(i as u16);
                let gens = (0..cfg.app_threads)
                    .map(|c| factory(id, Ctx(c as u8)))
                    .collect();
                Node::with_threads(id, &cfg, gens)
            })
            .collect();
        Self::assemble(cfg, AppKind::Fft, nodes)
    }

    fn assemble(cfg: SystemConfig, app: AppKind, mut nodes: Vec<Node>) -> System {
        let mut network = (cfg.nodes > 1).then(|| Network::new(cfg.nodes, cfg.cpu_ghz, &cfg.net));
        let sync = SyncManager::new(cfg.total_app_threads());
        // One tracer shared by every component. It starts with an empty
        // category mask — each emission point costs a single branch until
        // [`Tracer::set_mask`]/[`Tracer::enable_all`] turns categories on —
        // and a diagnostics ring so enabled runs keep their recent history
        // for deadlock panics.
        let tracer = Tracer::new();
        tracer.enable_ring(128);
        // One phase profiler shared the same way: every L2 miss transaction
        // is stamped at its phase boundaries by the cache hierarchy, the
        // node's MC interfaces and the network, keyed by (requester, line).
        let profiler = PhaseProfiler::new();
        for n in &mut nodes {
            n.set_tracer(tracer.clone());
            n.set_profiler(profiler.clone());
        }
        if let Some(net) = &mut network {
            net.set_tracer(tracer.clone());
            net.set_profiler(profiler.clone());
        }
        // Arm the fault-injection hooks described by the config. Each hook
        // gates itself, so this is a no-op for the default (all-off) plan
        // and the assembled machine is bit-identical to one without hooks.
        if cfg.faults.is_active() {
            for n in &mut nodes {
                n.set_faults(&cfg.faults);
            }
            if let Some(net) = &mut network {
                net.set_faults(&cfg.faults);
            }
        }
        System {
            cfg,
            app,
            nodes,
            network,
            sync,
            now: 0,
            app_done_at: None,
            tracer,
            profiler,
            metrics: None,
            causal: None,
            watchdog: Watchdog::default(),
            invariant_every: None,
            quiet_nodes: 0,
            finished_nodes: 0,
            outbox_scratch: Vec::new(),
            pending_error: None,
            telemetry: false,
            heartbeat: None,
            host_profile: None,
            tuning: EngineTuning::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The system tracer. Enable categories and attach sinks through this
    /// handle; every component shares it.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The latency phase profiler shared by every component. Use
    /// [`smtp_types::PhaseProfiler::keep_records`] before running to retain
    /// individual transaction records in addition to the aggregate.
    pub fn profiler(&self) -> &PhaseProfiler {
        &self.profiler
    }

    /// Start interval sampling of machine metrics every `interval` cycles:
    /// per-node IPC, protocol-thread occupancy, MSHR usage and protocol
    /// queue depth, plus network in-flight count and per-virtual-network
    /// message rates. Retrieve the series with [`System::metrics`].
    pub fn enable_metrics(&mut self, interval: Cycle) {
        self.build_metrics(interval, false);
    }

    /// Like [`System::enable_metrics`], with two extra columns tracking
    /// hot-spot drift over time: `hot_home_occ` (the interval's peak
    /// per-node protocol occupancy) and `hot_link_util` (the interval's
    /// peak per-link busy fraction).
    pub fn enable_metrics_hotspots(&mut self, interval: Cycle) {
        self.build_metrics(interval, true);
    }

    fn build_metrics(&mut self, interval: Cycle, hotspots: bool) {
        let n = self.nodes.len();
        let mut columns = Vec::with_capacity(4 * n + 7);
        for i in 0..n {
            columns.push(format!("ipc{i}"));
            columns.push(format!("prot_occ{i}"));
            columns.push(format!("mshr{i}"));
            columns.push(format!("queue{i}"));
        }
        columns.push("net_inflight".to_string());
        for v in 0..4 {
            columns.push(format!("vn{v}"));
        }
        if hotspots {
            columns.push("hot_home_occ".to_string());
            columns.push("hot_link_util".to_string());
        }
        let links = self.network.as_ref().map_or(0, |net| net.link_busy().len());
        self.metrics = Some(MetricsState {
            sampler: IntervalSampler::new(interval, columns),
            prev_committed: vec![0; n],
            prev_prot_active: vec![0; n],
            prev_vnet: [0; 4],
            hotspots,
            prev_occ: vec![0; n],
            prev_link_busy: vec![0; links],
        });
    }

    /// The sampled metrics time-series, if [`System::enable_metrics`] was
    /// called.
    pub fn metrics(&self) -> Option<&IntervalSampler> {
        self.metrics.as_ref().map(|m| &m.sampler)
    }

    /// Turn on spatial hot-spot attribution: every directory (home side)
    /// and cache hierarchy (requester side) gets a deterministic
    /// Space-Saving tracker of capacity `top_k`, and
    /// [`RunStats::spatial`](crate::RunStats) carries the merged, classified
    /// hot-line list after the run. The per-home heatmap and per-link
    /// utilization matrix are collected regardless; this only arms the
    /// per-line layer. Counters mutate exclusively on real protocol/cache
    /// activity, so serial and parallel runs stay bit-identical.
    pub fn enable_spatial(&mut self, top_k: usize) {
        for n in &mut self.nodes {
            n.directory.enable_spatial(top_k);
            n.mem.enable_spatial(top_k);
        }
    }

    /// Whether spatial hot-spot attribution is armed.
    pub fn spatial_enabled(&self) -> bool {
        self.nodes
            .first()
            .is_some_and(|n| n.mem.spatial().is_some())
    }

    /// Turn on causal-span analysis: attach a [`CausalSpans`] sink to the
    /// tracer and enable the categories that carry span-stamped events
    /// (cache, protocol, network, SDRAM). The analyzer reconstructs each
    /// transaction's causal DAG, folds its critical path into the run-level
    /// breakdown reported in [`RunStats::critical_path`], and keeps the
    /// `top_k` slowest transactions as full-tree exemplars. On a deadlock,
    /// still-open spans are dumped into the [`Diagnosis`]. Returns the
    /// shared handle for direct queries (exemplars, open spans).
    pub fn enable_causal_spans(&mut self, top_k: usize) -> CausalSpans {
        let causal = self.causal.get_or_insert_with(|| {
            let c = CausalSpans::new(top_k);
            self.tracer.add_sink(c.sink());
            self.tracer.set_mask(
                self.tracer.mask()
                    | Category::Cache.bit()
                    | Category::Protocol.bit()
                    | Category::Network.bit()
                    | Category::Sdram.bit(),
            );
            c
        });
        causal.clone()
    }

    /// The causal-span analyzer, if [`System::enable_causal_spans`] was
    /// called.
    pub fn causal_spans(&self) -> Option<&CausalSpans> {
        self.causal.as_ref()
    }

    fn sample_metrics(&mut self, now: Cycle) {
        // Check dueness before building the node view: the common case is
        // "not due" (or sampling disabled) and must stay allocation-free.
        if !self.metrics.as_ref().is_some_and(|m| m.sampler.due(now)) {
            return;
        }
        let nodes: Vec<&Node> = self.nodes.iter().collect();
        let m = self.metrics.as_mut().expect("dueness checked");
        m.sample(self.cfg.app_threads, &nodes, self.network.as_ref(), now);
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advance one cycle.
    pub fn tick(&mut self) {
        let now = self.now;
        if let Some(net) = &mut self.network {
            while let Some(msg) = net.pop_arrived(now) {
                self.nodes[msg.dst.idx()].receive(msg, now);
            }
        }
        for node in &mut self.nodes {
            let was_quiet = node.quiescent();
            let was_finished = node.app_finished();
            node.tick(now, &mut self.sync);
            if node.quiescent() != was_quiet {
                if was_quiet {
                    self.quiet_nodes -= 1;
                } else {
                    self.quiet_nodes += 1;
                }
            }
            if node.app_finished() && !was_finished {
                self.finished_nodes += 1;
            }
            node.drain_outbox(&mut self.outbox_scratch);
            if let Some(net) = &mut self.network {
                for (at, msg) in self.outbox_scratch.drain(..) {
                    net.inject(at.max(now), msg);
                }
            } else if !self.outbox_scratch.is_empty() {
                // A 1-node machine has no network; a message bound for a
                // remote node means the address map or protocol is broken.
                // Record a structured failure for the run loop instead of
                // crashing mid-tick.
                let id = node.id();
                self.outbox_scratch.clear();
                self.pending_error.get_or_insert_with(|| {
                    format!("network message emitted on a 1-node machine by {id:?} at cycle {now}")
                });
            }
        }
        if self.app_done_at.is_none() && self.finished_nodes == self.nodes.len() {
            self.app_done_at = Some(now);
        }
        self.sample_metrics(now);
        self.now += 1;
    }

    /// Whether the application has completed *and* all protocol activity
    /// has drained. O(1): maintained from the per-node cached flags.
    pub fn quiesced(&self) -> bool {
        let quiet = self.app_done_at.is_some()
            && self.quiet_nodes == self.nodes.len()
            && self
                .network
                .as_ref()
                .is_none_or(|n| n.in_flight_count() == 0);
        debug_assert_eq!(
            quiet,
            self.app_done_at.is_some()
                && self.nodes.iter().all(|n| n.quiesced())
                && self
                    .network
                    .as_ref()
                    .is_none_or(|n| n.in_flight_count() == 0),
            "cached per-node quiescence diverged from a full scan"
        );
        quiet
    }

    /// Run the online coherence-invariant sanitizer every `every` cycles:
    /// at most one node may hold a writable copy of any stable line, and a
    /// writable holder must match the directory's exclusive owner. A
    /// violation ends the run with an [`RunErrorKind::UnrecoverableFault`]
    /// instead of silently corrupting results.
    pub fn enable_invariant_checks(&mut self, every: Cycle) {
        self.invariant_every = Some(every.max(1));
    }

    /// Turn on host-side engine telemetry: the run loop stamps a monotonic
    /// clock at every phase transition (tick/compute, barrier waits,
    /// merge, capture/injection replay, quiescence retraction, checks) and
    /// leaves a [`HostProfile`] behind — per-lane wall-clock attribution
    /// whose phase sums telescope to the lane totals, plus per-epoch
    /// counters (epoch length, ticked vs. idle-skipped node-cycles,
    /// barrier message counts, worker imbalance). Strictly host-side:
    /// guest-visible results are bit-identical with telemetry on or off.
    /// Retrieve the profile with [`System::host_profile`] after the run.
    pub fn enable_host_telemetry(&mut self) {
        self.telemetry = true;
    }

    /// Emit a live-run heartbeat roughly every `every` simulated cycles
    /// (snapped to the engine's epoch boundaries): one flushed JSONL
    /// record per beat with the current cycle, simulated cycles per wall
    /// second, epoch rate and per-worker utilization, written to `out`
    /// (`None` = stderr). Implies [`System::enable_host_telemetry`]. Each
    /// line is flushed as it is written, so an interrupted run still
    /// leaves a line-complete log.
    pub fn enable_heartbeat(&mut self, every: Cycle, out: Option<Box<dyn std::io::Write + Send>>) {
        self.telemetry = true;
        self.heartbeat = Some(Heartbeat::new(every, out));
    }

    /// Set the parallel engine's host-side tuning knobs (adaptive epoch
    /// bound, periodic load-driven repartitioning). Strictly a wall-clock
    /// matter: guest-visible results are bit-identical for every setting,
    /// which the `engine_equivalence` grid enforces. The serial engine
    /// ignores tuning entirely.
    pub fn set_engine_tuning(&mut self, tuning: EngineTuning) {
        self.tuning = tuning;
    }

    /// The parallel engine tuning currently in effect.
    pub fn engine_tuning(&self) -> EngineTuning {
        self.tuning
    }

    /// The host-side profile of the most recent run, if
    /// [`System::enable_host_telemetry`] (or the heartbeat) was on.
    pub fn host_profile(&self) -> Option<&HostProfile> {
        self.host_profile.as_ref()
    }

    /// Take ownership of the most recent run's host profile.
    pub fn take_host_profile(&mut self) -> Option<HostProfile> {
        self.host_profile.take()
    }

    /// Run to completion on the serial reference engine. `Ok` carries the
    /// collected statistics; `Err` carries the failure class
    /// ([`RunErrorKind`]) and a machine-state [`Diagnosis`]. The escalating
    /// forward-progress watchdog converts deadlocks, livelocks and
    /// unrecoverable faults into structured errors; exhausting `max_cycles`
    /// before quiescence reports as a deadlock. The tracer is flushed on
    /// both paths.
    pub fn run(&mut self, max_cycles: Cycle) -> Result<RunStats, RunError> {
        self.run_with(max_cycles, EngineKind::Serial)
    }

    /// Run to completion on the chosen execution engine. Both engines
    /// produce bit-identical statistics, trace streams and fault behavior;
    /// [`EngineKind::Parallel`] is a performance choice, not a semantic
    /// one.
    pub fn run_with(
        &mut self,
        max_cycles: Cycle,
        engine: EngineKind,
    ) -> Result<RunStats, RunError> {
        match engine {
            EngineKind::Serial => self.run_serial(max_cycles),
            EngineKind::Parallel => crate::engine::run_parallel(self, max_cycles),
        }
    }

    fn run_serial(&mut self, max_cycles: Cycle) -> Result<RunStats, RunError> {
        // Host telemetry for the serial reference loop, in the same
        // HostProfile shape the parallel engine produces: one lane, no
        // barrier phases, with WATCHDOG_INTERVAL segments standing in as
        // "epochs" so per-epoch histograms are directly comparable.
        self.host_profile = None;
        let mut timer = self.telemetry.then(|| PhaseTimer::new(HostPhase::Tick));
        let mut epoch_cycles = Histogram::new();
        let mut epochs: u64 = 0;
        let start_cycle = self.now;
        let mut epoch_start = self.now;
        if let Some(hb) = &mut self.heartbeat {
            hb.start(start_cycle);
            // Initial liveness record at the run start, so even a run
            // shorter than one heartbeat interval leaves a line-complete
            // log.
            hb.emit(start_cycle, "serial", 1, 0, &[0.0]);
        }
        let res: Result<(), RunError> = 'run: {
            while !self.quiesced() {
                self.tick();
                if let Some(msg) = self.pending_error.take() {
                    break 'run Err(self.run_error(RunErrorKind::UnrecoverableFault, msg));
                }
                if self.now.is_multiple_of(WATCHDOG_INTERVAL) {
                    if let Some(t) = &mut timer {
                        t.switch(HostPhase::Checks);
                    }
                    let fail = self.watchdog_check();
                    if let Some(t) = &mut timer {
                        t.switch(HostPhase::Other);
                        epoch_cycles.record(self.now - epoch_start);
                        t.end_epoch();
                        epochs += 1;
                        epoch_start = self.now;
                        if self.heartbeat.as_ref().is_some_and(|hb| hb.due(self.now)) {
                            // Serial "utilization" is the loop's tick share
                            // of wall-clock so far.
                            t.flush();
                            let all_ns = t.charged_ns();
                            let util = if all_ns == 0 {
                                0.0
                            } else {
                                t.phase_total_ns(HostPhase::Tick) as f64 / all_ns as f64
                            };
                            let mut hb = self.heartbeat.take().expect("dueness checked");
                            hb.emit(self.now, "serial", 1, epochs, &[util]);
                            self.heartbeat = Some(hb);
                        }
                        t.switch(HostPhase::Tick);
                    }
                    if let Some(err) = fail {
                        break 'run Err(err);
                    }
                }
                if let Some(every) = self.invariant_every {
                    if self.now.is_multiple_of(every) {
                        if let Some(t) = &mut timer {
                            t.switch(HostPhase::Checks);
                        }
                        let fail = self.check_coherence();
                        if let Some(t) = &mut timer {
                            t.switch(HostPhase::Tick);
                        }
                        if let Some(err) = fail {
                            break 'run Err(err);
                        }
                    }
                }
                if self.now >= max_cycles {
                    break 'run Err(self.run_error(
                        RunErrorKind::Deadlock,
                        format!(
                            "{:?} {} x{} ({}-way) did not quiesce in {max_cycles} cycles",
                            self.cfg.model, self.app, self.cfg.nodes, self.cfg.app_threads
                        ),
                    ));
                }
            }
            Ok(())
        };
        self.tracer.flush();
        if let Some(mut t) = timer {
            if self.now > epoch_start {
                // Close the final partial epoch.
                t.flush();
                epoch_cycles.record(self.now - epoch_start);
                t.end_epoch();
                epochs += 1;
            }
            if self.heartbeat.is_some() {
                // Final liveness record at the run end, closing the log
                // even when the run never crossed a heartbeat interval.
                t.flush();
                let all_ns = t.charged_ns();
                let util = if all_ns == 0 {
                    0.0
                } else {
                    t.phase_total_ns(HostPhase::Tick) as f64 / all_ns as f64
                };
                let mut hb = self.heartbeat.take().expect("checked");
                hb.emit(self.now, "serial", 1, epochs, &[util]);
                self.heartbeat = Some(hb);
            }
            let lane = t.finish("serial");
            let sim_cycles = self.now - start_cycle;
            self.host_profile = Some(HostProfile {
                engine: "serial".to_string(),
                workers: 1,
                epochs,
                lookahead: 0,
                sim_cycles,
                wall_ns: lane.total_ns,
                lanes: vec![lane],
                epoch_cycles,
                barrier_msgs: Histogram::new(),
                imbalance_x1000: Histogram::new(),
                // The serial loop ticks every node every cycle; it never
                // idle-skips.
                ticked_cycles: sim_cycles * self.nodes.len() as u64,
                skipped_cycles: 0,
            });
        }
        res.map(|()| self.collect())
    }

    fn watchdog_check(&mut self) -> Option<RunError> {
        let nodes: Vec<&Node> = self.nodes.iter().collect();
        let fail = self.watchdog.check(
            &nodes,
            self.network.as_ref(),
            self.app_done_at.is_some(),
            &self.tracer,
            self.now,
        );
        drop(nodes);
        let (kind, msg) = fail?;
        Some(self.run_error(kind, msg))
    }

    fn check_coherence(&self) -> Option<RunError> {
        let nodes: Vec<&Node> = self.nodes.iter().collect();
        let msg = coherence_violation(&nodes)?;
        drop(nodes);
        Some(self.run_error(RunErrorKind::UnrecoverableFault, msg))
    }

    /// Injected-fault and recovery counters across the whole machine.
    pub fn fault_summary(&self) -> FaultSummary {
        let nodes: Vec<&Node> = self.nodes.iter().collect();
        fault_summary_of(&nodes, self.network.as_ref())
    }

    pub(crate) fn run_error(&self, kind: RunErrorKind, message: String) -> RunError {
        RunError {
            kind,
            cycle: self.now,
            message,
            diagnosis: Box::new(self.diagnose()),
        }
    }

    /// Gather the machine-state evidence attached to every [`RunError`].
    fn diagnose(&self) -> Diagnosis {
        let mut nodes = Vec::with_capacity(self.nodes.len() * 2);
        let mut busy_lines = Vec::new();
        for n in &self.nodes {
            let s = n.pipeline.stats();
            nodes.push(format!(
                "{:?}: finished={} committed={:?} prot_quiesced={} dir_busy={} pending={}",
                n.id(),
                n.pipeline.finished(),
                &s.committed,
                n.pipeline.protocol_quiesced(),
                n.directory.any_busy(),
                n.directory.pending_len(),
            ));
            nodes.push(format!("  queues: {}", n.debug_queues()));
            for (line, st) in n.directory.busy_lines() {
                busy_lines.push(format!("busy {line:?} state={st:?}"));
                for peer in &self.nodes {
                    busy_lines.push(format!(
                        "  at {:?}: {}",
                        peer.id(),
                        peer.mem.debug_line(line)
                    ));
                }
            }
        }
        let stuck_transactions = self
            .profiler
            .open_records()
            .iter()
            .take(8)
            .map(|r| {
                let (b, at) = PhaseProfiler::last_progress(r);
                format!(
                    "{:?} {:?} {:?}: last boundary {b:?} at cycle {at} ({} cycles ago)",
                    r.requester,
                    r.line,
                    r.class,
                    self.now.saturating_sub(at)
                )
            })
            .collect();
        // With causal spans enabled, dump every still-open transaction as
        // an annotated span tree: the exact trail of messages and handlers
        // the wedged transaction got through before it stopped.
        let open_spans = self
            .causal
            .as_ref()
            .map(|c| {
                c.open_spans()
                    .iter()
                    .take(8)
                    .map(|ex| ex.render_tree())
                    .collect()
            })
            .unwrap_or_default();
        Diagnosis {
            nodes,
            busy_lines,
            stuck_transactions,
            open_spans,
            recent_events: self.tracer.ring_dump(),
            faults: self.fault_summary(),
        }
    }

    /// Gather statistics from every component.
    pub fn collect(&self) -> RunStats {
        RunStats::collect(
            &self.cfg,
            self.app,
            self.app_done_at.unwrap_or(self.now),
            &self.nodes,
            self.network.as_ref(),
            &self.sync,
            &self.profiler,
            self.causal.as_ref(),
        )
    }

    /// Node access for white-box tests.
    pub fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }
}
