//! The full-machine simulator: nodes + interconnect + global clock.

use crate::node::Node;
use crate::stats::RunStats;
use smtp_noc::Network;
use smtp_trace::{IntervalSampler, Tracer};
use smtp_types::Ctx;
use smtp_types::{Cycle, NodeId, PhaseProfiler, SystemConfig};
use smtp_workloads::{AppKind, SyncManager, ThreadGen, WorkloadCfg};

/// Interval-sampling state: the sampler plus the previous counter values
/// needed to turn cumulative statistics into per-interval rates.
struct MetricsState {
    sampler: IntervalSampler,
    prev_committed: Vec<u64>,
    prev_prot_active: Vec<u64>,
    prev_vnet: [u64; 4],
}

/// A complete simulated DSM machine running one application.
pub struct System {
    cfg: SystemConfig,
    app: AppKind,
    nodes: Vec<Node>,
    network: Option<Network>,
    sync: SyncManager,
    now: Cycle,
    app_done_at: Option<Cycle>,
    tracer: Tracer,
    profiler: PhaseProfiler,
    metrics: Option<MetricsState>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("model", &self.cfg.model)
            .field("nodes", &self.nodes.len())
            .field("app", &self.app)
            .field("now", &self.now)
            .finish()
    }
}

impl System {
    /// Build the machine described by `cfg`, loaded with `app` at the given
    /// workload scale.
    pub fn new(cfg: SystemConfig, app: AppKind, scale: f64) -> System {
        let wl = WorkloadCfg {
            nodes: cfg.nodes,
            app_threads: cfg.app_threads,
            scale,
            prefetch: true,
        };
        Self::with_workload(cfg, app, wl)
    }

    /// Build the machine with full workload-construction control.
    pub fn with_workload(cfg: SystemConfig, app: AppKind, wl: WorkloadCfg) -> System {
        cfg.validate();
        assert_eq!(wl.nodes, cfg.nodes);
        assert_eq!(wl.app_threads, cfg.app_threads);
        let nodes = (0..cfg.nodes)
            .map(|i| Node::new(NodeId(i as u16), &cfg, app, &wl))
            .collect();
        Self::assemble(cfg, app, nodes)
    }

    /// Build a machine running caller-provided workload generators — the
    /// public hook for custom [`smtp_workloads::Kernel`] implementations.
    /// `factory` is called once per (node, application context).
    pub fn with_threads(
        cfg: SystemConfig,
        mut factory: impl FnMut(NodeId, Ctx) -> ThreadGen,
    ) -> System {
        cfg.validate();
        let nodes = (0..cfg.nodes)
            .map(|i| {
                let id = NodeId(i as u16);
                let gens = (0..cfg.app_threads)
                    .map(|c| factory(id, Ctx(c as u8)))
                    .collect();
                Node::with_threads(id, &cfg, gens)
            })
            .collect();
        Self::assemble(cfg, AppKind::Fft, nodes)
    }

    fn assemble(cfg: SystemConfig, app: AppKind, mut nodes: Vec<Node>) -> System {
        let mut network = (cfg.nodes > 1).then(|| Network::new(cfg.nodes, cfg.cpu_ghz, &cfg.net));
        let sync = SyncManager::new(cfg.total_app_threads());
        // One tracer shared by every component. It starts with an empty
        // category mask — each emission point costs a single branch until
        // [`Tracer::set_mask`]/[`Tracer::enable_all`] turns categories on —
        // and a diagnostics ring so enabled runs keep their recent history
        // for deadlock panics.
        let tracer = Tracer::new();
        tracer.enable_ring(128);
        // One phase profiler shared the same way: every L2 miss transaction
        // is stamped at its phase boundaries by the cache hierarchy, the
        // node's MC interfaces and the network, keyed by (requester, line).
        let profiler = PhaseProfiler::new();
        for n in &mut nodes {
            n.set_tracer(tracer.clone());
            n.set_profiler(profiler.clone());
        }
        if let Some(net) = &mut network {
            net.set_tracer(tracer.clone());
            net.set_profiler(profiler.clone());
        }
        System {
            cfg,
            app,
            nodes,
            network,
            sync,
            now: 0,
            app_done_at: None,
            tracer,
            profiler,
            metrics: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The system tracer. Enable categories and attach sinks through this
    /// handle; every component shares it.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The latency phase profiler shared by every component. Use
    /// [`smtp_types::PhaseProfiler::keep_records`] before running to retain
    /// individual transaction records in addition to the aggregate.
    pub fn profiler(&self) -> &PhaseProfiler {
        &self.profiler
    }

    /// Start interval sampling of machine metrics every `interval` cycles:
    /// per-node IPC, protocol-thread occupancy, MSHR usage and protocol
    /// queue depth, plus network in-flight count and per-virtual-network
    /// message rates. Retrieve the series with [`System::metrics`].
    pub fn enable_metrics(&mut self, interval: Cycle) {
        let n = self.nodes.len();
        let mut columns = Vec::with_capacity(4 * n + 5);
        for i in 0..n {
            columns.push(format!("ipc{i}"));
            columns.push(format!("prot_occ{i}"));
            columns.push(format!("mshr{i}"));
            columns.push(format!("queue{i}"));
        }
        columns.push("net_inflight".to_string());
        for v in 0..4 {
            columns.push(format!("vn{v}"));
        }
        self.metrics = Some(MetricsState {
            sampler: IntervalSampler::new(interval, columns),
            prev_committed: vec![0; n],
            prev_prot_active: vec![0; n],
            prev_vnet: [0; 4],
        });
    }

    /// The sampled metrics time-series, if [`System::enable_metrics`] was
    /// called.
    pub fn metrics(&self) -> Option<&IntervalSampler> {
        self.metrics.as_ref().map(|m| &m.sampler)
    }

    fn sample_metrics(&mut self, now: Cycle) {
        let Some(m) = &mut self.metrics else {
            return;
        };
        if !m.sampler.due(now) {
            return;
        }
        let interval = m.sampler.interval() as f64;
        let mut values = Vec::with_capacity(4 * self.nodes.len() + 5);
        for (i, node) in self.nodes.iter().enumerate() {
            let s = node.pipeline.stats();
            let committed: u64 = s.committed[..self.cfg.app_threads].iter().sum();
            values.push((committed - m.prev_committed[i]) as f64 / interval);
            m.prev_committed[i] = committed;
            let active = s.protocol_active_cycles;
            values.push((active - m.prev_prot_active[i]) as f64 / interval);
            m.prev_prot_active[i] = active;
            values.push(node.mem.mshrs_used() as f64);
            values.push(node.protocol_queue_depth() as f64);
        }
        match &self.network {
            Some(net) => {
                values.push(net.in_flight_count() as f64);
                let per_vnet = net.stats().per_vnet;
                for (prev, &cur) in m.prev_vnet.iter_mut().zip(per_vnet.iter()) {
                    values.push((cur - *prev) as f64 / interval);
                    *prev = cur;
                }
            }
            None => values.extend([0.0; 5]),
        }
        m.sampler.record(now, values);
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advance one cycle.
    pub fn tick(&mut self) {
        let now = self.now;
        if let Some(net) = &mut self.network {
            while let Some(msg) = net.pop_arrived(now) {
                self.nodes[msg.dst.idx()].receive(msg, now);
            }
        }
        for node in &mut self.nodes {
            node.tick(now, &mut self.sync);
            let out = node.take_outbox();
            if let Some(net) = &mut self.network {
                for (at, msg) in out {
                    net.inject(at.max(now), msg);
                }
            } else {
                assert!(out.is_empty(), "network message on a 1-node machine");
            }
        }
        if self.app_done_at.is_none() && self.nodes.iter().all(|n| n.pipeline.finished()) {
            self.app_done_at = Some(now);
        }
        self.sample_metrics(now);
        self.now += 1;
    }

    /// Whether the application has completed *and* all protocol activity
    /// has drained.
    pub fn quiesced(&self) -> bool {
        self.app_done_at.is_some()
            && self.nodes.iter().all(|n| n.quiesced())
            && self
                .network
                .as_ref()
                .is_none_or(|n| n.in_flight_count() == 0)
    }

    /// Run to completion; returns the collected statistics.
    ///
    /// # Panics
    ///
    /// Panics if the machine does not quiesce within `max_cycles` — that
    /// always indicates a deadlock or livelock bug, and the panic message
    /// carries diagnostics.
    pub fn run(&mut self, max_cycles: Cycle) -> RunStats {
        while !self.quiesced() {
            self.tick();
            if self.now >= max_cycles {
                self.panic_with_diagnostics(max_cycles);
            }
        }
        self.tracer.flush();
        self.collect()
    }

    fn panic_with_diagnostics(&self, max_cycles: Cycle) -> ! {
        self.tracer.flush();
        let mut diag = String::new();
        for n in &self.nodes {
            let s = n.pipeline.stats();
            diag.push_str(&format!(
                "\n  {:?}: finished={} committed={:?} prot_quiesced={} dir_busy={} pending={}",
                n.id(),
                n.pipeline.finished(),
                &s.committed,
                n.pipeline.protocol_quiesced(),
                n.directory.any_busy(),
                n.directory.pending_len(),
            ));
            diag.push_str(&format!("\n    queues: {}", n.debug_queues()));
            for (line, st) in n.directory.busy_lines() {
                diag.push_str(&format!("\n    busy {line:?} state={st:?}"));
                for peer in &self.nodes {
                    diag.push_str(&format!(
                        "\n      at {:?}: {}",
                        peer.id(),
                        peer.mem.debug_line(line)
                    ));
                }
            }
        }
        let ring = self.tracer.ring_dump();
        if !ring.is_empty() {
            diag.push_str(&format!("\n  last {} trace events:", ring.len()));
            for line in ring {
                diag.push_str("\n    ");
                diag.push_str(&line);
            }
        }
        panic!(
            "{:?} {} x{} ({}-way) did not quiesce in {max_cycles} cycles:{diag}",
            self.cfg.model, self.app, self.cfg.nodes, self.cfg.app_threads
        );
    }

    /// Gather statistics from every component.
    pub fn collect(&self) -> RunStats {
        RunStats::collect(
            &self.cfg,
            self.app,
            self.app_done_at.unwrap_or(self.now),
            &self.nodes,
            self.network.as_ref(),
            &self.sync,
            &self.profiler,
        )
    }

    /// Node access for white-box tests.
    pub fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }
}
