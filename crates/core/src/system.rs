//! The full-machine simulator: nodes + interconnect + global clock.

use crate::node::Node;
use crate::stats::RunStats;
use smtp_noc::Network;
use smtp_types::{Cycle, NodeId, SystemConfig};
use smtp_types::Ctx;
use smtp_workloads::{AppKind, SyncManager, ThreadGen, WorkloadCfg};

/// A complete simulated DSM machine running one application.
pub struct System {
    cfg: SystemConfig,
    app: AppKind,
    nodes: Vec<Node>,
    network: Option<Network>,
    sync: SyncManager,
    now: Cycle,
    app_done_at: Option<Cycle>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("model", &self.cfg.model)
            .field("nodes", &self.nodes.len())
            .field("app", &self.app)
            .field("now", &self.now)
            .finish()
    }
}

impl System {
    /// Build the machine described by `cfg`, loaded with `app` at the given
    /// workload scale.
    pub fn new(cfg: SystemConfig, app: AppKind, scale: f64) -> System {
        let wl = WorkloadCfg {
            nodes: cfg.nodes,
            app_threads: cfg.app_threads,
            scale,
            prefetch: true,
        };
        Self::with_workload(cfg, app, wl)
    }

    /// Build the machine with full workload-construction control.
    pub fn with_workload(cfg: SystemConfig, app: AppKind, wl: WorkloadCfg) -> System {
        cfg.validate();
        assert_eq!(wl.nodes, cfg.nodes);
        assert_eq!(wl.app_threads, cfg.app_threads);
        let nodes = (0..cfg.nodes)
            .map(|i| Node::new(NodeId(i as u16), &cfg, app, &wl))
            .collect();
        Self::assemble(cfg, app, nodes)
    }

    /// Build a machine running caller-provided workload generators — the
    /// public hook for custom [`smtp_workloads::Kernel`] implementations.
    /// `factory` is called once per (node, application context).
    pub fn with_threads(
        cfg: SystemConfig,
        mut factory: impl FnMut(NodeId, Ctx) -> ThreadGen,
    ) -> System {
        cfg.validate();
        let nodes = (0..cfg.nodes)
            .map(|i| {
                let id = NodeId(i as u16);
                let gens = (0..cfg.app_threads)
                    .map(|c| factory(id, Ctx(c as u8)))
                    .collect();
                Node::with_threads(id, &cfg, gens)
            })
            .collect();
        Self::assemble(cfg, AppKind::Fft, nodes)
    }

    fn assemble(cfg: SystemConfig, app: AppKind, nodes: Vec<Node>) -> System {
        let network = (cfg.nodes > 1).then(|| Network::new(cfg.nodes, cfg.cpu_ghz, &cfg.net));
        let sync = SyncManager::new(cfg.total_app_threads());
        System {
            cfg,
            app,
            nodes,
            network,
            sync,
            now: 0,
            app_done_at: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advance one cycle.
    pub fn tick(&mut self) {
        let now = self.now;
        if let Some(net) = &mut self.network {
            while let Some(msg) = net.pop_arrived(now) {
                self.nodes[msg.dst.idx()].receive(msg, now);
            }
        }
        for node in &mut self.nodes {
            node.tick(now, &mut self.sync);
            let out = node.take_outbox();
            if let Some(net) = &mut self.network {
                for (at, msg) in out {
                    net.inject(at.max(now), msg);
                }
            } else {
                assert!(out.is_empty(), "network message on a 1-node machine");
            }
        }
        if self.app_done_at.is_none() && self.nodes.iter().all(|n| n.pipeline.finished()) {
            self.app_done_at = Some(now);
        }
        self.now += 1;
    }

    /// Whether the application has completed *and* all protocol activity
    /// has drained.
    pub fn quiesced(&self) -> bool {
        self.app_done_at.is_some()
            && self.nodes.iter().all(|n| n.quiesced())
            && self
                .network
                .as_ref()
                .is_none_or(|n| n.in_flight_count() == 0)
    }

    /// Run to completion; returns the collected statistics.
    ///
    /// # Panics
    ///
    /// Panics if the machine does not quiesce within `max_cycles` — that
    /// always indicates a deadlock or livelock bug, and the panic message
    /// carries diagnostics.
    pub fn run(&mut self, max_cycles: Cycle) -> RunStats {
        while !self.quiesced() {
            self.tick();
            if self.now >= max_cycles {
                self.panic_with_diagnostics(max_cycles);
            }
        }
        self.collect()
    }

    fn panic_with_diagnostics(&self, max_cycles: Cycle) -> ! {
        let mut diag = String::new();
        for n in &self.nodes {
            let s = n.pipeline.stats();
            diag.push_str(&format!(
                "\n  {:?}: finished={} committed={:?} prot_quiesced={} dir_busy={} pending={}",
                n.id(),
                n.pipeline.finished(),
                &s.committed,
                n.pipeline.protocol_quiesced(),
                n.directory.any_busy(),
                n.directory.pending_len(),
            ));
            diag.push_str(&format!("\n    queues: {}", n.debug_queues()));
            for (line, st) in n.directory.busy_lines() {
                diag.push_str(&format!("\n    busy {line:?} state={st:?}"));
                for peer in &self.nodes {
                    diag.push_str(&format!(
                        "\n      at {:?}: {}",
                        peer.id(),
                        peer.mem.debug_line(line)
                    ));
                }
            }
        }
        panic!(
            "{:?} {} x{} ({}-way) did not quiesce in {max_cycles} cycles:{diag}",
            self.cfg.model, self.app, self.cfg.nodes, self.cfg.app_threads
        );
    }

    /// Gather statistics from every component.
    pub fn collect(&self) -> RunStats {
        RunStats::collect(
            &self.cfg,
            self.app,
            self.app_done_at.unwrap_or(self.now),
            &self.nodes,
            self.network.as_ref(),
            &self.sync,
        )
    }

    /// Node access for white-box tests.
    pub fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }
}
