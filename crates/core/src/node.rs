//! One DSM node: SMT pipeline + caches + directory + memory controller,
//! assembled per machine model.

use smtp_cache::{Grant, IntervResult, InvalResult, MemEvent, MemHierarchy, MissKind};
use smtp_isa::{Inst, SyncCond, SyncEnv, SyncOp, SyncOutcome};
use smtp_mem::{DirCache, ProtocolEngine, Sdram, TimedQueue};
use smtp_noc::{Msg, MsgKind};
use smtp_pipeline::{PipeEnv, SmtPipeline};
use smtp_protocol::{handler_program, Directory, DispatchGovernor, HandlerStats, Transition};
use smtp_trace::{Category, Event, HandlerClass, StallClass, Tracer};
use smtp_types::faults::SITE_DISPATCH;
use smtp_types::{
    Ctx, Cycle, Distribution, FaultConfig, FaultSummary, FaultWindows, LineAddr, MachineModel,
    NodeId, PhaseBoundary, PhaseProfiler, Region, SpanId, SystemConfig,
};
use smtp_workloads::{make_thread, AppKind, ThreadGen, WorkloadCfg};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A coherence handler instance being executed by the protocol thread.
#[derive(Debug)]
struct HandlerInstance {
    prog: Vec<Inst>,
    pos: usize,
    sends: Vec<Msg>,
    data_reply: Option<usize>,
    data_ready_at: Cycle,
    /// Line this handler serves (trace attribution).
    line: LineAddr,
    /// Handler class (trace attribution).
    handler: HandlerClass,
    /// Per-node dispatch sequence number, matching the `handler_dispatch`
    /// trace event this instance was announced with.
    trace_seq: u64,
    /// Cycle the dispatch unit accepted this handler (occupancy stats).
    dispatched_at: Cycle,
    /// [`smtp_protocol::HandlerKind`] index (occupancy stats).
    kind_idx: usize,
    /// Causal span of the transaction this handler serves.
    span: SpanId,
}

/// The SMTp handler dispatch unit (paper §2.1): selects queued
/// transactions, computes the handler PC, and feeds the protocol thread's
/// fetch. With look-ahead scheduling (§2.3) the next handler's first
/// instruction is handed to fetch as soon as the previous handler's fetch
/// completes; otherwise it waits for the previous `ldctxt` to graduate.
#[derive(Debug)]
pub struct DispatchUnit {
    las: bool,
    running: VecDeque<HandlerInstance>,
    fetch_idx: usize,
    /// Handlers dispatched in total.
    pub handlers: u64,
    /// Handlers whose fetch began via look-ahead.
    pub look_ahead: u64,
}

impl DispatchUnit {
    fn new(las: bool) -> DispatchUnit {
        DispatchUnit {
            las,
            running: VecDeque::with_capacity(2),
            fetch_idx: 0,
            handlers: 0,
            look_ahead: 0,
        }
    }

    fn can_accept(&self) -> bool {
        self.running.len() < if self.las { 2 } else { 1 }
    }

    fn enqueue(&mut self, h: HandlerInstance) {
        debug_assert!(self.can_accept());
        self.handlers += 1;
        self.running.push_back(h);
    }

    fn next_inst(&mut self) -> Option<Inst> {
        loop {
            let idx = self.fetch_idx;
            let h = self.running.get_mut(idx)?;
            if h.pos < h.prog.len() {
                let i = h.prog[h.pos];
                h.pos += 1;
                return Some(i);
            }
            if self.las && idx + 1 < self.running.len() {
                self.fetch_idx = idx + 1;
                self.look_ahead += 1;
                continue;
            }
            return None;
        }
    }

    /// The graduating handler's `msg_idx`-th send, and the cycle it may
    /// actually leave (data replies wait for SDRAM).
    fn send_msg(&self, idx: u8, now: Cycle) -> (Msg, Cycle) {
        let h = self.running.front().expect("send without running handler");
        let msg = h.sends[idx as usize];
        let at = if h.data_reply == Some(idx as usize) {
            now.max(h.data_ready_at)
        } else {
            now
        };
        (msg, at)
    }

    fn ldctxt_graduated(&mut self) -> HandlerInstance {
        let h = self
            .running
            .pop_front()
            .expect("ldctxt without running handler");
        debug_assert_eq!(
            h.pos,
            h.prog.len(),
            "handler graduated before fetch finished"
        );
        self.fetch_idx = self.fetch_idx.saturating_sub(1);
        h
    }

    /// Whether no handler is running or queued.
    pub fn idle(&self) -> bool {
        self.running.is_empty()
    }

    /// Diagnostics: (instances, fetch_idx, per-instance pos/len).
    pub fn debug_state(&self) -> String {
        let inst: Vec<String> = self
            .running
            .iter()
            .map(|h| format!("{}/{}", h.pos, h.prog.len()))
            .collect();
        format!("running={:?} fetch_idx={}", inst, self.fetch_idx)
    }
}

/// Deferred node-local events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pending {
    /// Deliver a message to this node (local traffic and timed emissions).
    Deliver(Msg),
    /// Complete a fill from local SDRAM (code / protocol / local data).
    Fill(LineAddr, Grant),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Timed {
    at: Cycle,
    seq: u64,
    what: Pending,
}

impl Ord for Timed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Timed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Actions recorded by the pipeline environment during a tick, replayed
/// against the dispatch unit afterwards.
#[derive(Clone, Copy, Debug)]
enum ProtAction {
    Send(u8, Cycle),
    Ldctxt,
}

/// Per-node statistics beyond what the sub-components track.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeStats {
    /// Messages sent into the network.
    pub msgs_out: u64,
    /// Local (same-node) protocol messages.
    pub msgs_local: u64,
    /// Peak local-miss-interface queue depth.
    pub lmi_peak: usize,
    /// Peak network-interface input queue depth.
    pub ni_peak: usize,
    /// Handlers executed on the embedded engine or protocol thread.
    pub handlers: u64,
}

/// One DSM node.
pub struct Node {
    id: NodeId,
    model: MachineModel,
    mc_div: u64,
    /// System-bus cycles (CPU clock) for a header-sized L2<->MC transfer.
    bus_req: u64,
    /// System-bus cycles for a full cache-line transfer (Table 3: 64-bit
    /// bus at the memory-controller clock).
    bus_data: u64,
    /// The SMT pipeline.
    pub pipeline: SmtPipeline,
    /// The cache hierarchy.
    pub mem: MemHierarchy,
    /// The directory for lines homed here.
    pub directory: Directory,
    /// The SDRAM.
    pub sdram: Sdram,
    /// The embedded protocol engine (non-SMTp models).
    pub engine: Option<ProtocolEngine>,
    /// The SMTp handler dispatch unit.
    pub dispatch: DispatchUnit,
    gens: Vec<ThreadGen>,
    lmi: TimedQueue<Msg>,
    ni_in: TimedQueue<Msg>,
    replay: VecDeque<Msg>,
    events: BinaryHeap<Reverse<Timed>>,
    seq: u64,
    actions: Vec<ProtAction>,
    outbox: Vec<(Cycle, Msg)>,
    trace_line: Option<u64>,
    tracer: Tracer,
    profiler: PhaseProfiler,
    /// Fault-injection gate for handler dispatch (starvation, delays).
    governor: DispatchGovernor,
    /// Whether any fault hook on this node is armed (skips event polling
    /// with one branch when not).
    faults_armed: bool,
    /// Cached result of [`Node::quiesced`], refreshed at the end of every
    /// [`Node::tick`] so the system's end-of-run test is O(1) per cycle
    /// instead of a full component scan per node.
    quiescent: bool,
    /// Cached `pipeline.finished()` (monotone), refreshed with
    /// [`Node::quiescent`] so the system's application-done test is O(1).
    app_finished: bool,
    /// Fault-stream snapshots taken by the epoch engine on quiescent
    /// ticks, keyed by loop-top cycle, so [`Node::retract_idle`] can also
    /// rewind the per-cycle fault draws (governor polls, stall-window
    /// checks) that those ticks consumed. Always empty under the serial
    /// engine and with faults disarmed.
    fault_rewinds: Vec<(Cycle, FaultRewind)>,
    /// Extra statistics.
    pub stats: NodeStats,
    /// Per-handler-kind dispatch counts and occupancy.
    pub handler_stats: HandlerStats,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.id)
            .field("model", &self.model)
            .finish()
    }
}

impl Node {
    /// Assemble a node for the given machine model and application.
    pub fn new(id: NodeId, cfg: &SystemConfig, app: AppKind, wl: &WorkloadCfg) -> Node {
        let gens = (0..cfg.app_threads)
            .map(|c| make_thread(app, wl, id, Ctx(c as u8)))
            .collect();
        Node::with_threads(id, cfg, gens)
    }

    /// Assemble a node with caller-provided workload generators (one per
    /// application context) — the hook for custom [`smtp_workloads::Kernel`]s.
    ///
    /// # Panics
    ///
    /// Panics unless exactly `cfg.app_threads` generators are supplied.
    pub fn with_threads(id: NodeId, cfg: &SystemConfig, gens: Vec<ThreadGen>) -> Node {
        assert_eq!(gens.len(), cfg.app_threads, "one generator per app context");
        let smtp = cfg.model.uses_protocol_thread();
        let pipeline = SmtPipeline::new(id, &cfg.pipeline, cfg.app_threads, smtp);
        let mem = MemHierarchy::new(id, &cfg.pipeline, smtp);
        let sdram = Sdram::from_ns(cfg.cpu_ghz, cfg.mem.sdram_access_ns, cfg.mem.sdram_bw_gbps);
        let engine = if cfg.model.has_protocol_engine() {
            let dircache = match cfg.model.dir_cache_kb() {
                Some(kb) => DirCache::direct_mapped(
                    (kb / cfg.mem.dir_cache_scale_div).max(1),
                    cfg.mem.dir_cache_line,
                ),
                None => DirCache::perfect(),
            };
            Some(ProtocolEngine::new(
                cfg.mc_divisor(),
                sdram.access_cycles(),
                dircache,
                cfg.mem.pp_icache_bytes,
            ))
        } else {
            None
        };
        let div = cfg.mc_divisor();
        Node {
            id,
            model: cfg.model,
            mc_div: div,
            bus_req: (cfg.net.header_bytes / cfg.mem.bus_bytes).max(1) * div,
            bus_data: (smtp_types::L2_LINE / cfg.mem.bus_bytes) * div,
            pipeline,
            mem,
            directory: Directory::new(id),
            sdram,
            engine,
            dispatch: DispatchUnit::new(smtp && cfg.pipeline.look_ahead_scheduling),
            gens,
            lmi: TimedQueue::new(),
            ni_in: TimedQueue::new(),
            replay: VecDeque::new(),
            events: BinaryHeap::new(),
            seq: 0,
            actions: Vec::new(),
            outbox: Vec::new(),
            trace_line: std::env::var("SMTP_TRACE_LINE")
                .ok()
                .and_then(|v| u64::from_str_radix(v.trim_start_matches("0x"), 16).ok()),
            tracer: Tracer::disabled(),
            profiler: PhaseProfiler::disabled(),
            governor: DispatchGovernor::disabled(),
            faults_armed: false,
            quiescent: false,
            app_finished: false,
            fault_rewinds: Vec::new(),
            stats: NodeStats::default(),
            handler_stats: HandlerStats::new(),
        }
    }

    /// Attach the system tracer to this node and all its sub-components.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.pipeline.set_tracer(tracer.clone());
        self.mem.set_tracer(tracer.clone());
        self.directory.set_tracer(tracer.clone());
        self.sdram.set_tracer(self.id, tracer.clone());
        self.tracer = tracer;
    }

    /// Attach the latency phase profiler to this node and its hierarchy.
    pub fn set_profiler(&mut self, profiler: PhaseProfiler) {
        self.mem.set_profiler(profiler.clone());
        self.profiler = profiler;
    }

    /// Arm this node's fault-injection hooks (ECC on SDRAM reads,
    /// dispatch-queue stall windows, protocol-thread starvation and handler
    /// delays). A no-op unless `faults` is enabled with nonzero rates.
    pub fn set_faults(&mut self, faults: &FaultConfig) {
        if !faults.enabled {
            return;
        }
        self.sdram.set_faults(faults, self.id);
        if faults.dispatch_stall.any() {
            let node = u64::from(self.id.0);
            self.lmi.set_stall(FaultWindows::new(
                faults.stream(SITE_DISPATCH ^ node),
                &faults.dispatch_stall,
            ));
            self.ni_in.set_stall(FaultWindows::new(
                faults.stream(SITE_DISPATCH ^ node ^ (1 << 32)),
                &faults.dispatch_stall,
            ));
        }
        self.governor = DispatchGovernor::from_faults(faults, self.id);
        self.faults_armed = faults.is_active();
    }

    /// This node's injected-fault counters (ECC, stalls, starvation,
    /// handler delays); link-level counters live in the network.
    pub fn fault_counters(&self) -> FaultSummary {
        FaultSummary {
            ecc_corrected: self.sdram.ecc_corrected(),
            ecc_uncorrectable: self.sdram.ecc_uncorrectable(),
            dispatch_stall_windows: self.lmi.stall_windows() + self.ni_in.stall_windows(),
            starvation_windows: self.governor.starvation_windows(),
            handler_delays: self.governor.handler_delays(),
            ..FaultSummary::default()
        }
    }

    /// First uncorrectable ECC error on this node, if any:
    /// `(cycle, protocol_channel)` — the watchdog's unrecoverable signal.
    pub fn first_uncorrectable(&self) -> Option<(Cycle, bool)> {
        self.sdram.first_uncorrectable()
    }

    /// Emit one trace event per newly opened fault window (called on MC
    /// edges; the hooks themselves hold no tracer).
    #[cold]
    fn poll_fault_events(&mut self, now: Cycle) {
        let node = self.id;
        if let Some(until) = self.lmi.stall_opened() {
            self.tracer
                .emit(Category::Fault, now, || Event::StallWindow {
                    node,
                    kind: StallClass::DispatchQueue,
                    until,
                });
        }
        if let Some(until) = self.ni_in.stall_opened() {
            self.tracer
                .emit(Category::Fault, now, || Event::StallWindow {
                    node,
                    kind: StallClass::DispatchQueue,
                    until,
                });
        }
        if let Some(until) = self.governor.starvation_opened() {
            self.tracer
                .emit(Category::Fault, now, || Event::StallWindow {
                    node,
                    kind: StallClass::Starvation,
                    until,
                });
        }
        if let Some(until) = self.governor.handler_delayed() {
            self.tracer
                .emit(Category::Fault, now, || Event::StallWindow {
                    node,
                    kind: StallClass::HandlerDelay,
                    until,
                });
        }
    }

    /// Waiting time observed by home transactions in the local-miss and
    /// network-interface input queues (dispatch queueing, Table 7 context).
    pub fn dispatch_wait(&self) -> Distribution {
        let mut d = self.lmi.wait().clone();
        d.merge(self.ni_in.wait());
        d
    }

    #[inline]
    fn trace(&self, now: Cycle, what: &str, msg: &Msg) {
        if self.trace_line == Some(msg.addr.raw()) {
            eprintln!("[{now}] {:?} {what}: {msg}", self.id);
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Workload generators (for statistics).
    pub fn gens(&self) -> &[ThreadGen] {
        &self.gens
    }

    fn schedule(&mut self, at: Cycle, what: Pending) {
        self.seq += 1;
        self.events.push(Reverse(Timed {
            at,
            seq: self.seq,
            what,
        }));
    }

    /// Route an outgoing message (local delivery or network injection).
    fn emit_msg(&mut self, msg: Msg, at: Cycle) {
        self.trace(at, "emit", &msg);
        if self.profiler.is_enabled()
            && matches!(
                msg.kind,
                MsgKind::DataShared | MsgKind::DataExcl { .. } | MsgKind::UpgradeAck { .. }
            )
        {
            self.profiler
                .stamp(msg.dst, msg.addr, PhaseBoundary::ReplySent, at);
            if msg.dst == self.id {
                // Local replies skip the network; they are "delivered" when
                // the local MC hands them over.
                self.profiler.stamp(
                    msg.dst,
                    msg.addr,
                    PhaseBoundary::ReplyDelivered,
                    at + self.mc_div,
                );
            }
        }
        if msg.dst == self.id {
            self.stats.msgs_local += 1;
            let node = self.id;
            self.tracer.emit(Category::Network, at, || Event::LocalMsg {
                node,
                line: msg.addr,
                msg: msg.kind.trace_label(),
                span: msg.span,
            });
            self.schedule(at + self.mc_div, Pending::Deliver(msg));
        } else {
            self.stats.msgs_out += 1;
            self.outbox.push((at, msg));
        }
    }

    /// Accept a message delivered by the network (or locally).
    pub fn receive(&mut self, msg: Msg, now: Cycle) {
        debug_assert_eq!(msg.dst, self.id);
        self.trace(now, "recv", &msg);
        match msg.kind {
            // Home-directed transactions queue for the protocol backend.
            MsgKind::GetS
            | MsgKind::GetX
            | MsgKind::Upgrade
            | MsgKind::Put { .. }
            | MsgKind::SharingWb { .. }
            | MsgKind::TransferAck { .. } => {
                self.ni_in.push(now + self.mc_div, msg);
                self.stats.ni_peak = self.stats.ni_peak.max(self.ni_in.len());
            }
            // Requester/third-party messages are handled by the cache
            // hierarchy; data replies first cross the 64-bit system bus at
            // the memory-controller clock (Table 3).
            MsgKind::DataShared => {
                self.schedule(now + self.bus_data, Pending::Fill(msg.addr, Grant::Shared));
            }
            MsgKind::DataExcl { acks } => {
                self.schedule(
                    now + self.bus_data,
                    Pending::Fill(msg.addr, Grant::Excl { acks }),
                );
            }
            MsgKind::UpgradeAck { acks } => {
                self.schedule(
                    now + self.bus_req,
                    Pending::Fill(msg.addr, Grant::UpgradeAck { acks }),
                );
            }
            MsgKind::AckInv => self.mem.ack_arrived(msg.addr, now),
            MsgKind::WbAck => self.mem.wb_acked(msg.addr),
            MsgKind::Inval { requester } => match self.mem.inval(msg.addr, requester, msg.span) {
                InvalResult::AckNow => {
                    let ack =
                        Msg::new(MsgKind::AckInv, msg.addr, self.id, requester).with_span(msg.span);
                    self.emit_msg(ack, now + 2);
                }
                InvalResult::Deferred => {}
            },
            MsgKind::IntervShared { requester } => {
                let home = msg.src;
                match self.mem.interv_shared(msg.addr, requester, msg.span) {
                    IntervResult::FromCache { .. } | IntervResult::FromWb { .. } => {
                        self.reply_interv_shared(msg.addr, requester, home, msg.span, now);
                    }
                    IntervResult::Deferred => {}
                }
            }
            MsgKind::IntervExcl { requester } => {
                let home = msg.src;
                match self.mem.interv_excl(msg.addr, requester, msg.span) {
                    IntervResult::FromCache { .. } | IntervResult::FromWb { .. } => {
                        self.reply_interv_excl(msg.addr, requester, home, msg.span, now);
                    }
                    IntervResult::Deferred => {}
                }
            }
        }
        self.drain_mem_events(now);
    }

    fn reply_interv_shared(
        &mut self,
        line: LineAddr,
        requester: NodeId,
        home: NodeId,
        span: SpanId,
        now: Cycle,
    ) {
        let at = now + 2;
        self.emit_msg(
            Msg::new(MsgKind::DataShared, line, self.id, requester).with_span(span),
            at,
        );
        self.emit_msg(
            Msg::new(MsgKind::SharingWb { requester }, line, self.id, home).with_span(span),
            at,
        );
    }

    fn reply_interv_excl(
        &mut self,
        line: LineAddr,
        requester: NodeId,
        home: NodeId,
        span: SpanId,
        now: Cycle,
    ) {
        let at = now + 2;
        self.emit_msg(
            Msg::new(MsgKind::DataExcl { acks: 0 }, line, self.id, requester).with_span(span),
            at,
        );
        self.emit_msg(
            Msg::new(
                MsgKind::TransferAck {
                    new_owner: requester,
                },
                line,
                self.id,
                home,
            )
            .with_span(span),
            at,
        );
    }

    /// Translate cache-hierarchy events into coherence/SDRAM actions and
    /// pipeline wake-ups.
    fn drain_mem_events(&mut self, now: Cycle) {
        while let Some(ev) = self.mem.pop_event() {
            match ev {
                MemEvent::AppMiss { line, kind, span } => {
                    let mk = match kind {
                        MissKind::Read => MsgKind::GetS,
                        MissKind::Write => MsgKind::GetX,
                        MissKind::Upgrade => MsgKind::Upgrade,
                    };
                    let home = line.home();
                    let msg = Msg::new(mk, line, self.id, home).with_span(span);
                    self.trace(now, "miss", &msg);
                    let at = now + self.bus_req;
                    self.profiler
                        .stamp(self.id, line, PhaseBoundary::ReqSent, at);
                    if home == self.id {
                        // Local misses reach the home MC straight over the
                        // system bus — no request-network hop.
                        self.profiler
                            .stamp(self.id, line, PhaseBoundary::ReqDelivered, at);
                        self.lmi.push(at, msg);
                        self.stats.lmi_peak = self.stats.lmi_peak.max(self.lmi.len());
                    } else {
                        self.outbox.push((at, msg));
                        self.stats.msgs_out += 1;
                    }
                }
                MemEvent::ProtocolFetch { line, span } => {
                    // Dedicated 64-bit protocol bus straight to local SDRAM
                    // (paper §2.1): no contention with application traffic,
                    // but the line still pays the bus serialization.
                    let done = self.sdram.read_protocol(now, span) + self.bus_data;
                    self.schedule(done, Pending::Fill(line, Grant::Excl { acks: 0 }));
                }
                MemEvent::CodeFetch { line, span } => {
                    let done = self.sdram.read(now, span) + self.bus_data;
                    self.schedule(done, Pending::Fill(line, Grant::Shared));
                }
                MemEvent::Writeback { line, dirty, span } => {
                    if matches!(line.region(), Region::AppData) {
                        let home = line.home();
                        let msg =
                            Msg::new(MsgKind::Put { dirty }, line, self.id, home).with_span(span);
                        let at = now + if dirty { self.bus_data } else { self.bus_req };
                        if home == self.id {
                            self.lmi.push(at, msg);
                        } else {
                            self.outbox.push((at, msg));
                            self.stats.msgs_out += 1;
                        }
                    } else if dirty {
                        // Directory / protocol lines: local SDRAM write.
                        self.sdram.write_protocol(now, span);
                    }
                }
                MemEvent::LoadDone { tag, at } => self.pipeline.load_done(tag, at),
                MemEvent::StoreDone { tag, at, performed } => {
                    self.pipeline.store_done(tag, at, performed)
                }
                MemEvent::IFetchDone { ctx, at } => self.pipeline.ifetch_done(ctx, at),
                MemEvent::DeferredInvalAck {
                    line,
                    requester,
                    span,
                } => {
                    let ack = Msg::new(MsgKind::AckInv, line, self.id, requester).with_span(span);
                    self.emit_msg(ack, now + 2);
                }
                MemEvent::DeferredIntervShared {
                    line,
                    requester,
                    span,
                    ..
                } => {
                    self.reply_interv_shared(line, requester, line.home(), span, now);
                }
                MemEvent::DeferredIntervExcl {
                    line,
                    requester,
                    span,
                    ..
                } => {
                    self.reply_interv_excl(line, requester, line.home(), span, now);
                }
            }
        }
    }

    /// Pop the next home transaction ready at `now` (replays first).
    fn next_home_msg(&mut self, now: Cycle) -> Option<Msg> {
        if let Some(m) = self.replay.pop_front() {
            return Some(m);
        }
        if let Some(m) = self.ni_in.pop_due(now) {
            return Some(m);
        }
        self.lmi.pop_due(now)
    }

    /// Run the home-side protocol processing for this MC edge.
    fn home_dispatch(&mut self, now: Cycle) {
        if !now.is_multiple_of(self.mc_div) {
            return;
        }
        if self.faults_armed {
            let allowed = self.governor.allow(now);
            self.poll_fault_events(now);
            if !allowed {
                return;
            }
        }
        match self.model {
            MachineModel::SMTp => {
                // Feed the protocol thread's dispatch unit.
                let mut guard = 0;
                while self.dispatch.can_accept() && guard < 4 {
                    guard += 1;
                    let Some(msg) = self.next_home_msg(now) else {
                        break;
                    };
                    let Some(t) = self.directory.process(&msg, now) else {
                        self.trace(now, "defer", &msg);
                        continue; // deferred into the pending queue
                    };
                    self.trace(now, "handle", &msg);
                    self.stats.handlers += 1;
                    let seq = self.stats.handlers;
                    self.trace_dispatch(&msg, &t, seq, now);
                    self.stamp_dispatched(&msg, now);
                    self.start_protocol_thread_handler(msg.addr, t, msg.span, now, seq);
                }
            }
            _ => {
                // Embedded engine: one handler at a time.
                let mut guard = 0;
                while guard < 4 {
                    guard += 1;
                    if !self.engine.as_ref().expect("engine").idle(now) {
                        break;
                    }
                    let Some(msg) = self.next_home_msg(now) else {
                        break;
                    };
                    let Some(t) = self.directory.process(&msg, now) else {
                        continue;
                    };
                    self.stats.handlers += 1;
                    let seq = self.stats.handlers;
                    self.trace_dispatch(&msg, &t, seq, now);
                    self.stamp_dispatched(&msg, now);
                    self.run_engine_handler(msg.addr, t, msg.span, now, seq);
                    break;
                }
            }
        }
    }

    /// Stamp the dispatch boundary of the requester's open transaction.
    /// Only primary requests open transactions — secondary home traffic
    /// (Put, SharingWb, TransferAck) may carry a line address the sender
    /// has its own unrelated open transaction on, so it must not stamp.
    fn stamp_dispatched(&mut self, msg: &Msg, now: Cycle) {
        if matches!(msg.kind, MsgKind::GetS | MsgKind::GetX | MsgKind::Upgrade) {
            self.profiler
                .stamp(msg.src, msg.addr, PhaseBoundary::Dispatched, now);
        }
    }

    /// Announce a handler dispatch to the tracer. `seq` pairs the event
    /// with its eventual `handler_complete`.
    fn trace_dispatch(&mut self, msg: &Msg, t: &Transition, seq: u64, now: Cycle) {
        let node = self.id;
        self.tracer
            .emit(Category::Protocol, now, || Event::HandlerDispatch {
                node,
                line: msg.addr,
                handler: t.kind.trace_class(),
                msg: msg.kind.trace_label(),
                src: msg.src,
                seq,
                span: msg.span,
            });
    }

    fn common_handler_setup(
        &mut self,
        line: LineAddr,
        t: &Transition,
        span: SpanId,
        now: Cycle,
    ) -> Cycle {
        if t.sdram_write {
            self.sdram.write(now, span);
        }
        if t.unbusied {
            let pend = self.directory.take_pending(line);
            self.replay.extend(pend);
        }
        if t.data_reply.is_some() {
            // The dispatch unit starts the memory access in parallel with
            // handler execution (paper §2.1).
            self.sdram.read(now, span)
        } else {
            0
        }
    }

    fn start_protocol_thread_handler(
        &mut self,
        line: LineAddr,
        t: Transition,
        span: SpanId,
        now: Cycle,
        seq: u64,
    ) {
        let data_ready_at = self.common_handler_setup(line, &t, span, now);
        let prog = handler_program(self.id, line, &t);
        let handler = t.kind.trace_class();
        let kind_idx = t.kind.index();
        self.dispatch.enqueue(HandlerInstance {
            prog,
            pos: 0,
            sends: t.sends,
            data_reply: t.data_reply,
            data_ready_at,
            line,
            handler,
            trace_seq: seq,
            dispatched_at: now,
            kind_idx,
            span,
        });
    }

    fn run_engine_handler(
        &mut self,
        line: LineAddr,
        t: Transition,
        span: SpanId,
        now: Cycle,
        seq: u64,
    ) {
        let data_ready_at = self.common_handler_setup(line, &t, span, now);
        let prog = handler_program(self.id, line, &t);
        let run = self
            .engine
            .as_mut()
            .expect("engine")
            .run_handler(self.id, &prog, now);
        self.handler_stats
            .record(t.kind.index(), run.finish.saturating_sub(now));
        let node = self.id;
        let handler = t.kind.trace_class();
        self.tracer
            .emit(Category::Protocol, run.finish, || Event::HandlerComplete {
                node,
                line,
                handler,
                seq,
                span,
            });
        for (send_at, idx) in run.sends {
            let msg = t.sends[idx];
            let at = if t.data_reply == Some(idx) {
                send_at.max(data_ready_at)
            } else {
                send_at
            };
            self.emit_msg(msg, at);
        }
    }

    /// Advance the node one CPU cycle. Outgoing network messages are left
    /// in the outbox for the system to drain via [`Node::drain_outbox`].
    /// `sync` is the shared synchronization fabric — the serial engine
    /// passes the system's [`SyncManager`] directly; the parallel engine
    /// passes a cross-thread gate that serializes access in cycle order.
    pub fn tick(&mut self, now: Cycle, sync: &mut dyn SyncEnv) {
        // 1. Due local events.
        while self.events.peek().is_some_and(|Reverse(t)| t.at <= now) {
            let Reverse(t) = self.events.pop().expect("peeked");
            match t.what {
                Pending::Deliver(msg) => self.receive(msg, now),
                Pending::Fill(line, grant) => {
                    self.mem.fill(line, grant, now);
                    self.drain_mem_events(now);
                }
            }
        }
        // 2. Home-side protocol dispatch (MC clock).
        self.home_dispatch(now);
        // 3. Pipeline.
        debug_assert!(self.actions.is_empty());
        let mut env = NodeEnv {
            node: self.id,
            gens: &mut self.gens,
            sync,
            dispatch: &mut self.dispatch,
            actions: &mut self.actions,
        };
        self.pipeline.tick(now, &mut env, &mut self.mem);
        // 4. Protocol-thread graduation effects.
        let actions = std::mem::take(&mut self.actions);
        for a in actions {
            match a {
                ProtAction::Send(idx, at) => {
                    let (msg, send_at) = self.dispatch.send_msg(idx, at);
                    self.emit_msg(msg, send_at);
                }
                ProtAction::Ldctxt => {
                    let h = self.dispatch.ldctxt_graduated();
                    self.handler_stats
                        .record(h.kind_idx, now.saturating_sub(h.dispatched_at));
                    let node = self.id;
                    self.tracer
                        .emit(Category::Protocol, now, || Event::HandlerComplete {
                            node,
                            line: h.line,
                            handler: h.handler,
                            seq: h.trace_seq,
                            span: h.span,
                        });
                }
            }
        }
        // 5. New cache events from this cycle's pipeline activity.
        self.drain_mem_events(now);
        // 6. Refresh the cached status flags (O(1) end-of-run tests).
        self.app_finished = self.pipeline.finished();
        self.quiescent = self.quiesced();
    }

    /// Drain messages bound for the network.
    pub fn take_outbox(&mut self) -> Vec<(Cycle, Msg)> {
        std::mem::take(&mut self.outbox)
    }

    /// Drain messages bound for the network into a caller-owned scratch
    /// buffer, avoiding the per-node-per-cycle `Vec` allocation that
    /// [`Node::take_outbox`] implies in the hot run loop.
    pub fn drain_outbox(&mut self, into: &mut Vec<(Cycle, Msg)>) {
        into.append(&mut self.outbox);
    }

    /// Combined depth of the protocol input queues (local-miss interface,
    /// network interface, and replay) — the metrics-sampling signal.
    pub fn protocol_queue_depth(&self) -> usize {
        self.lmi.len() + self.ni_in.len() + self.replay.len()
    }

    /// Diagnostics: queue depths and dispatch state.
    pub fn debug_queues(&self) -> String {
        format!(
            "lmi={} ni_in={} replay={} events={} dispatch[{}] outbox={}",
            self.lmi.len(),
            self.ni_in.len(),
            self.replay.len(),
            self.events.len(),
            self.dispatch.debug_state(),
            self.outbox.len(),
        )
    }

    /// Whether this node has reached total quiescence (used by the system
    /// to detect the end of the run).
    pub fn quiesced(&self) -> bool {
        self.pipeline.finished()
            && self.pipeline.protocol_quiesced()
            && self.pipeline.drains_quiesced()
            && self.lmi.is_empty()
            && self.ni_in.is_empty()
            && self.replay.is_empty()
            && self.events.is_empty()
            && self.dispatch.idle()
            && !self.directory.any_busy()
            && self.directory.pending_len() == 0
    }

    /// Cached quiescence, as of the end of the last [`Node::tick`] — the
    /// O(1) form of [`Node::quiesced`] used by the run loops. Stale until
    /// the first tick (a freshly assembled node is never quiescent).
    pub fn quiescent(&self) -> bool {
        self.quiescent
    }

    /// Cached `pipeline.finished()` as of the end of the last
    /// [`Node::tick`]. Monotone: once true it stays true.
    pub fn app_finished(&self) -> bool {
        self.app_finished
    }

    /// Conservative earliest cycle at which this node can do meaningful
    /// work again, given that it was just ticked at `now` and will receive
    /// no external delivery before the returned bound. Returns `None` when
    /// the node must be ticked at `now + 1` (anything could happen), or
    /// `Some(b)` with `b > now + 1` when every tick in `now+1..b` is
    /// provably a pure stall tick: the only state the skipped ticks would
    /// mutate is the bookkeeping that [`Node::skip_idle`] replays in bulk.
    ///
    /// Fault hooks are time-sensitive (stall windows open on check
    /// schedules, governors poll per MC edge), so an armed node never
    /// skips.
    pub fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if self.faults_armed || !self.replay.is_empty() {
            return None;
        }
        let mut bound = self.pipeline.frozen_until(now, self.dispatch.idle())?;
        if let Some(Reverse(t)) = self.events.peek() {
            bound = bound.min(t.at);
        }
        if let Some(at) = self.lmi.next_due() {
            bound = bound.min(at);
        }
        if let Some(at) = self.ni_in.next_due() {
            bound = bound.min(at);
        }
        (bound > now + 1).then_some(bound)
    }

    /// Account for skipped pure-stall ticks over `from..to` (both bounds
    /// as cycles the node is *not* ticked for `from..to`, with the next
    /// real tick at `to`). Replays the per-cycle bookkeeping the skipped
    /// ticks would have performed (stall-bucket stats, round-robin
    /// rotation) so a skipping run is bit-identical to a cycle-by-cycle
    /// one.
    pub fn skip_idle(&mut self, from: Cycle, to: Cycle) {
        self.pipeline.skip_stalled(from, to);
    }

    /// Roll back the bookkeeping of ticks `from..to` that the epoch engine
    /// executed past the exact quiescence point (all of which were idle
    /// ticks on a fully quiescent node), including any fault-stream draws
    /// those ticks consumed (restored from the [`Node::snapshot_faults`]
    /// snapshot taken at `from`).
    pub fn retract_idle(&mut self, from: Cycle, to: Cycle) {
        self.pipeline.retract_idle(from, to);
        if let Some(i) = self.fault_rewinds.iter().position(|(at, _)| *at == from) {
            let (_, s) = self.fault_rewinds.swap_remove(i);
            self.lmi.restore_stall(s.lmi_stall);
            self.ni_in.restore_stall(s.ni_stall);
            self.governor = s.governor;
        } else {
            debug_assert!(
                !self.faults_armed,
                "retracting an armed node without a fault snapshot at {from}"
            );
        }
        self.fault_rewinds.clear();
    }

    /// Record the fault-stream state as of loop-top cycle `at` (called by
    /// the epoch engine after a tick that left the node quiescent, so a
    /// later [`Node::retract_idle`] back to `at` restores the exact RNG
    /// positions). A no-op with faults disarmed.
    pub fn snapshot_faults(&mut self, at: Cycle) {
        if !self.faults_armed {
            return;
        }
        self.fault_rewinds.push((
            at,
            FaultRewind {
                lmi_stall: self.lmi.stall_state(),
                ni_stall: self.ni_in.stall_state(),
                governor: self.governor.clone(),
            },
        ));
    }

    /// Drop fault snapshots from a previous epoch (its retraction window
    /// has passed).
    pub fn clear_fault_snapshots(&mut self) {
        self.fault_rewinds.clear();
    }
}

/// One [`Node::snapshot_faults`] snapshot: every piece of fault-injection
/// state that per-cycle hooks mutate even on pure idle ticks.
struct FaultRewind {
    lmi_stall: Option<FaultWindows>,
    ni_stall: Option<FaultWindows>,
    governor: DispatchGovernor,
}

/// The pipeline environment for one tick.
struct NodeEnv<'a> {
    node: NodeId,
    gens: &'a mut [ThreadGen],
    sync: &'a mut dyn SyncEnv,
    dispatch: &'a mut DispatchUnit,
    actions: &'a mut Vec<ProtAction>,
}

impl PipeEnv for NodeEnv<'_> {
    fn next_app_inst(&mut self, ctx: Ctx) -> Inst {
        use smtp_isa::InstSource;
        self.gens[ctx.idx()].next_inst()
    }

    fn next_protocol_inst(&mut self) -> Option<Inst> {
        self.dispatch.next_inst()
    }

    fn poll(&mut self, node: NodeId, ctx: Ctx, cond: SyncCond) -> bool {
        debug_assert_eq!(node, self.node);
        self.sync.poll(node, ctx, cond)
    }

    fn sync_store(&mut self, node: NodeId, ctx: Ctx, op: SyncOp) -> SyncOutcome {
        debug_assert_eq!(node, self.node);
        self.sync.sync_store(node, ctx, op)
    }

    fn sync_result(&mut self, ctx: Ctx, outcome: SyncOutcome) {
        use smtp_isa::InstSource;
        if !ctx.is_protocol() {
            self.gens[ctx.idx()].sync_result(outcome);
        }
    }

    fn send_graduated(&mut self, msg_idx: u8, now: Cycle) {
        self.actions.push(ProtAction::Send(msg_idx, now));
    }

    fn ldctxt_graduated(&mut self, _now: Cycle) {
        self.actions.push(ProtAction::Ldctxt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtp_types::SystemConfig;
    use smtp_workloads::SyncManager;

    fn node(model: MachineModel) -> (Node, SyncManager) {
        let cfg = SystemConfig::new(model, 1, 1);
        let wl = WorkloadCfg {
            nodes: 1,
            app_threads: 1,
            scale: 0.05,
            prefetch: true,
        };
        (
            Node::new(NodeId(0), &cfg, AppKind::Fft, &wl),
            SyncManager::new(1),
        )
    }

    #[test]
    fn dispatch_unit_gates_without_las() {
        let mut d = DispatchUnit::new(false);
        assert!(d.can_accept());
        d.enqueue(HandlerInstance {
            prog: vec![Inst::new(smtp_isa::Op::Switch, 0)],
            pos: 0,
            sends: vec![],
            data_reply: None,
            data_ready_at: 0,
            line: LineAddr(0),
            handler: HandlerClass::Put,
            trace_seq: 0,
            dispatched_at: 0,
            kind_idx: 0,
            span: SpanId::NONE,
        });
        assert!(!d.can_accept());
        assert!(d.next_inst().is_some());
        assert!(d.next_inst().is_none(), "no look-ahead without LAS");
        d.ldctxt_graduated();
        assert!(d.can_accept());
        assert!(d.idle());
    }

    #[test]
    fn dispatch_unit_look_ahead_switches_after_fetch() {
        let mut d = DispatchUnit::new(true);
        let mk = |n: u32| HandlerInstance {
            prog: (0..n).map(|p| Inst::new(smtp_isa::Op::PAlu, p)).collect(),
            pos: 0,
            sends: vec![],
            data_reply: None,
            data_ready_at: 0,
            line: LineAddr(0),
            handler: HandlerClass::Put,
            trace_seq: 0,
            dispatched_at: 0,
            kind_idx: 0,
            span: SpanId::NONE,
        };
        d.enqueue(mk(2));
        d.enqueue(mk(3));
        assert!(!d.can_accept());
        // Fetch drains handler 0 then continues into handler 1.
        for _ in 0..5 {
            assert!(d.next_inst().is_some());
        }
        assert!(d.next_inst().is_none());
        assert_eq!(d.look_ahead, 1);
        d.ldctxt_graduated();
        assert!(d.can_accept());
        d.ldctxt_graduated();
        assert!(d.idle());
    }

    #[test]
    fn smtp_node_has_no_engine_and_vice_versa() {
        let (n, _) = node(MachineModel::SMTp);
        assert!(n.engine.is_none());
        let (n, _) = node(MachineModel::Int512KB);
        assert!(n.engine.is_some());
    }

    #[test]
    fn single_node_runs_some_cycles_without_panic() {
        let (mut n, mut sync) = node(MachineModel::SMTp);
        for now in 0..5_000 {
            n.tick(now, &mut sync);
            assert!(n.take_outbox().is_empty(), "single node must stay local");
        }
        // It must be making progress.
        assert!(n.pipeline.stats().committed[0] > 100);
    }

    #[test]
    fn base_node_also_progresses() {
        let (mut n, mut sync) = node(MachineModel::Base);
        for now in 0..5_000 {
            n.tick(now, &mut sync);
            n.take_outbox();
        }
        assert!(n.pipeline.stats().committed[0] > 100);
    }
}
