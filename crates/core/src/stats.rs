//! Run statistics: everything the paper's tables and figures need.

use crate::node::Node;
use smtp_noc::{NetStats, Network};
use smtp_protocol::HandlerStats;
use smtp_trace::{
    classify, CausalSpans, CriticalPathBreakdown, HomeHeat, HotLine, LineTracker, SpatialStats,
};
use smtp_types::{
    Cycle, Distribution, FaultSummary, LatencyBreakdown, MachineModel, PhaseProfiler, RunningStat,
    SystemConfig, MAX_CTX,
};
use smtp_workloads::{AppKind, SyncManager};

/// Where one hardware context spent its cycles (paper Fig. 5/7): the
/// committing "busy" component plus the five stall buckets, all in cycles.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadTime {
    /// Node the context lives on.
    pub node: usize,
    /// Context index within the node.
    pub ctx: usize,
    /// Cycles with at least one instruction committed.
    pub busy: u64,
    /// Cycles stalled on a memory operation at the head of the window.
    pub memory: u64,
    /// Cycles blocked on synchronization (locks / barriers).
    pub sync: u64,
    /// Cycles inside a squash-recovery window.
    pub squash: u64,
    /// Cycles with the context completely empty (fetch-starved).
    pub fetch_starved: u64,
    /// Remaining non-committing cycles.
    pub other: u64,
    /// Total cycles the pipeline ran.
    pub cycles: Cycle,
}

/// Aggregated results of one simulation run.
#[derive(Clone, Debug)]
pub struct RunStats {
    /// Machine model simulated.
    pub model: MachineModel,
    /// Application run.
    pub app: AppKind,
    /// Nodes in the machine.
    pub nodes: usize,
    /// Application threads per node.
    pub ways: usize,
    /// Parallel execution time: cycle at which the last application thread
    /// finished.
    pub cycles: Cycle,
    /// Committed application instructions (whole machine).
    pub app_instructions: u64,
    /// Committed protocol-thread instructions (SMTp only).
    pub protocol_instructions: u64,
    /// Memory-stall cycles averaged over all application threads (paper §4
    /// definition).
    pub memory_stall_cycles: f64,
    /// Peak per-node protocol occupancy (fraction of execution time the
    /// protocol engine / protocol thread was active) — paper Table 7.
    pub protocol_occupancy_peak: f64,
    /// Mean per-node protocol occupancy.
    pub protocol_occupancy_mean: f64,
    /// Protocol-thread branch misprediction rate (Table 8).
    pub protocol_mispredict_rate: f64,
    /// Fraction of cycles freeing squashed protocol instructions (Table 8).
    pub protocol_squash_frac: f64,
    /// Retired protocol instructions / all retired instructions (Table 8).
    pub protocol_retired_frac: f64,
    /// Peak protocol-thread branch-stack occupancy across nodes (Table 9),
    /// plus the mean of per-node peaks.
    pub prot_branch_stack: (u64, f64),
    /// Peak / mean-of-peaks protocol integer registers (Table 9).
    pub prot_int_regs: (u64, f64),
    /// Peak / mean-of-peaks protocol integer-queue entries (Table 9).
    pub prot_int_queue: (u64, f64),
    /// Peak / mean-of-peaks protocol LSQ entries (Table 9).
    pub prot_lsq: (u64, f64),
    /// Handlers executed machine-wide.
    pub handlers: u64,
    /// Directory-cache hit rate of the embedded engines (1.0 under SMTp).
    pub dir_cache_hit_rate: f64,
    /// Network statistics (zero for one-node machines).
    pub network: NetStats,
    /// L1D miss rate of application accesses.
    pub l1d_app_miss_rate: f64,
    /// L2 miss rate of application accesses.
    pub l2_app_miss_rate: f64,
    /// Lock acquisitions machine-wide.
    pub lock_acquires: u64,
    /// Barrier episodes machine-wide.
    pub barrier_episodes: u64,
    /// End-to-end application L2 miss latency (MSHR alloc to free),
    /// merged across nodes.
    pub miss_latency: Distribution,
    /// Per-phase latency decomposition of profiled L2 miss transactions.
    pub latency: LatencyBreakdown,
    /// Critical-path attribution over closed causal spans (all zero unless
    /// the run had [`crate::System::enable_causal_spans`] on).
    pub critical_path: CriticalPathBreakdown,
    /// Network latency per virtual network (Request, Intervention, Reply,
    /// Io), merged across injections.
    pub vnet_latency: [Distribution; 4],
    /// SDRAM channel queueing delay (cycles a request waited for the
    /// channel), both channels, merged across nodes.
    pub sdram_queue_wait: Distribution,
    /// Home-side dispatch queueing delay (local-miss-interface and
    /// network-interface input queues), merged across nodes.
    pub dispatch_queue_wait: Distribution,
    /// Per-handler-kind dispatch counts and occupancy, merged across nodes.
    pub handler_occupancy: HandlerStats,
    /// Per-context time breakdown (Fig. 5/7), one entry per application
    /// context machine-wide.
    pub thread_time: Vec<ThreadTime>,
    /// Spatial hot-spot attribution: classified hot lines (empty unless
    /// [`crate::System::enable_spatial`] was on), per-home-node heat and
    /// the per-directed-link NoC utilization matrix (always collected —
    /// they reuse counters the components maintain anyway).
    pub spatial: SpatialStats,
    /// Injected-fault and recovery counters (all zero unless the run was
    /// configured with fault injection).
    pub faults: FaultSummary,
    /// Pinned parallel-engine worker count from the configuration
    /// ([`SystemConfig::workers`]). Config-derived rather than measured so
    /// the field — like every other guest-visible statistic — is
    /// bit-identical between the serial and parallel engines.
    pub workers: Option<usize>,
}

impl RunStats {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn collect(
        cfg: &SystemConfig,
        app: AppKind,
        cycles: Cycle,
        nodes: &[Node],
        network: Option<&Network>,
        sync: &SyncManager,
        profiler: &PhaseProfiler,
        causal: Option<&CausalSpans>,
    ) -> RunStats {
        let cycles = cycles.max(1);
        let mut app_insts = 0;
        let mut prot_insts = 0;
        let mut mem_stall = RunningStat::new();
        let mut occupancy = RunningStat::new();
        let mut prot_branches = 0u64;
        let mut prot_mispred = 0u64;
        let mut squash_cycles = 0u64;
        let mut bs = RunningStat::new();
        let mut ir = RunningStat::new();
        let mut iq = RunningStat::new();
        let mut lsq = RunningStat::new();
        let mut handlers = 0;
        let mut dir_hits = 0u64;
        let mut dir_misses = 0u64;
        let mut l1d = (0u64, 0u64);
        let mut l2 = (0u64, 0u64);
        let mut miss_latency = Distribution::new();
        let mut sdram_queue_wait = Distribution::new();
        let mut dispatch_queue_wait = Distribution::new();
        let mut handler_occupancy = HandlerStats::new();
        let mut thread_time = Vec::with_capacity(nodes.len() * cfg.app_threads);
        let mut homes = Vec::with_capacity(nodes.len());
        let mut hot_tracker: Option<LineTracker> = None;
        let mut faults = network.map(|n| n.fault_counters()).unwrap_or_default();
        for n in nodes {
            faults.merge(&n.fault_counters());
            let p = n.pipeline.stats();
            app_insts += p.committed_app();
            prot_insts += p.committed_protocol();
            for t in 0..cfg.app_threads {
                mem_stall.push(p.memory_stall[t] as f64);
                let [busy, memory, sync_c, squash, fetch_starved, other] = p.thread_breakdown(t);
                thread_time.push(ThreadTime {
                    node: n.id().idx(),
                    ctx: t,
                    busy,
                    memory,
                    sync: sync_c,
                    squash,
                    fetch_starved,
                    other,
                    cycles: p.cycles,
                });
            }
            let mut home_sdram = Distribution::new();
            home_sdram.merge(n.sdram.main_queue_wait());
            home_sdram.merge(n.sdram.protocol_queue_wait());
            sdram_queue_wait.merge(&home_sdram);
            let home_queue = n.dispatch_wait();
            dispatch_queue_wait.merge(&home_queue);
            handler_occupancy.merge(&n.handler_stats);
            let occ_cycles = match &n.engine {
                Some(e) => e.active_cycles(),
                None => p.protocol_active_cycles,
            };
            occupancy.push(occ_cycles as f64 / cycles as f64);
            homes.push(HomeHeat {
                node: n.id().idx(),
                handlers: n.stats.handlers,
                occupancy_cycles: occ_cycles,
                nacks: n.directory.stats().deferred,
                queue_wait: home_queue,
                sdram_wait: home_sdram,
            });
            // Fold both per-line views in fixed node order: the home-side
            // directory tracker, then the requester-side cache tracker.
            for t in [n.directory.spatial(), n.mem.spatial()]
                .into_iter()
                .flatten()
            {
                match &mut hot_tracker {
                    Some(m) => m.merge(t),
                    None => hot_tracker = Some(t.clone()),
                }
            }
            prot_branches += p.branches[MAX_CTX - 1];
            prot_mispred += p.mispredicts[MAX_CTX - 1];
            squash_cycles += p.protocol_squash_cycles;
            bs.push(p.prot_branch_stack.peak() as f64);
            ir.push(p.prot_int_regs_peak as f64);
            iq.push(p.prot_int_queue.peak() as f64);
            lsq.push(p.prot_lsq.peak() as f64);
            handlers += n.stats.handlers;
            if let Some(e) = &n.engine {
                dir_hits += e.dircache().hits();
                dir_misses += e.dircache().misses();
            }
            let c = n.mem.stats();
            l1d.0 += c.l1d_app_hits;
            l1d.1 += c.l1d_app_misses;
            l2.0 += c.l2_app_hits;
            l2.1 += c.l2_app_misses;
            miss_latency.merge(&c.miss_latency);
        }
        let total_insts = app_insts + prot_insts;
        let (spatial_enabled, tracked_events, hot_lines) = match &hot_tracker {
            Some(t) => (
                true,
                t.total(),
                t.sorted()
                    .into_iter()
                    .map(|e| HotLine {
                        line: e.line.raw(),
                        home: e.line.home().idx(),
                        weight: e.weight,
                        err: e.err,
                        class: classify(&e.c),
                        c: e.c,
                    })
                    .collect(),
            ),
            None => (false, 0, Vec::new()),
        };
        let spatial = SpatialStats {
            enabled: spatial_enabled,
            elapsed: cycles,
            tracked_events,
            hot_lines,
            homes,
            links: network.map(|n| n.link_heat()).unwrap_or_default(),
        };
        RunStats {
            model: cfg.model,
            app,
            nodes: cfg.nodes,
            ways: cfg.app_threads,
            cycles,
            app_instructions: app_insts,
            protocol_instructions: prot_insts,
            memory_stall_cycles: mem_stall.mean(),
            protocol_occupancy_peak: occupancy.max(),
            protocol_occupancy_mean: occupancy.mean(),
            protocol_mispredict_rate: if prot_branches == 0 {
                0.0
            } else {
                prot_mispred as f64 / prot_branches as f64
            },
            protocol_squash_frac: squash_cycles as f64 / cycles as f64,
            protocol_retired_frac: if total_insts == 0 {
                0.0
            } else {
                prot_insts as f64 / total_insts as f64
            },
            prot_branch_stack: (bs.max() as u64, bs.mean()),
            prot_int_regs: (ir.max() as u64, ir.mean()),
            prot_int_queue: (iq.max() as u64, iq.mean()),
            prot_lsq: (lsq.max() as u64, lsq.mean()),
            handlers,
            dir_cache_hit_rate: if dir_hits + dir_misses == 0 {
                1.0
            } else {
                dir_hits as f64 / (dir_hits + dir_misses) as f64
            },
            network: network.map(|n| *n.stats()).unwrap_or_default(),
            l1d_app_miss_rate: miss_rate(l1d),
            l2_app_miss_rate: miss_rate(l2),
            lock_acquires: sync.stats().lock_acquires,
            barrier_episodes: sync.stats().barrier_episodes,
            miss_latency,
            latency: profiler.breakdown(),
            critical_path: causal.map(|c| c.breakdown()).unwrap_or_default(),
            vnet_latency: network
                .map(|n| n.vnet_latency().clone())
                .unwrap_or_default(),
            sdram_queue_wait,
            dispatch_queue_wait,
            handler_occupancy,
            thread_time,
            spatial,
            faults,
            workers: cfg.workers,
        }
    }

    /// Committed application instructions per cycle (whole machine).
    pub fn ipc(&self) -> f64 {
        self.app_instructions as f64 / self.cycles as f64
    }

    /// Memory-stall fraction of execution time (the dark bar segment in
    /// the paper's figures).
    pub fn memory_stall_frac(&self) -> f64 {
        self.memory_stall_cycles / self.cycles as f64
    }
}

fn miss_rate((hits, misses): (u64, u64)) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        misses as f64 / (hits + misses) as f64
    }
}
