//! Minimal hand-rolled JSON reader for report parse-back.
//!
//! The workspace deliberately has no serialization dependency: every
//! writer ([`crate::Report::json`], `HostProfile::to_json`,
//! `write_bench_report`) emits JSON by hand, and this module is the
//! matching reader — a recursive-descent parser over the full JSON value
//! grammar (objects, arrays, strings with escapes, numbers, literals),
//! promoted from the validator the causal-span tests introduced. The
//! cross-run archive and the report-diff engine are built on it: a report
//! that parses here is by construction structurally valid JSON.
//!
//! Numbers are held as `f64`. Every integer the simulator reports (cycle
//! counts bounded by the 2×10⁹-cycle watchdog, instruction and message
//! counters) is far below 2⁵³, so integer round-trips are exact.

/// A parsed JSON value. Object keys keep their original order.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in key order of appearance.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member of an object by key (`None` for other variants or a missing
    /// key).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a non-negative whole
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as key/value pairs, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Required object member, as a parse-back error when absent.
    pub fn req(&self, key: &str) -> Result<&JsonValue, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing key {key:?}"), 0))
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl JsonError {
    /// An error at an explicit byte offset (0 for semantic errors raised
    /// after parsing).
    pub fn new_at(msg: impl Into<String>, at: usize) -> JsonError {
        JsonError::new(msg, at)
    }

    fn new(msg: impl Into<String>, at: usize) -> JsonError {
        JsonError {
            msg: msg.into(),
            at,
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parse one complete JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let b = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(JsonError::new("trailing garbage", pos));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    match b.get(*pos) {
        None => Err(JsonError::new("unexpected end of input", *pos)),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(JsonError::new("expected ':'", *pos));
                }
                *pos += 1;
                skip_ws(b, pos);
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(pairs));
                    }
                    _ => return Err(JsonError::new("expected ',' or '}'", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                skip_ws(b, pos);
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(JsonError::new("expected ',' or ']'", *pos)),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => expect_lit(b, pos, b"true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => expect_lit(b, pos, b"false").map(|()| JsonValue::Bool(false)),
        Some(b'n') => expect_lit(b, pos, b"null").map(|()| JsonValue::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(b, pos),
        Some(&c) => Err(JsonError::new(format!("unexpected byte {c:#04x}"), *pos)),
    }
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), JsonError> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(JsonError::new(
            format!("expected {:?}", std::str::from_utf8(lit).unwrap()),
            *pos,
        ))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(JsonError::new("expected '\"'", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        if *pos + 4 >= b.len()
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(JsonError::new("bad \\u escape", *pos));
                        }
                        let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5]).unwrap();
                        let code = u32::from_str_radix(hex, 16).unwrap();
                        // Surrogate pairs never appear in the simulator's
                        // own output; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(JsonError::new("bad escape", *pos)),
                }
                *pos += 1;
            }
            c if c < 0x20 => return Err(JsonError::new("raw control byte in string", *pos)),
            _ => {
                // Copy one UTF-8 scalar (input is a &str, so boundaries are
                // valid).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && b[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).unwrap());
            }
        }
    }
    Err(JsonError::new("unterminated string", *pos))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).unwrap();
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| JsonError::new(format!("bad number {text:?}"), start))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_value_grammar() {
        let v =
            parse(r#"{"a":1,"b":[true,false,null,"x\n\"yA"],"c":{"d":-2.5e3},"e":0.25}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(1));
        let arr = v.get("b").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[0], JsonValue::Bool(true));
        assert!(arr[2].is_null());
        assert_eq!(arr[3].as_str(), Some("x\n\"yA"));
        assert_eq!(
            v.get("c").unwrap().get("d").and_then(JsonValue::as_f64),
            Some(-2500.0)
        );
        assert_eq!(v.get("e").and_then(JsonValue::as_f64), Some(0.25));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,",
            "{\"a\"1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":}",
            "[,]",
            "01x",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn integers_round_trip_exactly() {
        let v = parse("[2000000000,9007199254740992,0]").unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(2_000_000_000));
        assert_eq!(arr[1].as_f64(), Some(9007199254740992.0));
        assert_eq!(arr[2].as_u64(), Some(0));
    }

    #[test]
    fn key_order_is_preserved() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }
}
