//! Experiment runner: one simulation per (model, app, nodes, ways, clock)
//! point of the paper's evaluation.

use crate::engine::EngineKind;
use crate::error::RunError;
use crate::stats::RunStats;
use crate::system::System;
use smtp_types::{FaultConfig, Fingerprint, MachineModel, SystemConfig};
use smtp_workloads::AppKind;

/// One point of the evaluation space.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Machine model.
    pub model: MachineModel,
    /// Application.
    pub app: AppKind,
    /// Nodes.
    pub nodes: usize,
    /// Application threads per node (the paper's "n-way").
    pub ways: usize,
    /// CPU clock in GHz (2 or 4 in the paper).
    pub cpu_ghz: f64,
    /// Workload scale relative to DESIGN.md §7 (see also
    /// [`ExperimentConfig::quick`]).
    pub scale: f64,
    /// Look-ahead scheduling enabled (paper §2.3; ablatable).
    pub look_ahead: bool,
    /// Override the bypass-buffer size (paper §2.2; ablatable).
    pub bypass_lines: Option<usize>,
    /// Separate perfect protocol caches (the paper's §2.3 experiment).
    pub perfect_protocol_caches: bool,
    /// Software prefetching in the applications (paper §3; off models the
    /// "less-tuned" variant whose trends stay qualitatively identical).
    pub prefetch: bool,
    /// Simulation watchdog in cycles.
    pub max_cycles: u64,
    /// Fault-injection plan (all-off by default).
    pub faults: FaultConfig,
    /// Execution engine (a wall-clock choice; results are bit-identical).
    pub engine: EngineKind,
    /// Pin the parallel engine's worker count (`None` = available
    /// parallelism). Host-side only; guest results are identical for any
    /// worker count.
    pub workers: Option<usize>,
}

impl ExperimentConfig {
    /// A standard-scale experiment point.
    pub fn new(model: MachineModel, app: AppKind, nodes: usize, ways: usize) -> ExperimentConfig {
        ExperimentConfig {
            model,
            app,
            nodes,
            ways,
            cpu_ghz: 2.0,
            scale: default_scale(),
            look_ahead: true,
            bypass_lines: None,
            perfect_protocol_caches: false,
            prefetch: true,
            max_cycles: 2_000_000_000,
            faults: FaultConfig::default(),
            engine: EngineKind::Serial,
            workers: None,
        }
    }

    /// A reduced-scale point for smoke tests.
    pub fn quick(model: MachineModel, app: AppKind, nodes: usize, ways: usize) -> ExperimentConfig {
        let mut c = ExperimentConfig::new(model, app, nodes, ways);
        c.scale = 0.12;
        c
    }

    /// Deterministic 64-bit fingerprint of everything that shapes the
    /// *guest* simulation: model, app, machine geometry, clock, scale,
    /// ablation knobs, watchdog budget and the full fault plan.
    ///
    /// Host-side choices — [`ExperimentConfig::engine`] and
    /// [`ExperimentConfig::workers`] — are deliberately excluded: the
    /// engines are bit-identical, so runs differing only in them share a
    /// fingerprint and are directly comparable in the archive (the archive
    /// key carries the engine separately for wall-clock comparisons).
    ///
    /// The hash is platform- and build-independent
    /// ([`smtp_types::Fingerprint`]), so archived fingerprints remain
    /// valid across machines.
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fingerprint::new();
        f.mix_str(self.model.label());
        f.mix_str(self.app.name());
        f.mix_u64(self.nodes as u64);
        f.mix_u64(self.ways as u64);
        f.mix_f64(self.cpu_ghz);
        f.mix_f64(self.scale);
        f.mix_bool(self.look_ahead);
        f.mix_opt_u64(self.bypass_lines.map(|v| v as u64));
        f.mix_bool(self.perfect_protocol_caches);
        f.mix_bool(self.prefetch);
        f.mix_u64(self.max_cycles);
        // The fault plan is part of guest behaviour; its Debug rendering
        // covers every rate and the seed deterministically.
        f.mix_str(&format!("{:?}", self.faults));
        f.finish()
    }

    fn system_config(&self) -> SystemConfig {
        let mut cfg = SystemConfig::new(self.model, self.nodes, self.ways);
        cfg.cpu_ghz = self.cpu_ghz;
        cfg.pipeline.look_ahead_scheduling = self.look_ahead;
        if let Some(lines) = self.bypass_lines {
            cfg.pipeline.bypass_lines = lines;
        }
        cfg.pipeline.perfect_protocol_caches = self.perfect_protocol_caches;
        cfg.faults = self.faults.clone();
        cfg.workers = self.workers;
        cfg
    }
}

/// Default workload scale; `SMTP_SCALE` overrides it so the full
/// experiment suite can be shrunk or grown without recompiling.
pub fn default_scale() -> f64 {
    std::env::var("SMTP_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5)
}

/// Build (but do not run) the machine for an experiment point — the hook
/// for attaching tracing or metrics sampling before [`System::run`].
pub fn build_system(e: &ExperimentConfig) -> System {
    let cfg = e.system_config();
    let wl = smtp_workloads::WorkloadCfg {
        nodes: cfg.nodes,
        app_threads: cfg.app_threads,
        scale: e.scale,
        prefetch: e.prefetch,
    };
    System::with_workload(cfg, e.app, wl)
}

/// Run one experiment point to completion.
///
/// # Panics
///
/// Panics (with the full diagnosis) if the run fails; sweeps and table
/// generators treat a deadlocked point as a fatal bug. Use
/// [`try_run_experiment`] to handle failures structurally.
pub fn run_experiment(e: &ExperimentConfig) -> RunStats {
    try_run_experiment(e).unwrap_or_else(|err| panic!("{err}"))
}

/// Run one experiment point, returning the failure class and diagnosis
/// instead of panicking when the machine cannot complete.
pub fn try_run_experiment(e: &ExperimentConfig) -> Result<RunStats, RunError> {
    build_system(e).run_with(e.max_cycles, e.engine)
}

/// Normalized execution times of all five machine models for one
/// (app, nodes, ways) point — one group of bars in the paper's figures.
/// Returns `(model, total_norm, memory_stall_norm)` with `Base = 1.0`.
pub fn model_comparison(
    app: AppKind,
    nodes: usize,
    ways: usize,
    cpu_ghz: f64,
    scale: f64,
) -> Vec<(MachineModel, f64, f64)> {
    let runs: Vec<RunStats> = MachineModel::ALL
        .iter()
        .map(|&model| {
            let mut e = ExperimentConfig::new(model, app, nodes, ways);
            e.cpu_ghz = cpu_ghz;
            e.scale = scale;
            run_experiment(&e)
        })
        .collect();
    let base = runs[0].cycles as f64;
    runs.iter()
        .map(|r| {
            let total = r.cycles as f64 / base;
            let mem = r.memory_stall_cycles / base;
            (r.model, total, mem)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiment_completes_single_node() {
        let e = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Fft, 1, 1);
        let r = run_experiment(&e);
        assert!(r.cycles > 1_000);
        assert!(r.app_instructions > 5_000);
        assert!(r.protocol_instructions > 0, "protocol thread never ran");
    }

    #[test]
    fn quick_experiment_completes_base_two_nodes() {
        let e = ExperimentConfig::quick(MachineModel::Base, AppKind::Fft, 2, 1);
        let r = run_experiment(&e);
        assert!(r.cycles > 1_000);
        assert!(r.network.messages > 0, "no network traffic on 2 nodes");
        assert_eq!(r.protocol_instructions, 0, "no protocol thread in Base");
        assert!(r.handlers > 0);
    }
}
