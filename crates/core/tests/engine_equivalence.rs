//! Serial-vs-parallel engine equivalence.
//!
//! The parallel epoch engine promises results *bit-identical* to the
//! serial reference loop: the same `RunStats` (down to every latency
//! histogram and fault counter), the same trace event stream, and the
//! same metrics sample rows, for every seed, node count and fault plan.
//! These tests hold it to that promise over a grid of machine shapes,
//! and pin down the idle-skipping schedules (a skip must never jump past
//! a scheduled network arrival, a fault window, or a sampler tick — any
//! overshoot shows up as a diverging trace or sample row).

use smtp_core::{build_system, EngineKind, ExperimentConfig};
use smtp_trace::{Event, MemorySink};
use smtp_types::{Cycle, FaultConfig, MachineModel};
use smtp_workloads::AppKind;

/// Everything observable from one run: stats (Debug-formatted, so every
/// field participates), the full trace stream, and any metrics rows.
struct Observed {
    stats: String,
    events: Vec<(Cycle, Event)>,
    metrics: Vec<(Cycle, Vec<f64>)>,
}

fn observe(e: &ExperimentConfig, engine: EngineKind, metrics_interval: Option<Cycle>) -> Observed {
    let mut sys = build_system(e);
    sys.tracer().enable_all();
    let store = MemorySink::shared();
    sys.tracer().add_sink(Box::new(MemorySink::attach(&store)));
    if let Some(interval) = metrics_interval {
        sys.enable_metrics(interval);
    }
    let stats = sys
        .run_with(e.max_cycles, engine)
        .unwrap_or_else(|err| panic!("{engine} engine failed: {err}"));
    let metrics = sys.metrics().map(|s| s.rows().to_vec()).unwrap_or_default();
    let events = store.borrow().clone();
    Observed {
        stats: format!("{stats:?}"),
        events,
        metrics,
    }
}

fn assert_equivalent(e: &ExperimentConfig, metrics_interval: Option<Cycle>, label: &str) {
    let serial = observe(e, EngineKind::Serial, metrics_interval);
    let parallel = observe(e, EngineKind::Parallel, metrics_interval);
    if serial.stats != parallel.stats {
        let i = serial
            .stats
            .bytes()
            .zip(parallel.stats.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or(serial.stats.len().min(parallel.stats.len()));
        let lo = i.saturating_sub(120);
        panic!(
            "[{label}] RunStats diverged between engines at byte {i}:\n  serial:   ...{}\n  parallel: ...{}",
            &serial.stats[lo..(i + 120).min(serial.stats.len())],
            &parallel.stats[lo..(i + 120).min(parallel.stats.len())],
        );
    }
    assert_eq!(
        serial.events.len(),
        parallel.events.len(),
        "[{label}] trace stream length diverged"
    );
    if let Some(i) = (0..serial.events.len()).find(|&i| serial.events[i] != parallel.events[i]) {
        panic!(
            "[{label}] trace streams diverge at event {i}:\n  serial:   {:?}\n  parallel: {:?}",
            serial.events[i], parallel.events[i]
        );
    }
    assert_eq!(
        serial.metrics, parallel.metrics,
        "[{label}] metrics sample rows diverged"
    );
}

fn point(model: MachineModel, nodes: usize, ways: usize, seed: Option<u64>) -> ExperimentConfig {
    let mut e = ExperimentConfig::quick(model, AppKind::Fft, nodes, ways);
    e.scale = 0.1;
    if let Some(seed) = seed {
        e.faults = FaultConfig::chaos(seed);
    }
    e
}

#[test]
fn single_node_matches() {
    assert_equivalent(&point(MachineModel::SMTp, 1, 2, None), None, "smtp x1");
}

#[test]
fn two_nodes_match() {
    assert_equivalent(&point(MachineModel::SMTp, 2, 2, None), None, "smtp x2");
}

#[test]
fn four_nodes_match() {
    assert_equivalent(&point(MachineModel::SMTp, 4, 1, None), None, "smtp x4");
}

#[test]
fn base_model_matches() {
    assert_equivalent(&point(MachineModel::Base, 4, 1, None), None, "base x4");
}

#[test]
fn single_node_with_faults_matches() {
    assert_equivalent(
        &point(MachineModel::SMTp, 1, 1, Some(7)),
        None,
        "smtp x1 chaos",
    );
}

#[test]
fn two_nodes_with_faults_match() {
    assert_equivalent(
        &point(MachineModel::SMTp, 2, 1, Some(11)),
        None,
        "smtp x2 chaos",
    );
}

#[test]
fn four_nodes_with_faults_match() {
    assert_equivalent(
        &point(MachineModel::SMTp, 4, 1, Some(42)),
        None,
        "smtp x4 chaos",
    );
}

/// Idle-skipping must not jump past sampler ticks: with a short sampling
/// interval every epoch is cut at the sampler schedule, and the sampled
/// utilization/occupancy rows (computed from exact cycle counters at the
/// sample cycle) must match the serial engine row for row.
#[test]
fn metrics_sampling_matches_under_idle_skip() {
    assert_equivalent(
        &point(MachineModel::SMTp, 4, 1, None),
        Some(2_000),
        "smtp x4 sampled",
    );
    assert_equivalent(
        &point(MachineModel::SMTp, 2, 2, Some(3)),
        Some(1_000),
        "smtp x2 chaos sampled",
    );
}

/// Error paths are part of the contract too: a run that hits the cycle
/// limit must report the same structured Deadlock at the same cycle from
/// both engines.
#[test]
fn deadlock_diagnosis_matches() {
    let mut e = point(MachineModel::SMTp, 2, 1, None);
    e.max_cycles = 20_000;
    let serial = build_system(&e)
        .run_with(e.max_cycles, EngineKind::Serial)
        .expect_err("20k cycles cannot complete the run");
    let parallel = build_system(&e)
        .run_with(e.max_cycles, EngineKind::Parallel)
        .expect_err("20k cycles cannot complete the run");
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
}
