//! Serial-vs-parallel engine equivalence.
//!
//! The parallel epoch engine promises results *bit-identical* to the
//! serial reference loop: the same `RunStats` (down to every latency
//! histogram and fault counter), the same trace event stream, and the
//! same metrics sample rows, for every seed, node count and fault plan.
//! These tests hold it to that promise over a grid of machine shapes,
//! and pin down the idle-skipping schedules (a skip must never jump past
//! a scheduled network arrival, a fault window, or a sampler tick — any
//! overshoot shows up as a diverging trace or sample row).

use smtp_core::{build_system, EngineKind, EngineTuning, ExperimentConfig};
use smtp_trace::{Event, MemorySink};
use smtp_types::{Cycle, FaultConfig, MachineModel, SystemConfig};
use smtp_workloads::AppKind;

/// Everything observable from one run: stats (Debug-formatted, so every
/// field participates), the full trace stream, and any metrics rows.
struct Observed {
    stats: String,
    events: Vec<(Cycle, Event)>,
    metrics: Vec<(Cycle, Vec<f64>)>,
}

fn observe(e: &ExperimentConfig, engine: EngineKind, metrics_interval: Option<Cycle>) -> Observed {
    observe_tuned(e, engine, metrics_interval, EngineTuning::default())
}

fn observe_tuned(
    e: &ExperimentConfig,
    engine: EngineKind,
    metrics_interval: Option<Cycle>,
    tuning: EngineTuning,
) -> Observed {
    let mut sys = build_system(e);
    sys.set_engine_tuning(tuning);
    sys.tracer().enable_all();
    let store = MemorySink::shared();
    sys.tracer().add_sink(Box::new(MemorySink::attach(&store)));
    if let Some(interval) = metrics_interval {
        sys.enable_metrics(interval);
    }
    let stats = sys
        .run_with(e.max_cycles, engine)
        .unwrap_or_else(|err| panic!("{engine} engine failed: {err}"));
    let metrics = sys.metrics().map(|s| s.rows().to_vec()).unwrap_or_default();
    let events = store.borrow().clone();
    Observed {
        stats: format!("{stats:?}"),
        events,
        metrics,
    }
}

fn assert_equivalent(e: &ExperimentConfig, metrics_interval: Option<Cycle>, label: &str) {
    assert_equivalent_tuned(e, metrics_interval, EngineTuning::default(), label);
}

fn assert_equivalent_tuned(
    e: &ExperimentConfig,
    metrics_interval: Option<Cycle>,
    tuning: EngineTuning,
    label: &str,
) {
    let serial = observe(e, EngineKind::Serial, metrics_interval);
    let parallel = observe_tuned(e, EngineKind::Parallel, metrics_interval, tuning);
    if serial.stats != parallel.stats {
        let i = serial
            .stats
            .bytes()
            .zip(parallel.stats.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or(serial.stats.len().min(parallel.stats.len()));
        let lo = i.saturating_sub(120);
        panic!(
            "[{label}] RunStats diverged between engines at byte {i}:\n  serial:   ...{}\n  parallel: ...{}",
            &serial.stats[lo..(i + 120).min(serial.stats.len())],
            &parallel.stats[lo..(i + 120).min(parallel.stats.len())],
        );
    }
    assert_eq!(
        serial.events.len(),
        parallel.events.len(),
        "[{label}] trace stream length diverged"
    );
    if let Some(i) = (0..serial.events.len()).find(|&i| serial.events[i] != parallel.events[i]) {
        panic!(
            "[{label}] trace streams diverge at event {i}:\n  serial:   {:?}\n  parallel: {:?}",
            serial.events[i], parallel.events[i]
        );
    }
    assert_eq!(
        serial.metrics, parallel.metrics,
        "[{label}] metrics sample rows diverged"
    );
}

fn point(model: MachineModel, nodes: usize, ways: usize, seed: Option<u64>) -> ExperimentConfig {
    let mut e = ExperimentConfig::quick(model, AppKind::Fft, nodes, ways);
    e.scale = 0.1;
    if let Some(seed) = seed {
        e.faults = FaultConfig::chaos(seed);
    }
    e
}

#[test]
fn single_node_matches() {
    assert_equivalent(&point(MachineModel::SMTp, 1, 2, None), None, "smtp x1");
}

#[test]
fn two_nodes_match() {
    assert_equivalent(&point(MachineModel::SMTp, 2, 2, None), None, "smtp x2");
}

#[test]
fn four_nodes_match() {
    assert_equivalent(&point(MachineModel::SMTp, 4, 1, None), None, "smtp x4");
}

#[test]
fn base_model_matches() {
    assert_equivalent(&point(MachineModel::Base, 4, 1, None), None, "base x4");
}

#[test]
fn single_node_with_faults_matches() {
    assert_equivalent(
        &point(MachineModel::SMTp, 1, 1, Some(7)),
        None,
        "smtp x1 chaos",
    );
}

#[test]
fn two_nodes_with_faults_match() {
    assert_equivalent(
        &point(MachineModel::SMTp, 2, 1, Some(11)),
        None,
        "smtp x2 chaos",
    );
}

#[test]
fn four_nodes_with_faults_match() {
    assert_equivalent(
        &point(MachineModel::SMTp, 4, 1, Some(42)),
        None,
        "smtp x4 chaos",
    );
}

/// Idle-skipping must not jump past sampler ticks: with a short sampling
/// interval every epoch is cut at the sampler schedule, and the sampled
/// utilization/occupancy rows (computed from exact cycle counters at the
/// sample cycle) must match the serial engine row for row.
#[test]
fn metrics_sampling_matches_under_idle_skip() {
    assert_equivalent(
        &point(MachineModel::SMTp, 4, 1, None),
        Some(2_000),
        "smtp x4 sampled",
    );
    assert_equivalent(
        &point(MachineModel::SMTp, 2, 2, Some(3)),
        Some(1_000),
        "smtp x2 chaos sampled",
    );
}

/// Error paths are part of the contract too: a run that hits the cycle
/// limit must report the same structured Deadlock at the same cycle from
/// both engines.
#[test]
fn deadlock_diagnosis_matches() {
    let mut e = point(MachineModel::SMTp, 2, 1, None);
    e.max_cycles = 20_000;
    let serial = build_system(&e)
        .run_with(e.max_cycles, EngineKind::Serial)
        .expect_err("20k cycles cannot complete the run");
    let parallel = build_system(&e)
        .run_with(e.max_cycles, EngineKind::Parallel)
        .expect_err("20k cycles cannot complete the run");
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
}

/// The tuning knobs are host-side only: every corner of the tuning space
/// — the conservative static-bound fixed-partition engine, the defaults,
/// and a deliberately twitchy configuration that reconsiders the
/// partition after every single epoch — must stay bit-identical to the
/// serial oracle, with and without chaos faults and sampling.
#[test]
fn tuning_grid_matches() {
    let aggressive = EngineTuning {
        adaptive_epochs: true,
        rebalance_every: 1,
        rebalance_threshold: 1.0,
    };
    let corners = [
        ("conservative", EngineTuning::conservative()),
        ("default", EngineTuning::default()),
        ("aggressive", aggressive),
    ];
    for (name, tuning) in corners {
        assert_equivalent_tuned(
            &point(MachineModel::SMTp, 4, 2, None),
            None,
            tuning,
            &format!("smtp x4 {name}"),
        );
        assert_equivalent_tuned(
            &point(MachineModel::SMTp, 4, 1, Some(42)),
            Some(1_000),
            tuning,
            &format!("smtp x4 chaos sampled {name}"),
        );
    }
}

/// A pinned worker count larger than the node count must clamp to one
/// worker per node — never spawn empty partitions — and stay
/// bit-identical to the serial oracle.
#[test]
fn worker_count_above_node_count_clamps() {
    let mut e = point(MachineModel::SMTp, 4, 2, None);
    e.workers = Some(64);
    assert_equivalent(&e, None, "smtp x4 workers=64");
    let mut e = point(MachineModel::SMTp, 2, 1, Some(11));
    e.workers = Some(9);
    assert_equivalent(&e, None, "smtp x2 chaos workers=9");
}

/// A pinned worker count of zero is rejected deterministically at
/// configuration validation — before any thread is spawned — not
/// discovered as a hang or an empty-partition panic mid-run.
#[test]
fn zero_workers_rejected_at_validation() {
    let err = std::panic::catch_unwind(|| {
        let mut cfg = SystemConfig::new(MachineModel::SMTp, 2, 1);
        cfg.workers = Some(0);
        cfg.validate();
    })
    .expect_err("workers=0 must be rejected");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("worker count"),
        "validation panic should name the worker count, got: {msg}"
    );
}

/// The 64-node bristled hypercube — past the paper's largest machine,
/// and the scale that first exposed the store-drain quiescence hole
/// (a node reported quiescent while its last stores were still draining
/// to L1d, so the parallel engine's overshoot-and-retract past exact
/// quiescence executed un-rewindable cache accesses). Both the static
/// conservative bound and the full adaptive engine must match the
/// serial oracle here.
#[test]
#[ignore = "tens of seconds in release, minutes in debug; CI runs it in release via the engine-scaling leg"]
fn large_hypercube_matches() {
    let mut e = point(MachineModel::SMTp, 64, 2, None);
    e.scale = 0.02;
    assert_equivalent_tuned(&e, None, EngineTuning::conservative(), "x64 conservative");
    assert_equivalent_tuned(&e, None, EngineTuning::default(), "x64 adaptive");
}
