//! Synchronization semantics interface.
//!
//! The applications in the paper synchronize through LL/SC spin locks and
//! software tree barriers over ordinary shared memory. This reproduction
//! keeps the *coherence traffic* of those idioms (spin loads cache the sync
//! word Shared; releases write it, invalidating all spinners through the
//! full directory protocol) while the *data-value* semantics — who wins a
//! lock, when a barrier episode completes — are decided by a deterministic
//! [`SyncEnv`] implementation (the `SyncManager` in `smtp-workloads`).

use smtp_types::{Ctx, NodeId};

/// Identifier of a lock (index into the sync manager's lock table).
pub type LockId = u32;

/// Identifier of a barrier.
pub type BarrierId = u32;

/// Condition polled by a serializing [`crate::Op::SyncBranch`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SyncCond {
    /// The lock is currently free (test phase of test–test&set).
    LockFree(LockId),
    /// This thread's most recent lock attempt succeeded.
    LockAcquired(LockId),
    /// The given tree-barrier group's release flag is set for the episode
    /// this thread is waiting on.
    BarrierReleased {
        /// Which barrier.
        bar: BarrierId,
        /// Tree level of the group being spun on.
        level: u8,
        /// Group index within the level.
        group: u16,
        /// Episode number the spinner entered with.
        episode: u32,
    },
}

/// Semantic operation performed by a [`crate::Op::SyncStore`] at graduation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SyncOp {
    /// Test&set attempt on a lock.
    LockAttempt(LockId),
    /// Release a held lock.
    LockRelease(LockId),
    /// Arrive at a tree-barrier group (increment its counter).
    BarrierArrive {
        /// Which barrier.
        bar: BarrierId,
        /// Tree level of the group.
        level: u8,
        /// Group index within the level.
        group: u16,
    },
    /// Set a tree-barrier group's release flag (release cascade).
    BarrierRelease {
        /// Which barrier.
        bar: BarrierId,
        /// Tree level of the group being released.
        level: u8,
        /// Group index within the level.
        group: u16,
    },
}

/// Result of a [`SyncOp`], delivered back to the workload generator so it
/// can choose the continuation path.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SyncOutcome {
    /// Lock attempt won (thread now holds the lock).
    Acquired,
    /// Lock attempt lost; return to spinning.
    Failed,
    /// Barrier arrival: this thread was *not* the last in the group; it
    /// should spin on the group's release flag.
    MustSpin {
        /// Episode number to wait for.
        episode: u32,
    },
    /// Barrier arrival: this thread completed the group and must propagate
    /// the arrival one level up (or begin the release cascade at the root).
    PropagateUp,
    /// The operation had no interesting result (releases, flag sets).
    Done,
    /// Outcome of a resolved [`SyncCond`] poll (serializing branch): `true`
    /// when the condition held and the spin exits.
    Cond(bool),
}

/// Interface the pipeline uses to resolve synchronization instructions.
///
/// Implemented by the global `SyncManager`; one instance is shared by all
/// nodes of the machine, because locks and barriers are machine-global.
pub trait SyncEnv {
    /// Poll a serializing sync-branch condition at execute time.
    fn poll(&mut self, node: NodeId, ctx: Ctx, cond: SyncCond) -> bool;

    /// Perform a sync store's semantic effect at graduation time.
    fn sync_store(&mut self, node: NodeId, ctx: Ctx, op: SyncOp) -> SyncOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial env for exercising the trait object path.
    struct AlwaysFree;

    impl SyncEnv for AlwaysFree {
        fn poll(&mut self, _: NodeId, _: Ctx, cond: SyncCond) -> bool {
            matches!(cond, SyncCond::LockFree(_))
        }
        fn sync_store(&mut self, _: NodeId, _: Ctx, op: SyncOp) -> SyncOutcome {
            match op {
                SyncOp::LockAttempt(_) => SyncOutcome::Acquired,
                _ => SyncOutcome::Done,
            }
        }
    }

    #[test]
    fn trait_object_dispatch() {
        let mut env: Box<dyn SyncEnv> = Box::new(AlwaysFree);
        assert!(env.poll(NodeId(0), Ctx(0), SyncCond::LockFree(3)));
        assert!(!env.poll(NodeId(0), Ctx(0), SyncCond::LockAcquired(3)));
        assert_eq!(
            env.sync_store(NodeId(0), Ctx(0), SyncOp::LockAttempt(3)),
            SyncOutcome::Acquired
        );
        assert_eq!(
            env.sync_store(NodeId(0), Ctx(0), SyncOp::LockRelease(3)),
            SyncOutcome::Done
        );
    }
}
