//! The abstract micro-op ISA executed by the simulated SMT pipeline.
//!
//! The paper simulates a MIPS-ISA out-of-order SMT processor executing real
//! application binaries plus coherence-protocol handler code. This
//! reproduction substitutes an *abstract* instruction set (see DESIGN.md §2):
//! instructions carry explicit register operands, memory addresses, branch
//! outcomes and latency classes, which is everything the timing model needs —
//! data values are not simulated (synchronization semantics come from a
//! [`SyncEnv`] implementation instead).
//!
//! Three instruction families exist:
//!
//! * **application ops** — integer/FP arithmetic, loads/stores/prefetches,
//!   branches/calls/returns, emitted by the workload generators,
//! * **synchronization ops** — spin loads, serializing sync branches and
//!   non-speculative sync stores that drive locks and tree barriers,
//! * **protocol ops** — directory loads/stores, bit-manipulation ALU ops,
//!   handler branches, `send`, and the special `switch`/`ldctxt` pair that
//!   terminates every handler (paper §2.1).

pub mod inst;
pub mod source;
pub mod sync;

pub use inst::{FuClass, Inst, Op, Reg, RegClass};
pub use source::InstSource;
pub use sync::{SyncCond, SyncEnv, SyncOp, SyncOutcome};
