//! Instruction-supply interface between the pipeline and the workloads.

use crate::inst::Inst;
use crate::sync::SyncOutcome;

/// A per-thread program-order instruction source.
///
/// The fetch stage pulls new instructions from the source; on a branch
/// misprediction the pipeline recycles already-fetched younger instructions
/// internally (it never asks the source to rewind), so implementations can
/// be simple forward-only state machines.
///
/// Serializing synchronization instructions ([`crate::Op::SyncBranch`],
/// [`crate::Op::SyncStore`]) stall fetch; once they resolve, the pipeline
/// calls [`InstSource::sync_result`] *before* the next [`InstSource::next_inst`],
/// letting the generator pick the continuation path (retry a lock, spin on a
/// flag, propagate a barrier arrival, …).
pub trait InstSource {
    /// Produce the next instruction in program order.
    ///
    /// Must keep returning [`crate::Op::Halt`] forever once the program is
    /// finished.
    fn next_inst(&mut self) -> Inst;

    /// Deliver the outcome of the most recent serializing sync instruction.
    fn sync_result(&mut self, outcome: SyncOutcome);
}

/// An [`InstSource`] replaying a fixed instruction sequence, then halting.
///
/// Useful for unit tests and microbenchmarks of the pipeline.
#[derive(Clone, Debug)]
pub struct FixedProgram {
    insts: Vec<Inst>,
    pos: usize,
    /// Outcomes received via [`InstSource::sync_result`], for inspection.
    pub outcomes: Vec<SyncOutcome>,
}

impl FixedProgram {
    /// Wrap an instruction sequence.
    pub fn new(insts: Vec<Inst>) -> FixedProgram {
        FixedProgram {
            insts,
            pos: 0,
            outcomes: Vec::new(),
        }
    }

    /// How many instructions have been consumed.
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

impl InstSource for FixedProgram {
    fn next_inst(&mut self) -> Inst {
        if self.pos < self.insts.len() {
            let i = self.insts[self.pos];
            self.pos += 1;
            i
        } else {
            Inst::new(crate::Op::Halt, self.insts.len() as u32)
        }
    }

    fn sync_result(&mut self, outcome: SyncOutcome) {
        self.outcomes.push(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Op;

    #[test]
    fn fixed_program_replays_then_halts() {
        let mut p = FixedProgram::new(vec![Inst::new(Op::IntAlu, 0), Inst::new(Op::FpAlu, 1)]);
        assert_eq!(p.next_inst().op, Op::IntAlu);
        assert_eq!(p.next_inst().op, Op::FpAlu);
        assert_eq!(p.next_inst().op, Op::Halt);
        assert_eq!(p.next_inst().op, Op::Halt);
        assert_eq!(p.consumed(), 2);
    }

    #[test]
    fn records_sync_outcomes() {
        let mut p = FixedProgram::new(vec![]);
        p.sync_result(SyncOutcome::Acquired);
        p.sync_result(SyncOutcome::Cond(false));
        assert_eq!(
            p.outcomes,
            vec![SyncOutcome::Acquired, SyncOutcome::Cond(false)]
        );
    }
}
