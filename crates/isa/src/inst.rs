//! Instruction and operand representation.

use crate::sync::{SyncCond, SyncOp};
use smtp_types::Addr;
use std::fmt;

/// Register class (separate integer and floating-point files, as in MIPS).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RegClass {
    /// Integer register file.
    Int,
    /// Floating-point register file.
    Fp,
}

/// A logical (architected) register: 32 per class per thread context.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg {
    /// Which register file.
    pub class: RegClass,
    /// Architected index, `0..32`.
    pub idx: u8,
}

impl Reg {
    /// An integer register.
    #[inline]
    pub fn int(idx: u8) -> Reg {
        debug_assert!(idx < 32);
        Reg {
            class: RegClass::Int,
            idx,
        }
    }

    /// A floating-point register.
    #[inline]
    pub fn fp(idx: u8) -> Reg {
        debug_assert!(idx < 32);
        Reg {
            class: RegClass::Fp,
            idx,
        }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.idx),
            RegClass::Fp => write!(f, "f{}", self.idx),
        }
    }
}

/// Functional-unit class an instruction issues to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FuClass {
    /// Integer ALU (also used by branches and protocol ALU ops).
    IntAlu,
    /// Integer multiplier/divider (shares ALU issue ports).
    IntMulDiv,
    /// Floating-point unit.
    Fpu,
    /// Address-generation unit + data-cache port (all memory ops).
    Mem,
}

/// Instruction operation.
///
/// Addresses carried by memory operations are *physical* — the workload
/// generators apply page placement directly when constructing them; the
/// TLBs are modeled as always hitting for application threads while the
/// protocol regions bypass them entirely (paper §2.1).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Op {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Floating-point add/sub/compare (pipelined).
    FpAlu,
    /// Floating-point multiply (fully pipelined, 1 cycle in Table 2).
    FpMul,
    /// Floating-point divide (unpipelined).
    FpDiv,
    /// Load from memory.
    Load {
        /// Physical address accessed.
        addr: Addr,
    },
    /// Store to memory (data to the speculative store buffer at execute,
    /// to the cache at/after graduation).
    Store {
        /// Physical address accessed.
        addr: Addr,
    },
    /// Non-binding software prefetch (allocates an MSHR, never a register).
    Prefetch {
        /// Physical address prefetched.
        addr: Addr,
        /// Prefetch-exclusive (fetches ownership, not just data).
        exclusive: bool,
    },
    /// Conditional branch with a statically known outcome (the workload
    /// trace determines the path; the branch predictor still predicts it
    /// and mispredictions squash and refetch).
    Branch {
        /// Actual direction.
        taken: bool,
        /// Actual target PC (instruction index) when taken.
        target: u32,
    },
    /// Call: pushes the return address on the RAS, always taken.
    Call {
        /// Callee entry PC.
        target: u32,
    },
    /// Return: pops the RAS, always taken (target comes from the stack).
    Ret,
    /// Spin-test load of a synchronization word (a normal cacheable load;
    /// tagged so statistics can separate sync traffic).
    SyncLoad {
        /// Address of the lock/flag/counter word.
        addr: Addr,
    },
    /// Serializing conditional branch whose outcome is resolved at execute
    /// time by querying the [`crate::SyncEnv`]. Fetch for the thread stalls
    /// until it resolves (see DESIGN.md §2: spin exits are therefore
    /// non-speculative; this costs all machine models equally).
    SyncBranch {
        /// Condition polled at execution.
        cond: SyncCond,
    },
    /// Non-speculative synchronization store (lock attempt/release, barrier
    /// arrival, flag set). Executes at graduation; its [`crate::SyncOutcome`]
    /// is delivered back to the workload generator, which may be waiting on
    /// it to choose the subsequent path. Serializing like `SyncBranch`.
    SyncStore {
        /// Address of the synchronization word (coherence traffic target).
        addr: Addr,
        /// Semantic operation performed by the sync manager at graduation.
        op: SyncOp,
    },
    /// No-operation (pipeline bubble filler in handler schedules).
    Nop,
    /// Thread has finished its program; fetch stops permanently.
    Halt,

    // ------------------------- protocol thread ops -------------------------
    /// Protocol load (directory entry / protocol data). Cacheable through
    /// the shared L1D/L2 in SMTp, but unmapped (no DTLB access); an L2 miss
    /// bypasses the Local Miss Interface and goes straight to local SDRAM.
    PLoad {
        /// Directory-region or protocol-data address.
        addr: Addr,
    },
    /// Protocol store (directory entry update). Non-speculative: takes
    /// effect at graduation.
    PStore {
        /// Directory-region address.
        addr: Addr,
    },
    /// Protocol bit-manipulation ALU op (population count etc.).
    PAlu,
    /// Protocol handler conditional branch; outcome is known when the
    /// handler's semantic transition was computed at dispatch, but the
    /// branch predictor still predicts it (paper Table 8 measures its
    /// misprediction rate).
    PBranch {
        /// Actual direction.
        taken: bool,
        /// Actual target PC when taken.
        target: u32,
    },
    /// `send`: two uncached stores writing the header and address registers
    /// of the memory controller, initiating an outgoing message. Must
    /// execute non-speculatively (impossible to undo); the message sent is
    /// the `msg_idx`-th prepared output of the current handler.
    Send {
        /// Index into the dispatched handler's prepared message list.
        msg_idx: u8,
    },
    /// Uncached load of the next request's header; stalls at the head of
    /// the protocol load/store queue until the memory controller has a
    /// request waiting (paper §2.1).
    Switch,
    /// Uncached load of the next request's address; raises
    /// `handlerCompletion` at graduation, prompting the handler dispatch
    /// unit to hand out the next handler PC.
    Ldctxt,
}

/// One dynamic instruction: operation plus register operands and PC.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Inst {
    /// The operation.
    pub op: Op,
    /// Up to two source registers.
    pub srcs: [Option<Reg>; 2],
    /// Destination register, if any.
    pub dst: Option<Reg>,
    /// Instruction index ("PC") within the thread's code image; used by the
    /// I-cache (fetch address = code base + 4·pc) and the branch predictor.
    pub pc: u32,
}

impl Inst {
    /// A register-free instruction at `pc`.
    pub fn new(op: Op, pc: u32) -> Inst {
        Inst {
            op,
            srcs: [None, None],
            dst: None,
            pc,
        }
    }

    /// Attach source registers.
    pub fn with_srcs(mut self, a: Option<Reg>, b: Option<Reg>) -> Inst {
        self.srcs = [a, b];
        self
    }

    /// Attach a destination register.
    pub fn with_dst(mut self, d: Reg) -> Inst {
        self.dst = Some(d);
        self
    }

    /// Functional unit class this instruction needs.
    pub fn fu_class(&self) -> FuClass {
        match self.op {
            Op::IntAlu | Op::PAlu | Op::Nop | Op::Halt => FuClass::IntAlu,
            Op::Branch { .. }
            | Op::Call { .. }
            | Op::Ret
            | Op::SyncBranch { .. }
            | Op::PBranch { .. } => FuClass::IntAlu,
            Op::IntMul | Op::IntDiv => FuClass::IntMulDiv,
            Op::FpAlu | Op::FpMul | Op::FpDiv => FuClass::Fpu,
            Op::Load { .. }
            | Op::Store { .. }
            | Op::Prefetch { .. }
            | Op::SyncLoad { .. }
            | Op::SyncStore { .. }
            | Op::PLoad { .. }
            | Op::PStore { .. }
            | Op::Send { .. }
            | Op::Switch
            | Op::Ldctxt => FuClass::Mem,
        }
    }

    /// Whether this is any kind of memory operation (occupies an LSQ slot).
    pub fn is_mem(&self) -> bool {
        self.fu_class() == FuClass::Mem
    }

    /// Whether this is a load-like memory op (produces a value).
    pub fn is_load(&self) -> bool {
        matches!(
            self.op,
            Op::Load { .. } | Op::SyncLoad { .. } | Op::PLoad { .. } | Op::Switch | Op::Ldctxt
        )
    }

    /// Whether this is a store-like memory op (occupies a store-buffer slot).
    pub fn is_store(&self) -> bool {
        matches!(
            self.op,
            Op::Store { .. } | Op::SyncStore { .. } | Op::PStore { .. } | Op::Send { .. }
        )
    }

    /// The memory address accessed, if any.
    pub fn mem_addr(&self) -> Option<Addr> {
        match self.op {
            Op::Load { addr }
            | Op::Store { addr }
            | Op::Prefetch { addr, .. }
            | Op::SyncLoad { addr }
            | Op::SyncStore { addr, .. }
            | Op::PLoad { addr }
            | Op::PStore { addr } => Some(addr),
            _ => None,
        }
    }

    /// Whether this is a control-flow instruction (uses a branch-stack
    /// checkpoint while in flight).
    pub fn is_branch(&self) -> bool {
        matches!(
            self.op,
            Op::Branch { .. }
                | Op::Call { .. }
                | Op::Ret
                | Op::SyncBranch { .. }
                | Op::PBranch { .. }
        )
    }

    /// Whether this is a *predicted* branch (participates in the branch
    /// predictor; `SyncBranch` does not — it serializes fetch instead).
    pub fn is_predicted_branch(&self) -> bool {
        matches!(self.op, Op::Branch { .. } | Op::PBranch { .. })
    }

    /// Whether fetch must stall after this instruction until it resolves
    /// (synchronization instructions; see [`Op::SyncBranch`]).
    pub fn is_serializing(&self) -> bool {
        matches!(self.op, Op::SyncBranch { .. } | Op::SyncStore { .. })
    }

    /// Whether the instruction must execute non-speculatively, i.e. only
    /// when it is the oldest unretired instruction of its thread (sends,
    /// uncached loads/stores, sync stores — their effects cannot be undone).
    pub fn is_nonspeculative(&self) -> bool {
        matches!(
            self.op,
            Op::SyncStore { .. } | Op::Send { .. } | Op::Switch | Op::Ldctxt | Op::PStore { .. }
        )
    }

    /// Whether this op belongs to the protocol-thread instruction family.
    pub fn is_protocol_op(&self) -> bool {
        matches!(
            self.op,
            Op::PLoad { .. }
                | Op::PStore { .. }
                | Op::PAlu
                | Op::PBranch { .. }
                | Op::Send { .. }
                | Op::Switch
                | Op::Ldctxt
        )
    }

    /// Execution latency in cycles on its functional unit (memory ops
    /// report their AGU latency; cache access time is added by the memory
    /// pipeline).
    pub fn exec_latency(&self, int_mul: u64, int_div: u64, fp_mul: u64, fp_div: u64) -> u64 {
        match self.op {
            Op::IntMul => int_mul,
            Op::IntDiv => int_div,
            Op::FpMul => fp_mul,
            Op::FpDiv => fp_div,
            Op::FpAlu => 2,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtp_types::{NodeId, Region};

    fn addr() -> Addr {
        Addr::new(NodeId(0), Region::AppData, 0x100)
    }

    #[test]
    fn classification_load_store() {
        let ld = Inst::new(Op::Load { addr: addr() }, 0);
        assert!(ld.is_mem() && ld.is_load() && !ld.is_store());
        assert_eq!(ld.mem_addr(), Some(addr()));
        let st = Inst::new(Op::Store { addr: addr() }, 1);
        assert!(st.is_mem() && st.is_store() && !st.is_load());
        assert_eq!(st.fu_class(), FuClass::Mem);
    }

    #[test]
    fn branches_use_checkpoints() {
        let b = Inst::new(
            Op::Branch {
                taken: true,
                target: 7,
            },
            3,
        );
        assert!(b.is_branch() && b.is_predicted_branch());
        assert!(!b.is_serializing());
        let sb = Inst::new(
            Op::SyncBranch {
                cond: SyncCond::LockFree(0),
            },
            4,
        );
        assert!(sb.is_branch() && !sb.is_predicted_branch() && sb.is_serializing());
    }

    #[test]
    fn protocol_ops_flagged() {
        for op in [Op::Switch, Op::Ldctxt, Op::Send { msg_idx: 0 }, Op::PAlu] {
            assert!(Inst::new(op, 0).is_protocol_op(), "{op:?}");
        }
        assert!(!Inst::new(Op::IntAlu, 0).is_protocol_op());
        assert!(Inst::new(Op::Send { msg_idx: 1 }, 0).is_nonspeculative());
        assert!(Inst::new(Op::Switch, 0).is_load());
    }

    #[test]
    fn latencies_follow_table2() {
        let mul = Inst::new(Op::IntMul, 0);
        assert_eq!(mul.exec_latency(6, 35, 1, 19), 6);
        let div = Inst::new(Op::FpDiv, 0);
        assert_eq!(div.exec_latency(6, 35, 1, 19), 19);
        assert_eq!(Inst::new(Op::IntAlu, 0).exec_latency(6, 35, 1, 19), 1);
    }

    #[test]
    fn builder_attaches_operands() {
        let i = Inst::new(Op::FpMul, 9)
            .with_srcs(Some(Reg::fp(1)), Some(Reg::fp(2)))
            .with_dst(Reg::fp(3));
        assert_eq!(i.dst, Some(Reg::fp(3)));
        assert_eq!(i.srcs[0], Some(Reg::fp(1)));
        assert_eq!(i.pc, 9);
        assert_eq!(i.fu_class(), FuClass::Fpu);
    }

    #[test]
    fn reg_debug_format() {
        assert_eq!(format!("{:?}", Reg::int(5)), "r5");
        assert_eq!(format!("{:?}", Reg::fp(31)), "f31");
    }
}
