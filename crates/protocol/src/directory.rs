//! Per-home directory state and the pending-request queues.

use crate::transition::{handle, Outcome, Transition};
use smtp_noc::Msg;
use smtp_trace::{record_home, Category, DirClass, Event, HomeReq, LineTracker, PrevState, Tracer};
use smtp_types::{Cycle, LineAddr, NodeId, SharerSet};
use std::collections::{HashMap, VecDeque};

/// Directory state of one line (the contents of its directory entry).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DirState {
    /// No cached copies anywhere; memory is the only copy.
    #[default]
    Unowned,
    /// Read-only copies at the listed nodes.
    Shared(SharerSet),
    /// A single (possibly dirty) copy at the owner.
    Exclusive(NodeId),
    /// A shared intervention is in flight to the owner on behalf of the
    /// requester; further requests queue until the `SharingWb` arrives.
    BusyShared {
        /// Current owner being downgraded.
        owner: NodeId,
        /// GetS requester.
        requester: NodeId,
    },
    /// An exclusive intervention is in flight; further requests queue until
    /// the `TransferAck` arrives.
    BusyExcl {
        /// Current owner being invalidated.
        owner: NodeId,
        /// GetX requester (next owner).
        requester: NodeId,
    },
}

impl DirState {
    /// Whether the line is mid-transaction.
    pub fn is_busy(&self) -> bool {
        matches!(
            self,
            DirState::BusyShared { .. } | DirState::BusyExcl { .. }
        )
    }

    /// Payload-free class for trace output.
    pub fn trace_class(&self) -> DirClass {
        match self {
            DirState::Unowned => DirClass::Unowned,
            DirState::Shared(_) => DirClass::Shared,
            DirState::Exclusive(_) => DirClass::Exclusive,
            DirState::BusyShared { .. } => DirClass::BusyShared,
            DirState::BusyExcl { .. } => DirClass::BusyExcl,
        }
    }
}

/// Directory statistics for one home.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirStats {
    /// Handlers executed.
    pub handlers: u64,
    /// Requests deferred into pending queues.
    pub deferred: u64,
    /// Peak length of any pending queue.
    pub peak_pending: usize,
    /// Invalidation messages generated.
    pub invals_sent: u64,
    /// Interventions generated.
    pub interventions: u64,
}

/// The directory of one home node: per-line state, lazily materialized
/// (absent = [`DirState::Unowned`]), plus per-line pending-request queues
/// for transactions that arrive while a line is busy.
#[derive(Clone, Debug)]
pub struct Directory {
    home: NodeId,
    states: HashMap<u64, DirState>,
    pending: HashMap<u64, VecDeque<Msg>>,
    stats: DirStats,
    tracer: Tracer,
    /// Home-side per-line heavy-hitter tracker; `None` (zero overhead)
    /// unless spatial attribution is enabled.
    spatial: Option<Box<LineTracker>>,
}

impl Directory {
    /// An empty directory for `home`.
    pub fn new(home: NodeId) -> Directory {
        Directory {
            home,
            states: HashMap::new(),
            pending: HashMap::new(),
            stats: DirStats::default(),
            tracer: Tracer::disabled(),
            spatial: None,
        }
    }

    /// Arm the home-side per-line tracker with the given Space-Saving
    /// capacity.
    pub fn enable_spatial(&mut self, cap: usize) {
        self.spatial = Some(Box::new(LineTracker::new(cap)));
    }

    /// The home-side line tracker, if spatial attribution is enabled.
    pub fn spatial(&self) -> Option<&LineTracker> {
        self.spatial.as_deref()
    }

    /// Attach the system tracer (events: `dir_transition`, `dir_defer`).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The home node this directory serves.
    pub fn home(&self) -> NodeId {
        self.home
    }

    /// Current state of a line.
    pub fn state(&self, line: LineAddr) -> DirState {
        self.states.get(&line.raw()).copied().unwrap_or_default()
    }

    /// Present an incoming home-directed message. Returns the transition to
    /// execute (its semantic side — the state change — is committed here;
    /// the caller models the handler's timing and performs the sends), or
    /// `None` if the message was queued behind a busy transaction.
    ///
    /// # Panics
    ///
    /// Panics if `msg.dst` is not this home, or on protocol-invariant
    /// violations (see [`crate::transition::handle`]).
    pub fn process(&mut self, msg: &Msg, now: Cycle) -> Option<Transition> {
        assert_eq!(msg.addr.home(), self.home, "message routed to wrong home");
        let state = self.state(msg.addr);
        match handle(self.home, &state, msg) {
            Outcome::Apply(t) => {
                let home = self.home;
                let span = msg.span;
                self.tracer
                    .emit(Category::Protocol, now, || Event::DirTransition {
                        node: home,
                        line: msg.addr,
                        from: state.trace_class(),
                        to: t.new_state.trace_class(),
                        span,
                    });
                self.stats.handlers += 1;
                let invals = t
                    .sends
                    .iter()
                    .filter(|m| matches!(m.kind, smtp_noc::MsgKind::Inval { .. }))
                    .count() as u64;
                let intervs = t
                    .sends
                    .iter()
                    .filter(|m| {
                        matches!(
                            m.kind,
                            smtp_noc::MsgKind::IntervShared { .. }
                                | smtp_noc::MsgKind::IntervExcl { .. }
                        )
                    })
                    .count() as u64;
                self.stats.invals_sent += invals;
                self.stats.interventions += intervs;
                if let Some(sp) = &mut self.spatial {
                    let c = sp.touch(msg.addr);
                    c.invals_sent += invals;
                    c.interventions += intervs;
                    let req = match msg.kind {
                        smtp_noc::MsgKind::GetS => Some(HomeReq::Read),
                        smtp_noc::MsgKind::GetX => Some(HomeReq::Write),
                        smtp_noc::MsgKind::Upgrade => Some(HomeReq::Upgrade),
                        smtp_noc::MsgKind::Put { .. } => Some(HomeReq::Writeback),
                        // SharingWb / TransferAck are completion legs of a
                        // request already recorded when it arrived.
                        _ => None,
                    };
                    if let Some(req) = req {
                        let prev = match state {
                            DirState::Unowned => PrevState::Unowned,
                            DirState::Shared(s) => PrevState::Shared(s.len()),
                            DirState::Exclusive(o) => PrevState::Exclusive(o.idx()),
                            DirState::BusyShared { owner, .. }
                            | DirState::BusyExcl { owner, .. } => PrevState::Exclusive(owner.idx()),
                        };
                        let sharers_after = match t.new_state {
                            DirState::Unowned => 0,
                            DirState::Shared(s) => s.len(),
                            DirState::Exclusive(_)
                            | DirState::BusyShared { .. }
                            | DirState::BusyExcl { .. } => 1,
                        };
                        record_home(c, msg.src.idx(), req, prev, sharers_after);
                    }
                }
                if t.new_state == DirState::Unowned {
                    self.states.remove(&msg.addr.raw());
                } else {
                    self.states.insert(msg.addr.raw(), t.new_state);
                }
                Some(*t)
            }
            Outcome::Defer => {
                self.stats.deferred += 1;
                if let Some(sp) = &mut self.spatial {
                    sp.touch(msg.addr).nacks += 1;
                }
                let home = self.home;
                let span = msg.span;
                self.tracer
                    .emit(Category::Protocol, now, || Event::DirDefer {
                        node: home,
                        line: msg.addr,
                        msg: msg.kind.trace_label(),
                        span,
                    });
                let q = self.pending.entry(msg.addr.raw()).or_default();
                q.push_back(*msg);
                self.stats.peak_pending = self.stats.peak_pending.max(q.len());
                None
            }
        }
    }

    /// Drain the pending queue of a line that just left its busy state.
    /// The caller replays the returned messages (in order, ahead of newly
    /// arriving traffic) through [`Directory::process`].
    pub fn take_pending(&mut self, line: LineAddr) -> VecDeque<Msg> {
        self.pending.remove(&line.raw()).unwrap_or_default()
    }

    /// Whether any line is currently mid-transaction (quiescence check).
    pub fn any_busy(&self) -> bool {
        self.states.values().any(|s| s.is_busy())
    }

    /// All materialized directory entries, sorted by line address — the
    /// online coherence-sanitizer's iteration surface. Absent lines are
    /// `Unowned` and need no checking.
    pub fn entries(&self) -> Vec<(LineAddr, DirState)> {
        let mut out: Vec<(LineAddr, DirState)> = self
            .states
            .iter()
            .map(|(&raw, &s)| (LineAddr(raw), s))
            .collect();
        out.sort_by_key(|(l, _)| l.raw());
        out
    }

    /// Busy lines and their states (deadlock diagnostics).
    pub fn busy_lines(&self) -> Vec<(LineAddr, DirState)> {
        self.states
            .iter()
            .filter(|(_, s)| s.is_busy())
            .map(|(&raw, &s)| (LineAddr(raw), s))
            .collect()
    }

    /// Number of queued (deferred) requests across all lines.
    pub fn pending_len(&self) -> usize {
        self.pending.values().map(|q| q.len()).sum()
    }

    /// Statistics so far.
    pub fn stats(&self) -> &DirStats {
        &self.stats
    }

    /// Check the directory's internal invariants; called by tests and by
    /// the system simulator's (debug-only) consistency sweeps.
    ///
    /// # Panics
    ///
    /// Panics if a pending queue exists for a non-busy line.
    pub fn check_invariants(&self) {
        for (&raw, q) in &self.pending {
            if !q.is_empty() {
                let st = self.states.get(&raw).copied().unwrap_or_default();
                assert!(
                    st.is_busy(),
                    "pending requests on non-busy line {raw:#x} ({st:?})"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtp_noc::MsgKind;
    use smtp_types::{Addr, Region};

    const HOME: NodeId = NodeId(0);
    const A: NodeId = NodeId(1);
    const B: NodeId = NodeId(2);

    fn line(n: u64) -> LineAddr {
        Addr::new(HOME, Region::AppData, n * 128).line()
    }

    fn msg(kind: MsgKind, src: NodeId, l: LineAddr) -> Msg {
        Msg::new(kind, l, src, HOME)
    }

    #[test]
    fn full_read_write_read_sequence() {
        let mut d = Directory::new(HOME);
        // A reads.
        let t = d.process(&msg(MsgKind::GetS, A, line(0)), 0).unwrap();
        assert_eq!(t.sends[0].kind, MsgKind::DataShared);
        assert_eq!(d.state(line(0)), DirState::Shared(SharerSet::singleton(A)));
        // B writes: A gets invalidated.
        let t = d.process(&msg(MsgKind::GetX, B, line(0)), 0).unwrap();
        assert_eq!(t.sends[0].kind, MsgKind::Inval { requester: B });
        assert_eq!(d.state(line(0)), DirState::Exclusive(B));
        // A reads again: intervention to B, then completion.
        let t = d.process(&msg(MsgKind::GetS, A, line(0)), 0).unwrap();
        assert_eq!(t.sends[0].kind, MsgKind::IntervShared { requester: A });
        assert!(d.state(line(0)).is_busy());
        let t = d
            .process(&msg(MsgKind::SharingWb { requester: A }, B, line(0)), 0)
            .unwrap();
        assert!(t.unbusied);
        let both: SharerSet = [A, B].into_iter().collect();
        assert_eq!(d.state(line(0)), DirState::Shared(both));
        d.check_invariants();
    }

    #[test]
    fn busy_line_queues_and_replays() {
        let mut d = Directory::new(HOME);
        d.process(&msg(MsgKind::GetX, A, line(1)), 0).unwrap();
        d.process(&msg(MsgKind::GetS, B, line(1)), 0).unwrap(); // busy now
        assert!(d.process(&msg(MsgKind::GetX, B, line(1)), 0).is_none());
        assert_eq!(d.pending_len(), 1);
        assert_eq!(d.stats().deferred, 1);
        // Completion unbusies; caller replays.
        let t = d
            .process(&msg(MsgKind::SharingWb { requester: B }, A, line(1)), 0)
            .unwrap();
        assert!(t.unbusied);
        let pend = d.take_pending(line(1));
        assert_eq!(pend.len(), 1);
        let t = d.process(&pend[0], 0).unwrap();
        // B upgrades from shared: inval to A, exclusive to B.
        assert_eq!(d.state(line(1)), DirState::Exclusive(B));
        assert!(t
            .sends
            .iter()
            .any(|m| m.kind == MsgKind::Inval { requester: B }));
        d.check_invariants();
    }

    #[test]
    fn unowned_lines_are_not_materialized() {
        let mut d = Directory::new(HOME);
        d.process(&msg(MsgKind::GetX, A, line(2)), 0).unwrap();
        d.process(&msg(MsgKind::Put { dirty: true }, A, line(2)), 0)
            .unwrap();
        assert_eq!(d.state(line(2)), DirState::Unowned);
        assert_eq!(d.states.len(), 0, "unowned entries freed");
    }

    #[test]
    #[should_panic(expected = "wrong home")]
    fn misrouted_message_panics() {
        let mut d = Directory::new(NodeId(3));
        d.process(&msg(MsgKind::GetS, A, line(0)), 0);
    }

    #[test]
    fn spatial_tracker_records_home_signature() {
        let mut d = Directory::new(HOME);
        d.enable_spatial(8);
        // A reads, B writes (invalidating A), A reads back (intervention),
        // and a request deferred while busy counts as a NACK.
        d.process(&msg(MsgKind::GetS, A, line(0)), 0).unwrap();
        d.process(&msg(MsgKind::GetX, B, line(0)), 0).unwrap();
        d.process(&msg(MsgKind::GetS, A, line(0)), 0).unwrap();
        assert!(d.process(&msg(MsgKind::GetX, B, line(0)), 0).is_none());
        let t = d.spatial().unwrap().get(line(0)).unwrap();
        assert_eq!(t.weight, 4); // three handled + one deferred
        assert_eq!(t.c.reads, 2);
        assert_eq!(t.c.writes, 1);
        assert_eq!(t.c.invals_sent, 1);
        assert_eq!(t.c.interventions, 1);
        assert_eq!(t.c.nacks, 1);
        assert_eq!(t.c.read_after_write, 1);
        assert_eq!(t.c.write_after_read, 1);
        assert_eq!(t.c.last_writer, Some(B.0 as u32));
        assert_eq!(t.c.toucher_mask, 0b110);
        // Disabled directory pays nothing and exposes nothing.
        let d2 = Directory::new(HOME);
        assert!(d2.spatial().is_none());
    }

    #[test]
    fn stats_count_interventions() {
        let mut d = Directory::new(HOME);
        d.process(&msg(MsgKind::GetX, A, line(3)), 0).unwrap();
        d.process(&msg(MsgKind::GetS, B, line(3)), 0).unwrap();
        assert_eq!(d.stats().interventions, 1);
        assert_eq!(d.stats().handlers, 2);
    }
}
