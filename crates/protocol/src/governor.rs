//! Fault-injection governor for home-side handler dispatch.
//!
//! Models two protocol-side failure modes from the fault plan: **transient
//! protocol-thread starvation** (the dispatch unit is denied new handlers
//! for a whole window, as if the thread lost its fetch slots) and
//! **delayed handler dispatch** (an individual handler's dispatch is pushed
//! back a fixed number of cycles). Both draw from dedicated seeded streams
//! so runs are reproducible, and a disabled governor costs one predictable
//! branch per dispatch edge.

use smtp_types::faults::{SITE_HANDLER, SITE_STARVE};
use smtp_types::{Cycle, FaultConfig, FaultStream, FaultWindows, NodeId};

/// Armed governor state (heap-allocated so the disabled case stays one
/// pointer test).
#[derive(Clone, Debug)]
struct GovState {
    starvation: FaultWindows,
    handler: FaultStream,
    delay_per_million: u32,
    delay_cycles: u64,
    delayed_until: Cycle,
    handler_delays: u64,
    newly_delayed: Option<Cycle>,
}

/// Gates home-side handler dispatch under injected faults. Disabled by
/// default ([`DispatchGovernor::disabled`]); [`DispatchGovernor::allow`] is
/// then a single branch.
#[derive(Clone, Debug, Default)]
pub struct DispatchGovernor {
    state: Option<Box<GovState>>,
}

impl DispatchGovernor {
    /// A governor that always allows dispatch.
    pub fn disabled() -> DispatchGovernor {
        DispatchGovernor { state: None }
    }

    /// Build from the system fault plan; stays disabled unless `faults`
    /// enables starvation windows or handler delays.
    pub fn from_faults(faults: &FaultConfig, node: NodeId) -> DispatchGovernor {
        if !faults.enabled || (!faults.starvation.any() && !faults.handler_delay.any()) {
            return DispatchGovernor::disabled();
        }
        DispatchGovernor {
            state: Some(Box::new(GovState {
                starvation: FaultWindows::new(
                    faults.stream(SITE_STARVE ^ u64::from(node.0)),
                    &faults.starvation,
                ),
                handler: faults.stream(SITE_HANDLER ^ u64::from(node.0)),
                delay_per_million: faults.handler_delay.delay_per_million,
                delay_cycles: faults.handler_delay.delay_cycles,
                delayed_until: 0,
                handler_delays: 0,
                newly_delayed: None,
            })),
        }
    }

    /// Whether the dispatch unit may start a new handler at `now`. Rolls
    /// the starvation window first (it freezes the whole unit), then the
    /// per-handler delay (it pushes this dispatch edge back).
    pub fn allow(&mut self, now: Cycle) -> bool {
        let Some(g) = self.state.as_deref_mut() else {
            return true;
        };
        if g.starvation.stalled(now) {
            return false;
        }
        if now < g.delayed_until {
            return false;
        }
        if g.delay_per_million > 0 && g.handler.fires(g.delay_per_million) {
            g.delayed_until = now + g.delay_cycles;
            g.handler_delays += 1;
            g.newly_delayed = Some(g.delayed_until);
            return false;
        }
        true
    }

    /// Starvation windows opened so far.
    pub fn starvation_windows(&self) -> u64 {
        self.state.as_ref().map_or(0, |g| g.starvation.opened())
    }

    /// Handler dispatches delayed so far.
    pub fn handler_delays(&self) -> u64 {
        self.state.as_ref().map_or(0, |g| g.handler_delays)
    }

    /// End cycle of a starvation window opened since the last call (one
    /// trace event per window).
    pub fn starvation_opened(&mut self) -> Option<Cycle> {
        self.state
            .as_deref_mut()
            .and_then(|g| g.starvation.take_newly_opened())
    }

    /// End cycle of a handler delay injected since the last call (one
    /// trace event per delay).
    pub fn handler_delayed(&mut self) -> Option<Cycle> {
        self.state
            .as_deref_mut()
            .and_then(|g| g.newly_delayed.take())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtp_types::{HandlerDelayFaults, StallFaults};

    fn base(seed: u64) -> FaultConfig {
        FaultConfig {
            enabled: true,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn disabled_always_allows() {
        let mut g = DispatchGovernor::disabled();
        for now in 0..100 {
            assert!(g.allow(now));
        }
        assert_eq!(g.starvation_windows(), 0);
        assert_eq!(g.handler_delays(), 0);
        // An all-off config also stays disabled.
        let g = DispatchGovernor::from_faults(&base(1), NodeId(0));
        assert!(g.state.is_none());
    }

    #[test]
    fn starvation_window_blocks_dispatch() {
        let mut cfg = base(7);
        cfg.starvation = StallFaults {
            window_per_million: 1_000_000,
            window_cycles: 50,
            check_every: 128,
        };
        let mut g = DispatchGovernor::from_faults(&cfg, NodeId(1));
        assert!(!g.allow(0), "first check opens a window");
        assert_eq!(g.starvation_windows(), 1);
        assert_eq!(g.starvation_opened(), Some(50));
        assert!(!g.allow(49));
        assert!(g.allow(60), "window over, next roll at 128");
    }

    #[test]
    fn handler_delay_pushes_back_one_edge() {
        let mut cfg = base(9);
        cfg.handler_delay = HandlerDelayFaults {
            delay_per_million: 1_000_000,
            delay_cycles: 40,
        };
        let mut g = DispatchGovernor::from_faults(&cfg, NodeId(0));
        assert!(!g.allow(10), "delay fires");
        assert_eq!(g.handler_delays(), 1);
        assert_eq!(g.handler_delayed(), Some(50));
        assert_eq!(g.handler_delayed(), None);
        assert!(!g.allow(30), "still inside the delay");
        // At 50 the delay has elapsed but (rate = certain) a new one fires.
        assert!(!g.allow(50));
        assert_eq!(g.handler_delays(), 2);
    }

    #[test]
    fn streams_differ_per_node() {
        let mut cfg = base(3);
        cfg.handler_delay = HandlerDelayFaults {
            delay_per_million: 300_000,
            delay_cycles: 10,
        };
        let mut a = DispatchGovernor::from_faults(&cfg, NodeId(0));
        let mut b = DispatchGovernor::from_faults(&cfg, NodeId(5));
        let pa: Vec<bool> = (0..64).map(|i| a.allow(i * 100)).collect();
        let pb: Vec<bool> = (0..64).map(|i| b.allow(i * 100)).collect();
        assert_ne!(pa, pb, "per-node streams must decorrelate");
    }
}
