//! The directory transition function: one incoming message → next state,
//! outgoing messages, SDRAM involvement and the handler to charge for it.

use crate::directory::DirState;
use crate::handlers::HandlerKind;
use smtp_noc::{Msg, MsgKind};
use smtp_types::{LineAddr, NodeId, SharerSet};

/// The full effect of one protocol handler, computed at dispatch.
///
/// * `new_state` is committed to the directory immediately (dispatch order
///   is the serialization order).
/// * `sends` happen when the handler's `send` instructions graduate; the
///   element at `data_reply` additionally waits for the SDRAM read that the
///   dispatch unit started in parallel (paper §2.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transition {
    /// State the directory entry moves to.
    pub new_state: DirState,
    /// Messages to emit, in handler `send` order (`Send { msg_idx }`
    /// indexes this list).
    pub sends: Vec<Msg>,
    /// Index into `sends` of the reply that carries SDRAM data (and must
    /// therefore wait for the memory access launched at dispatch).
    pub data_reply: Option<usize>,
    /// The handler writes the (dirty) payload to SDRAM.
    pub sdram_write: bool,
    /// The transaction for this line completed: replay any queued requests.
    pub unbusied: bool,
    /// Which handler's timing program models this transition.
    pub kind: HandlerKind,
}

impl Transition {
    fn new(kind: HandlerKind, new_state: DirState) -> Transition {
        Transition {
            new_state,
            sends: Vec::new(),
            data_reply: None,
            sdram_write: false,
            unbusied: false,
            kind,
        }
    }
}

/// Result of presenting a message to the home.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Run this handler.
    Apply(Box<Transition>),
    /// Line is busy and the message is a deferrable request: queue it.
    Defer,
}

/// Compute the transition for `msg` arriving at `home` with the line in
/// `state`.
///
/// # Panics
///
/// Panics on protocol-invariant violations (e.g. an owner re-requesting a
/// line it owns, or a `SharingWb` in a non-busy state): these indicate
/// simulator bugs, never legal races.
pub fn handle(home: NodeId, state: &DirState, msg: &Msg) -> Outcome {
    let line = msg.addr;
    let who = msg.src;
    let mut outcome = match msg.kind {
        MsgKind::GetS => handle_gets(home, state, line, who),
        MsgKind::GetX => handle_getx(home, state, line, who, false),
        MsgKind::Upgrade => handle_getx(home, state, line, who, true),
        MsgKind::Put { dirty } => handle_put(home, state, line, who, dirty),
        MsgKind::SharingWb { requester } => {
            let DirState::BusyShared {
                owner,
                requester: r,
            } = *state
            else {
                panic!("SharingWb for {line:?} in state {state:?}");
            };
            assert_eq!(owner, who, "SharingWb from non-owner");
            assert_eq!(r, requester, "SharingWb requester mismatch");
            let mut sharers = SharerSet::singleton(owner);
            sharers.insert(requester);
            let mut t = Transition::new(HandlerKind::SharingWb, DirState::Shared(sharers));
            t.sdram_write = true; // the (possibly dirty) line returns to memory
            t.unbusied = true;
            Outcome::Apply(Box::new(t))
        }
        MsgKind::TransferAck { new_owner } => {
            let DirState::BusyExcl { owner, requester } = *state else {
                panic!("TransferAck for {line:?} in state {state:?}");
            };
            assert_eq!(owner, who, "TransferAck from non-owner");
            assert_eq!(requester, new_owner, "TransferAck owner mismatch");
            let mut t = Transition::new(HandlerKind::TransferAck, DirState::Exclusive(new_owner));
            t.unbusied = true;
            Outcome::Apply(Box::new(t))
        }
        k => panic!("message kind {k:?} is not a home-directed transaction"),
    };
    // Every message a handler emits is causally part of the transaction
    // that triggered it: inherit the incoming message's span.
    if let Outcome::Apply(t) = &mut outcome {
        for s in &mut t.sends {
            s.span = msg.span;
        }
    }
    outcome
}

fn handle_gets(home: NodeId, state: &DirState, line: LineAddr, who: NodeId) -> Outcome {
    match *state {
        DirState::Unowned => {
            let mut t = Transition::new(
                HandlerKind::GetSUnowned,
                DirState::Shared(SharerSet::singleton(who)),
            );
            t.sends.push(Msg::new(MsgKind::DataShared, line, home, who));
            t.data_reply = Some(0);
            Outcome::Apply(Box::new(t))
        }
        DirState::Shared(mut sharers) => {
            sharers.insert(who);
            let mut t = Transition::new(HandlerKind::GetSShared, DirState::Shared(sharers));
            t.sends.push(Msg::new(MsgKind::DataShared, line, home, who));
            t.data_reply = Some(0);
            Outcome::Apply(Box::new(t))
        }
        DirState::Exclusive(owner) => {
            assert_ne!(
                owner, who,
                "owner {owner:?} sent GetS for its own line {line:?}"
            );
            let mut t = Transition::new(
                HandlerKind::GetSExcl,
                DirState::BusyShared {
                    owner,
                    requester: who,
                },
            );
            t.sends.push(Msg::new(
                MsgKind::IntervShared { requester: who },
                line,
                home,
                owner,
            ));
            Outcome::Apply(Box::new(t))
        }
        DirState::BusyShared { .. } | DirState::BusyExcl { .. } => Outcome::Defer,
    }
}

fn handle_getx(
    home: NodeId,
    state: &DirState,
    line: LineAddr,
    who: NodeId,
    upgrade: bool,
) -> Outcome {
    match *state {
        DirState::Unowned => {
            let mut t = Transition::new(HandlerKind::GetXUnowned, DirState::Exclusive(who));
            t.sends
                .push(Msg::new(MsgKind::DataExcl { acks: 0 }, line, home, who));
            t.data_reply = Some(0);
            Outcome::Apply(Box::new(t))
        }
        DirState::Shared(sharers) => {
            let mut invals = sharers;
            let still_sharer = invals.remove(who);
            let acks = invals.len() as u16;
            let mut t = Transition::new(
                HandlerKind::GetXShared { invals: acks },
                DirState::Exclusive(who),
            );
            // Invalidations first (send order), data/ack reply last.
            for s in invals.iter() {
                t.sends
                    .push(Msg::new(MsgKind::Inval { requester: who }, line, home, s));
            }
            if upgrade && still_sharer {
                t.sends
                    .push(Msg::new(MsgKind::UpgradeAck { acks }, line, home, who));
                // No data movement: ownership only.
            } else {
                t.sends
                    .push(Msg::new(MsgKind::DataExcl { acks }, line, home, who));
                t.data_reply = Some(t.sends.len() - 1);
            }
            Outcome::Apply(Box::new(t))
        }
        DirState::Exclusive(owner) => {
            assert_ne!(
                owner, who,
                "owner {owner:?} sent GetX for its own line {line:?}"
            );
            let mut t = Transition::new(
                HandlerKind::GetXExcl,
                DirState::BusyExcl {
                    owner,
                    requester: who,
                },
            );
            t.sends.push(Msg::new(
                MsgKind::IntervExcl { requester: who },
                line,
                home,
                owner,
            ));
            Outcome::Apply(Box::new(t))
        }
        DirState::BusyShared { .. } | DirState::BusyExcl { .. } => Outcome::Defer,
    }
}

fn handle_put(home: NodeId, state: &DirState, line: LineAddr, who: NodeId, dirty: bool) -> Outcome {
    match *state {
        DirState::Exclusive(owner) if owner == who => {
            let mut t = Transition::new(HandlerKind::Put, DirState::Unowned);
            t.sends.push(Msg::new(MsgKind::WbAck, line, home, who));
            t.sdram_write = dirty;
            Outcome::Apply(Box::new(t))
        }
        DirState::Shared(mut sharers) => {
            // Stale Put: the evictor was downgraded by an intervention that
            // raced with its eviction; its data already reached memory via
            // the SharingWb. Just drop it from the sharer set.
            sharers.remove(who);
            let ns = if sharers.is_empty() {
                DirState::Unowned
            } else {
                DirState::Shared(sharers)
            };
            let mut t = Transition::new(HandlerKind::PutStale, ns);
            t.sends.push(Msg::new(MsgKind::WbAck, line, home, who));
            Outcome::Apply(Box::new(t))
        }
        DirState::Exclusive(_) | DirState::Unowned => {
            // Stale Put after an exclusive transfer (or after the new owner
            // also wrote back). Acknowledge and ignore.
            let mut t = Transition::new(HandlerKind::PutStale, *state);
            t.sends.push(Msg::new(MsgKind::WbAck, line, home, who));
            Outcome::Apply(Box::new(t))
        }
        DirState::BusyShared { .. } | DirState::BusyExcl { .. } => Outcome::Defer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtp_types::{Addr, Region};

    const HOME: NodeId = NodeId(0);
    const A: NodeId = NodeId(1);
    const B: NodeId = NodeId(2);
    const C: NodeId = NodeId(3);

    fn line() -> LineAddr {
        Addr::new(HOME, Region::AppData, 0x1000).line()
    }

    fn msg(kind: MsgKind, src: NodeId) -> Msg {
        Msg::new(kind, line(), src, HOME)
    }

    fn apply(state: &DirState, m: Msg) -> Transition {
        match handle(HOME, state, &m) {
            Outcome::Apply(t) => *t,
            Outcome::Defer => panic!("unexpected defer"),
        }
    }

    #[test]
    fn gets_unowned_replies_shared_data() {
        let t = apply(&DirState::Unowned, msg(MsgKind::GetS, A));
        assert_eq!(t.new_state, DirState::Shared(SharerSet::singleton(A)));
        assert_eq!(t.sends.len(), 1);
        assert_eq!(t.sends[0].kind, MsgKind::DataShared);
        assert_eq!(t.sends[0].dst, A);
        assert_eq!(t.data_reply, Some(0));
        assert_eq!(t.kind, HandlerKind::GetSUnowned);
    }

    #[test]
    fn gets_shared_adds_sharer() {
        let s = DirState::Shared(SharerSet::singleton(A));
        let t = apply(&s, msg(MsgKind::GetS, B));
        let expected: SharerSet = [A, B].into_iter().collect();
        assert_eq!(t.new_state, DirState::Shared(expected));
    }

    #[test]
    fn gets_exclusive_intervenes() {
        let t = apply(&DirState::Exclusive(A), msg(MsgKind::GetS, B));
        assert_eq!(
            t.new_state,
            DirState::BusyShared {
                owner: A,
                requester: B
            }
        );
        assert_eq!(t.sends[0].kind, MsgKind::IntervShared { requester: B });
        assert_eq!(t.sends[0].dst, A);
        assert_eq!(t.data_reply, None, "no memory data while owner has it");
    }

    #[test]
    fn getx_shared_invalidates_others() {
        let s: SharerSet = [A, B, C].into_iter().collect();
        let t = apply(&DirState::Shared(s), msg(MsgKind::GetX, A));
        assert_eq!(t.new_state, DirState::Exclusive(A));
        // Two invals (B, C) then the data reply with acks=2.
        assert_eq!(t.sends.len(), 3);
        assert!(t.sends[..2]
            .iter()
            .all(|m| m.kind == MsgKind::Inval { requester: A }));
        assert_eq!(t.sends[2].kind, MsgKind::DataExcl { acks: 2 });
        assert_eq!(t.data_reply, Some(2));
        assert_eq!(t.kind, HandlerKind::GetXShared { invals: 2 });
    }

    #[test]
    fn upgrade_by_current_sharer_needs_no_data() {
        let s: SharerSet = [A, B].into_iter().collect();
        let t = apply(&DirState::Shared(s), msg(MsgKind::Upgrade, A));
        assert_eq!(t.new_state, DirState::Exclusive(A));
        assert_eq!(
            t.sends.last().unwrap().kind,
            MsgKind::UpgradeAck { acks: 1 }
        );
        assert_eq!(t.data_reply, None);
    }

    #[test]
    fn upgrade_after_losing_copy_degrades_to_getx() {
        // A was invalidated before its Upgrade reached home.
        let s = DirState::Shared(SharerSet::singleton(B));
        let t = apply(&s, msg(MsgKind::Upgrade, A));
        assert_eq!(t.new_state, DirState::Exclusive(A));
        assert_eq!(t.sends.last().unwrap().kind, MsgKind::DataExcl { acks: 1 });
        assert!(t.data_reply.is_some());
    }

    #[test]
    fn getx_exclusive_transfers_ownership() {
        let t = apply(&DirState::Exclusive(A), msg(MsgKind::GetX, B));
        assert_eq!(
            t.new_state,
            DirState::BusyExcl {
                owner: A,
                requester: B
            }
        );
        assert_eq!(t.sends[0].kind, MsgKind::IntervExcl { requester: B });
    }

    #[test]
    fn busy_defers_requests_but_not_completions() {
        let busy = DirState::BusyShared {
            owner: A,
            requester: B,
        };
        assert_eq!(handle(HOME, &busy, &msg(MsgKind::GetS, C)), Outcome::Defer);
        assert_eq!(
            handle(HOME, &busy, &msg(MsgKind::Put { dirty: true }, A)),
            Outcome::Defer
        );
        // The completion message must apply.
        let t = apply(&busy, msg(MsgKind::SharingWb { requester: B }, A));
        let expected: SharerSet = [A, B].into_iter().collect();
        assert_eq!(t.new_state, DirState::Shared(expected));
        assert!(t.unbusied);
        assert!(t.sdram_write);
    }

    #[test]
    fn transfer_ack_completes_exclusive_handoff() {
        let busy = DirState::BusyExcl {
            owner: A,
            requester: B,
        };
        let t = apply(&busy, msg(MsgKind::TransferAck { new_owner: B }, A));
        assert_eq!(t.new_state, DirState::Exclusive(B));
        assert!(t.unbusied);
    }

    #[test]
    fn put_from_owner_returns_to_unowned() {
        let t = apply(
            &DirState::Exclusive(A),
            msg(MsgKind::Put { dirty: true }, A),
        );
        assert_eq!(t.new_state, DirState::Unowned);
        assert_eq!(t.sends[0].kind, MsgKind::WbAck);
        assert!(t.sdram_write);
    }

    #[test]
    fn stale_put_after_downgrade_is_acked_and_dropped() {
        let s: SharerSet = [A, B].into_iter().collect();
        let t = apply(&DirState::Shared(s), msg(MsgKind::Put { dirty: true }, A));
        assert_eq!(t.new_state, DirState::Shared(SharerSet::singleton(B)));
        assert_eq!(t.sends[0].kind, MsgKind::WbAck);
        assert!(!t.sdram_write, "data already reached memory via SharingWb");
    }

    #[test]
    fn stale_put_after_transfer_keeps_new_owner() {
        let t = apply(
            &DirState::Exclusive(B),
            msg(MsgKind::Put { dirty: true }, A),
        );
        assert_eq!(t.new_state, DirState::Exclusive(B));
        assert_eq!(t.sends[0].kind, MsgKind::WbAck);
        assert_eq!(t.sends[0].dst, A);
    }

    #[test]
    #[should_panic(expected = "its own line")]
    fn owner_re_request_is_a_bug() {
        apply(&DirState::Exclusive(A), msg(MsgKind::GetS, A));
    }

    #[test]
    #[should_panic(expected = "SharingWb")]
    fn sharing_wb_without_busy_is_a_bug() {
        apply(
            &DirState::Unowned,
            msg(MsgKind::SharingWb { requester: B }, A),
        );
    }
}
