//! The bitvector directory cache-coherence protocol.
//!
//! Derived from the SGI Origin 2000 protocol as the paper describes (§3):
//! invalidation-based MESI with **eager-exclusive replies** (the requester
//! may use exclusive data before all invalidation acknowledgements arrive;
//! acks are collected at the requester). The home node is the serialization
//! point: requests that hit a line in a transient (busy) state are queued at
//! the home and replayed in order once the transaction completes, so the
//! protocol needs no NACK/retry traffic.
//!
//! The crate is *pure protocol*: given a directory state and an incoming
//! message it computes a [`Transition`] — the next state, the messages to
//! send, SDRAM involvement — and the **handler timing program**, the
//! sequence of protocol-thread instructions whose execution models the
//! handler's cost. The same program is executed by both protocol backends:
//!
//! * the embedded dual-issue protocol processor of the `Base`/`Int*`
//!   machine models (`smtp-mem`), and
//! * the SMTp protocol thread context in the main pipeline
//!   (`smtp-pipeline`), where it is fetched, renamed, executed and
//!   graduated like any other thread.

pub mod directory;
pub mod governor;
pub mod handlers;
pub mod transition;

pub use directory::{DirState, DirStats, Directory};
pub use governor::DispatchGovernor;
pub use handlers::{handler_base_pc, handler_program, pc_to_addr, HandlerKind, HandlerStats};
pub use transition::{handle, Outcome, Transition};

use smtp_noc::Msg;
use smtp_types::NodeId;

/// Compute the transition for `msg`, panicking if the line is busy.
///
/// Convenience for tests and analytic tools that construct states directly;
/// production code goes through [`Directory::process`], which queues
/// deferred requests instead.
///
/// # Panics
///
/// Panics when the transition would be deferred.
pub fn must_apply(home: NodeId, state: &DirState, msg: &Msg) -> Transition {
    match handle(home, state, msg) {
        Outcome::Apply(t) => *t,
        Outcome::Defer => panic!("transition deferred for {msg}"),
    }
}
