//! Protocol handler timing programs.
//!
//! Every directory transition is charged as a short protocol-instruction
//! program modeled on the FLASH bitvector handlers (paper §2.1, [14]): load
//! the directory entry, dispatch on its state, manipulate the sharer
//! vector, `send` the outgoing messages, store the entry back, and finish
//! with the `switch` / `ldctxt` pair that loads the next request's header
//! and address. Invalidation fan-out appears as a real loop — one `send`
//! per sharer with a backward conditional branch — so large sharer sets
//! cost proportionally more handler time, as on the real machine.
//!
//! The first two instructions of every handler live at *shared* PCs (the
//! dispatch stub): their branch direction depends on the handler kind, so a
//! varying handler mix produces realistic branch mispredictions in the
//! protocol thread (paper Table 8), while a steady mix trains well.

use crate::transition::Transition;
use smtp_isa::{Inst, Op, Reg};
use smtp_types::{Addr, LineAddr, NodeId, Region};

/// Identifies a handler's static code (for PCs and statistics).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HandlerKind {
    /// GetS on an unowned line: reply data from memory.
    GetSUnowned,
    /// GetS on a shared line: add sharer, reply data.
    GetSShared,
    /// GetS on an exclusive line: shared intervention to the owner.
    GetSExcl,
    /// GetX on an unowned line: reply exclusive data.
    GetXUnowned,
    /// GetX/Upgrade on a shared line: invalidate `invals` sharers, reply.
    GetXShared {
        /// Number of invalidations sent.
        invals: u16,
    },
    /// GetX on an exclusive line: exclusive intervention to the owner.
    GetXExcl,
    /// Owner writeback: ack, return line to memory.
    Put,
    /// Stale writeback that raced with an intervention: ack and drop.
    PutStale,
    /// Sharing-writeback completion of a shared intervention.
    SharingWb,
    /// Transfer-ack completion of an exclusive intervention.
    TransferAck,
}

impl HandlerKind {
    /// Dense index for tables.
    pub fn index(self) -> usize {
        match self {
            HandlerKind::GetSUnowned => 0,
            HandlerKind::GetSShared => 1,
            HandlerKind::GetSExcl => 2,
            HandlerKind::GetXUnowned => 3,
            HandlerKind::GetXShared { .. } => 4,
            HandlerKind::GetXExcl => 5,
            HandlerKind::Put => 6,
            HandlerKind::PutStale => 7,
            HandlerKind::SharingWb => 8,
            HandlerKind::TransferAck => 9,
        }
    }

    /// Number of distinct handler kinds.
    pub const COUNT: usize = 10;

    /// Payload-free class for trace output.
    pub fn trace_class(self) -> smtp_trace::HandlerClass {
        use smtp_trace::HandlerClass;
        match self {
            HandlerKind::GetSUnowned => HandlerClass::GetSUnowned,
            HandlerKind::GetSShared => HandlerClass::GetSShared,
            HandlerKind::GetSExcl => HandlerClass::GetSExcl,
            HandlerKind::GetXUnowned => HandlerClass::GetXUnowned,
            HandlerKind::GetXShared { .. } => HandlerClass::GetXShared,
            HandlerKind::GetXExcl => HandlerClass::GetXExcl,
            HandlerKind::Put => HandlerClass::Put,
            HandlerKind::PutStale => HandlerClass::PutStale,
            HandlerKind::SharingWb => HandlerClass::SharingWb,
            HandlerKind::TransferAck => HandlerClass::TransferAck,
        }
    }

    /// Short name for statistics output.
    pub fn name(self) -> &'static str {
        match self {
            HandlerKind::GetSUnowned => "GetSUnowned",
            HandlerKind::GetSShared => "GetSShared",
            HandlerKind::GetSExcl => "GetSExcl",
            HandlerKind::GetXUnowned => "GetXUnowned",
            HandlerKind::GetXShared { .. } => "GetXShared",
            HandlerKind::GetXExcl => "GetXExcl",
            HandlerKind::Put => "Put",
            HandlerKind::PutStale => "PutStale",
            HandlerKind::SharingWb => "SharingWb",
            HandlerKind::TransferAck => "TransferAck",
        }
    }

    /// Name for a dense [`HandlerKind::index`] value.
    pub fn name_by_index(idx: usize) -> &'static str {
        const NAMES: [&str; HandlerKind::COUNT] = [
            "GetSUnowned",
            "GetSShared",
            "GetSExcl",
            "GetXUnowned",
            "GetXShared",
            "GetXExcl",
            "Put",
            "PutStale",
            "SharingWb",
            "TransferAck",
        ];
        NAMES[idx]
    }
}

/// Per-handler-kind dispatch counts and occupancy (dispatch to `ldctxt`
/// graduation / engine completion) distributions — the raw material for
/// the paper's Table 7 protocol-occupancy analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HandlerStats {
    /// Dispatches per handler kind, indexed by [`HandlerKind::index`].
    pub counts: [u64; HandlerKind::COUNT],
    /// Occupancy cycles per handler kind.
    pub occupancy: [smtp_types::Distribution; HandlerKind::COUNT],
}

impl Default for HandlerStats {
    fn default() -> Self {
        HandlerStats {
            counts: [0; HandlerKind::COUNT],
            occupancy: std::array::from_fn(|_| smtp_types::Distribution::new()),
        }
    }
}

impl HandlerStats {
    /// New, empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed handler run of `cycles` occupancy.
    pub fn record(&mut self, kind_idx: usize, cycles: u64) {
        self.counts[kind_idx] += 1;
        self.occupancy[kind_idx].record(cycles);
    }

    /// Merge another node's statistics in (exactly associative).
    pub fn merge(&mut self, other: &HandlerStats) {
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        for (d, o) in self.occupancy.iter_mut().zip(&other.occupancy) {
            d.merge(o);
        }
    }

    /// Total handler dispatches.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterate `(name, count, occupancy)` over kinds that ran.
    pub fn iter_nonzero(
        &self,
    ) -> impl Iterator<Item = (&'static str, u64, &smtp_types::Distribution)> + '_ {
        self.counts
            .iter()
            .zip(&self.occupancy)
            .enumerate()
            .filter(|(_, (&c, _))| c > 0)
            .map(|(i, (&c, d))| (HandlerKind::name_by_index(i), c, d))
    }
}

/// Instruction-index space: the shared dispatch stub occupies PCs 0..8;
/// each handler body starts at `8 + index · 64`.
pub fn handler_base_pc(kind: HandlerKind) -> u32 {
    8 + kind.index() as u32 * 64
}

/// Physical address of a protocol-code PC at `home` (unmapped region; the
/// protocol thread's instruction fetches never touch the ITLB).
pub fn pc_to_addr(home: NodeId, pc: u32) -> Addr {
    Addr::new(home, Region::ProtocolCode, pc as u64 * 4)
}

/// Build the timing program for a computed transition on `line` at `home`.
///
/// The program always ends with `switch` / `ldctxt`; `Send { msg_idx }`
/// instructions index `t.sends` in order.
pub fn handler_program(_home: NodeId, line: LineAddr, t: &Transition) -> Vec<Inst> {
    let dir = line.directory_entry();
    let base = handler_base_pc(t.kind);
    let mut prog = Vec::with_capacity(16 + 3 * t.sends.len());

    // --- shared dispatch stub (PCs 0..2) ---
    // Load the directory entry; its value steers the dispatch branches.
    prog.push(
        Inst::new(Op::PLoad { addr: dir }, 0)
            .with_srcs(Some(Reg::int(2)), None)
            .with_dst(Reg::int(1)),
    );
    // State-dispatch: a not-taken guard at a shared PC (trains perfectly,
    // as the real code's common-case fall-through does) followed by the
    // jump into the kind-specific body. Mispredictions come from the
    // body's data-dependent loop branches, as on the real machine.
    prog.push(
        Inst::new(
            Op::PBranch {
                taken: false,
                target: base,
            },
            1,
        )
        .with_srcs(Some(Reg::int(1)), None),
    );
    prog.push(
        Inst::new(
            Op::PBranch {
                taken: true,
                target: base,
            },
            2,
        )
        .with_srcs(Some(Reg::int(1)), None),
    );

    // --- kind-specific body ---
    let mut pc = base;
    let push = |prog: &mut Vec<Inst>, inst: Inst| {
        prog.push(inst);
    };
    // Decode the entry / compute the new sharer vector.
    push(
        &mut prog,
        Inst::new(Op::PAlu, pc)
            .with_srcs(Some(Reg::int(1)), None)
            .with_dst(Reg::int(3)),
    );
    pc += 1;

    match t.kind {
        HandlerKind::GetXShared { invals } if invals > 0 => {
            // Popcount of the invalidation set.
            push(
                &mut prog,
                Inst::new(Op::PAlu, pc)
                    .with_srcs(Some(Reg::int(3)), None)
                    .with_dst(Reg::int(4)),
            );
            pc += 1;
            // Invalidation loop: extract sharer (cttz), send, loop back.
            let loop_pc = pc;
            for i in 0..invals {
                push(
                    &mut prog,
                    Inst::new(Op::PAlu, loop_pc)
                        .with_srcs(Some(Reg::int(3)), Some(Reg::int(4)))
                        .with_dst(Reg::int(5)),
                );
                push(
                    &mut prog,
                    Inst::new(Op::Send { msg_idx: i as u8 }, loop_pc + 1)
                        .with_srcs(Some(Reg::int(5)), None),
                );
                push(
                    &mut prog,
                    Inst::new(
                        Op::PBranch {
                            taken: i + 1 < invals,
                            target: loop_pc,
                        },
                        loop_pc + 2,
                    )
                    .with_srcs(Some(Reg::int(4)), None),
                );
            }
            pc = loop_pc + 3;
        }
        HandlerKind::GetSShared | HandlerKind::SharingWb => {
            // Merge into the sharer vector.
            push(
                &mut prog,
                Inst::new(Op::PAlu, pc)
                    .with_srcs(Some(Reg::int(3)), None)
                    .with_dst(Reg::int(4)),
            );
            pc += 1;
        }
        HandlerKind::PutStale => {
            // Check ownership before dropping the sharer.
            push(
                &mut prog,
                Inst::new(Op::PAlu, pc)
                    .with_srcs(Some(Reg::int(3)), None)
                    .with_dst(Reg::int(4)),
            );
            pc += 1;
        }
        _ => {}
    }

    // Remaining sends (data replies, interventions, acks) in index order.
    let already_sent = match t.kind {
        HandlerKind::GetXShared { invals } => invals as usize,
        _ => 0,
    };
    for i in already_sent..t.sends.len() {
        push(
            &mut prog,
            Inst::new(Op::Send { msg_idx: i as u8 }, pc).with_srcs(Some(Reg::int(3)), None),
        );
        pc += 1;
    }

    // Write the directory entry back.
    push(
        &mut prog,
        Inst::new(Op::PStore { addr: dir }, pc).with_srcs(Some(Reg::int(3)), None),
    );
    pc += 1;

    // Terminator: switch (header of next request), ldctxt (its address).
    push(&mut prog, Inst::new(Op::Switch, pc).with_dst(Reg::int(6)));
    push(
        &mut prog,
        Inst::new(Op::Ldctxt, pc + 1).with_dst(Reg::int(2)),
    );
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::DirState;
    use crate::transition::{handle, Outcome};
    use smtp_noc::{Msg, MsgKind};
    use smtp_types::SharerSet;

    const HOME: NodeId = NodeId(0);

    fn line() -> LineAddr {
        Addr::new(HOME, Region::AppData, 0x2000).line()
    }

    fn program_for(state: DirState, kind: MsgKind, src: NodeId) -> (Transition, Vec<Inst>) {
        let m = Msg::new(kind, line(), src, HOME);
        match handle(HOME, &state, &m) {
            Outcome::Apply(t) => {
                let p = handler_program(HOME, line(), &t);
                (*t, p)
            }
            Outcome::Defer => panic!("deferred"),
        }
    }

    #[test]
    fn every_program_ends_with_switch_ldctxt() {
        let (_, p) = program_for(DirState::Unowned, MsgKind::GetS, NodeId(1));
        let n = p.len();
        assert!(matches!(p[n - 2].op, Op::Switch));
        assert!(matches!(p[n - 1].op, Op::Ldctxt));
    }

    #[test]
    fn short_handler_is_six_ish_instructions() {
        // The paper notes critical handlers of only six instructions.
        let (_, p) = program_for(DirState::Unowned, MsgKind::GetS, NodeId(1));
        assert!(p.len() <= 8, "GetSUnowned program too long: {}", p.len());
    }

    #[test]
    fn send_indices_cover_all_sends() {
        let sharers: SharerSet = [NodeId(1), NodeId(2), NodeId(3)].into_iter().collect();
        let (t, p) = program_for(DirState::Shared(sharers), MsgKind::GetX, NodeId(4));
        let send_idxs: Vec<u8> = p
            .iter()
            .filter_map(|i| match i.op {
                Op::Send { msg_idx } => Some(msg_idx),
                _ => None,
            })
            .collect();
        assert_eq!(send_idxs.len(), t.sends.len());
        let expected: Vec<u8> = (0..t.sends.len() as u8).collect();
        assert_eq!(send_idxs, expected);
    }

    #[test]
    fn inval_fanout_scales_program_length() {
        let two: SharerSet = [NodeId(1), NodeId(2)].into_iter().collect();
        let five: SharerSet = (1..=5).map(|i| NodeId(i as u16)).collect();
        let (_, p2) = program_for(DirState::Shared(two), MsgKind::GetX, NodeId(9));
        let (_, p5) = program_for(DirState::Shared(five), MsgKind::GetX, NodeId(9));
        assert_eq!(p5.len() - p2.len(), 3 * 3, "3 instructions per extra inval");
    }

    #[test]
    fn loop_branch_is_backward_and_taken_until_last() {
        let sharers: SharerSet = [NodeId(1), NodeId(2), NodeId(3)].into_iter().collect();
        let (_, p) = program_for(DirState::Shared(sharers), MsgKind::GetX, NodeId(4));
        let loops: Vec<(bool, u32, u32)> = p
            .iter()
            .filter_map(|i| match i.op {
                Op::PBranch { taken, target } if target < i.pc => Some((taken, target, i.pc)),
                _ => None,
            })
            .collect();
        assert_eq!(loops.len(), 3);
        assert!(loops[0].0 && loops[1].0 && !loops[2].0);
        // All three share the same static PC (same static branch).
        assert_eq!(loops[0].2, loops[1].2);
    }

    #[test]
    fn dispatch_stub_is_shared_across_kinds() {
        let (_, a) = program_for(DirState::Unowned, MsgKind::GetS, NodeId(1));
        let (_, b) = program_for(DirState::Exclusive(NodeId(2)), MsgKind::GetX, NodeId(1));
        assert_eq!(a[0].pc, b[0].pc);
        assert_eq!(a[1].pc, b[1].pc);
        // But bodies live at distinct base PCs.
        assert_ne!(a[3].pc, b[3].pc);
    }

    #[test]
    fn programs_touch_the_directory_entry() {
        let (_, p) = program_for(DirState::Unowned, MsgKind::GetX, NodeId(1));
        let dir = line().directory_entry();
        assert!(p.iter().any(|i| i.op == Op::PLoad { addr: dir }));
        assert!(p.iter().any(|i| i.op == Op::PStore { addr: dir }));
    }

    #[test]
    fn base_pcs_do_not_collide() {
        let kinds = [
            HandlerKind::GetSUnowned,
            HandlerKind::GetSShared,
            HandlerKind::GetSExcl,
            HandlerKind::GetXUnowned,
            HandlerKind::GetXShared { invals: 0 },
            HandlerKind::GetXExcl,
            HandlerKind::Put,
            HandlerKind::PutStale,
            HandlerKind::SharingWb,
            HandlerKind::TransferAck,
        ];
        let pcs: Vec<u32> = kinds.iter().map(|&k| handler_base_pc(k)).collect();
        let mut dedup = pcs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), pcs.len());
        assert!(pcs.iter().all(|&p| p >= 8));
    }

    #[test]
    fn pc_addresses_are_unmapped_protocol_code() {
        let a = pc_to_addr(NodeId(3), 100);
        assert_eq!(a.region(), Region::ProtocolCode);
        assert_eq!(a.home(), NodeId(3));
        assert!(a.is_unmapped());
    }
}
