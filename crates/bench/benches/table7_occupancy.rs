//! Paper Table 7: peak protocol occupancy on 16-node 1-way systems for
//! Base, IntPerfect, Int512KB and SMTp.

use smtp_types::MachineModel;
use smtp_workloads::AppKind;

fn main() {
    println!("# Paper Table 7: 16-node protocol occupancy (1-way nodes)");
    let nodes = 16.min(smtp_bench::nodes_cap());
    let models = [
        MachineModel::Base,
        MachineModel::IntPerfect,
        MachineModel::Int512KB,
        MachineModel::SMTp,
    ];
    println!(
        "{:6} | {}",
        "app",
        models.map(|m| format!("{:>10}", m.label())).join(" ")
    );
    for app in AppKind::ALL {
        let mut row = format!("{:6} |", app.name());
        for m in models {
            let r = smtp_bench::run_point(m, app, nodes, 1, 2.0);
            row.push_str(&format!(
                " {:>10}",
                smtp_bench::pct(r.protocol_occupancy_peak)
            ));
        }
        println!("{row}");
    }
}
