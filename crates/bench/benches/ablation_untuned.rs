//! Paper §3's side note: "the relative performance trends for less-tuned
//! applications that do not use prefetching ... are qualitatively
//! identical". This bench runs the five machine models with software
//! prefetching disabled; compare its model ordering against Figure 5's.

use smtp_core::{run_experiment, ExperimentConfig};
use smtp_types::MachineModel;
use smtp_workloads::AppKind;

fn main() {
    println!("# Ablation: untuned applications (no software prefetch), 8 nodes, 1-way");
    let nodes = 8.min(smtp_bench::nodes_cap());
    println!(
        "{:6} | {}",
        "app",
        MachineModel::ALL
            .map(|m| format!("{:>10}", m.label()))
            .join(" ")
    );
    for app in [AppKind::Fft, AppKind::Ocean, AppKind::Radix] {
        let mut base = 0f64;
        let mut row = format!("{:6} |", app.name());
        for model in MachineModel::ALL {
            let mut e = ExperimentConfig::new(model, app, nodes, 1);
            e.prefetch = false;
            let r = run_experiment(&e);
            eprintln!(
                "  [{} {} no-prefetch] {}",
                model.label(),
                app.name(),
                r.cycles
            );
            if base == 0.0 {
                base = r.cycles as f64;
            }
            row.push_str(&format!(" {:>10.3}", r.cycles as f64 / base));
        }
        println!("{row}");
    }
}
