//! Paper Tables 5 and 6: self-relative speedup on 16 nodes (1/2/4-way)
//! for Base and SMTp.

use smtp_types::MachineModel;

fn main() {
    println!("# Paper Tables 5-6: 16-node self-relative speedups");
    let nodes = 16.min(smtp_bench::nodes_cap());
    smtp_bench::print_speedup_table(
        &format!("Table 5: {nodes}-node speedup in Base"),
        MachineModel::Base,
        nodes,
    );
    smtp_bench::print_speedup_table(
        &format!("Table 6: {nodes}-node speedup in SMTp"),
        MachineModel::SMTp,
        nodes,
    );
}
