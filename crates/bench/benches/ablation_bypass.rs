//! Ablation (paper §2.2): bypass-buffer sizing. The buffers exist for
//! deadlock avoidance; this sweep shows their (small) performance effect
//! and that the machine still completes with minimal buffers.

use smtp_core::{run_experiment, ExperimentConfig};
use smtp_types::MachineModel;
use smtp_workloads::AppKind;

fn main() {
    println!("# Ablation: protocol bypass-buffer lines (SMTp, 8 nodes, 1-way)");
    let nodes = 8.min(smtp_bench::nodes_cap());
    println!(
        "{:6} | {:>10} {:>10} {:>10}",
        "app", "16 lines", "4 lines", "1 line"
    );
    for app in [AppKind::Fft, AppKind::Ocean, AppKind::Radix] {
        let mut row = format!("{:6} |", app.name());
        for lines in [16usize, 4, 1] {
            let mut e = ExperimentConfig::new(MachineModel::SMTp, app, nodes, 1);
            e.bypass_lines = Some(lines);
            let r = run_experiment(&e);
            row.push_str(&format!(" {:>10}", r.cycles));
            eprintln!("  [{} bypass={}] {}", app.name(), lines, r.cycles);
        }
        println!("{row}");
    }
}
