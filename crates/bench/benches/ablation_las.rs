//! Ablation (paper §2.3): Look-Ahead Scheduling of protocol handlers on
//! vs off — the paper reports up to 3.9% improvement.

use smtp_core::{run_experiment, ExperimentConfig};
use smtp_types::MachineModel;
use smtp_workloads::AppKind;

fn main() {
    println!("# Ablation: Look-Ahead Scheduling (SMTp, 8 nodes, 1-way)");
    let nodes = 8.min(smtp_bench::nodes_cap());
    println!(
        "{:6} | {:>10} {:>10} {:>8} {:>12}",
        "app", "LAS on", "LAS off", "gain", "LA handlers"
    );
    for app in AppKind::ALL {
        let mut on = ExperimentConfig::new(MachineModel::SMTp, app, nodes, 1);
        on.look_ahead = true;
        let mut off = on.clone();
        off.look_ahead = false;
        let r_on = run_experiment(&on);
        let r_off = run_experiment(&off);
        eprintln!("  [{}] on={} off={}", app.name(), r_on.cycles, r_off.cycles);
        println!(
            "{:6} | {:>10} {:>10} {:>7.2}% {:>12}",
            app.name(),
            r_on.cycles,
            r_off.cycles,
            (r_off.cycles as f64 / r_on.cycles as f64 - 1.0) * 100.0,
            r_on.handlers,
        );
    }
}
