//! Paper §2.3 experiment: separate, perfect protocol instruction and data
//! caches for the SMTp protocol thread. The paper measured 0.9–3.2%
//! improvement (5.1% in one case), concluding that the shared-cache
//! pollution cost is small relative to the complexity of a separate
//! protocol cache hierarchy.

use smtp_core::{run_experiment, ExperimentConfig};
use smtp_types::MachineModel;
use smtp_workloads::AppKind;

fn main() {
    println!("# Ablation (paper §2.3): perfect protocol caches (SMTp, 8 nodes, 1-way)");
    let nodes = 8.min(smtp_bench::nodes_cap());
    println!(
        "{:6} | {:>10} {:>10} {:>8}",
        "app", "shared", "perfect", "gain"
    );
    for app in AppKind::ALL {
        let shared = ExperimentConfig::new(MachineModel::SMTp, app, nodes, 1);
        let mut perfect = shared.clone();
        perfect.perfect_protocol_caches = true;
        let rs = run_experiment(&shared);
        let rp = run_experiment(&perfect);

        eprintln!(
            "  [{}] shared={} perfect={}",
            app.name(),
            rs.cycles,
            rp.cycles
        );
        println!(
            "{:6} | {:>10} {:>10} {:>7.2}%",
            app.name(),
            rs.cycles,
            rp.cycles,
            (rs.cycles as f64 / rp.cycles as f64 - 1.0) * 100.0,
        );
    }
}
