//! Machine-readable benchmark report: run every machine model on a fixed
//! configuration under **both execution engines** and emit
//! `BENCH_report.json` with cycles, IPC, mean/95th-percentile remote-miss
//! latency, the serial-vs-parallel simulator speedup per model, and the
//! parallel engine's host telemetry (worker count, barrier-wait share,
//! imbalance, idle-skip efficiency) — the artifact CI uploads so
//! run-to-run performance is diffable *and attributable*.
//!
//! Every run's full report lands in the cross-run **archive** first
//! (`SMTP_ARCHIVE_DIR`, default `target/bench_archive`), and the report
//! rows are then rebuilt from the archived entries — so the committed
//! `BENCH_report.json` is provably derivable from the archive alone, and
//! the archive keeps the complete per-run reports the summary rows were
//! distilled from.
//!
//! Every point is run on the serial reference engine and on the parallel
//! epoch engine; the archive pair is diffed and must be guest
//! bit-identical before the wall-clock ratio is reported. Two legs ride
//! along past the main model×app grid: SMTp at the largest 16-capped
//! machine pinned to 2 workers (so the report always carries multi-worker
//! speedup/imbalance rows), and a 32-node SMTp smoke point (shared with
//! the `fig8_9_32node` bench) as the scaling sentinel.
//!
//! ```text
//! cargo bench --bench bench_report
//! SMTP_SCALE=0.05 SMTP_NODES_CAP=4 cargo bench --bench bench_report
//! SMTP_BENCH_OUT=other.json SMTP_ARCHIVE_DIR=archive cargo bench --bench bench_report
//! ```

use smtp_bench::{fig32_smoke_config, nodes_cap, timed_point, Archive, BenchRow, RunKey};
use smtp_core::{EngineKind, ExperimentConfig, Report};
use smtp_types::MachineModel;
use smtp_workloads::AppKind;

/// Run one point on both engines, archive both full reports, and rebuild
/// the summary row from the archived pair (asserting guest-identical
/// results along the way).
fn engine_pair_row(archive: &mut Archive, e: &ExperimentConfig, label: &str) -> BenchRow {
    let (serial, _, serial_host) = timed_point(e, EngineKind::Serial);
    let (parallel, _, parallel_host) = timed_point(e, EngineKind::Parallel);
    let (serial_host, parallel_host) = (
        serial_host.expect("serial host profile"),
        parallel_host.expect("parallel host profile"),
    );
    let mut se = e.clone();
    se.engine = EngineKind::Serial;
    let mut pe = e.clone();
    pe.engine = EngineKind::Parallel;
    let serial_entry = archive
        .append(
            &RunKey::for_experiment(&se),
            &Report::with_host_profile(&serial, &serial_host).json(),
        )
        .unwrap_or_else(|err| panic!("archive {label} serial: {err}"))
        .clone();
    let parallel_entry = archive
        .append(
            &RunKey::for_experiment(&pe),
            &Report::with_host_profile(&parallel, &parallel_host).json(),
        )
        .unwrap_or_else(|err| panic!("archive {label} parallel: {err}"))
        .clone();
    BenchRow::from_archive_pair(&serial_entry, &parallel_entry)
        .unwrap_or_else(|err| panic!("engines diverged on {label}: {err}"))
}

fn main() {
    let nodes = 8.min(nodes_cap());
    let ways = 2;
    // Default next to the workspace root (cargo runs benches with the
    // package directory as CWD), where CI picks the artifact up.
    let out = std::env::var("SMTP_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_report.json").into());
    let archive_dir = std::env::var("SMTP_ARCHIVE_DIR").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/bench_archive").into()
    });
    let mut archive = Archive::open(&archive_dir).unwrap_or_else(|err| panic!("{err}"));
    let mut rows = Vec::new();
    for model in MachineModel::ALL {
        for app in [AppKind::Fft, AppKind::Ocean] {
            let mut e = ExperimentConfig::new(model, app, nodes, ways);
            e.cpu_ghz = 2.0;
            rows.push(engine_pair_row(
                &mut archive,
                &e,
                &format!("{model:?} {app:?}"),
            ));
        }
    }
    // Multi-worker leg: the SMTp points again at the largest 16-capped
    // machine with the parallel engine pinned to 2 workers, so the report
    // always carries workers>=2 rows (speedup, barrier share, imbalance)
    // even on hosts whose default worker count would be 1. These rows are
    // a separate measurement population from the single-worker ones — the
    // diff gate compares rows only within matching worker counts.
    let mw_nodes = 16.min(nodes_cap());
    for app in [AppKind::Fft, AppKind::Ocean] {
        if mw_nodes <= nodes {
            // The cap collapsed this leg onto the main rows' machine
            // size; skip rather than emit near-duplicate keys.
            break;
        }
        let mut e = ExperimentConfig::new(MachineModel::SMTp, app, mw_nodes, ways);
        e.cpu_ghz = 2.0;
        e.workers = Some(2);
        rows.push(engine_pair_row(
            &mut archive,
            &e,
            &format!("SMTp {app:?} {mw_nodes}-node workers=2"),
        ));
    }
    // The 32-node scaling sentinel (smoke scale, 2 pinned workers). Under
    // a tight SMTP_NODES_CAP the sentinel collapses onto the multi-worker
    // leg's Fft point exactly (same nodes, workers and scale) — skip it
    // then rather than archive and report the same config twice.
    let e32 = fig32_smoke_config(AppKind::Fft);
    if !(mw_nodes > nodes && e32.nodes == mw_nodes) {
        rows.push(engine_pair_row(
            &mut archive,
            &e32,
            "SMTp Fft 32-node smoke",
        ));
    }
    for r in &rows {
        println!(
            "{:>10} {:6} n={} w={}: {:>9} cycles, IPC {:.3}, remote miss {:>6.0} / p95 {}, \
             serial {:.2}s / parallel {:.2}s = {:.2}x \
             [{} workers, barrier {:.1}%, imbalance {}, skip {:.1}%, fp {:016x}, \
             hot home {} / link {:.1}%]",
            r.model,
            r.app,
            r.nodes,
            r.ways,
            r.cycles,
            r.ipc,
            r.remote_miss_mean,
            r.remote_miss_p95,
            r.serial_secs,
            r.parallel_secs,
            r.speedup,
            r.workers,
            r.barrier_wait_pct,
            r.imbalance.map_or("n/a".to_string(), |v| format!("{v:.2}")),
            r.skip_efficiency_pct,
            r.fingerprint,
            r.home_occ_peak_node
                .map_or("n/a".to_string(), |n| format!("n{n}")),
            100.0 * r.link_util_peak
        );
    }
    eprintln!(
        "archived {} runs in {archive_dir}",
        archive.query().run().len()
    );
    smtp_bench::write_bench_report(&out, &rows);
}
