//! Machine-readable benchmark report: run every machine model on a fixed
//! configuration under **both execution engines** and emit
//! `BENCH_report.json` with cycles, IPC, mean/95th-percentile remote-miss
//! latency, and the serial-vs-parallel simulator speedup per model — the
//! artifact CI uploads so run-to-run performance is diffable.
//!
//! Every point is run on the serial reference engine and on the parallel
//! epoch engine; the run asserts the two produce bit-identical statistics
//! before reporting the wall-clock ratio.
//!
//! ```text
//! cargo bench --bench bench_report
//! SMTP_SCALE=0.05 SMTP_NODES_CAP=4 cargo bench --bench bench_report
//! SMTP_BENCH_OUT=other.json cargo bench --bench bench_report
//! ```

use smtp_bench::{nodes_cap, timed_point, BenchRow};
use smtp_core::{EngineKind, ExperimentConfig};
use smtp_types::MachineModel;
use smtp_workloads::AppKind;

fn main() {
    let nodes = 8.min(nodes_cap());
    let ways = 2;
    // Default next to the workspace root (cargo runs benches with the
    // package directory as CWD), where CI picks the artifact up.
    let out = std::env::var("SMTP_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_report.json").into());
    let mut rows = Vec::new();
    for model in MachineModel::ALL {
        for app in [AppKind::Fft, AppKind::Ocean] {
            let mut e = ExperimentConfig::new(model, app, nodes, ways);
            e.cpu_ghz = 2.0;
            let (serial, serial_secs) = timed_point(&e, EngineKind::Serial);
            let (parallel, parallel_secs) = timed_point(&e, EngineKind::Parallel);
            assert_eq!(
                format!("{serial:?}"),
                format!("{parallel:?}"),
                "engines diverged on {model:?} {app:?}"
            );
            rows.push(BenchRow::from_engine_pair(
                &serial,
                serial_secs,
                parallel_secs,
            ));
        }
    }
    for r in &rows {
        println!(
            "{:>10} {:6} n={} w={}: {:>9} cycles, IPC {:.3}, remote miss {:>6.0} / p95 {}, \
             serial {:.2}s / parallel {:.2}s = {:.2}x",
            r.model,
            r.app,
            r.nodes,
            r.ways,
            r.cycles,
            r.ipc,
            r.remote_miss_mean,
            r.remote_miss_p95,
            r.serial_secs,
            r.parallel_secs,
            r.speedup
        );
    }
    smtp_bench::write_bench_report(&out, &rows);
}
