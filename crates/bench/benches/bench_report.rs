//! Machine-readable benchmark report: run every machine model on a fixed
//! configuration under **both execution engines** and emit
//! `BENCH_report.json` with cycles, IPC, mean/95th-percentile remote-miss
//! latency, the serial-vs-parallel simulator speedup per model, and the
//! parallel engine's host telemetry (worker count, barrier-wait share,
//! imbalance, idle-skip efficiency) — the artifact CI uploads so
//! run-to-run performance is diffable *and attributable*.
//!
//! Every point is run on the serial reference engine and on the parallel
//! epoch engine; the run asserts the two produce bit-identical statistics
//! before reporting the wall-clock ratio. A 32-node SMTp smoke point
//! (shared with the `fig8_9_32node` bench) rides along as the scaling
//! sentinel.
//!
//! ```text
//! cargo bench --bench bench_report
//! SMTP_SCALE=0.05 SMTP_NODES_CAP=4 cargo bench --bench bench_report
//! SMTP_BENCH_OUT=other.json cargo bench --bench bench_report
//! ```

use smtp_bench::{fig32_smoke_config, nodes_cap, timed_point, BenchRow};
use smtp_core::{EngineKind, ExperimentConfig};
use smtp_types::MachineModel;
use smtp_workloads::AppKind;

/// Run one point on both engines, assert bit-identical guest results, and
/// fold the parallel run's host telemetry into the report row.
fn engine_pair_row(e: &ExperimentConfig, label: &str) -> BenchRow {
    let (serial, serial_secs, _) = timed_point(e, EngineKind::Serial);
    let (parallel, parallel_secs, host) = timed_point(e, EngineKind::Parallel);
    assert_eq!(
        format!("{serial:?}"),
        format!("{parallel:?}"),
        "engines diverged on {label}"
    );
    let mut row = BenchRow::from_engine_pair(&serial, serial_secs, parallel_secs);
    if let Some(h) = &host {
        row.apply_host_profile(h);
    }
    row
}

fn main() {
    let nodes = 8.min(nodes_cap());
    let ways = 2;
    // Default next to the workspace root (cargo runs benches with the
    // package directory as CWD), where CI picks the artifact up.
    let out = std::env::var("SMTP_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_report.json").into());
    let mut rows = Vec::new();
    for model in MachineModel::ALL {
        for app in [AppKind::Fft, AppKind::Ocean] {
            let mut e = ExperimentConfig::new(model, app, nodes, ways);
            e.cpu_ghz = 2.0;
            rows.push(engine_pair_row(&e, &format!("{model:?} {app:?}")));
        }
    }
    // The 32-node scaling sentinel (smoke scale, 2 pinned workers).
    let e32 = fig32_smoke_config(AppKind::Fft);
    rows.push(engine_pair_row(&e32, "SMTp Fft 32-node smoke"));
    for r in &rows {
        println!(
            "{:>10} {:6} n={} w={}: {:>9} cycles, IPC {:.3}, remote miss {:>6.0} / p95 {}, \
             serial {:.2}s / parallel {:.2}s = {:.2}x \
             [{} workers, barrier {:.1}%, imbalance {:.2}, skip {:.1}%]",
            r.model,
            r.app,
            r.nodes,
            r.ways,
            r.cycles,
            r.ipc,
            r.remote_miss_mean,
            r.remote_miss_p95,
            r.serial_secs,
            r.parallel_secs,
            r.speedup,
            r.workers,
            r.barrier_wait_pct,
            r.imbalance,
            r.skip_efficiency_pct
        );
    }
    smtp_bench::write_bench_report(&out, &rows);
}
