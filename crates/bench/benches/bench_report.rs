//! Machine-readable benchmark report: run every machine model on a fixed
//! configuration and emit `BENCH_report.json` with cycles, IPC, and
//! mean/95th-percentile remote-miss latency per model — the artifact CI
//! uploads so run-to-run performance is diffable.
//!
//! ```text
//! cargo bench --bench bench_report
//! SMTP_SCALE=0.05 SMTP_NODES_CAP=4 cargo bench --bench bench_report
//! SMTP_BENCH_OUT=other.json cargo bench --bench bench_report
//! ```

use smtp_bench::{nodes_cap, run_point, BenchRow};
use smtp_types::MachineModel;
use smtp_workloads::AppKind;

fn main() {
    let nodes = 8.min(nodes_cap());
    let ways = 2;
    let out = std::env::var("SMTP_BENCH_OUT").unwrap_or_else(|_| "BENCH_report.json".to_string());
    let mut rows = Vec::new();
    for model in MachineModel::ALL {
        for app in [AppKind::Fft, AppKind::Ocean] {
            let r = run_point(model, app, nodes, ways, 2.0);
            rows.push(BenchRow::from_stats(&r));
        }
    }
    for r in &rows {
        println!(
            "{:>10} {:6} n={} w={}: {:>9} cycles, IPC {:.3}, remote miss {:>6.0} / p95 {}",
            r.model, r.app, r.nodes, r.ways, r.cycles, r.ipc, r.remote_miss_mean, r.remote_miss_p95
        );
    }
    smtp_bench::write_bench_report(&out, &rows);
}
