//! Criterion microbenches of the simulator's hot components: raw
//! simulation throughput of the caches, branch predictor, network, the
//! directory transition function, and a whole single-node machine tick.

use criterion::{criterion_group, criterion_main, Criterion};
use smtp_cache::{Cache, LineState};
use smtp_core::{ExperimentConfig, System};
use smtp_noc::{Msg, MsgKind, Network};
use smtp_pipeline::BranchPredictor;
use smtp_protocol::{handler_program, must_apply, DirState};
use smtp_types::{
    Addr, CacheParams, Ctx, MachineModel, NetParams, NodeId, Region, SharerSet, SystemConfig,
};
use smtp_workloads::AppKind;
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let params = CacheParams {
        capacity: 2 * 1024 * 1024,
        line: 128,
        ways: 8,
        hit_cycles: 9,
    };
    c.bench_function("l2_lookup_hit", |b| {
        let mut cache = Cache::new(&params);
        for i in 0..1024u64 {
            cache.insert(Addr(i * 128), LineState::Shared);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1024;
            black_box(cache.lookup(Addr(i * 128)))
        });
    });
    c.bench_function("l2_insert_evict", |b| {
        let mut cache = Cache::new(&params);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cache.insert(Addr(i * 128), LineState::Modified))
        });
    });
}

fn bench_predictor(c: &mut Criterion) {
    c.bench_function("tournament_predict_train", |b| {
        let mut p = BranchPredictor::new();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let pc = i % 64;
            let taken = i % 3 != 0;
            let pred = p.predict(Ctx(0), pc);
            p.train(Ctx(0), pc, taken);
            black_box(pred)
        });
    });
}

fn bench_network(c: &mut Criterion) {
    c.bench_function("network_inject_deliver_32n", |b| {
        let mut net = Network::new(32, 2.0, &NetParams::default());
        let line = Addr::new(NodeId(1), Region::AppData, 0).line();
        let mut now = 0u64;
        b.iter(|| {
            now += 10;
            net.inject(now, Msg::new(MsgKind::GetS, line, NodeId(0), NodeId(17)));
            while let Some(m) = net.pop_arrived(now + 100_000) {
                black_box(m);
            }
        });
    });
}

fn bench_protocol(c: &mut Criterion) {
    let home = NodeId(0);
    let line = Addr::new(home, Region::AppData, 0x1000).line();
    c.bench_function("directory_transition_getx_shared", |b| {
        let sharers: SharerSet = (1..=8).map(|i| NodeId(i as u16)).collect();
        let st = DirState::Shared(sharers);
        let msg = Msg::new(MsgKind::GetX, line, NodeId(9), home);
        b.iter(|| black_box(must_apply(home, &st, &msg)));
    });
    c.bench_function("handler_program_build", |b| {
        let st = DirState::Unowned;
        let msg = Msg::new(MsgKind::GetS, line, NodeId(1), home);
        let t = must_apply(home, &st, &msg);
        b.iter(|| black_box(handler_program(home, line, &t)));
    });
}

fn bench_machine_tick(c: &mut Criterion) {
    c.bench_function("smtp_1node_tick", |b| {
        let cfg = SystemConfig::new(MachineModel::SMTp, 1, 2);
        let mut sys = System::new(cfg, AppKind::Fft, 1.0);
        b.iter(|| {
            sys.tick();
            black_box(sys.now())
        });
    });
    c.bench_function("e2e_quick_fft_smtp", |b| {
        b.iter(|| {
            let e = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Fft, 1, 1);
            black_box(smtp_core::run_experiment(&e).cycles)
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cache, bench_predictor, bench_network, bench_protocol, bench_machine_tick
);
criterion_main!(benches);
