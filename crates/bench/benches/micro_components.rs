//! Microbenches of the simulator's hot components: raw simulation
//! throughput of the caches, branch predictor, network, the directory
//! transition function, a whole single-node machine tick, and the
//! trace-subsystem overhead when tracing is disabled.
//!
//! Uses the crate's own best-of-N harness ([`smtp_bench::bench_micro`]);
//! no external benchmark framework.

use smtp_bench::bench_micro;
use smtp_cache::{Cache, LineState};
use smtp_core::{ExperimentConfig, System};
use smtp_noc::{Msg, MsgKind, Network};
use smtp_pipeline::BranchPredictor;
use smtp_protocol::{handler_program, must_apply, DirState};
use smtp_trace::{Category, Event, Tracer};
use smtp_types::{
    Addr, CacheParams, Ctx, LineAddr, MachineModel, NetParams, NodeId, Region, SharerSet, SpanId,
    SystemConfig,
};
use smtp_workloads::AppKind;
use std::hint::black_box;

fn bench_cache() {
    let params = CacheParams {
        capacity: 2 * 1024 * 1024,
        line: 128,
        ways: 8,
        hit_cycles: 9,
    };
    let mut cache = Cache::new(&params);
    for i in 0..1024u64 {
        cache.insert(Addr(i * 128), LineState::Shared);
    }
    let mut i = 0u64;
    bench_micro("l2_lookup_hit", 100_000, || {
        i = (i + 1) % 1024;
        black_box(cache.lookup(Addr(i * 128)))
    });
    let mut cache = Cache::new(&params);
    let mut j = 0u64;
    bench_micro("l2_insert_evict", 100_000, || {
        j += 1;
        black_box(cache.insert(Addr(j * 128), LineState::Modified))
    });
}

fn bench_predictor() {
    let mut p = BranchPredictor::new();
    let mut i = 0u32;
    bench_micro("tournament_predict_train", 100_000, || {
        i = i.wrapping_add(1);
        let pc = i % 64;
        let taken = !i.is_multiple_of(3);
        let pred = p.predict(Ctx(0), pc);
        p.train(Ctx(0), pc, taken);
        black_box(pred)
    });
}

fn bench_network() {
    let mut net = Network::new(32, 2.0, &NetParams::default());
    let line = Addr::new(NodeId(1), Region::AppData, 0).line();
    let mut now = 0u64;
    bench_micro("network_inject_deliver_32n", 50_000, || {
        now += 10;
        net.inject(now, Msg::new(MsgKind::GetS, line, NodeId(0), NodeId(17)));
        while let Some(m) = net.pop_arrived(now + 100_000) {
            black_box(m);
        }
    });
}

fn bench_protocol() {
    let home = NodeId(0);
    let line = Addr::new(home, Region::AppData, 0x1000).line();
    let sharers: SharerSet = (1..=8).map(|i| NodeId(i as u16)).collect();
    let st = DirState::Shared(sharers);
    let msg = Msg::new(MsgKind::GetX, line, NodeId(9), home);
    bench_micro("directory_transition_getx_shared", 100_000, || {
        black_box(must_apply(home, &st, &msg))
    });
    let st = DirState::Unowned;
    let msg = Msg::new(MsgKind::GetS, line, NodeId(1), home);
    let t = must_apply(home, &st, &msg);
    bench_micro("handler_program_build", 100_000, || {
        black_box(handler_program(home, line, &t))
    });
}

fn bench_machine_tick() {
    let cfg = SystemConfig::new(MachineModel::SMTp, 1, 2);
    let mut sys = System::new(cfg, AppKind::Fft, 1.0);
    bench_micro("smtp_1node_tick", 20_000, || {
        sys.tick();
        black_box(sys.now())
    });
    bench_micro("e2e_quick_fft_smtp", 3, || {
        let e = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Fft, 1, 1);
        black_box(smtp_core::run_experiment(&e).cycles)
    });
}

/// Trace-subsystem overhead (ISSUE 1 acceptance: the disabled path must be
/// within noise, < 2%).
///
/// * `trace_emit_disabled` — the raw cost of an instrumentation site with
///   the category masked off (one branch; the closure never runs).
/// * `smtp_2node_tick_trace_off/on` — a full 2-node SMTp machine tick with
///   the default (mask 0) tracer versus all categories enabled into a ring
///   buffer, bounding what enabling tracing costs end to end.
fn bench_trace_overhead() {
    let tracer = Tracer::new(); // attached, mask 0: the real disabled path
    let mut t = 0u64;
    let disabled = bench_micro("trace_emit_disabled", 1_000_000, || {
        t += 1;
        tracer.emit(Category::Cache, t, || Event::MshrFree {
            node: NodeId(0),
            line: LineAddr(0x80),
            span: SpanId::new(NodeId(0), 1),
        });
        black_box(t)
    });

    let cfg = SystemConfig::new(MachineModel::SMTp, 2, 1);
    let mut sys_off = System::new(cfg, AppKind::Fft, 1.0);
    let off = bench_micro("smtp_2node_tick_trace_off", 20_000, || {
        sys_off.tick();
        black_box(sys_off.now())
    });

    let cfg = SystemConfig::new(MachineModel::SMTp, 2, 1);
    let mut sys_on = System::new(cfg, AppKind::Fft, 1.0);
    sys_on.tracer().enable_all();
    sys_on.tracer().enable_ring(256);
    let on = bench_micro("smtp_2node_tick_trace_on", 20_000, || {
        sys_on.tick();
        black_box(sys_on.now())
    });

    println!(
        "trace overhead: disabled emit {disabled:.2} ns/site, full tick {off:.0} -> {on:.0} ns \
         ({:+.1}% when fully enabled)",
        (on / off - 1.0) * 100.0
    );
}

fn main() {
    println!("== micro_components (best of 7 samples) ==");
    bench_cache();
    bench_predictor();
    bench_network();
    bench_protocol();
    bench_machine_tick();
    bench_trace_overhead();
}
