//! Paper Table 8: protocol-thread characteristics on 16-node 1-way SMTp —
//! branch misprediction rate, squash-cycle percentage, and retired
//! protocol instructions as a fraction of all retired instructions.

use smtp_types::MachineModel;
use smtp_workloads::AppKind;

fn main() {
    println!("# Paper Table 8: protocol thread characteristics (16 nodes, 1-way)");
    let nodes = 16.min(smtp_bench::nodes_cap());
    println!(
        "{:6} | {:>12} {:>9} {:>14}",
        "app", "Br.Mis.Rate", "Squash%", "Retired Ins."
    );
    for app in AppKind::ALL {
        let r = smtp_bench::run_point(MachineModel::SMTp, app, nodes, 1, 2.0);
        println!(
            "{:6} | {:>12} {:>9} {:>13} of all",
            app.name(),
            smtp_bench::pct(r.protocol_mispredict_rate),
            smtp_bench::pct(r.protocol_squash_frac),
            smtp_bench::pct(r.protocol_retired_frac),
        );
    }
}
