//! Paper Figures 5–7: normalized execution time on 16 nodes, 1/2/4-way.

fn main() {
    println!("# Paper Figures 5-7: 16-node normalized execution time");
    let nodes = 16.min(smtp_bench::nodes_cap());
    for ways in [1usize, 2, 4] {
        smtp_bench::print_model_figure(
            &format!(
                "Figure {}: {}-node, {}-way",
                ways.trailing_zeros() + 5,
                nodes,
                ways
            ),
            nodes,
            ways,
            2.0,
        );
    }
}
