//! Paper Table 9: peak pipeline-resource occupancy of the protocol thread
//! while active (branch stack, integer registers, integer queue, LSQ), on
//! 16-node 1-way SMTp systems. Cells are `peak, mean-of-per-node-peaks`.

use smtp_types::MachineModel;
use smtp_workloads::AppKind;

fn main() {
    println!("# Paper Table 9: active protocol thread resource occupancy (16 nodes, 1-way)");
    let nodes = 16.min(smtp_bench::nodes_cap());
    println!(
        "{:6} | {:>9} {:>10} {:>8} {:>8}",
        "app", "Br.Stack", "Int.Regs", "IQ", "LSQ"
    );
    for app in AppKind::ALL {
        let r = smtp_bench::run_point(MachineModel::SMTp, app, nodes, 1, 2.0);
        println!(
            "{:6} | {:>4},{:>4.0} {:>5},{:>4.0} {:>3},{:>4.0} {:>3},{:>4.0}",
            app.name(),
            r.prot_branch_stack.0,
            r.prot_branch_stack.1,
            r.prot_int_regs.0,
            r.prot_int_regs.1,
            r.prot_int_queue.0,
            r.prot_int_queue.1,
            r.prot_lsq.0,
            r.prot_lsq.1,
        );
    }
}
