//! Paper Figures 8–9: the 32-node machine — the largest the paper
//! evaluates.
//!
//! By default this runs the shared 32-node *smoke* configuration
//! ([`smtp_bench::fig32_smoke_config`], the same point `bench_report`
//! reports as its scaling sentinel) on both execution engines with host
//! telemetry, asserting bit-identical guest results and printing the
//! engines' wall-clock attribution — the evidence base for the scaling
//! push on the parallel engine.
//!
//! Set `SMTP_FULL_FIGURE=1` to instead regenerate the full normalized
//! execution-time figure (all five machine models × six applications,
//! 1/2-way), which takes much longer. Set `SMTP_SCALE_SWEEP=1` to also
//! run the scaling sweep *past* the paper — 32-, 64- and 128-node
//! bristled hypercubes (capped by `SMTP_NODES_CAP`), each on both
//! engines with bit-identity asserted and wall-clock attribution
//! printed.
//!
//! ```text
//! cargo bench --bench fig8_9_32node
//! SMTP_SCALE_SWEEP=1 cargo bench --bench fig8_9_32node
//! SMTP_FULL_FIGURE=1 SMTP_SCALE=0.25 cargo bench --bench fig8_9_32node
//! ```

use smtp_bench::{fig32_smoke_config, scaling_config, timed_point};
use smtp_core::EngineKind;
use smtp_workloads::AppKind;

fn main() {
    if std::env::var("SMTP_FULL_FIGURE").is_ok_and(|v| v == "1") {
        println!("# Paper Figures 8-9: 32-node normalized execution time");
        let nodes = 32.min(smtp_bench::nodes_cap());
        for ways in [1usize, 2] {
            smtp_bench::print_model_figure(
                &format!("Figure {}: {}-node, {}-way", 7 + ways, nodes, ways),
                nodes,
                ways,
                2.0,
            );
        }
        return;
    }
    println!("# 32-node smoke point (SMTP_FULL_FIGURE=1 for the full figure)");
    for app in [AppKind::Fft, AppKind::Ocean] {
        let e = fig32_smoke_config(app);
        let (serial, serial_secs, serial_host) = timed_point(&e, EngineKind::Serial);
        let (parallel, parallel_secs, parallel_host) = timed_point(&e, EngineKind::Parallel);
        assert_eq!(
            format!("{serial:?}"),
            format!("{parallel:?}"),
            "engines diverged on the 32-node smoke point ({app})"
        );
        println!(
            "\n{} n={} w={}: {} cycles, serial {serial_secs:.2}s / parallel {parallel_secs:.2}s \
             = {:.2}x",
            app,
            serial.nodes,
            serial.ways,
            serial.cycles,
            serial_secs / parallel_secs.max(1e-9)
        );
        for host in [serial_host, parallel_host].into_iter().flatten() {
            print!("{}", host.summary());
        }
    }
    if std::env::var("SMTP_SCALE_SWEEP").is_ok_and(|v| v == "1") {
        println!("\n# Scaling sweep past the paper: 32/64/128-node bristled hypercubes");
        for nodes in [32usize, 64, 128] {
            if nodes > smtp_bench::nodes_cap() {
                println!("  (skipping n={nodes}: SMTP_NODES_CAP)");
                continue;
            }
            let e = scaling_config(AppKind::Fft, nodes);
            let (serial, serial_secs, _) = timed_point(&e, EngineKind::Serial);
            let (parallel, parallel_secs, host) = timed_point(&e, EngineKind::Parallel);
            assert_eq!(
                format!("{serial:?}"),
                format!("{parallel:?}"),
                "engines diverged at n={nodes}"
            );
            println!(
                "\nFFT n={nodes} w=2: {} cycles, serial {serial_secs:.2}s / parallel \
                 {parallel_secs:.2}s = {:.2}x",
                serial.cycles,
                serial_secs / parallel_secs.max(1e-9)
            );
            if let Some(host) = host {
                print!("{}", host.summary());
            }
        }
    }
}
