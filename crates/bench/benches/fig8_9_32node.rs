//! Paper Figures 8–9: normalized execution time on 32 nodes, 1/2-way
//! (up to 64 application threads).

fn main() {
    println!("# Paper Figures 8-9: 32-node normalized execution time");
    let nodes = 32.min(smtp_bench::nodes_cap());
    for ways in [1usize, 2] {
        smtp_bench::print_model_figure(
            &format!("Figure {}: {}-node, {}-way", 7 + ways, nodes, ways),
            nodes,
            ways,
            2.0,
        );
    }
}
