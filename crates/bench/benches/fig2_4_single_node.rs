//! Paper Figures 2–4: normalized execution time on a single node with
//! 1-, 2- and 4-way SMT, for all five machine models and six applications.

fn main() {
    println!("# Paper Figures 2-4: single-node normalized execution time");
    println!("# (normalized to Base; cells are total(mem+cpu))");
    for ways in [1usize, 2, 4] {
        smtp_bench::print_model_figure(
            &format!("Figure {}: 1-node, {}-way", ways.trailing_zeros() + 2, ways),
            1,
            ways,
            2.0,
        );
    }
}
