//! Paper Figures 10–11: 8-node 1-way normalized execution time at 4 GHz
//! (Fig 10) vs 2 GHz (Fig 11) — the clock-scaling study of §4.2.
//!
//! Runs on the parallel epoch engine by default (`SMTP_ENGINE=serial` to
//! use the reference loop); guest results — and therefore the figures —
//! are bit-identical either way.
//!
//! ```text
//! cargo bench --bench fig10_11_clock_scaling
//! SMTP_SCALE=0.25 cargo bench --bench fig10_11_clock_scaling
//! ```

fn main() {
    println!("# Paper Figures 10-11: clock-rate scaling study (8 nodes, 1-way)");
    let nodes = 8.min(smtp_bench::nodes_cap());
    smtp_bench::print_model_figure(
        &format!("Figure 10: {nodes}-node, 1-way, 4 GHz"),
        nodes,
        1,
        4.0,
    );
    smtp_bench::print_model_figure(
        &format!("Figure 11: {nodes}-node, 1-way, 2 GHz"),
        nodes,
        1,
        2.0,
    );
}
